//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `bench_function` / `bench_with_input` / `sample_size` / `finish`,
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement is intentionally lightweight — a short warm-up, then a
//! fixed time budget of timed batches, reporting min/mean. There is no
//! statistical analysis, HTML report, or saved baseline. The point is to
//! keep `cargo bench` (and `cargo test`, which also builds and runs bench
//! targets) working and fast in an offline sandbox while still printing
//! usable per-iteration timings.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque barrier against constant-folding benchmark inputs.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark's display name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Drives timing of one benchmark body.
pub struct Bencher {
    /// (iterations, total elapsed) of the best timed batch.
    best: Option<(u64, Duration)>,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly: one warm-up call, then timed batches until the
    /// time budget is spent, doubling the batch size as long as a batch
    /// stays fast.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut batch: u64 = 1;
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            let better = match self.best {
                None => true,
                Some((it, best_dt)) => {
                    dt.as_secs_f64() / (batch as f64) < best_dt.as_secs_f64() / (it as f64)
                }
            };
            if better {
                self.best = Some((batch, dt));
            }
            if started.elapsed() >= self.budget {
                break;
            }
            if dt < self.budget / 8 {
                batch = batch.saturating_mul(2);
            }
        }
    }
}

fn report(id: &str, b: &Bencher) {
    match b.best {
        Some((iters, dt)) => {
            let per = dt.as_secs_f64() / iters as f64;
            let (val, unit) = if per >= 1.0 {
                (per, "s")
            } else if per >= 1e-3 {
                (per * 1e3, "ms")
            } else if per >= 1e-6 {
                (per * 1e6, "µs")
            } else {
                (per * 1e9, "ns")
            };
            println!("bench: {id:<55} {val:>9.3} {unit}/iter ({iters} iters)");
        }
        None => println!("bench: {id:<55} (no measurement)"),
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` also executes harness-less bench targets; keep the
        // per-bench budget small so that stays cheap.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            budget: if test_mode {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(200)
            },
        }
    }
}

impl Criterion {
    /// Override the per-benchmark time budget.
    pub fn measurement_time(mut self, budget: Duration) -> Criterion {
        self.budget = budget;
        self
    }

    /// Accepted for CLI compatibility; filtering is not implemented.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            best: None,
            budget: self.budget,
        };
        f(&mut b);
        report(&id.id, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's budget already bounds
    /// the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = BenchmarkId {
            id: format!("{}/{}", self.name, id.id),
        };
        self.criterion.bench_function(full, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("route", 128).id, "route/128");
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
    }
}
