//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact surface the workspace uses: [`Rng`] /
//! [`RngCore`] / [`SeedableRng`], [`rngs::StdRng`] / [`rngs::ThreadRng`],
//! `gen_range` over integer/float ranges, `gen::<f64>()`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, statistically solid for
//! the simulation workloads here, but *not* bit-compatible with upstream
//! `StdRng` (no golden values in this repo depend on upstream streams).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand 0.8`'s `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..n`, `0..=max`, `lo..hi` floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value of `T` from its standard distribution.
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as distributions::Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Per-call generator seeded from a process-global counter. Unlike
    /// upstream it is not thread-local state; each [`super::thread_rng`]
    /// call returns an independently seeded generator.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(StdRng);

    impl ThreadRng {
        pub(crate) fn new() -> ThreadRng {
            use std::sync::atomic::{AtomicU64, Ordering};
            static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            ThreadRng(StdRng::seed_from_u64(n))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh pseudo-thread-local generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

pub mod distributions {
    use super::RngCore;

    /// Types samplable "from the standard distribution" via `Rng::gen`.
    pub trait Standard {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        /// Uniform in `[0, 1)` with 53 random mantissa bits.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Ranges usable with `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Draw uniformly from `[0, span)` without modulo bias
        /// (Lemire's multiply-shift rejection method).
        #[inline]
        pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (span as u128);
                let lo = m as u64;
                if lo >= span || lo >= (u64::MAX - span + 1) % span {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range in gen_range");
                        let span = (self.end as u64) - (self.start as u64);
                        self.start + below(rng, span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range in gen_range");
                        let span = (hi as u64) - (lo as u64);
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo + below(rng, span + 1) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + u * (self.end - self.start)
            }
        }
    }
}

pub mod seq {
    use super::{distributions::uniform::below, Rng};

    /// Slice shuffling / random element selection.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let s: f64 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0u64..=1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((480.0..520.0).contains(&mean), "mean {mean}");
    }
}
