//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the API subset the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], [`arbitrary::any`], [`collection::vec`] /
//! [`collection::btree_set`], `prop_assert*` / [`prop_assume!`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: inputs are generated from a per-test
//! deterministic seed (derived from the test name, overridable via the
//! `PROPTEST_SEED` env var) and failing cases are reported with their
//! generated inputs but **not shrunk**.

pub mod strategy;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.uniform_f64()
        }
    }

    /// Strategy producing arbitrary values of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Number-of-elements specification: a fixed count or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates are retried a bounded
    /// number of times, so the produced set may be smaller than requested
    /// when the element domain is nearly exhausted.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng).max(self.size.lo);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < want && attempts < want * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    /// Runtime configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs: try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic input generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded from the test's name (stable across runs) xor'd with
        /// `PROPTEST_SEED` when set, so failures are reproducible and a
        /// different universe of inputs is one env var away.
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.trim().parse::<u64>() {
                    h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn uniform_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, span)`; `span` 0 is treated as 1.
        pub fn below(&mut self, span: u64) -> u64 {
            let span = span.max(1);
            let m = (self.next_u64() as u128) * (span as u128);
            (m >> 64) as u64
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), l, r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(l == r, $($fmt)+);
        let _ = (l, r);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), l
        );
    }};
}

/// Reject the current case (not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Union of same-valued strategies, uniformly weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let strategy = ($($strategy,)+);
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    let values =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let formatted = format!("{:?}", values);
                    let ($($arg,)+) = values;
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                rejected
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed after {} passing case(s)\n\
                                 inputs: {}\n{}",
                                stringify!($name), passed, formatted, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}
