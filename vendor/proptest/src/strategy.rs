//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: combinators are `Self: Sized` so `Box<dyn Strategy>`
/// works (needed by [`crate::prop_oneof!`]).
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing the predicate (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy as a trait object (used by [`crate::prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates in a row", self.whence);
    }
}

/// Uniform choice among same-valued strategies
/// (what [`crate::prop_oneof!`] builds).
pub struct Union<T: Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.uniform_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0/0);
impl_tuple_strategy!(S0/0, S1/1);
impl_tuple_strategy!(S0/0, S1/1, S2/2);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4);
impl_tuple_strategy!(S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::deterministic("unit");
        let s = (1u16..=8, 0u32..100).prop_map(|(a, b)| (a as u32) * 1000 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            let (a, b) = (v / 1000, v % 1000);
            assert!((1..=8).contains(&a));
            assert!(b < 100);
        }
    }

    #[test]
    fn union_picks_every_branch() {
        let mut rng = TestRng::deterministic("union");
        let u = Union::new(vec![boxed(Just(1u32)), boxed(Just(2u32)), boxed(Just(3u32))]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(u.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::deterministic("flat");
        let s = (2u32..10).prop_flat_map(|n| (Just(n), 0..n));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic("coll");
        let v = crate::collection::vec(0u64..50, 3usize..7);
        for _ in 0..50 {
            let xs = v.generate(&mut rng);
            assert!((3..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 50));
        }
        let b = crate::collection::btree_set(0u32..1000, 1usize..20);
        for _ in 0..50 {
            let s = b.generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 20);
        }
    }
}
