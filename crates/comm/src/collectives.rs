//! Collective operations: analytic cost models and scheduled algorithms.
//!
//! Two fidelities are offered:
//!
//! * [`CollectiveModel`] — closed-form alpha-beta costs for barriers,
//!   (all)reductions and broadcasts, used when a protocol merely needs to
//!   account for a synchronization step at scale (e.g. Algorithm 2's
//!   "reduce and broadcast the total size") without simulating hundreds of
//!   thousands of tiny messages;
//! * scheduled algorithms ([`dissemination_barrier`], [`binomial_bcast`],
//!   [`binomial_reduce`]) — real message DAGs over the torus, exact but
//!   only sensible for modest node counts.

use crate::machine::Machine;
use crate::program::Program;
use bgq_netsim::TransferId;
use bgq_torus::NodeId;

/// Bytes of a control message (coordinates, sizes) in scheduled collectives.
pub const CONTROL_MSG_BYTES: u64 = 16;

/// Closed-form collective costs for a machine.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveModel<'m> {
    machine: &'m Machine,
}

impl<'m> CollectiveModel<'m> {
    pub fn new(machine: &'m Machine) -> CollectiveModel<'m> {
        CollectiveModel { machine }
    }

    fn alpha(&self) -> f64 {
        let c = self.machine.config();
        c.send_overhead + c.recv_overhead + self.machine.mean_hops() * c.hop_latency
    }

    fn rounds(n: u32) -> f64 {
        if n <= 1 {
            0.0
        } else {
            (n as f64).log2().ceil()
        }
    }

    /// Latency of a barrier over `n` participants (dissemination pattern).
    pub fn barrier(&self, n: u32) -> f64 {
        Self::rounds(n) * self.alpha()
    }

    /// Latency of an allreduce of `bytes` over `n` participants
    /// (recursive doubling for small payloads).
    pub fn allreduce(&self, n: u32, bytes: u64) -> f64 {
        let beta = bytes as f64 / self.machine.config().link_bandwidth;
        Self::rounds(n) * (self.alpha() + beta)
    }

    /// Latency of a broadcast of `bytes` from one root to `n - 1` others
    /// (binomial tree).
    pub fn bcast(&self, n: u32, bytes: u64) -> f64 {
        let beta = bytes as f64 / self.machine.config().link_bandwidth;
        Self::rounds(n) * (self.alpha() + beta)
    }

    /// Latency of gathering one control message from each of `n`
    /// participants to a root (binomial tree, payload grows toward root;
    /// we charge the worst-level payload at every level for simplicity).
    pub fn gather_control(&self, n: u32) -> f64 {
        let beta = (n as u64 * CONTROL_MSG_BYTES) as f64
            / self.machine.config().link_bandwidth;
        Self::rounds(n) * self.alpha() + beta
    }
}

/// Schedule a dissemination barrier among `nodes`.
///
/// `entry[i]` are the transfers node `i` must complete before entering the
/// barrier. Returns one exit token per node: a transfer that is delivered
/// only when that node has passed the barrier.
pub fn dissemination_barrier(
    prog: &mut Program<'_>,
    nodes: &[NodeId],
    entry: &[Vec<TransferId>],
) -> Vec<TransferId> {
    assert_eq!(nodes.len(), entry.len(), "one entry dep list per node");
    let n = nodes.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        // Trivial: delivered when the entry deps are done.
        return vec![prog.modeled_sync(nodes[0], 0.0, entry[0].clone())];
    }

    // tokens[i]: the transfer whose delivery means node i finished the
    // current round.
    let mut tokens: Vec<Vec<TransferId>> = entry.to_vec();
    let mut round = 1usize;
    while round < n {
        let mut sends: Vec<TransferId> = Vec::with_capacity(n);
        for i in 0..n {
            let peer = (i + round) % n;
            let deps = tokens[i].clone();
            sends.push(prog.put_after(nodes[i], nodes[peer], CONTROL_MSG_BYTES, deps, 0.0));
        }
        // Next-round readiness of node i: its own send issued (captured by
        // the send's delivery) and the message from (i - round) received.
        let mut next: Vec<Vec<TransferId>> = Vec::with_capacity(n);
        for i in 0..n {
            let from = (i + n - round % n) % n;
            next.push(vec![sends[i], sends[from]]);
        }
        tokens = next;
        round *= 2;
    }
    tokens
        .into_iter()
        .zip(nodes)
        .map(|(deps, &node)| prog.modeled_sync(node, 0.0, deps))
        .collect()
}

/// Schedule a binomial-tree broadcast of `bytes` from `nodes[0]` to the
/// rest. Returns the per-node delivery token (the root's token is delivered
/// immediately after its entry deps).
pub fn binomial_bcast(
    prog: &mut Program<'_>,
    nodes: &[NodeId],
    bytes: u64,
    root_deps: Vec<TransferId>,
) -> Vec<TransferId> {
    let n = nodes.len();
    assert!(n > 0, "broadcast needs at least one node");
    let mut have: Vec<Option<TransferId>> = vec![None; n];
    have[0] = Some(prog.modeled_sync(nodes[0], 0.0, root_deps));
    // Classic binomial: in round k, every holder i sends to i + 2^k.
    let mut stride = 1usize;
    while stride < n {
        for i in 0..n {
            let j = i + stride;
            if j < n && have[i].is_some() && have[j].is_none() {
                let dep = have[i].unwrap();
                // Only nodes that became holders in earlier rounds send.
                have[j] = Some(prog.put_after(nodes[i], nodes[j], bytes, vec![dep], 0.0));
            }
        }
        stride *= 2;
    }
    have.into_iter().map(|t| t.unwrap()).collect()
}

/// Schedule a binomial-tree reduction of `bytes` per node toward
/// `nodes[0]`. `entry[i]` gates node `i`'s participation. Returns the token
/// delivered when the root holds the result.
pub fn binomial_reduce(
    prog: &mut Program<'_>,
    nodes: &[NodeId],
    bytes: u64,
    entry: &[Vec<TransferId>],
) -> TransferId {
    let n = nodes.len();
    assert!(n > 0, "reduce needs at least one node");
    assert_eq!(entry.len(), n);
    // ready[i]: what node i must have before it can send/absorb.
    let mut ready: Vec<Vec<TransferId>> = entry.to_vec();
    let mut alive: Vec<bool> = vec![true; n];
    let mut stride = 1usize;
    while stride < n {
        for i in (0..n).step_by(stride * 2) {
            let j = i + stride;
            if j < n && alive[i] && alive[j] {
                let deps = ready[j].clone();
                let recv = prog.put_after(nodes[j], nodes[i], bytes, deps, 0.0);
                ready[i].push(recv);
                alive[j] = false;
            }
        }
        stride *= 2;
    }
    let deps = ready[0].clone();
    prog.modeled_sync(nodes[0], 0.0, deps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    fn first_nodes(k: u32) -> Vec<NodeId> {
        (0..k).map(NodeId).collect()
    }

    #[test]
    fn model_costs_grow_with_participants() {
        let m = machine();
        let cm = CollectiveModel::new(&m);
        assert_eq!(cm.barrier(1), 0.0);
        assert!(cm.barrier(2) > 0.0);
        assert!(cm.barrier(128) > cm.barrier(16));
        assert!(cm.allreduce(64, 1 << 20) > cm.allreduce(64, 8));
        assert!(cm.bcast(64, 1 << 20) > cm.barrier(64));
        assert!(cm.gather_control(1024) > cm.gather_control(16));
    }

    #[test]
    fn scheduled_barrier_synchronizes_all() {
        let m = machine();
        let mut p = Program::new(&m);
        let nodes = first_nodes(8);
        // Give node 3 a long head-start task; everyone must wait for it.
        let slow = p.put(NodeId(3), NodeId(4), 32 << 20);
        let mut entry = vec![Vec::new(); 8];
        entry[3] = vec![slow];
        let exits = dissemination_barrier(&mut p, &nodes, &entry);
        assert_eq!(exits.len(), 8);
        let rep = p.run();
        let t_slow = rep.delivered_at(slow);
        for e in &exits {
            assert!(
                rep.delivered_at(*e) >= t_slow,
                "barrier exit before slow node arrived"
            );
        }
    }

    #[test]
    fn barrier_of_one_is_immediate() {
        let m = machine();
        let mut p = Program::new(&m);
        let exits = dissemination_barrier(&mut p, &[NodeId(0)], &[Vec::new()]);
        let rep = p.run();
        assert_eq!(exits.len(), 1);
        assert!(rep.delivered_at(exits[0]) < 1e-3);
    }

    #[test]
    fn bcast_reaches_everyone_after_root() {
        let m = machine();
        let mut p = Program::new(&m);
        let nodes = first_nodes(13); // non-power-of-two
        let tokens = binomial_bcast(&mut p, &nodes, 4096, Vec::new());
        let rep = p.run();
        let t_root = rep.delivered_at(tokens[0]);
        for t in &tokens[1..] {
            assert!(rep.delivered_at(*t) > t_root);
        }
    }

    #[test]
    fn reduce_completes_after_all_leaves() {
        let m = machine();
        let mut p = Program::new(&m);
        let nodes = first_nodes(10);
        let slow = p.put(NodeId(9), NodeId(8), 16 << 20);
        let mut entry = vec![Vec::new(); 10];
        entry[9] = vec![slow];
        let done = binomial_reduce(&mut p, &nodes, 64, &entry);
        let rep = p.run();
        assert!(rep.delivered_at(done) >= rep.delivered_at(slow));
    }

    #[test]
    fn scheduled_barrier_latency_close_to_model() {
        // The analytic model should be within an order of magnitude of the
        // scheduled algorithm (it is a coarse alpha model, not exact).
        let m = machine();
        let cm = CollectiveModel::new(&m);
        let mut p = Program::new(&m);
        let nodes = first_nodes(16);
        let entry = vec![Vec::new(); 16];
        let exits = dissemination_barrier(&mut p, &nodes, &entry);
        let rep = p.run();
        let scheduled = exits
            .iter()
            .map(|e| rep.delivered_at(*e))
            .fold(0.0, f64::max);
        let modeled = cm.barrier(16);
        assert!(scheduled > modeled * 0.1 && scheduled < modeled * 20.0,
            "scheduled {scheduled} vs modeled {modeled}");
    }
}
