//! Additional scheduled collective algorithms: ring allgather, pairwise
//! all-to-all and binomial scatter.
//!
//! Like the algorithms in [`crate::collectives`], these build real message
//! DAGs over the torus, so their cost emerges from the simulated network
//! rather than a closed-form model. They are used by the data-coupling
//! workloads (boundary exchange, transpose-style coupling) and exercised
//! by the ablation benches.

use crate::program::Program;
use bgq_netsim::TransferId;
use bgq_torus::NodeId;

/// Ring allgather: each node contributes `bytes`; after `n-1` rounds every
/// node holds all contributions. Returns, per node, the token delivered
/// when that node's gather is complete.
pub fn ring_allgather(
    prog: &mut Program<'_>,
    nodes: &[NodeId],
    bytes: u64,
    entry: &[Vec<TransferId>],
) -> Vec<TransferId> {
    let n = nodes.len();
    assert!(n > 0, "allgather needs at least one node");
    assert_eq!(entry.len(), n);
    if n == 1 {
        return vec![prog.modeled_sync(nodes[0], 0.0, entry[0].clone())];
    }

    // incoming[i]: token for the block node i received in the last round.
    // Round r: node i sends the block it received in round r-1 (its own
    // block in round 0) to node (i+1) mod n.
    let mut last_recv: Vec<Vec<TransferId>> = entry.to_vec();
    let mut all_recvs: Vec<Vec<TransferId>> = vec![Vec::new(); n];
    for _round in 0..n - 1 {
        let mut next: Vec<Vec<TransferId>> = vec![Vec::new(); n];
        for i in 0..n {
            let to = (i + 1) % n;
            let send = prog.put_after(nodes[i], nodes[to], bytes, last_recv[i].clone(), 0.0);
            next[to] = vec![send];
            all_recvs[to].push(send);
        }
        last_recv = next;
    }
    (0..n)
        .map(|i| {
            let deps = all_recvs[i].clone();
            prog.modeled_sync(nodes[i], 0.0, deps)
        })
        .collect()
}

/// Pairwise-exchange all-to-all: every node sends a distinct `bytes` block
/// to every other node, one peer per round (`n-1` rounds, peer of node `i`
/// in round `r` is `i XOR r` for power-of-two `n`, else a shifted ring).
/// Returns per-node completion tokens.
pub fn pairwise_alltoall(
    prog: &mut Program<'_>,
    nodes: &[NodeId],
    bytes: u64,
) -> Vec<TransferId> {
    let n = nodes.len();
    assert!(n > 0, "alltoall needs at least one node");
    if n == 1 {
        return vec![prog.modeled_sync(nodes[0], 0.0, Vec::new())];
    }

    let pow2 = n.is_power_of_two();
    // sends_done[i]: the previous round's send by node i (serializes that
    // node's rounds); recvs[i]: everything node i must have received.
    let mut prev_send: Vec<Option<TransferId>> = vec![None; n];
    let mut recvs: Vec<Vec<TransferId>> = vec![Vec::new(); n];
    for r in 1..n {
        for i in 0..n {
            let peer = if pow2 { i ^ r } else { (i + r) % n };
            if peer == i || peer >= n {
                continue;
            }
            let deps: Vec<TransferId> = prev_send[i].into_iter().collect();
            let send = prog.put_after(nodes[i], nodes[peer], bytes, deps, 0.0);
            prev_send[i] = Some(send);
            recvs[peer].push(send);
        }
    }
    (0..n)
        .map(|i| {
            let mut deps = recvs[i].clone();
            deps.extend(prev_send[i]);
            prog.modeled_sync(nodes[i], 0.0, deps)
        })
        .collect()
}

/// Binomial scatter from `nodes[0]`: the root holds one distinct `bytes`
/// block per node; subtree roots receive their whole subtree's blocks and
/// forward onward. Returns per-node delivery tokens.
pub fn binomial_scatter(
    prog: &mut Program<'_>,
    nodes: &[NodeId],
    bytes: u64,
    root_deps: Vec<TransferId>,
) -> Vec<TransferId> {
    let n = nodes.len();
    assert!(n > 0, "scatter needs at least one node");
    let mut have: Vec<Option<TransferId>> = vec![None; n];
    have[0] = Some(prog.modeled_sync(nodes[0], 0.0, root_deps));

    // Largest power-of-two stride first: the root sends the top half of
    // the index space (with all its blocks) to its first child, etc.
    let mut stride = 1usize;
    while stride * 2 <= n.next_power_of_two() {
        stride *= 2;
    }
    while stride >= 1 {
        for i in (0..n).step_by(stride * 2) {
            let j = i + stride;
            if j < n && have[i].is_some() && have[j].is_none() {
                // Subtree payload: blocks for ranks j..min(j+stride, n).
                let blocks = (n - j).min(stride) as u64;
                let dep = have[i].unwrap();
                have[j] =
                    Some(prog.put_after(nodes[i], nodes[j], bytes * blocks, vec![dep], 0.0));
            }
        }
        stride /= 2;
    }
    have.into_iter().map(|t| t.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    fn nodes(k: u32) -> Vec<NodeId> {
        (0..k).map(NodeId).collect()
    }

    #[test]
    fn allgather_completion_after_all_rounds() {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(6);
        let entry = vec![Vec::new(); 6];
        let tokens = ring_allgather(&mut p, &ns, 4096, &entry);
        assert_eq!(tokens.len(), 6);
        // n*(n-1) block transfers + n sync tokens.
        assert_eq!(p.len(), 6 * 5 + 6);
        let rep = p.run();
        for t in &tokens {
            assert!(rep.delivered_at(*t) > 0.0);
        }
    }

    #[test]
    fn allgather_volume_is_n_minus_1_blocks_per_node() {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(4);
        let entry = vec![Vec::new(); 4];
        ring_allgather(&mut p, &ns, 1000, &entry);
        // Each round moves n blocks; n-1 rounds.
        assert_eq!(p.graph().total_bytes(), 4 * 3 * 1000);
    }

    #[test]
    fn allgather_single_node_trivial() {
        let m = machine();
        let mut p = Program::new(&m);
        let tokens = ring_allgather(&mut p, &nodes(1), 512, &[Vec::new()]);
        let rep = p.run();
        assert!(rep.delivered_at(tokens[0]) < 1e-3);
    }

    #[test]
    fn alltoall_moves_n_squared_blocks() {
        let m = machine();
        for k in [4u32, 5, 8] {
            let mut p = Program::new(&m);
            let tokens = pairwise_alltoall(&mut p, &nodes(k), 100);
            assert_eq!(tokens.len() as u32, k);
            assert_eq!(
                p.graph().total_bytes(),
                (k as u64) * (k as u64 - 1) * 100,
                "k={k}"
            );
            let rep = p.run();
            for t in &tokens {
                assert!(rep.delivered_at(*t).is_finite());
            }
        }
    }

    #[test]
    fn scatter_delivers_subtree_volumes() {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(8);
        let tokens = binomial_scatter(&mut p, &ns, 1000, Vec::new());
        assert_eq!(tokens.len(), 8);
        // Total volume: root ships 4+2+1 subtree payloads:
        // 4 blocks to node 4, 2 to node 2, 1 to node 1; node 4 ships 2+1;
        // node 2 ships 1; node 6 ships 1... total = sum over non-roots of
        // their subtree size = 4+2+1 + 2+1 + 1 + 1 = 12 blocks.
        assert_eq!(p.graph().total_bytes(), 12 * 1000);
        let rep = p.run();
        let t_root = rep.delivered_at(tokens[0]);
        for t in &tokens[1..] {
            assert!(rep.delivered_at(*t) > t_root);
        }
    }

    #[test]
    fn scatter_handles_non_power_of_two() {
        let m = machine();
        let mut p = Program::new(&m);
        let tokens = binomial_scatter(&mut p, &nodes(6), 100, Vec::new());
        assert_eq!(tokens.len(), 6);
        let rep = p.run();
        for t in &tokens {
            assert!(rep.delivered_at(*t).is_finite());
        }
    }
}
