//! The `Machine`: a torus partition bound to simulator resources.
//!
//! Maps the partition's directed torus links and the bridge nodes'
//! eleventh (I/O) links to the dense [`ResourceId`] space of `bgq-netsim`,
//! builds the capacity table, and computes routes for transfers. I/O nodes
//! are modelled as extra simulator nodes appended after the compute nodes,
//! so ION-side processing shares the same injection-serialization model.

use bgq_netsim::{ResourceId, SimConfig, Simulator};
use bgq_torus::{num_links, route, IoLayout, IonId, LinkId, NodeId, Shape, Zone};

/// Why a [`Machine`] could not be constructed or configured.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The network parameters failed [`SimConfig::check`].
    InvalidConfig(String),
    /// The operation needs psets/bridges/IONs, but the partition is not a
    /// whole number of psets.
    NoIoLayout,
    /// A filesystem bandwidth was zero or negative.
    NonPositiveFsBandwidth { per_ion: f64, aggregate: f64 },
    /// A randomized routing zone was requested where the machine needs a
    /// deterministic one.
    RandomizedZone(Zone),
    /// A link-degradation factor fell outside `(0, 1]`.
    DegradeFactorOutOfRange { link: LinkId, factor: f64 },
    /// A degraded link id does not exist in this partition.
    LinkOutOfRange { link: LinkId },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::InvalidConfig(msg) => write!(f, "invalid SimConfig: {msg}"),
            MachineError::NoIoLayout => {
                write!(f, "partition has no I/O layout (not a pset multiple)")
            }
            MachineError::NonPositiveFsBandwidth { per_ion, aggregate } => write!(
                f,
                "filesystem bandwidths must be positive, got per-ION {per_ion} / \
                 aggregate {aggregate}"
            ),
            MachineError::RandomizedZone(zone) => write!(
                f,
                "Machine routing requires a deterministic zone, got {zone:?}"
            ),
            MachineError::DegradeFactorOutOfRange { link, factor } => write!(
                f,
                "degradation factor must be in (0, 1] for {link}, got {factor}"
            ),
            MachineError::LinkOutOfRange { link } => {
                write!(f, "degraded link {link} outside the partition")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Parameters of the file-server backend behind the I/O nodes (the ALCF
/// QDR InfiniBand switch complex and GPFS file servers of Figure 1).
///
/// `/dev/null` experiments (the paper's Figures 10 and 11) do not use
/// this: delivery at the ION completes a write. With a filesystem
/// attached, each ION forwards over its own IB link and all IONs share
/// the file servers' aggregate ingest bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct FsParams {
    /// Bandwidth of one ION's link into the switch complex.
    pub per_ion_bandwidth: f64,
    /// Aggregate file-server ingest bandwidth shared by all IONs.
    pub aggregate_bandwidth: f64,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            // QDR IB: 4 GB/s signalling, ~3.2 GB/s effective payload.
            per_ion_bandwidth: 3.2e9,
            // Mira's GPFS sustains ~240 GB/s machine-wide; scaled runs
            // share proportionally, so expose the full-machine figure.
            aggregate_bandwidth: 240e9,
        }
    }
}

/// A simulated BG/Q partition: topology + I/O layout + network parameters.
#[derive(Debug, Clone)]
pub struct Machine {
    shape: Shape,
    io: Option<IoLayout>,
    fs: Option<FsParams>,
    degraded: Vec<(LinkId, f64)>,
    config: SimConfig,
    zone: Zone,
}

impl Machine {
    /// Build a machine over `shape` with the given network parameters.
    ///
    /// The I/O subsystem (psets, bridge nodes, IONs) is available only for
    /// partitions that are a whole number of 128-node psets; smaller test
    /// partitions still support compute-to-compute traffic.
    ///
    /// # Panics
    /// Panics if the config is invalid; use [`Machine::try_new`] to handle
    /// that as a [`MachineError`] instead.
    pub fn new(shape: Shape, config: SimConfig) -> Machine {
        Machine::try_new(shape, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Machine::new`].
    pub fn try_new(shape: Shape, config: SimConfig) -> Result<Machine, MachineError> {
        config.check().map_err(MachineError::InvalidConfig)?;
        let io = if shape.num_nodes().is_multiple_of(bgq_torus::PSET_NODES) {
            Some(IoLayout::new(shape))
        } else {
            None
        };
        Ok(Machine {
            shape,
            io,
            fs: None,
            degraded: Vec::new(),
            config,
            zone: Zone::Z2,
        })
    }

    /// Attach a file-server backend behind the I/O nodes.
    ///
    /// # Panics
    /// Panics if the partition has no I/O layout, or if the parameters are
    /// non-positive; use [`Machine::try_with_filesystem`] to handle that as
    /// a [`MachineError`] instead.
    pub fn with_filesystem(self, fs: FsParams) -> Machine {
        self.try_with_filesystem(fs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Machine::with_filesystem`].
    pub fn try_with_filesystem(mut self, fs: FsParams) -> Result<Machine, MachineError> {
        if self.io.is_none() {
            return Err(MachineError::NoIoLayout);
        }
        if !(fs.per_ion_bandwidth > 0.0 && fs.aggregate_bandwidth > 0.0) {
            return Err(MachineError::NonPositiveFsBandwidth {
                per_ion: fs.per_ion_bandwidth,
                aggregate: fs.aggregate_bandwidth,
            });
        }
        self.fs = Some(fs);
        Ok(self)
    }

    /// The attached filesystem parameters, if any.
    pub fn fs(&self) -> Option<&FsParams> {
        self.fs.as_ref()
    }

    /// Override the deterministic routing zone (must be zone 2 or 3).
    ///
    /// # Panics
    /// Panics if `zone` is one of the randomized zones; use
    /// [`Machine::try_with_zone`] to handle that as a [`MachineError`]
    /// instead.
    pub fn with_zone(self, zone: Zone) -> Machine {
        self.try_with_zone(zone).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Machine::with_zone`].
    pub fn try_with_zone(mut self, zone: Zone) -> Result<Machine, MachineError> {
        if !zone.is_deterministic() {
            return Err(MachineError::RandomizedZone(zone));
        }
        self.zone = zone;
        Ok(self)
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    pub fn zone(&self) -> Zone {
        self.zone
    }

    /// The I/O layout, if the partition has one.
    pub fn io(&self) -> Option<&IoLayout> {
        self.io.as_ref()
    }

    /// The I/O layout.
    ///
    /// # Panics
    /// Panics if the partition is too small to have psets; use
    /// [`Machine::try_io_layout`] to handle that as a [`MachineError`]
    /// instead.
    pub fn io_layout(&self) -> &IoLayout {
        self.try_io_layout().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Machine::io_layout`].
    pub fn try_io_layout(&self) -> Result<&IoLayout, MachineError> {
        self.io.as_ref().ok_or(MachineError::NoIoLayout)
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> u32 {
        self.shape.num_nodes()
    }

    /// Number of simulator nodes: compute nodes, IONs, and (with a
    /// filesystem attached) one file-server sink.
    pub fn num_sim_nodes(&self) -> u32 {
        self.num_nodes()
            + self.io.as_ref().map_or(0, |io| io.num_ions())
            + u32::from(self.fs.is_some())
    }

    /// Simulator node index of the file-server sink.
    ///
    /// # Panics
    /// Panics if no filesystem is attached.
    pub fn fs_sim_node(&self) -> u32 {
        assert!(self.fs.is_some(), "no filesystem attached");
        self.num_nodes() + self.io_layout().num_ions()
    }

    /// Simulator node index of an I/O node.
    pub fn ion_sim_node(&self, ion: IonId) -> u32 {
        debug_assert!(ion.0 < self.io_layout().num_ions());
        self.num_nodes() + ion.0
    }

    /// Resource id of a directed torus link.
    #[inline]
    pub fn torus_resource(&self, link: LinkId) -> ResourceId {
        ResourceId(link.0)
    }

    /// The torus link a resource id maps back to, or `None` for resources
    /// outside the torus link space (I/O links, filesystem).
    #[inline]
    pub fn torus_link(&self, resource: ResourceId) -> Option<LinkId> {
        (resource.0 < num_links(&self.shape)).then_some(LinkId(resource.0))
    }

    /// Resource id of a bridge node's outbound I/O link (bridge → ION).
    ///
    /// # Panics
    /// Panics if `bridge` is not a bridge node.
    pub fn io_resource(&self, bridge: NodeId) -> ResourceId {
        let io = self.io_layout();
        let idx = io
            .io_link_index(bridge)
            .unwrap_or_else(|| panic!("{bridge} is not a bridge node"));
        ResourceId(num_links(&self.shape) + idx)
    }

    /// Resource id of a bridge node's inbound I/O link (ION → bridge).
    /// The eleventh link is full duplex; reads use this direction.
    ///
    /// # Panics
    /// Panics if `bridge` is not a bridge node.
    pub fn io_in_resource(&self, bridge: NodeId) -> ResourceId {
        let io = self.io_layout();
        let idx = io
            .io_link_index(bridge)
            .unwrap_or_else(|| panic!("{bridge} is not a bridge node"));
        ResourceId(num_links(&self.shape) + io.num_io_links() + idx)
    }

    /// Total number of resources: torus links + I/O links (both
    /// directions), plus (with a filesystem) one IB link per ION and the
    /// shared file-server ingest.
    pub fn num_resources(&self) -> u32 {
        let base =
            num_links(&self.shape) + 2 * self.io.as_ref().map_or(0, |io| io.num_io_links());
        match (&self.fs, &self.io) {
            (Some(_), Some(io)) => base + io.num_ions() + 1,
            _ => base,
        }
    }

    /// Resource id of an ION's InfiniBand link into the switch complex.
    ///
    /// # Panics
    /// Panics if no filesystem is attached.
    pub fn fs_ion_resource(&self, ion: IonId) -> ResourceId {
        assert!(self.fs.is_some(), "no filesystem attached");
        let io = self.io_layout();
        debug_assert!(ion.0 < io.num_ions());
        ResourceId(num_links(&self.shape) + 2 * io.num_io_links() + ion.0)
    }

    /// Resource id of the shared file-server ingest capacity.
    ///
    /// # Panics
    /// Panics if no filesystem is attached.
    pub fn fs_aggregate_resource(&self) -> ResourceId {
        assert!(self.fs.is_some(), "no filesystem attached");
        let io = self.io_layout();
        ResourceId(num_links(&self.shape) + 2 * io.num_io_links() + io.num_ions())
    }

    /// Mark torus links as degraded: each listed link's capacity is
    /// multiplied by its factor (in `(0, 1]`). Models partially failed or
    /// contended-by-another-job links; deterministic routing does not
    /// avoid them, which is exactly why the paper's link-disjoint
    /// multipath limits the blast radius of one bad link.
    ///
    /// # Panics
    /// Panics if a factor is outside `(0, 1]` or a link does not exist; use
    /// [`Machine::try_with_degraded_links`] to handle that as a
    /// [`MachineError`] instead.
    pub fn with_degraded_links(self, degraded: &[(LinkId, f64)]) -> Machine {
        self.try_with_degraded_links(degraded)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Machine::with_degraded_links`].
    pub fn try_with_degraded_links(
        mut self,
        degraded: &[(LinkId, f64)],
    ) -> Result<Machine, MachineError> {
        for &(link, factor) in degraded {
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(MachineError::DegradeFactorOutOfRange { link, factor });
            }
            if link.0 >= num_links(&self.shape) {
                return Err(MachineError::LinkOutOfRange { link });
            }
            self.degraded.push((link, factor));
        }
        Ok(self)
    }

    /// The degraded links, if any.
    pub fn degraded_links(&self) -> &[(LinkId, f64)] {
        &self.degraded
    }

    /// Build the capacity table for the simulator.
    pub fn capacities(&self) -> Vec<f64> {
        let nl = num_links(&self.shape) as usize;
        let nio = 2 * self.io.as_ref().map_or(0, |io| io.num_io_links()) as usize;
        let mut caps = vec![self.config.link_bandwidth; nl];
        caps.resize(nl + nio, self.config.io_link_bandwidth);
        if let (Some(fs), Some(io)) = (&self.fs, &self.io) {
            caps.resize(nl + nio + io.num_ions() as usize, fs.per_ion_bandwidth);
            caps.push(fs.aggregate_bandwidth);
        }
        for &(link, factor) in &self.degraded {
            caps[link.0 as usize] *= factor;
        }
        caps
    }

    /// Construct the simulator for this machine.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(self.num_sim_nodes(), self.capacities(), self.config.clone())
    }

    /// The deterministic torus route between two compute nodes, as
    /// simulator resources.
    pub fn route_resources(&self, src: NodeId, dst: NodeId) -> Vec<ResourceId> {
        route(&self.shape, src, dst, self.zone)
            .links
            .into_iter()
            .map(|l| self.torus_resource(l))
            .collect()
    }

    /// The deterministic torus route between two compute nodes.
    pub fn torus_route(&self, src: NodeId, dst: NodeId) -> bgq_torus::Route {
        route(&self.shape, src, dst, self.zone)
    }

    /// Half the torus diameter in hops (a representative hop count for
    /// latency models).
    pub fn mean_hops(&self) -> f64 {
        bgq_torus::Dim::ALL
            .into_iter()
            .map(|d| self.shape.extent(d) as f64 / 4.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::standard_shape;

    fn machine128() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn resource_space_covers_torus_and_io_links() {
        let m = machine128();
        // 10 torus links per node + 2 io links out + 2 io links in.
        assert_eq!(m.num_resources(), 128 * 10 + 2 + 2);
        let caps = m.capacities();
        assert_eq!(caps.len(), 1284);
        assert_eq!(caps[0], 1.8e9);
        for &cap in &caps[1280..1284] {
            assert_eq!(cap, 2.0e9);
        }
    }

    #[test]
    fn small_partitions_have_no_io() {
        let m = Machine::new(Shape::new(2, 2, 2, 2, 2), SimConfig::default());
        assert!(m.io().is_none());
        assert_eq!(m.num_sim_nodes(), 32);
        assert_eq!(m.num_resources(), 320);
    }

    #[test]
    fn ion_sim_nodes_follow_compute_nodes() {
        let m = machine128();
        assert_eq!(m.num_sim_nodes(), 129);
        assert_eq!(m.ion_sim_node(bgq_torus::IonId(0)), 128);
    }

    #[test]
    fn io_resource_maps_bridges() {
        let m = machine128();
        let io = m.io_layout();
        let bridges = io.bridges_of_pset(bgq_torus::PsetId(0));
        assert_eq!(m.io_resource(bridges[0]), ResourceId(1280));
        assert_eq!(m.io_resource(bridges[1]), ResourceId(1281));
        // The inbound direction is a distinct full-duplex resource.
        assert_eq!(m.io_in_resource(bridges[0]), ResourceId(1282));
        assert_eq!(m.io_in_resource(bridges[1]), ResourceId(1283));
    }

    #[test]
    #[should_panic(expected = "not a bridge")]
    fn io_resource_rejects_non_bridge() {
        let m = machine128();
        m.io_resource(NodeId(5));
    }

    #[test]
    fn route_resources_match_torus_route() {
        let m = machine128();
        let r = m.route_resources(NodeId(0), NodeId(127));
        let tr = m.torus_route(NodeId(0), NodeId(127));
        assert_eq!(r.len(), tr.hops());
        for (res, link) in r.iter().zip(&tr.links) {
            assert_eq!(res.0, link.0);
        }
    }

    #[test]
    #[should_panic(expected = "deterministic zone")]
    fn randomized_zone_rejected() {
        let _ = machine128().with_zone(Zone::Z0);
    }

    #[test]
    fn try_constructors_report_errors_as_values() {
        let bad = SimConfig {
            link_bandwidth: 0.0,
            ..SimConfig::default()
        };
        assert!(matches!(
            Machine::try_new(standard_shape(128).unwrap(), bad),
            Err(MachineError::InvalidConfig(_))
        ));

        let small = Machine::new(Shape::new(2, 2, 2, 2, 2), SimConfig::default());
        assert!(matches!(small.try_io_layout(), Err(MachineError::NoIoLayout)));
        assert!(matches!(
            small.try_with_filesystem(FsParams::default()),
            Err(MachineError::NoIoLayout)
        ));

        assert!(matches!(
            machine128().try_with_zone(Zone::Z1),
            Err(MachineError::RandomizedZone(Zone::Z1))
        ));
        assert!(matches!(
            machine128().try_with_degraded_links(&[(LinkId(3), 1.5)]),
            Err(MachineError::DegradeFactorOutOfRange { .. })
        ));
        assert!(matches!(
            machine128().try_with_degraded_links(&[(LinkId(999_999), 0.5)]),
            Err(MachineError::LinkOutOfRange { .. })
        ));

        // The happy path is unchanged.
        let m = machine128()
            .try_with_filesystem(FsParams::default())
            .unwrap()
            .try_with_zone(Zone::Z3)
            .unwrap()
            .try_with_degraded_links(&[(LinkId(0), 0.5)])
            .unwrap();
        assert_eq!(m.zone(), Zone::Z3);
        assert_eq!(m.degraded_links(), &[(LinkId(0), 0.5)]);
    }
}
