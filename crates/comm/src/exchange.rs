//! Sparse neighborhood exchange: the send-map and discovery layer.
//!
//! A multiphysics coupling step issues *many* sparse point-to-point
//! messages at once — every rank knows who it sends to, nobody knows who
//! they receive from. This module holds the communication-layer half of
//! the subsystem:
//!
//! * [`SparseSendMap`] — the canonical description of one exchange round:
//!   who sends how many bytes to whom, deduplicated and deterministically
//!   ordered so every consumer (planner, simulator, test) sees the same
//!   sequence;
//! * [`consensus_discovery`] — a modeled sparse dynamic data exchange
//!   (Geyko et al.: "A More Scalable Sparse Dynamic Data Exchange")
//!   discovery phase: before any payload moves, participants agree on who
//!   talks to whom via a barrier plus control-message gathers priced by
//!   [`CollectiveModel`], charged as per-node synchronization gates.
//!
//! The batch *routing* of an exchange (direct vs. proxy multipath, the
//! link-claim ledger) lives upstream in `sdm-core::exchange`, which
//! consumes these types.

use crate::collectives::CollectiveModel;
use crate::program::Program;
use bgq_netsim::TransferId;
use bgq_torus::NodeId;

/// One exchange round's sparse traffic: `(src, dst, bytes)` per logical
/// message, deduplicated (repeated inserts accumulate) and sorted by
/// `(src, dst)` so iteration order — and therefore every transfer DAG
/// built from the map — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseSendMap {
    pairs: Vec<(NodeId, NodeId, u64)>,
}

impl SparseSendMap {
    /// An empty map.
    pub fn new() -> SparseSendMap {
        SparseSendMap::default()
    }

    /// Add `bytes` to the `src → dst` message (accumulating on repeat).
    /// Zero-byte inserts are dropped — an exchange carries payload or the
    /// pair does not exist.
    ///
    /// # Panics
    /// Panics on a self-send; an exchange has no local messages.
    pub fn insert(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        assert_ne!(src, dst, "an exchange carries no self-sends");
        if bytes == 0 {
            return;
        }
        let key = (src, dst);
        match self.pairs.binary_search_by_key(&key, |&(s, d, _)| (s, d)) {
            Ok(i) => self.pairs[i].2 += bytes,
            Err(i) => self.pairs.insert(i, (src, dst, bytes)),
        }
    }

    /// Build a map from any pair iterator (duplicates accumulate,
    /// zero-byte entries are dropped).
    pub fn from_pairs<I>(pairs: I) -> SparseSendMap
    where
        I: IntoIterator<Item = (NodeId, NodeId, u64)>,
    {
        let mut map = SparseSendMap::new();
        for (src, dst, bytes) in pairs {
            map.insert(src, dst, bytes);
        }
        map
    }

    /// Build a map from raw rank triples, as the `bgq-workloads` pattern
    /// generators produce them.
    pub fn from_rank_pairs(pairs: &[(u32, u32, u64)]) -> SparseSendMap {
        Self::from_pairs(
            pairs
                .iter()
                .map(|&(s, d, b)| (NodeId(s), NodeId(d), b)),
        )
    }

    /// The messages, sorted by `(src, dst)`.
    pub fn pairs(&self) -> &[(NodeId, NodeId, u64)] {
        &self.pairs
    }

    /// Number of logical messages.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total payload across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.pairs.iter().map(|&(_, _, b)| b).sum()
    }

    /// Every node that sends or receives, sorted and deduplicated.
    pub fn participants(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .pairs
            .iter()
            .flat_map(|&(s, d, _)| [s, d])
            .collect();
        nodes.sort_unstable_by_key(|n| n.0);
        nodes.dedup();
        nodes
    }

    /// Fraction of the dense all-to-all pair space this map populates.
    pub fn density(&self, num_nodes: u32) -> f64 {
        let dense = u64::from(num_nodes) * u64::from(num_nodes.saturating_sub(1));
        if dense == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / dense as f64
        }
    }
}

/// The modeled discovery phase of a consensus-style exchange.
#[derive(Debug, Clone)]
pub struct Discovery {
    /// `(node, gate)` per participant, in participant order: no payload
    /// put of `node` may start before its gate token is delivered.
    pub gates: Vec<(NodeId, TransferId)>,
    /// The modeled latency every participant was charged.
    pub cost: f64,
}

impl Discovery {
    /// The gate token for `node`, if it participates.
    pub fn gate_for(&self, node: NodeId) -> Option<TransferId> {
        self.gates
            .binary_search_by_key(&node.0, |&(n, _)| n.0)
            .ok()
            .map(|i| self.gates[i].1)
    }
}

/// Schedule the discovery phase of a nonblocking-consensus exchange over
/// `map`'s participants: every participant is gated by a modeled
/// synchronization whose cost is one dissemination barrier plus one
/// control-message gather over the participant set, priced by
/// [`CollectiveModel`].
///
/// The real NBX protocol interleaves speculative receives with an
/// `MPI_Ibarrier`; a flow-level simulator has no message-probe semantics
/// to express that with, but the *cost shape* — `O(log n)` latency-bound
/// rounds plus a control payload proportional to the participant count —
/// is exactly what the analytic barrier + gather charge. The gates make
/// that cost visible to the payload DAG instead of vanishing into a
/// footnote.
pub fn consensus_discovery(
    prog: &mut Program<'_>,
    map: &SparseSendMap,
    model: &CollectiveModel<'_>,
) -> Discovery {
    let participants = map.participants();
    let n = participants.len() as u32;
    let cost = model.barrier(n) + model.gather_control(n);
    let gates = participants
        .into_iter()
        .map(|node| (node, prog.modeled_sync(node, cost, Vec::new())))
        .collect();
    Discovery { gates, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn map_is_sorted_deduplicated_and_accumulating() {
        let mut map = SparseSendMap::new();
        map.insert(NodeId(5), NodeId(9), 100);
        map.insert(NodeId(1), NodeId(2), 10);
        map.insert(NodeId(5), NodeId(9), 50);
        map.insert(NodeId(5), NodeId(3), 7);
        map.insert(NodeId(1), NodeId(2), 0); // dropped
        assert_eq!(
            map.pairs(),
            &[
                (NodeId(1), NodeId(2), 10),
                (NodeId(5), NodeId(3), 7),
                (NodeId(5), NodeId(9), 150),
            ]
        );
        assert_eq!(map.len(), 3);
        assert_eq!(map.total_bytes(), 167);
        assert_eq!(
            map.participants(),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(5), NodeId(9)]
        );
    }

    #[test]
    fn construction_order_does_not_matter() {
        let fwd = SparseSendMap::from_rank_pairs(&[(0, 1, 5), (2, 3, 6), (0, 4, 7)]);
        let rev = SparseSendMap::from_rank_pairs(&[(0, 4, 7), (0, 1, 5), (2, 3, 6)]);
        assert_eq!(fwd, rev);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_sends_are_rejected() {
        SparseSendMap::new().insert(NodeId(3), NodeId(3), 1);
    }

    #[test]
    fn density_counts_the_pair_space() {
        let map = SparseSendMap::from_rank_pairs(&[(0, 1, 1), (1, 0, 1)]);
        assert!((map.density(2) - 1.0).abs() < 1e-12);
        assert!(map.density(4) < 0.2);
        assert_eq!(SparseSendMap::new().density(0), 0.0);
    }

    #[test]
    fn discovery_gates_every_participant_at_the_modeled_cost() {
        let m = machine();
        let map = SparseSendMap::from_rank_pairs(&[(0, 7, 1 << 20), (3, 9, 1 << 20)]);
        let model = CollectiveModel::new(&m);
        let mut prog = Program::new(&m);
        let disc = consensus_discovery(&mut prog, &map, &model);
        assert_eq!(disc.gates.len(), 4);
        assert!(disc.cost > 0.0);
        assert_eq!(disc.cost, model.barrier(4) + model.gather_control(4));
        let rep = prog.run();
        let first = rep.delivered_at(disc.gates[0].1);
        for &(node, gate) in &disc.gates {
            assert!(disc.gate_for(node) == Some(gate));
            let t = rep.delivered_at(gate);
            // Delivered no earlier than the modeled cost (the simulator
            // adds its per-transfer base latency on top), same instant
            // for every participant.
            assert!(t >= disc.cost, "gate at {t}, cost {}", disc.cost);
            assert!(t - disc.cost < 1e-4, "gate at {t}, cost {}", disc.cost);
            assert_eq!(t, first, "all gates open together");
        }
        assert_eq!(disc.gate_for(NodeId(100)), None);
    }
}
