//! Planner-facing view of the network's health at a point in time.
//!
//! The engine's [`FaultPlan`] speaks simulator resource and node indices;
//! planners (proxy search, aggregator placement) speak topology types.
//! A [`HealthMask`] is the bridge: a snapshot of which torus links are
//! dead and which compute nodes are down at a given simulation time,
//! built by replaying the plan. Faults on I/O-space resources are not
//! represented — the torus planners never place proxies there.

use crate::machine::Machine;
use bgq_netsim::FaultPlan;
use bgq_torus::{LinkId, NodeId};
use std::collections::HashSet;

/// Dead links and down nodes, as a set the planners can route around.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthMask {
    /// Torus links with zero capacity (fully failed; degraded-but-alive
    /// links are not masked — routing over them is still correct).
    pub dead_links: HashSet<LinkId>,
    /// Compute nodes that are down (no injection, no forwarding).
    pub down_nodes: HashSet<NodeId>,
}

impl HealthMask {
    /// A mask with nothing failed.
    pub fn healthy() -> HealthMask {
        HealthMask::default()
    }

    /// Whether nothing is masked out.
    pub fn is_healthy(&self) -> bool {
        self.dead_links.is_empty() && self.down_nodes.is_empty()
    }

    /// The health of `machine`'s torus under `faults` at time `t`
    /// (inclusive: a fault scheduled exactly at `t` is visible).
    pub fn at(machine: &Machine, faults: &FaultPlan, t: f64) -> HealthMask {
        let num_nodes = machine.shape().num_nodes();
        let dead_links = faults
            .dead_resources_at(t)
            .into_iter()
            .filter_map(|r| machine.torus_link(r))
            .collect();
        let down_nodes = faults
            .down_nodes_at(t)
            .into_iter()
            .filter(|&n| n < num_nodes)
            .map(NodeId)
            .collect();
        HealthMask {
            dead_links,
            down_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_netsim::SimConfig;
    use bgq_torus::{num_links, standard_shape};
    use bgq_netsim::ResourceId;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn healthy_mask_is_empty() {
        let m = HealthMask::healthy();
        assert!(m.is_healthy());
    }

    #[test]
    fn mask_tracks_plan_state_over_time() {
        let m = machine();
        let plan = FaultPlan::new()
            .fail_link(1.0, ResourceId(7))
            .restore_link(3.0, ResourceId(7))
            .fail_node(2.0, 5);
        assert!(HealthMask::at(&m, &plan, 0.5).is_healthy());
        let at1 = HealthMask::at(&m, &plan, 1.0);
        assert!(at1.dead_links.contains(&LinkId(7)));
        let at2 = HealthMask::at(&m, &plan, 2.5);
        assert!(at2.dead_links.contains(&LinkId(7)));
        assert!(at2.down_nodes.contains(&NodeId(5)));
        let at3 = HealthMask::at(&m, &plan, 3.5);
        assert!(at3.dead_links.is_empty(), "link healed");
        assert!(at3.down_nodes.contains(&NodeId(5)), "node still down");
    }

    #[test]
    fn io_space_faults_are_not_masked() {
        let m = machine();
        let io_resource = ResourceId(num_links(m.shape()));
        let plan = FaultPlan::new().fail_link(0.0, io_resource);
        assert!(HealthMask::at(&m, &plan, 1.0).is_healthy());
    }
}
