//! Program builder: an MPI-like one-sided API over the transfer graph.
//!
//! A [`Program`] accumulates RDMA puts, I/O-link forwards and
//! synchronization edges against a [`Machine`], then executes them on the
//! simulator. Dependencies between transfers express completion semantics
//! (`MPI_Win` epochs, store-and-forward hand-offs) explicitly.

use crate::health::HealthMask;
use crate::machine::Machine;
use bgq_netsim::{
    FaultPlan, SimObserver, SimOptions, SimReport, TransferGraph, TransferId, TransferSpec,
    TransferStatus,
};
use bgq_obs::MetricsRegistry;
use bgq_torus::NodeId;

/// Handle to one logical (possibly multi-transfer) operation: the delivery
/// tokens whose completion means every byte has arrived, plus the logical
/// byte count for throughput accounting.
#[derive(Debug, Clone)]
pub struct TransferHandle {
    pub tokens: Vec<TransferId>,
    pub bytes: u64,
}

impl TransferHandle {
    /// Completion time of the logical operation in a report.
    pub fn completed_at(&self, report: &SimReport) -> f64 {
        report.last_delivery(&self.tokens)
    }

    /// Achieved throughput (bytes over completion time, program start at 0).
    pub fn throughput(&self, report: &SimReport) -> f64 {
        let t = self.completed_at(report);
        if t > 0.0 {
            self.bytes as f64 / t
        } else {
            0.0
        }
    }
}

/// A communication program under construction.
#[derive(Debug)]
pub struct Program<'m> {
    machine: &'m Machine,
    graph: TransferGraph,
}

impl<'m> Program<'m> {
    pub fn new(machine: &'m Machine) -> Program<'m> {
        Program {
            machine,
            graph: TransferGraph::new(),
        }
    }

    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    pub fn graph(&self) -> &TransferGraph {
        &self.graph
    }

    pub fn into_graph(self) -> TransferGraph {
        self.graph
    }

    /// Number of transfers added so far.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// One-sided put from `src` to `dst` over the deterministic torus route.
    pub fn put(&mut self, src: NodeId, dst: NodeId, bytes: u64) -> TransferId {
        self.put_after(src, dst, bytes, Vec::new(), 0.0)
    }

    /// Put that starts only after `deps` are delivered, plus `delay`
    /// seconds of software overhead.
    pub fn put_after(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let route = self.machine.route_resources(src, dst);
        self.graph.add(
            TransferSpec::new(src.0, dst.0, bytes, route)
                .after(deps)
                .with_delay(delay),
        )
    }

    /// Put tagged for later correlation in reports.
    pub fn put_tagged(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        let route = self.machine.route_resources(src, dst);
        self.graph
            .add(TransferSpec::new(src.0, dst.0, bytes, route).with_tag(tag))
    }

    /// Add a raw transfer spec (escape hatch for custom routes).
    pub fn add_spec(&mut self, spec: TransferSpec) -> TransferId {
        self.graph.add(spec)
    }

    /// Forward `bytes` from a bridge node to its I/O node over the
    /// eleventh link.
    ///
    /// # Panics
    /// Panics if `bridge` is not a bridge node.
    pub fn ion_forward(
        &mut self,
        bridge: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let io = self.machine.io_layout();
        let ion = io.default_ion(bridge);
        let res = self.machine.io_resource(bridge);
        let cap = self.machine.config().io_link_bandwidth;
        self.graph.add(
            TransferSpec::new(bridge.0, self.machine.ion_sim_node(ion), bytes, vec![res])
                .after(deps)
                .with_delay(delay)
                // The eleventh link is a dedicated point-to-point channel:
                // a single forward can use its full bandwidth.
                .with_rate_cap(cap),
        )
    }

    /// Write `bytes` from a compute node to its default I/O node along the
    /// default path: torus hop(s) to the node's default bridge, then the
    /// eleventh link, store-and-forward at the bridge.
    ///
    /// Returns the ION-side delivery token.
    pub fn write_default(
        &mut self,
        node: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
    ) -> TransferId {
        let io = self.machine.io_layout();
        let bridge = io.default_bridge(node);
        let fwd = self.machine.config().forward_overhead;
        if bridge == node {
            self.ion_forward(node, bytes, deps, 0.0)
        } else {
            let to_bridge = self.put_after(node, bridge, bytes, deps, 0.0);
            self.ion_forward(bridge, bytes, vec![to_bridge], fwd)
        }
    }

    /// Fetch `bytes` from an I/O node down to a bridge node over the
    /// inbound direction of the eleventh link (collective reads /
    /// restart).
    ///
    /// # Panics
    /// Panics if `bridge` is not a bridge node.
    pub fn ion_read(
        &mut self,
        bridge: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let io = self.machine.io_layout();
        let ion = io.default_ion(bridge);
        let res = self.machine.io_in_resource(bridge);
        let cap = self.machine.config().io_link_bandwidth;
        self.graph.add(
            TransferSpec::new(self.machine.ion_sim_node(ion), bridge.0, bytes, vec![res])
                .after(deps)
                .with_delay(delay)
                .with_rate_cap(cap),
        )
    }

    /// Forward `bytes` from an I/O node to the file servers, over the
    /// ION's InfiniBand link and the shared file-server ingest.
    ///
    /// # Panics
    /// Panics if the machine has no filesystem attached.
    pub fn fs_write(
        &mut self,
        ion: bgq_torus::IonId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let m = self.machine;
        let route = vec![m.fs_ion_resource(ion), m.fs_aggregate_resource()];
        let cap = m.fs().expect("no filesystem attached").per_ion_bandwidth;
        self.graph.add(
            TransferSpec::new(m.ion_sim_node(ion), m.fs_sim_node(), bytes, route)
                .after(deps)
                .with_delay(delay)
                .with_rate_cap(cap),
        )
    }

    /// A pure synchronization point on `node`: delivered `cost` seconds
    /// after `deps` complete. Used to model collective operations whose
    /// full message schedule is not worth simulating (cost from
    /// [`crate::collectives::CollectiveModel`]).
    pub fn modeled_sync(
        &mut self,
        node: NodeId,
        cost: f64,
        deps: Vec<TransferId>,
    ) -> TransferId {
        self.graph.add(
            TransferSpec::new(node.0, node.0, 0, Vec::new())
                .after(deps)
                .with_delay(cost),
        )
    }

    /// Execute the program on a fresh simulator under `opts` — the full
    /// engine surface ([`SimOptions`] carries the optional fault plan,
    /// observer and solver mode). The `run*` conveniences below are
    /// sugar over this.
    pub fn simulate(&self, opts: SimOptions<'_>) -> SimReport {
        self.machine.simulator().simulate(&self.graph, opts)
    }

    /// Execute the program on a fresh simulator.
    pub fn run(&self) -> SimReport {
        self.simulate(SimOptions::new())
    }

    /// Execute the program under a fault schedule. With an empty plan
    /// this is exactly [`Program::run`].
    pub fn run_with_faults(&self, faults: &FaultPlan) -> SimReport {
        self.simulate(SimOptions::new().faults(faults))
    }

    /// Execute under a fault schedule with engine observation: waterfill
    /// epochs, the per-link heatmap and stall/resume events accumulate
    /// into `obs`. The report is bit-identical to
    /// [`Program::run_with_faults`] on the same inputs.
    pub fn run_observed(&self, faults: &FaultPlan, obs: &mut SimObserver) -> SimReport {
        self.simulate(SimOptions::new().faults(faults).observer(obs))
    }
}

/// Bounded retry policy for fault-aware re-planning. All times are
/// *simulated* seconds: the backoff is charged to the simulation clock,
/// not to wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be at least 1).
    pub max_attempts: u32,
    /// Simulated delay before the first retry.
    pub base_backoff: f64,
    /// Multiplier applied to the backoff on every further retry.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 100e-6,
            backoff_factor: 2.0,
        }
    }
}

/// What a re-planning closure sees on each [`run_resilient`] attempt.
#[derive(Debug, Clone)]
pub struct ReplanContext {
    /// Attempt number, starting at 0.
    pub attempt: u32,
    /// Simulated time before which no transfer of this attempt may start.
    pub not_before: f64,
    /// Bytes still to deliver (the remainder after earlier attempts).
    pub bytes: u64,
    /// Network health at `not_before` — what a fault-aware planner should
    /// route around.
    pub health: HealthMask,
    /// Gate token: pass it as a dependency (or
    /// `MultipathOptions::gate`) so the attempt's transfers start only
    /// once the simulation clock reaches `not_before`. `None` on the
    /// first attempt.
    pub gate: Option<TransferId>,
}

/// Result of a [`run_resilient`] drive.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// Whether every byte eventually arrived.
    pub delivered: bool,
    /// Attempts consumed (1 = no retry needed).
    pub attempts: u32,
    /// Simulated time the last byte arrived; `f64::INFINITY` on failure.
    pub completion_time: f64,
    /// Bytes that arrived across all attempts.
    pub bytes_delivered: u64,
    /// The final attempt's report (stalled transfers and all).
    pub report: SimReport,
}

/// Drive a transfer to completion under faults with bounded re-planning.
///
/// Each attempt builds a fresh [`Program`], asks `plan` to schedule the
/// remaining bytes (the closure sees the current [`HealthMask`] and a
/// gate token pinning the attempt to its simulated start time), and
/// replays the *same* absolute-time fault schedule. Chunks whose final
/// token was delivered are subtracted from the remainder; a stalled
/// remainder is retried after an exponential backoff in simulated time,
/// up to `policy.max_attempts` attempts.
///
/// Attempts are independent simulations stitched on the clock: an
/// attempt's traffic does not contend with earlier attempts' completed
/// traffic. That is the standard renewal approximation — by the time a
/// retry fires, the earlier attempt's surviving flows have drained.
///
/// # Panics
/// Panics if `policy.max_attempts` is 0 or the closure plans no bytes
/// while bytes remain.
pub fn run_resilient<F>(
    machine: &Machine,
    faults: &FaultPlan,
    policy: &RetryPolicy,
    src: NodeId,
    total_bytes: u64,
    plan: F,
) -> ResilientOutcome
where
    F: FnMut(&mut Program<'_>, &ReplanContext) -> TransferHandle,
{
    run_resilient_observed(machine, faults, policy, src, total_bytes, None, plan)
}

/// [`run_resilient`] with retry-loop observability: when `metrics` is
/// present, each attempt, retry, backoff and health snapshot lands in
/// the registry (`comm.resilient.*`), and any transfer left undelivered
/// by the final attempt increments `comm.transfers_undelivered` — so a
/// run that silently reports zero throughput is loud in the metrics.
/// All recorded values derive from simulated time and integer counts;
/// the outcome itself is unaffected by observation.
pub fn run_resilient_observed<F>(
    machine: &Machine,
    faults: &FaultPlan,
    policy: &RetryPolicy,
    src: NodeId,
    total_bytes: u64,
    metrics: Option<&MetricsRegistry>,
    mut plan: F,
) -> ResilientOutcome
where
    F: FnMut(&mut Program<'_>, &ReplanContext) -> TransferHandle,
{
    assert!(policy.max_attempts > 0, "need at least one attempt");
    let undelivered_in = |report: &SimReport| (report.status.len() - report.num_delivered()) as u64;
    let mut remaining = total_bytes;
    let mut not_before = 0.0f64;
    let mut attempt = 0u32;
    loop {
        let mut prog = Program::new(machine);
        let gate = (not_before > 0.0).then(|| {
            prog.add_spec(TransferSpec::new(src.0, src.0, 0, Vec::new()).not_before(not_before))
        });
        let ctx = ReplanContext {
            attempt,
            not_before,
            bytes: remaining,
            health: HealthMask::at(machine, faults, not_before),
            gate,
        };
        if let Some(m) = metrics {
            m.counter("comm.resilient.attempts").inc();
            m.counter("comm.resilient.dead_links_seen")
                .add(ctx.health.dead_links.len() as u64);
            m.counter("comm.resilient.down_nodes_seen")
                .add(ctx.health.down_nodes.len() as u64);
        }
        let handle = plan(&mut prog, &ctx);
        assert!(
            remaining == 0 || handle.bytes > 0,
            "re-plan scheduled no bytes with {remaining} remaining"
        );
        let report = prog.run_with_faults(faults);
        let specs = prog.graph().specs();
        let arrived: u64 = handle
            .tokens
            .iter()
            .filter(|t| report.status_of(**t) == TransferStatus::Delivered)
            .map(|t| specs[t.index()].bytes)
            .sum();
        remaining = remaining.saturating_sub(arrived);
        attempt += 1;
        if remaining == 0 {
            if let Some(m) = metrics {
                m.counter("comm.transfers_undelivered")
                    .add(undelivered_in(&report));
            }
            return ResilientOutcome {
                delivered: true,
                attempts: attempt,
                completion_time: handle.completed_at(&report),
                bytes_delivered: total_bytes,
                report,
            };
        }
        if attempt >= policy.max_attempts {
            if let Some(m) = metrics {
                m.counter("comm.resilient.failures").inc();
                m.counter("comm.transfers_undelivered")
                    .add(undelivered_in(&report));
            }
            return ResilientOutcome {
                delivered: false,
                attempts: attempt,
                completion_time: f64::INFINITY,
                bytes_delivered: total_bytes - remaining,
                report,
            };
        }
        if let Some(m) = metrics {
            m.counter("comm.resilient.retries").inc();
        }
        // Exponential backoff from when this attempt stopped making
        // progress, charged to the simulation clock.
        not_before = report.end_time
            + policy.base_backoff * policy.backoff_factor.powi(attempt as i32 - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, Shape};

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn put_creates_routed_transfer() {
        let m = machine();
        let mut p = Program::new(&m);
        let t = p.put(NodeId(0), NodeId(127), 1 << 20);
        let spec = &p.graph().specs()[t.index()];
        assert_eq!(spec.src, 0);
        assert_eq!(spec.dst, 127);
        assert!(!spec.route.is_empty());
        let rep = p.run();
        assert!(rep.delivered_at(t) > 0.0);
    }

    #[test]
    fn put_throughput_plateaus_at_per_flow_cap() {
        // A very large direct put should approach the 1.6 GB/s protocol cap
        // (paper Fig. 5, "without proxies" plateau).
        let m = machine();
        let mut p = Program::new(&m);
        let bytes = 128u64 << 20;
        let t = p.put(NodeId(0), NodeId(127), bytes);
        let rep = p.run();
        let thr = bytes as f64 / rep.delivered_at(t);
        assert!(
            (1.55e9..=1.6e9).contains(&thr),
            "direct put throughput {:.3} GB/s not at cap",
            thr / 1e9
        );
    }

    #[test]
    fn write_default_reaches_the_ion() {
        let m = machine();
        let mut p = Program::new(&m);
        let t = p.write_default(NodeId(5), 1 << 20, Vec::new());
        let spec = &p.graph().specs()[t.index()];
        // Final leg lands on the ION's simulator node.
        assert_eq!(spec.dst, m.ion_sim_node(bgq_torus::IonId(0)));
        let rep = p.run();
        assert!(rep.delivered_at(t) > 0.0);
    }

    #[test]
    fn write_default_from_bridge_skips_torus() {
        let m = machine();
        let mut p = Program::new(&m);
        let bridge = m.io_layout().bridges_of_pset(bgq_torus::PsetId(0))[0];
        let t = p.write_default(bridge, 1 << 20, Vec::new());
        assert_eq!(p.len(), 1, "bridge writes need no torus leg");
        let spec = &p.graph().specs()[t.index()];
        assert_eq!(spec.route.len(), 1);
    }

    #[test]
    fn io_write_throughput_bounded_by_io_link() {
        let m = machine();
        let mut p = Program::new(&m);
        let bytes = 64u64 << 20;
        let bridge = m.io_layout().bridges_of_pset(bgq_torus::PsetId(0))[0];
        let t = p.ion_forward(bridge, bytes, Vec::new(), 0.0);
        let rep = p.run();
        let thr = bytes as f64 / rep.delivered_at(t);
        assert!(thr <= 2.0e9 * 1.001, "io link overdriven: {thr}");
        assert!(thr >= 1.9e9, "io link underdriven: {thr}");
    }

    #[test]
    fn modeled_sync_adds_cost() {
        let m = machine();
        let mut p = Program::new(&m);
        let a = p.put(NodeId(0), NodeId(1), 1024);
        let s = p.modeled_sync(NodeId(0), 0.5, vec![a]);
        let rep = p.run();
        assert!(rep.delivered_at(s) >= rep.delivered_at(a) + 0.5);
    }

    #[test]
    fn non_pset_partition_supports_compute_traffic() {
        let m = Machine::new(Shape::new(2, 2, 2, 2, 2), SimConfig::default());
        let mut p = Program::new(&m);
        let t = p.put(NodeId(0), NodeId(31), 4096);
        let rep = p.run();
        assert!(rep.delivered_at(t) > 0.0);
    }

    // ---- fault-aware retry loop ----

    use crate::program::{run_resilient, RetryPolicy};
    use bgq_netsim::FaultPlan;

    const RETRY_BYTES: u64 = 1 << 20;

    /// Time a clean direct put src -> dst takes on `m`.
    fn direct_time(m: &Machine, src: NodeId, dst: NodeId) -> f64 {
        let mut p = Program::new(m);
        let t = p.put(src, dst, RETRY_BYTES);
        p.run().delivered_at(t)
    }

    #[test]
    fn resilient_run_without_faults_is_one_attempt() {
        let m = machine();
        let (src, dst) = (NodeId(0), NodeId(127));
        let t0 = direct_time(&m, src, dst);
        let out = run_resilient(
            &m,
            &FaultPlan::new(),
            &RetryPolicy::default(),
            src,
            RETRY_BYTES,
            |p, ctx| {
                assert!(ctx.gate.is_none(), "first attempt is ungated");
                let deps = ctx.gate.into_iter().collect();
                let t = p.put_after(src, dst, ctx.bytes, deps, 0.0);
                TransferHandle { tokens: vec![t], bytes: ctx.bytes }
            },
        );
        assert!(out.delivered);
        assert_eq!(out.attempts, 1);
        assert!((out.completion_time - t0).abs() < 1e-12);
        assert_eq!(out.bytes_delivered, RETRY_BYTES);
    }

    #[test]
    fn permanent_fault_on_fixed_route_exhausts_attempts() {
        let m = machine();
        let (src, dst) = (NodeId(0), NodeId(127));
        let t0 = direct_time(&m, src, dst);
        let first_link = m.route_resources(src, dst)[0];
        let plan = FaultPlan::new().fail_link(0.5 * t0, first_link);
        let policy = RetryPolicy { max_attempts: 3, ..Default::default() };
        let out = run_resilient(&m, &plan, &policy, src, RETRY_BYTES, |p, ctx| {
            // A planner that refuses to learn: always the direct route.
            let deps = ctx.gate.into_iter().collect();
            let t = p.put_after(src, dst, ctx.bytes, deps, 0.0);
            TransferHandle { tokens: vec![t], bytes: ctx.bytes }
        });
        assert!(!out.delivered);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.completion_time, f64::INFINITY);
        assert_eq!(out.bytes_delivered, 0);
    }

    #[test]
    fn replanning_around_a_dead_link_succeeds() {
        let m = machine();
        let (src, dst) = (NodeId(0), NodeId(127));
        let t0 = direct_time(&m, src, dst);
        let first_link = m.route_resources(src, dst)[0];
        let plan = FaultPlan::new().fail_link(0.5 * t0, first_link);
        let out = run_resilient(
            &m,
            &plan,
            &RetryPolicy::default(),
            src,
            RETRY_BYTES,
            |p, ctx| {
                let deps: Vec<_> = ctx.gate.into_iter().collect();
                if ctx.health.is_healthy() {
                    // Nothing failed yet as far as the planner knows.
                    let t = p.put_after(src, dst, ctx.bytes, deps, 0.0);
                    return TransferHandle { tokens: vec![t], bytes: ctx.bytes };
                }
                // Detour through a node whose two-leg path avoids every
                // dead link.
                let dead: Vec<_> = ctx
                    .health
                    .dead_links
                    .iter()
                    .map(|l| p.machine().torus_resource(*l))
                    .collect();
                let via = (1..m.num_nodes())
                    .map(NodeId)
                    .find(|&v| {
                        v != src
                            && v != dst
                            && !m
                                .route_resources(src, v)
                                .iter()
                                .chain(m.route_resources(v, dst).iter())
                                .any(|r| dead.contains(r))
                    })
                    .expect("a detour must exist");
                let leg1 = p.put_after(src, via, ctx.bytes, deps, 0.0);
                let leg2 = p.put_after(via, dst, ctx.bytes, vec![leg1], 0.0);
                TransferHandle { tokens: vec![leg2], bytes: ctx.bytes }
            },
        );
        assert!(out.delivered, "re-plan must route around the dead link");
        assert_eq!(out.attempts, 2);
        assert!(out.completion_time.is_finite() && out.completion_time > t0);
        assert_eq!(out.bytes_delivered, RETRY_BYTES);
    }

    #[test]
    fn observed_retry_loop_fills_the_registry() {
        let m = machine();
        let (src, dst) = (NodeId(0), NodeId(127));
        let t0 = direct_time(&m, src, dst);
        let first_link = m.route_resources(src, dst)[0];
        let plan = FaultPlan::new().fail_link(0.5 * t0, first_link);
        let policy = RetryPolicy { max_attempts: 2, ..Default::default() };
        let reg = MetricsRegistry::new();
        let out = run_resilient_observed(&m, &plan, &policy, src, RETRY_BYTES, Some(&reg), |p, ctx| {
            let deps = ctx.gate.into_iter().collect();
            let t = p.put_after(src, dst, ctx.bytes, deps, 0.0);
            TransferHandle { tokens: vec![t], bytes: ctx.bytes }
        });
        assert!(!out.delivered, "fixed route cannot dodge a permanent fault");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("comm.resilient.attempts"), Some(2));
        assert_eq!(snap.counter("comm.resilient.retries"), Some(1));
        assert_eq!(snap.counter("comm.resilient.failures"), Some(1));
        // The second attempt saw the dead link in its health snapshot.
        assert_eq!(snap.counter("comm.resilient.dead_links_seen"), Some(1));
        // The final attempt's put (plus its gate edge) never delivered.
        assert!(snap.counter("comm.transfers_undelivered").unwrap_or(0) >= 1);
    }

    #[test]
    fn observed_program_run_matches_plain_run() {
        let m = machine();
        let mut p = Program::new(&m);
        let t = p.put(NodeId(0), NodeId(127), 1 << 20);
        let plain = p.run();
        let mut obs = bgq_netsim::SimObserver::new();
        let watched = p.run_observed(&FaultPlan::new(), &mut obs);
        assert_eq!(
            plain.delivered_at(t).to_bits(),
            watched.delivered_at(t).to_bits()
        );
        assert!(obs.waterfill_runs > 0);
        assert!(!obs.heatmap.is_empty());
        assert_eq!(obs.transfers_undelivered, 0);
    }

    #[test]
    fn transient_fault_heals_within_one_attempt() {
        let m = machine();
        let (src, dst) = (NodeId(0), NodeId(127));
        let t0 = direct_time(&m, src, dst);
        let first_link = m.route_resources(src, dst)[0];
        let plan = FaultPlan::new()
            .fail_link(0.5 * t0, first_link)
            .restore_link(0.6 * t0, first_link);
        let out = run_resilient(
            &m,
            &plan,
            &RetryPolicy::default(),
            src,
            RETRY_BYTES,
            |p, ctx| {
                let deps = ctx.gate.into_iter().collect();
                let t = p.put_after(src, dst, ctx.bytes, deps, 0.0);
                TransferHandle { tokens: vec![t], bytes: ctx.bytes }
            },
        );
        assert!(out.delivered, "the engine itself rides out transient faults");
        assert_eq!(out.attempts, 1, "no retry needed");
        assert!(out.completion_time > t0, "but the outage cost time");
    }
}
