//! Program builder: an MPI-like one-sided API over the transfer graph.
//!
//! A [`Program`] accumulates RDMA puts, I/O-link forwards and
//! synchronization edges against a [`Machine`], then executes them on the
//! simulator. Dependencies between transfers express completion semantics
//! (`MPI_Win` epochs, store-and-forward hand-offs) explicitly.

use crate::machine::Machine;
use bgq_netsim::{SimReport, TransferGraph, TransferId, TransferSpec};
use bgq_torus::NodeId;

/// Handle to one logical (possibly multi-transfer) operation: the delivery
/// tokens whose completion means every byte has arrived, plus the logical
/// byte count for throughput accounting.
#[derive(Debug, Clone)]
pub struct TransferHandle {
    pub tokens: Vec<TransferId>,
    pub bytes: u64,
}

impl TransferHandle {
    /// Completion time of the logical operation in a report.
    pub fn completed_at(&self, report: &SimReport) -> f64 {
        report.last_delivery(&self.tokens)
    }

    /// Achieved throughput (bytes over completion time, program start at 0).
    pub fn throughput(&self, report: &SimReport) -> f64 {
        let t = self.completed_at(report);
        if t > 0.0 {
            self.bytes as f64 / t
        } else {
            0.0
        }
    }
}

/// A communication program under construction.
#[derive(Debug)]
pub struct Program<'m> {
    machine: &'m Machine,
    graph: TransferGraph,
}

impl<'m> Program<'m> {
    pub fn new(machine: &'m Machine) -> Program<'m> {
        Program {
            machine,
            graph: TransferGraph::new(),
        }
    }

    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    pub fn graph(&self) -> &TransferGraph {
        &self.graph
    }

    pub fn into_graph(self) -> TransferGraph {
        self.graph
    }

    /// Number of transfers added so far.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// One-sided put from `src` to `dst` over the deterministic torus route.
    pub fn put(&mut self, src: NodeId, dst: NodeId, bytes: u64) -> TransferId {
        self.put_after(src, dst, bytes, Vec::new(), 0.0)
    }

    /// Put that starts only after `deps` are delivered, plus `delay`
    /// seconds of software overhead.
    pub fn put_after(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let route = self.machine.route_resources(src, dst);
        self.graph.add(
            TransferSpec::new(src.0, dst.0, bytes, route)
                .after(deps)
                .with_delay(delay),
        )
    }

    /// Put tagged for later correlation in reports.
    pub fn put_tagged(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> TransferId {
        let route = self.machine.route_resources(src, dst);
        self.graph
            .add(TransferSpec::new(src.0, dst.0, bytes, route).with_tag(tag))
    }

    /// Add a raw transfer spec (escape hatch for custom routes).
    pub fn add_spec(&mut self, spec: TransferSpec) -> TransferId {
        self.graph.add(spec)
    }

    /// Forward `bytes` from a bridge node to its I/O node over the
    /// eleventh link.
    ///
    /// # Panics
    /// Panics if `bridge` is not a bridge node.
    pub fn ion_forward(
        &mut self,
        bridge: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let io = self.machine.io_layout();
        let ion = io.default_ion(bridge);
        let res = self.machine.io_resource(bridge);
        let cap = self.machine.config().io_link_bandwidth;
        self.graph.add(
            TransferSpec::new(bridge.0, self.machine.ion_sim_node(ion), bytes, vec![res])
                .after(deps)
                .with_delay(delay)
                // The eleventh link is a dedicated point-to-point channel:
                // a single forward can use its full bandwidth.
                .with_rate_cap(cap),
        )
    }

    /// Write `bytes` from a compute node to its default I/O node along the
    /// default path: torus hop(s) to the node's default bridge, then the
    /// eleventh link, store-and-forward at the bridge.
    ///
    /// Returns the ION-side delivery token.
    pub fn write_default(
        &mut self,
        node: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
    ) -> TransferId {
        let io = self.machine.io_layout();
        let bridge = io.default_bridge(node);
        let fwd = self.machine.config().forward_overhead;
        if bridge == node {
            self.ion_forward(node, bytes, deps, 0.0)
        } else {
            let to_bridge = self.put_after(node, bridge, bytes, deps, 0.0);
            self.ion_forward(bridge, bytes, vec![to_bridge], fwd)
        }
    }

    /// Fetch `bytes` from an I/O node down to a bridge node over the
    /// inbound direction of the eleventh link (collective reads /
    /// restart).
    ///
    /// # Panics
    /// Panics if `bridge` is not a bridge node.
    pub fn ion_read(
        &mut self,
        bridge: NodeId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let io = self.machine.io_layout();
        let ion = io.default_ion(bridge);
        let res = self.machine.io_in_resource(bridge);
        let cap = self.machine.config().io_link_bandwidth;
        self.graph.add(
            TransferSpec::new(self.machine.ion_sim_node(ion), bridge.0, bytes, vec![res])
                .after(deps)
                .with_delay(delay)
                .with_rate_cap(cap),
        )
    }

    /// Forward `bytes` from an I/O node to the file servers, over the
    /// ION's InfiniBand link and the shared file-server ingest.
    ///
    /// # Panics
    /// Panics if the machine has no filesystem attached.
    pub fn fs_write(
        &mut self,
        ion: bgq_torus::IonId,
        bytes: u64,
        deps: Vec<TransferId>,
        delay: f64,
    ) -> TransferId {
        let m = self.machine;
        let route = vec![m.fs_ion_resource(ion), m.fs_aggregate_resource()];
        let cap = m.fs().expect("no filesystem attached").per_ion_bandwidth;
        self.graph.add(
            TransferSpec::new(m.ion_sim_node(ion), m.fs_sim_node(), bytes, route)
                .after(deps)
                .with_delay(delay)
                .with_rate_cap(cap),
        )
    }

    /// A pure synchronization point on `node`: delivered `cost` seconds
    /// after `deps` complete. Used to model collective operations whose
    /// full message schedule is not worth simulating (cost from
    /// [`crate::collectives::CollectiveModel`]).
    pub fn modeled_sync(
        &mut self,
        node: NodeId,
        cost: f64,
        deps: Vec<TransferId>,
    ) -> TransferId {
        self.graph.add(
            TransferSpec::new(node.0, node.0, 0, Vec::new())
                .after(deps)
                .with_delay(cost),
        )
    }

    /// Execute the program on a fresh simulator.
    pub fn run(&self) -> SimReport {
        self.machine.simulator().run(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, Shape};

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn put_creates_routed_transfer() {
        let m = machine();
        let mut p = Program::new(&m);
        let t = p.put(NodeId(0), NodeId(127), 1 << 20);
        let spec = &p.graph().specs()[t.index()];
        assert_eq!(spec.src, 0);
        assert_eq!(spec.dst, 127);
        assert!(!spec.route.is_empty());
        let rep = p.run();
        assert!(rep.delivered_at(t) > 0.0);
    }

    #[test]
    fn put_throughput_plateaus_at_per_flow_cap() {
        // A very large direct put should approach the 1.6 GB/s protocol cap
        // (paper Fig. 5, "without proxies" plateau).
        let m = machine();
        let mut p = Program::new(&m);
        let bytes = 128u64 << 20;
        let t = p.put(NodeId(0), NodeId(127), bytes);
        let rep = p.run();
        let thr = bytes as f64 / rep.delivered_at(t);
        assert!(
            (1.55e9..=1.6e9).contains(&thr),
            "direct put throughput {:.3} GB/s not at cap",
            thr / 1e9
        );
    }

    #[test]
    fn write_default_reaches_the_ion() {
        let m = machine();
        let mut p = Program::new(&m);
        let t = p.write_default(NodeId(5), 1 << 20, Vec::new());
        let spec = &p.graph().specs()[t.index()];
        // Final leg lands on the ION's simulator node.
        assert_eq!(spec.dst, m.ion_sim_node(bgq_torus::IonId(0)));
        let rep = p.run();
        assert!(rep.delivered_at(t) > 0.0);
    }

    #[test]
    fn write_default_from_bridge_skips_torus() {
        let m = machine();
        let mut p = Program::new(&m);
        let bridge = m.io_layout().bridges_of_pset(bgq_torus::PsetId(0))[0];
        let t = p.write_default(bridge, 1 << 20, Vec::new());
        assert_eq!(p.len(), 1, "bridge writes need no torus leg");
        let spec = &p.graph().specs()[t.index()];
        assert_eq!(spec.route.len(), 1);
    }

    #[test]
    fn io_write_throughput_bounded_by_io_link() {
        let m = machine();
        let mut p = Program::new(&m);
        let bytes = 64u64 << 20;
        let bridge = m.io_layout().bridges_of_pset(bgq_torus::PsetId(0))[0];
        let t = p.ion_forward(bridge, bytes, Vec::new(), 0.0);
        let rep = p.run();
        let thr = bytes as f64 / rep.delivered_at(t);
        assert!(thr <= 2.0e9 * 1.001, "io link overdriven: {thr}");
        assert!(thr >= 1.9e9, "io link underdriven: {thr}");
    }

    #[test]
    fn modeled_sync_adds_cost() {
        let m = machine();
        let mut p = Program::new(&m);
        let a = p.put(NodeId(0), NodeId(1), 1024);
        let s = p.modeled_sync(NodeId(0), 0.5, vec![a]);
        let rep = p.run();
        assert!(rep.delivered_at(s) >= rep.delivered_at(a) + 0.5);
    }

    #[test]
    fn non_pset_partition_supports_compute_traffic() {
        let m = Machine::new(Shape::new(2, 2, 2, 2, 2), SimConfig::default());
        let mut p = Program::new(&m);
        let t = p.put(NodeId(0), NodeId(31), 4096);
        let rep = p.run();
        assert!(rep.delivered_at(t) > 0.0);
    }
}
