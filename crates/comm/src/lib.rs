//! # bgq-comm
//!
//! The MPI-like communication layer of the BG/Q reproduction stack. Binds
//! the `bgq-torus` topology to the `bgq-netsim` flow simulator:
//!
//! * [`Machine`] — a partition with capacities, deterministic routing and
//!   the pset/bridge/ION resource map;
//! * [`Program`] — a builder for one-sided puts, I/O forwards and
//!   synchronization edges, executable on the simulator;
//! * [`collectives`] — analytic collective cost models plus scheduled
//!   (message-accurate) barrier/broadcast/reduce algorithms;
//! * [`exchange`] — sparse neighborhood exchange send maps and modeled
//!   consensus discovery (batch routing lives upstream in `sdm-core`).

pub mod collectives;
pub mod exchange;
pub mod health;
pub mod machine;
pub mod program;
pub mod scheduled;
pub mod subcomm;

pub use collectives::{
    binomial_bcast, binomial_reduce, dissemination_barrier, CollectiveModel,
    CONTROL_MSG_BYTES,
};
pub use exchange::{consensus_discovery, Discovery, SparseSendMap};
pub use health::HealthMask;
pub use machine::{FsParams, Machine, MachineError};
pub use program::{
    run_resilient, run_resilient_observed, Program, ReplanContext, ResilientOutcome, RetryPolicy,
    TransferHandle,
};
pub use scheduled::{binomial_scatter, pairwise_alltoall, ring_allgather};
pub use subcomm::SubComm;
