//! Sub-communicators over node sets.
//!
//! Algorithm 2's Init "can create a subcomm using `MPI_Comm_create` for
//! each sub-network and select the MPI rank 0 of the subcomm as the
//! aggregator" (paper §IV.D). A [`SubComm`] is exactly that: an ordered
//! subset of nodes with local ranks, usable as the participant list of
//! any scheduled collective.

use crate::collectives::CollectiveModel;
use bgq_torus::NodeId;
use std::collections::HashMap;

/// An ordered subset of compute nodes with dense local ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubComm {
    members: Vec<NodeId>,
    index: HashMap<NodeId, u32>,
}

impl SubComm {
    /// Build a sub-communicator from an ordered member list.
    ///
    /// # Panics
    /// Panics on duplicates or an empty list.
    pub fn new(members: Vec<NodeId>) -> SubComm {
        assert!(!members.is_empty(), "a communicator needs members");
        let mut index = HashMap::with_capacity(members.len());
        for (i, &n) in members.iter().enumerate() {
            let prev = index.insert(n, i as u32);
            assert!(prev.is_none(), "duplicate member {n}");
        }
        SubComm { members, index }
    }

    /// Split a node set into sub-communicators by a color function (the
    /// `MPI_Comm_split` pattern). Returns the communicators ordered by
    /// color; members keep their relative order.
    pub fn split(nodes: &[NodeId], color: impl Fn(NodeId) -> u32) -> Vec<SubComm> {
        let mut buckets: Vec<(u32, Vec<NodeId>)> = Vec::new();
        for &n in nodes {
            let c = color(n);
            match buckets.iter_mut().find(|(bc, _)| *bc == c) {
                Some((_, v)) => v.push(n),
                None => buckets.push((c, vec![n])),
            }
        }
        buckets.sort_by_key(|(c, _)| *c);
        buckets
            .into_iter()
            .map(|(_, v)| SubComm::new(v))
            .collect()
    }

    /// Number of members.
    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    /// The members in local-rank order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The root (local rank 0) — Algorithm 2's aggregator choice.
    pub fn root(&self) -> NodeId {
        self.members[0]
    }

    /// Local rank of a node, if it is a member.
    pub fn local_rank(&self, node: NodeId) -> Option<u32> {
        self.index.get(&node).copied()
    }

    /// The member at a local rank.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn member(&self, local_rank: u32) -> NodeId {
        self.members[local_rank as usize]
    }

    /// Modeled cost of a barrier over this communicator.
    pub fn barrier_cost(&self, model: &CollectiveModel<'_>) -> f64 {
        model.barrier(self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, IoLayout, PsetId};

    #[test]
    fn ranks_are_dense_and_ordered() {
        let c = SubComm::new(vec![NodeId(5), NodeId(2), NodeId(9)]);
        assert_eq!(c.size(), 3);
        assert_eq!(c.root(), NodeId(5));
        assert_eq!(c.local_rank(NodeId(2)), Some(1));
        assert_eq!(c.local_rank(NodeId(7)), None);
        assert_eq!(c.member(2), NodeId(9));
    }

    #[test]
    fn split_by_pset_reproduces_alg2_subcomms() {
        // The paper's usage: one subcomm per sub-network (pset block),
        // rank 0 of each becomes the aggregator.
        let shape = standard_shape(512).unwrap();
        let layout = IoLayout::new(shape);
        let nodes: Vec<NodeId> = shape.nodes().collect();
        let comms = SubComm::split(&nodes, |n| layout.pset_of(n).0);
        assert_eq!(comms.len(), 4);
        for (p, c) in comms.iter().enumerate() {
            assert_eq!(c.size(), 128);
            assert_eq!(c.root(), layout.pset_start(PsetId(p as u32)));
            for &m in c.members() {
                assert_eq!(layout.pset_of(m).0, p as u32);
            }
        }
    }

    #[test]
    fn split_preserves_relative_order() {
        let nodes = vec![NodeId(3), NodeId(0), NodeId(4), NodeId(1)];
        let comms = SubComm::split(&nodes, |n| n.0 % 2);
        assert_eq!(comms[0].members(), &[NodeId(0), NodeId(4)]);
        assert_eq!(comms[1].members(), &[NodeId(3), NodeId(1)]);
    }

    #[test]
    fn barrier_cost_grows_with_size() {
        let m = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        let model = CollectiveModel::new(&m);
        let small = SubComm::new((0..4).map(NodeId).collect());
        let big = SubComm::new((0..64).map(NodeId).collect());
        assert!(big.barrier_cost(&model) > small.barrier_cost(&model));
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicates_panic() {
        SubComm::new(vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_panics() {
        SubComm::new(Vec::new());
    }
}
