//! Property tests for the communication layer: collective schedules obey
//! their algebraic invariants for arbitrary participant counts.

use bgq_comm::*;
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, NodeId};
use proptest::prelude::*;

fn machine() -> Machine {
    Machine::new(standard_shape(128).unwrap(), SimConfig::default())
}

fn nodes(k: usize) -> Vec<NodeId> {
    (0..k as u32).map(NodeId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn barrier_exits_never_precede_any_entry(k in 2usize..24) {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(k);
        // Stagger entries with per-node head-start work of varying size.
        let mut entry = Vec::new();
        let mut entry_tokens = Vec::new();
        for (i, &n) in ns.iter().enumerate() {
            let t = p.put(n, NodeId((n.0 + 1) % 128), (i as u64 + 1) * 100_000);
            entry.push(vec![t]);
            entry_tokens.push(t);
        }
        let exits = dissemination_barrier(&mut p, &ns, &entry);
        let rep = p.run();
        let latest_entry = entry_tokens
            .iter()
            .map(|t| rep.delivered_at(*t))
            .fold(0.0f64, f64::max);
        for e in &exits {
            prop_assert!(
                rep.delivered_at(*e) >= latest_entry,
                "a barrier exit fired before the slowest entry"
            );
        }
    }

    #[test]
    fn bcast_respects_tree_order(k in 1usize..24, bytes in 1u64..1_000_000) {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(k);
        let tokens = binomial_bcast(&mut p, &ns, bytes, Vec::new());
        let rep = p.run();
        let t_root = rep.delivered_at(tokens[0]);
        for t in &tokens[1..] {
            prop_assert!(rep.delivered_at(*t) >= t_root);
        }
        // Volume: every non-root receives the payload exactly once.
        prop_assert_eq!(p.graph().total_bytes(), bytes * (k as u64 - 1));
    }

    #[test]
    fn reduce_volume_is_n_minus_1_blocks(k in 1usize..24, bytes in 1u64..500_000) {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(k);
        let entry = vec![Vec::new(); k];
        let done = binomial_reduce(&mut p, &ns, bytes, &entry);
        prop_assert_eq!(p.graph().total_bytes(), bytes * (k as u64 - 1));
        let rep = p.run();
        prop_assert!(rep.delivered_at(done).is_finite());
    }

    #[test]
    fn allgather_everyone_finishes_after_every_contribution(k in 2usize..12) {
        let m = machine();
        let mut p = Program::new(&m);
        let ns = nodes(k);
        let entry = vec![Vec::new(); k];
        let tokens = ring_allgather(&mut p, &ns, 10_000, &entry);
        let rep = p.run();
        // Everyone needs n-1 rounds; nobody can finish before the ring
        // has propagated at least n-1 block transfers.
        let earliest = tokens
            .iter()
            .map(|t| rep.delivered_at(*t))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(earliest > 0.0);
        prop_assert_eq!(p.graph().total_bytes(), 10_000 * (k as u64) * (k as u64 - 1));
    }

    #[test]
    fn alltoall_tokens_complete(k in 1usize..12, bytes in 1u64..100_000) {
        let m = machine();
        let mut p = Program::new(&m);
        let tokens = pairwise_alltoall(&mut p, &nodes(k), bytes);
        let rep = p.run();
        for t in &tokens {
            prop_assert!(rep.delivered_at(*t).is_finite());
        }
        prop_assert_eq!(
            p.graph().total_bytes(),
            bytes * (k as u64) * (k as u64 - 1)
        );
    }

    #[test]
    fn collective_model_is_monotone(n1 in 2u32..1000, n2 in 2u32..1000, bytes in 0u64..10_000_000) {
        let m = machine();
        let cm = CollectiveModel::new(&m);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(cm.barrier(hi) >= cm.barrier(lo));
        prop_assert!(cm.allreduce(hi, bytes) >= cm.allreduce(lo, bytes));
        prop_assert!(cm.bcast(lo, bytes + 1) >= cm.bcast(lo, bytes));
    }
}
