//! Differential tests for the sparse neighborhood exchange: the three
//! lowering algorithms must be interchangeable for *what* arrives even
//! though they differ in *when*. Each property drives the full stack —
//! pattern generator → send map → `NeighborhoodExchange` lowering →
//! flow simulation — and compares delivery byte-for-byte.
//!
//! This is a dev-only dependency cycle (bgq-comm ← sdm-core) which
//! cargo permits: the library under test is the comm-layer send map and
//! program builder, exercised through the core batch planner.

use bgq_comm::{Machine, Program, SparseSendMap};
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, LinkId, NodeId};
use bgq_workloads::{disjoint_heavy_pairs, sparse_pairs};
use proptest::prelude::*;
use sdm_core::{ExchangeAlgorithm, NeighborhoodExchange, PairRoute};
use std::collections::HashSet;

fn machine(nodes: u32) -> Machine {
    Machine::new(
        standard_shape(nodes).unwrap_or_else(|| panic!("no {nodes}-node shape")),
        SimConfig::default(),
    )
}

/// Lower `map` under `alg` on a fresh machine, simulate, and return the
/// per-pair delivered payload (all-or-nothing per pair).
fn delivered(nodes: u32, map: &SparseSendMap, alg: ExchangeAlgorithm) -> Vec<(NodeId, NodeId, u64)> {
    let m = machine(nodes);
    let ex = NeighborhoodExchange::new(&m);
    let mut prog = Program::new(&m);
    let plan = ex.plan(&mut prog, map, alg);
    let rep = prog.run();
    assert!(rep.all_delivered(), "{alg:?} left payload undelivered");
    plan.per_pair_delivered(&rep)
}

/// An exchange with nothing to say: all three lowerings must accept the
/// empty send map, produce an empty plan, claim nothing, and simulate
/// to a clean (trivially all-delivered) report.
#[test]
fn empty_send_map_lowers_cleanly_under_every_algorithm() {
    let m = machine(128);
    let map = SparseSendMap::new();
    for alg in ExchangeAlgorithm::ALL {
        let ex = NeighborhoodExchange::new(&m);
        let mut prog = Program::new(&m);
        let plan = ex.plan(&mut prog, &map, alg);
        assert!(plan.pairs.is_empty(), "{alg:?} invented pairs");
        assert_eq!(plan.total_bytes(), 0);
        assert!(
            plan.ledger.is_empty(),
            "{alg:?} claimed links for an empty exchange"
        );
        let rep = prog.run();
        assert!(rep.all_delivered(), "{alg:?}");
        assert!(plan.per_pair_delivered(&rep).is_empty());
    }
}

/// A one-pair exchange is the degenerate batch: every lowering delivers
/// that pair's exact payload, and the batch machinery (ledger, combine
/// pass) adds nothing a single point-to-point plan wouldn't.
#[test]
fn single_pair_exchange_delivers_exactly_its_payload() {
    let nodes = 128u32;
    let map = SparseSendMap::from_rank_pairs(&[(3, 67, 24 << 20)]);
    let expected = vec![(NodeId(3), NodeId(67), 24u64 << 20)];
    let baseline = delivered(nodes, &map, ExchangeAlgorithm::Direct);
    assert_eq!(baseline, expected);
    for alg in [ExchangeAlgorithm::Consensus, ExchangeAlgorithm::ProxyMultipath] {
        assert_eq!(delivered(nodes, &map, alg), expected, "{alg:?}");
    }

    // A single small pair additionally has no combining partner: it must
    // stay a plain direct put with no proxy claims beyond its own route.
    let m = machine(nodes);
    let small = SparseSendMap::from_rank_pairs(&[(3, 67, 4 << 10)]);
    let ex = NeighborhoodExchange::new(&m);
    let mut prog = Program::new(&m);
    let plan = ex.plan(&mut prog, &small, ExchangeAlgorithm::ProxyMultipath);
    assert_eq!(plan.pairs.len(), 1);
    assert_eq!(plan.pairs[0].route, PairRoute::Direct);
    assert_eq!(plan.pairs_multipath(), 0);
    let direct: HashSet<LinkId> =
        bgq_torus::route(m.shape(), NodeId(3), NodeId(67), m.zone())
            .links
            .into_iter()
            .collect();
    assert_eq!(
        plan.ledger.claimed(),
        &direct,
        "a lone small pair must claim exactly its own direct route"
    );
}

/// An all-below-threshold batch never takes a proxy path, and the
/// ledger holds nothing but the pairs' own direct routes plus the
/// store-and-forward legs of combined riders — zero spurious proxy
/// claims. Delivery stays byte-identical with the other two lowerings.
#[test]
fn all_below_threshold_batch_goes_direct_with_no_spurious_claims() {
    let nodes = 128u32;
    // Small payloads (≤ 16 KiB, far under the proxy-benefit threshold)
    // from a handful of sources, including same-source siblings so the
    // combine pass has something to look at.
    let map = SparseSendMap::from_rank_pairs(&[
        (0, 1, 8 << 10),
        (0, 3, 4 << 10),
        (0, 96, 16 << 10),
        (5, 70, 2 << 10),
        (17, 81, 1 << 10),
        (17, 110, 12 << 10),
    ]);

    let baseline = delivered(nodes, &map, ExchangeAlgorithm::Direct);
    for alg in [ExchangeAlgorithm::Consensus, ExchangeAlgorithm::ProxyMultipath] {
        assert_eq!(
            delivered(nodes, &map, alg),
            baseline,
            "{alg:?} delivery differs from direct"
        );
    }

    let m = machine(nodes);
    let ex = NeighborhoodExchange::new(&m);
    let mut prog = Program::new(&m);
    let plan = ex.plan(&mut prog, &map, ExchangeAlgorithm::ProxyMultipath);
    assert_eq!(plan.pairs_multipath(), 0, "below-threshold pairs went proxy");
    assert_eq!(
        plan.pairs_direct() + plan.pairs_carrier() + plan.pairs_combined(),
        map.len(),
        "every pair must be direct, a carrier, or combined"
    );

    // Reconstruct the only links the plan is allowed to claim: each
    // pair's own deterministic direct route, plus the carrier-dst →
    // rider-dst forward leg of every combined pair.
    let mut allowed: HashSet<LinkId> = HashSet::new();
    for &(src, dst, _) in map.pairs() {
        allowed.extend(bgq_torus::route(m.shape(), src, dst, m.zone()).links);
    }
    for p in &plan.pairs {
        if let PairRoute::Combined { via } = p.route {
            allowed.extend(bgq_torus::route(m.shape(), via, p.dst, m.zone()).links);
        }
    }
    assert_eq!(
        plan.ledger.claimed(),
        &allowed,
        "ledger must hold exactly the direct routes and forward legs"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The differential pin: for any sparse pattern, all three
    /// algorithms deliver byte-identical per-pair payloads — the full
    /// payload of every pair in the map, in map order.
    #[test]
    fn all_algorithms_deliver_byte_identical_pairs(
        fanout in 1u32..4,
        max_bytes in 1u64..(1 << 20),
        seed in any::<u64>(),
    ) {
        let nodes = 128u32;
        let map = SparseSendMap::from_rank_pairs(&sparse_pairs(nodes, fanout, max_bytes, seed));
        let expected: Vec<(NodeId, NodeId, u64)> = map.pairs().to_vec();

        let direct = delivered(nodes, &map, ExchangeAlgorithm::Direct);
        prop_assert_eq!(&direct, &expected, "direct must deliver the map verbatim");
        for alg in [ExchangeAlgorithm::Consensus, ExchangeAlgorithm::ProxyMultipath] {
            let got = delivered(nodes, &map, alg);
            prop_assert_eq!(&got, &direct, "{:?} delivery differs from direct", alg);
        }
    }

    /// Above the cost-model threshold, batch proxy multipath never loses
    /// to the all-direct baseline: the ledger either finds link-disjoint
    /// proxy paths (strictly faster) or falls back to the same direct
    /// put (identical time).
    #[test]
    fn multipath_never_loses_to_direct_above_threshold(
        stride_pow in 3u32..7,
        mib in 4u64..33,
    ) {
        let nodes = 256u32;
        let map = SparseSendMap::from_rank_pairs(&disjoint_heavy_pairs(
            nodes,
            1 << stride_pow,
            mib << 20,
        ));

        let m = machine(nodes);
        let mut results = Vec::new();
        for alg in [ExchangeAlgorithm::Direct, ExchangeAlgorithm::ProxyMultipath] {
            let ex = NeighborhoodExchange::new(&m);
            let mut prog = Program::new(&m);
            let plan = ex.plan(&mut prog, &map, alg);
            let rep = prog.run();
            prop_assert!(rep.all_delivered());
            results.push(plan.aggregate_throughput(&rep));
        }
        prop_assert!(
            results[1] >= results[0] * (1.0 - 1e-9),
            "multipath {} GB/s lost to direct {} GB/s on {} pairs of {} MiB",
            results[1] / 1e9, results[0] / 1e9, map.len(), mib
        );
    }

    /// Identical seeds give bit-identical simulation reports no matter
    /// how many OS threads race through plan + simulate concurrently:
    /// the whole pipeline is free of global mutable state.
    #[test]
    fn identical_seeds_are_bit_identical_across_thread_counts(
        seed in any::<u64>(),
    ) {
        let nodes = 128u32;
        let reports: Vec<_> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        std::thread::spawn(move || {
                            let map = SparseSendMap::from_rank_pairs(&sparse_pairs(
                                nodes, 2, 256 << 10, seed,
                            ));
                            ExchangeAlgorithm::ALL.map(|alg| {
                                let m = machine(nodes);
                                let ex = NeighborhoodExchange::new(&m);
                                let mut prog = Program::new(&m);
                                ex.plan(&mut prog, &map, alg);
                                prog.run()
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
            .collect();

        let reference = &reports[0][0];
        for per_thread_count in &reports {
            for worker in per_thread_count {
                prop_assert_eq!(
                    worker, reference,
                    "SimReports must be bit-identical across thread counts"
                );
            }
        }
    }
}
