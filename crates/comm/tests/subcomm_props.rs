//! Property tests for sub-communicators.

use bgq_comm::SubComm;
use bgq_torus::NodeId;
use proptest::prelude::*;

fn distinct_nodes() -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::btree_set(0u32..512, 1..64)
        .prop_map(|s| s.into_iter().map(NodeId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn local_ranks_are_a_bijection(nodes in distinct_nodes()) {
        let c = SubComm::new(nodes.clone());
        prop_assert_eq!(c.size() as usize, nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            prop_assert_eq!(c.local_rank(n), Some(i as u32));
            prop_assert_eq!(c.member(i as u32), n);
        }
        prop_assert_eq!(c.root(), nodes[0]);
    }

    #[test]
    fn split_partitions_exactly(nodes in distinct_nodes(), k in 1u32..8) {
        let comms = SubComm::split(&nodes, |n| n.0 % k);
        // Every node appears in exactly one communicator.
        let total: usize = comms.iter().map(|c| c.size() as usize).sum();
        prop_assert_eq!(total, nodes.len());
        for c in &comms {
            for &m in c.members() {
                prop_assert!(nodes.contains(&m));
            }
        }
        // Colors are homogeneous within each communicator.
        for c in &comms {
            let color = c.root().0 % k;
            prop_assert!(c.members().iter().all(|m| m.0 % k == color));
        }
    }

    #[test]
    fn split_by_constant_color_is_identity(nodes in distinct_nodes()) {
        let comms = SubComm::split(&nodes, |_| 7);
        prop_assert_eq!(comms.len(), 1);
        prop_assert_eq!(comms[0].members(), &nodes[..]);
    }
}
