//! Property-based tests for the §V.B pattern generators.

use bgq_workloads::{
    disjoint_heavy_pairs, pareto_sizes, sparse_pairs, sparsity_fraction, uniform_sizes,
    ParetoParams, DEFAULT_MAX_BYTES,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed ⇒ same sizes, for any rank count and ceiling.
    #[test]
    fn uniform_is_seed_deterministic(
        ranks in 0u32..2048,
        max_bytes in 1u64..(64 << 20),
        seed in any::<u64>(),
    ) {
        let a = uniform_sizes(ranks, max_bytes, seed);
        let b = uniform_sizes(ranks, max_bytes, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), ranks as usize);
        prop_assert!(a.iter().all(|&s| s <= max_bytes));
    }

    /// Same seed ⇒ same Pareto draw, and the clip ceiling holds.
    #[test]
    fn pareto_is_seed_deterministic(
        ranks in 0u32..2048,
        zero_fraction in 0.0f64..1.0,
        alpha in 0.5f64..3.0,
        seed in any::<u64>(),
    ) {
        let params = ParetoParams { zero_fraction, alpha, ..ParetoParams::default() };
        let a = pareto_sizes(ranks, &params, seed);
        let b = pareto_sizes(ranks, &params, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&s| s <= params.max_bytes));
    }

    /// A different seed changes *something* once there are enough ranks
    /// for a collision to be astronomically unlikely.
    #[test]
    fn distinct_seeds_diverge(seed in any::<u64>()) {
        let a = uniform_sizes(256, DEFAULT_MAX_BYTES, seed);
        let b = uniform_sizes(256, DEFAULT_MAX_BYTES, seed.wrapping_add(1));
        prop_assert_ne!(a, b);
    }

    /// `sparsity_fraction` is monotone non-increasing in the dense
    /// threshold: calling the dense baseline bigger can only make any
    /// fixed pattern look sparser.
    #[test]
    fn sparsity_fraction_is_monotone_in_dense_threshold(
        sizes in proptest::collection::vec(0u64..(8 << 20), 1..256),
        dense_lo in 1u64..(8 << 20),
        bump in 1u64..(8 << 20),
    ) {
        let dense_hi = dense_lo + bump;
        let lo = sparsity_fraction(&sizes, dense_lo);
        let hi = sparsity_fraction(&sizes, dense_hi);
        prop_assert!(hi <= lo, "fraction rose from {lo} to {hi} as dense grew");
    }

    /// The exchange pair generator is seed-deterministic and well-formed:
    /// exact fanout per source, no self-sends, no duplicate peers, sizes
    /// in range.
    #[test]
    fn sparse_pairs_are_seed_deterministic_and_well_formed(
        ranks in 2u32..256,
        fanout_frac in 0u32..4,
        seed in any::<u64>(),
    ) {
        let fanout = fanout_frac.min(ranks - 1);
        let a = sparse_pairs(ranks, fanout, DEFAULT_MAX_BYTES, seed);
        prop_assert_eq!(&a, &sparse_pairs(ranks, fanout, DEFAULT_MAX_BYTES, seed));
        prop_assert_eq!(a.len(), (ranks * fanout) as usize);
        for src in 0..ranks {
            let peers: Vec<u32> = a.iter()
                .filter(|&&(s, _, _)| s == src)
                .map(|&(_, d, _)| d)
                .collect();
            prop_assert_eq!(peers.len(), fanout as usize);
            let mut dedup = peers.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), peers.len());
            prop_assert!(!peers.contains(&src));
        }
        prop_assert!(a.iter().all(|&(_, _, b)| (1..=DEFAULT_MAX_BYTES).contains(&b)));
    }

    /// The disjoint-heavy pattern is antipodal by construction.
    #[test]
    fn disjoint_heavy_pairs_are_antipodal(
        half in 1u32..4096,
        stride in 1u32..512,
        bytes in 1u64..(64 << 20),
    ) {
        let ranks = half * 2;
        let pairs = disjoint_heavy_pairs(ranks, stride, bytes);
        prop_assert_eq!(pairs.len(), half.div_ceil(stride) as usize);
        for &(s, d, b) in &pairs {
            prop_assert_eq!(d, s + half);
            prop_assert_eq!(b, bytes);
            prop_assert_eq!(s % stride, 0);
        }
    }
}
