//! The paper's two sparse data patterns (§V.B, Figures 8 and 9).
//!
//! * **Pattern 1 — uniform**: every rank's data size is drawn uniformly
//!   from `[0, 8 MB]`; the total is ≈50% of the dense volume. (The paper
//!   seeds C's `rand()` with `time(NULL)`; we use an explicit seed for
//!   reproducibility.)
//! * **Pattern 2 — Pareto**: most ranks hold (almost) no data while a few
//!   hold up to 8 MB; the total is ≈20% of the dense volume. Modelled as a
//!   zero-inflated Pareto distribution clipped at the maximum, sampled by
//!   inverse transform (no extra crates needed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default per-rank maximum (and dense size): 8 MB.
pub const DEFAULT_MAX_BYTES: u64 = 8 << 20;

/// Pattern 1: uniform sizes in `[0, max_bytes]`, one per rank.
pub fn uniform_sizes(num_ranks: u32, max_bytes: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_ranks)
        .map(|_| rng.gen_range(0..=max_bytes))
        .collect()
}

/// Parameters of the zero-inflated, clipped Pareto of pattern 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoParams {
    /// Fraction of ranks with exactly zero bytes.
    pub zero_fraction: f64,
    /// Pareto scale (minimum nonzero value), bytes.
    pub scale: f64,
    /// Pareto shape `α`.
    pub alpha: f64,
    /// Clip ceiling, bytes (the paper's 8 MB).
    pub max_bytes: u64,
}

impl Default for ParetoParams {
    /// Calibrated so the expected total is ≈20% of the dense volume
    /// (`0.7 · x_m (1 + ln(M/x_m)) ≈ 1.6 MB` for `α = 1`, `M = 8 MB`).
    fn default() -> Self {
        ParetoParams {
            zero_fraction: 0.3,
            scale: 0.65 * 1024.0 * 1024.0,
            alpha: 1.0,
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }
}

/// Pattern 2: zero-inflated clipped Pareto sizes, one per rank.
pub fn pareto_sizes(num_ranks: u32, params: &ParetoParams, seed: u64) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&params.zero_fraction));
    assert!(params.scale > 0.0 && params.alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_ranks)
        .map(|_| {
            if rng.gen::<f64>() < params.zero_fraction {
                0
            } else {
                // Inverse transform: X = scale / U^(1/alpha).
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let x = params.scale / u.powf(1.0 / params.alpha);
                (x as u64).min(params.max_bytes)
            }
        })
        .collect()
}

/// Dense baseline: every rank holds exactly `bytes`.
pub fn dense_sizes(num_ranks: u32, bytes: u64) -> Vec<u64> {
    vec![bytes; num_ranks as usize]
}

/// A histogram of per-rank sizes with fixed-width bins (Figures 8 and 9).
#[derive(Debug, Clone)]
pub struct Histogram {
    pub bin_width: u64,
    /// `counts[i]` is the number of ranks whose size falls in
    /// `[i * bin_width, (i+1) * bin_width)`.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram covering all of `sizes`.
    ///
    /// # Panics
    /// Panics if `bin_width` is zero.
    pub fn build(sizes: &[u64], bin_width: u64) -> Histogram {
        assert!(bin_width > 0, "bin width must be positive");
        let max = sizes.iter().copied().max().unwrap_or(0);
        let nbins = (max / bin_width + 1) as usize;
        let mut counts = vec![0u64; nbins];
        for &s in sizes {
            counts[(s / bin_width) as usize] += 1;
        }
        Histogram { bin_width, counts }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Rows of `(bin start, bin end, count)` for printing.
    pub fn rows(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bin_width, (i as u64 + 1) * self.bin_width, c))
    }
}

/// Sparsity report: what fraction of the dense volume a pattern reaches.
pub fn sparsity_fraction(sizes: &[u64], dense_per_rank: u64) -> f64 {
    if sizes.is_empty() || dense_per_rank == 0 {
        return 0.0;
    }
    let total: u64 = sizes.iter().sum();
    total as f64 / (dense_per_rank * sizes.len() as u64) as f64
}

/// A sparse neighborhood pattern for an exchange: every rank sends to
/// `fanout` distinct pseudo-random peers, sizes uniform in
/// `[1, max_bytes]`. Seed-deterministic; peers are emitted in draw order
/// so the triple list is reproducible byte for byte.
pub fn sparse_pairs(
    num_ranks: u32,
    fanout: u32,
    max_bytes: u64,
    seed: u64,
) -> Vec<(u32, u32, u64)> {
    assert!(max_bytes > 0, "messages need at least one byte");
    assert!(
        fanout < num_ranks || num_ranks == 0,
        "fanout {fanout} needs at least {} ranks",
        fanout + 1
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(num_ranks as usize * fanout as usize);
    for src in 0..num_ranks {
        let mut peers: Vec<u32> = Vec::with_capacity(fanout as usize);
        while (peers.len() as u32) < fanout {
            let dst = rng.gen_range(0..num_ranks);
            if dst != src && !peers.contains(&dst) {
                peers.push(dst);
            }
        }
        for dst in peers {
            pairs.push((src, dst, rng.gen_range(1..=max_bytes)));
        }
    }
    pairs
}

/// The disjoint-heavy pattern of the exchange benchmark: antipodal pairs
/// `i → i + num_ranks/2` at every `stride`-th source, all carrying
/// `bytes`. The deterministic routes of distinct pairs are link-disjoint
/// (parallel translates across the torus), so this is the pattern where
/// batch proxy multipath has the most spare capacity to win with.
pub fn disjoint_heavy_pairs(num_ranks: u32, stride: u32, bytes: u64) -> Vec<(u32, u32, u64)> {
    assert!(stride > 0, "stride must be positive");
    assert!(
        num_ranks.is_multiple_of(2),
        "antipodal pairs need an even rank count"
    );
    let half = num_ranks / 2;
    (0..half)
        .step_by(stride as usize)
        .map(|i| (i, i + half, bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_half_dense_on_average() {
        let sizes = uniform_sizes(16384, DEFAULT_MAX_BYTES, 42);
        let frac = sparsity_fraction(&sizes, DEFAULT_MAX_BYTES);
        assert!(
            (0.48..=0.52).contains(&frac),
            "pattern 1 should be ~50% of dense, got {frac}"
        );
        assert!(sizes.iter().all(|&s| s <= DEFAULT_MAX_BYTES));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(
            uniform_sizes(100, DEFAULT_MAX_BYTES, 7),
            uniform_sizes(100, DEFAULT_MAX_BYTES, 7)
        );
        assert_ne!(
            uniform_sizes(100, DEFAULT_MAX_BYTES, 7),
            uniform_sizes(100, DEFAULT_MAX_BYTES, 8)
        );
    }

    #[test]
    fn pareto_is_about_fifth_of_dense() {
        let sizes = pareto_sizes(16384, &ParetoParams::default(), 42);
        let frac = sparsity_fraction(&sizes, DEFAULT_MAX_BYTES);
        assert!(
            (0.15..=0.25).contains(&frac),
            "pattern 2 should be ~20% of dense, got {frac}"
        );
    }

    #[test]
    fn pareto_shape_matches_fig9() {
        // Many ranks at (almost) zero, a visible spike at the 8 MB cap.
        let sizes = pareto_sizes(16384, &ParetoParams::default(), 1);
        let zeros = sizes.iter().filter(|&&s| s == 0).count() as f64 / 16384.0;
        assert!((0.25..=0.35).contains(&zeros), "zero fraction {zeros}");
        let capped = sizes
            .iter()
            .filter(|&&s| s == DEFAULT_MAX_BYTES)
            .count() as f64
            / 16384.0;
        assert!(capped > 0.02, "expect a spike at the cap, got {capped}");
        let small = sizes
            .iter()
            .filter(|&&s| s < DEFAULT_MAX_BYTES / 8)
            .count() as f64
            / 16384.0;
        assert!(small > 0.5, "most ranks should hold little data: {small}");
    }

    #[test]
    fn dense_is_flat() {
        let sizes = dense_sizes(64, 1024);
        assert!(sizes.iter().all(|&s| s == 1024));
        assert_eq!(sparsity_fraction(&sizes, 1024), 1.0);
    }

    #[test]
    fn histogram_partitions_all_samples() {
        let sizes = uniform_sizes(4096, DEFAULT_MAX_BYTES, 3);
        let h = Histogram::build(&sizes, 1 << 20);
        assert_eq!(h.total(), 4096);
        // Uniform data: bins should be roughly flat (within 4x of mean).
        let full_bins = &h.counts[..8];
        let mean = 4096.0 / full_bins.len() as f64;
        for &c in full_bins {
            assert!(
                (c as f64) > mean / 4.0 && (c as f64) < mean * 4.0,
                "bin count {c} too far from uniform mean {mean}"
            );
        }
    }

    #[test]
    fn histogram_rows_cover_range() {
        let h = Histogram::build(&[0, 100, 250, 999], 100);
        let rows: Vec<_> = h.rows().collect();
        assert_eq!(rows[0], (0, 100, 1));
        assert_eq!(rows[1], (100, 200, 1));
        assert_eq!(rows[2], (200, 300, 1));
        assert_eq!(rows[9], (900, 1000, 1));
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_eq!(Histogram::build(&[], 10).total(), 0);
        assert_eq!(sparsity_fraction(&[], 100), 0.0);
        assert!(uniform_sizes(0, 100, 1).is_empty());
        assert!(sparse_pairs(0, 0, 100, 1).is_empty());
    }

    #[test]
    fn sparse_pairs_respect_fanout_and_avoid_self_sends() {
        let pairs = sparse_pairs(64, 4, 1 << 20, 9);
        assert_eq!(pairs.len(), 64 * 4);
        for src in 0..64u32 {
            let peers: Vec<u32> = pairs
                .iter()
                .filter(|&&(s, _, _)| s == src)
                .map(|&(_, d, _)| d)
                .collect();
            assert_eq!(peers.len(), 4);
            let dedup: std::collections::HashSet<u32> = peers.iter().copied().collect();
            assert_eq!(dedup.len(), 4, "peers must be distinct");
            assert!(!dedup.contains(&src), "no self-sends");
        }
        assert!(pairs.iter().all(|&(_, _, b)| (1..=1 << 20).contains(&b)));
        assert_eq!(pairs, sparse_pairs(64, 4, 1 << 20, 9));
        assert_ne!(pairs, sparse_pairs(64, 4, 1 << 20, 10));
    }

    #[test]
    fn disjoint_heavy_is_antipodal_at_the_stride() {
        let pairs = disjoint_heavy_pairs(4096, 256, 32 << 20);
        assert_eq!(pairs.len(), 8);
        for &(s, d, b) in &pairs {
            assert_eq!(d, s + 2048);
            assert_eq!(b, 32 << 20);
            assert_eq!(s % 256, 0);
        }
    }
}
