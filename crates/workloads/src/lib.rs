//! # bgq-workloads
//!
//! Workload generators for the sparse-data-movement experiments of Bui et
//! al. (ICPP 2014):
//!
//! * [`patterns`] — the §V.B microbenchmark patterns: pattern 1 (uniform
//!   sizes, ≈50% of dense; Fig. 8), pattern 2 (zero-inflated Pareto, ≈20%
//!   of dense; Fig. 9), the dense baseline, and histograms;
//! * [`hacc`] — the §VI HACC I/O footprint (10% of generated data written
//!   by ranks in `[0.4N, 0.5N)`);
//! * [`nodes`] — coalescing per-rank volumes to per-node volumes under a
//!   rank mapping.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use bgq_workloads::{pareto_sizes, sparsity_fraction, ParetoParams};
//! let sizes = pareto_sizes(1024, &ParetoParams::default(), 42);
//! let frac = sparsity_fraction(&sizes, 8 << 20);
//! assert!(frac > 0.1 && frac < 0.3); // pattern 2 is ~20% of dense
//! ```

pub mod coupled;
pub mod hacc;
pub mod nodes;
pub mod patterns;
pub mod roi;

pub use coupled::{coupling_bytes, coupling_pairs, partition_modules, ModuleLayout};
pub use hacc::{hacc_sizes, hacc_workload, total_write_bytes, writer_range, PARTICLE_BYTES};
pub use nodes::{coalesce_to_nodes, nonzero_nodes};
pub use patterns::{
    dense_sizes, disjoint_heavy_pairs, pareto_sizes, sparse_pairs, sparsity_fraction,
    uniform_sizes, Histogram, ParetoParams, DEFAULT_MAX_BYTES,
};
pub use roi::{centered_roi_sizes, random_regions, region_sizes, Region};
