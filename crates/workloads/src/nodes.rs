//! Rank-level to node-level workload coalescing.
//!
//! The simulator moves data between *nodes*; workloads are defined per
//! *rank* (16 ranks per node on Mira). Ranks on the same node share the
//! node's injection hardware, so for transfer planning their volumes
//! coalesce into a single per-node volume — exactly what the MPI-IO layers
//! on BG/Q do before data leaves a node.

use bgq_torus::{NodeId, RankMap};

/// Sum per-rank sizes into per-node volumes (ordered by node id; nodes
/// with zero bytes are included so callers can see the full distribution).
///
/// # Panics
/// Panics if `rank_sizes` does not have exactly one entry per rank.
pub fn coalesce_to_nodes(map: &RankMap, rank_sizes: &[u64]) -> Vec<(NodeId, u64)> {
    assert_eq!(
        rank_sizes.len() as u32,
        map.num_ranks(),
        "one size per rank required"
    );
    let mut per_node = vec![0u64; map.shape().num_nodes() as usize];
    for (r, &size) in rank_sizes.iter().enumerate() {
        let node = map.node_of(bgq_torus::Rank(r as u32));
        per_node[node.index()] += size;
    }
    per_node
        .into_iter()
        .enumerate()
        .map(|(i, b)| (NodeId(i as u32), b))
        .collect()
}

/// Per-node volumes with the zero-byte nodes dropped.
pub fn nonzero_nodes(map: &RankMap, rank_sizes: &[u64]) -> Vec<(NodeId, u64)> {
    coalesce_to_nodes(map, rank_sizes)
        .into_iter()
        .filter(|&(_, b)| b > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::{standard_shape, MapOrder, RankMap};

    fn map() -> RankMap {
        RankMap::default_map(standard_shape(128).unwrap(), 16)
    }

    #[test]
    fn coalescing_conserves_bytes() {
        let m = map();
        let sizes: Vec<u64> = (0..m.num_ranks() as u64).collect();
        let nodes = coalesce_to_nodes(&m, &sizes);
        assert_eq!(nodes.len(), 128);
        let total: u64 = nodes.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, sizes.iter().sum::<u64>());
    }

    #[test]
    fn abcdet_coalesces_contiguous_ranks() {
        let m = map();
        let mut sizes = vec![0u64; m.num_ranks() as usize];
        // Ranks 0..16 live on node 0 under ABCDET.
        for s in sizes.iter_mut().take(16) {
            *s = 10;
        }
        let nodes = coalesce_to_nodes(&m, &sizes);
        assert_eq!(nodes[0], (NodeId(0), 160));
        assert!(nodes[1..].iter().all(|&(_, b)| b == 0));
    }

    #[test]
    fn tabcde_spreads_ranks() {
        let m = RankMap::new(standard_shape(128).unwrap(), 16, MapOrder::TAbcde);
        let mut sizes = vec![0u64; m.num_ranks() as usize];
        for s in sizes.iter_mut().take(128) {
            *s = 1;
        }
        let nodes = coalesce_to_nodes(&m, &sizes);
        assert!(nodes.iter().all(|&(_, b)| b == 1), "one rank per node");
    }

    #[test]
    fn nonzero_filter_drops_empty_nodes() {
        let m = map();
        let mut sizes = vec![0u64; m.num_ranks() as usize];
        sizes[100] = 5;
        let nz = nonzero_nodes(&m, &sizes);
        assert_eq!(nz.len(), 1);
        assert_eq!(nz[0].1, 5);
    }

    #[test]
    #[should_panic(expected = "one size per rank")]
    fn wrong_length_panics() {
        coalesce_to_nodes(&map(), &[1, 2, 3]);
    }
}
