//! Coupled multiphysics layouts (the paper's §I/§IV.C scenario).
//!
//! A coupled code (e.g. the Community Earth System Model the paper cites)
//! runs several physics modules on disjoint, *contiguous* partitions of
//! the machine; at coupling steps one module's boundary or field data
//! moves to another module while the rest of the machine is quiet. These
//! helpers carve a partition into contiguous module layouts and produce
//! the pairwise coupling pattern between two modules.

use bgq_torus::NodeId;
use std::ops::Range;

/// One physics module's placement: a contiguous range of node ids
/// (contiguity is the paper's §IV.C assumption, and how production
/// coupled codes map, to keep intra-module communication local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleLayout {
    pub name: String,
    pub nodes: Range<u32>,
}

impl ModuleLayout {
    pub fn len(&self) -> u32 {
        self.nodes.end - self.nodes.start
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        self.nodes.clone().map(NodeId)
    }
}

/// Split `num_nodes` among modules proportionally to `weights`,
/// contiguously and in order. Every module receives at least one node;
/// remainders go to the earliest modules.
///
/// # Panics
/// Panics if there are more modules than nodes, or no modules.
pub fn partition_modules(num_nodes: u32, weights: &[(&str, u32)]) -> Vec<ModuleLayout> {
    assert!(!weights.is_empty(), "need at least one module");
    assert!(
        weights.len() as u32 <= num_nodes,
        "more modules than nodes"
    );
    assert!(weights.iter().all(|&(_, w)| w > 0), "weights must be positive");
    let total_w: u64 = weights.iter().map(|&(_, w)| w as u64).sum();

    // Ideal shares, floored, with at least 1 node each.
    let mut sizes: Vec<u32> = weights
        .iter()
        .map(|&(_, w)| (((num_nodes as u64) * (w as u64)) / total_w).max(1) as u32)
        .collect();
    // Distribute the remainder (or claw back excess) deterministically.
    let mut assigned: i64 = sizes.iter().map(|&s| s as i64).sum();
    let mut i = 0usize;
    let n_mods = sizes.len();
    while assigned < num_nodes as i64 {
        sizes[i % n_mods] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > num_nodes as i64 {
        let j = (0..sizes.len()).max_by_key(|&j| sizes[j]).unwrap();
        assert!(sizes[j] > 1, "cannot shrink below one node per module");
        sizes[j] -= 1;
        assigned -= 1;
    }

    let mut out = Vec::with_capacity(weights.len());
    let mut start = 0u32;
    for (&(name, _), &size) in weights.iter().zip(&sizes) {
        out.push(ModuleLayout {
            name: name.to_string(),
            nodes: start..start + size,
        });
        start += size;
    }
    debug_assert_eq!(start, num_nodes);
    out
}

/// Pairwise coupling between two modules: node `i` of the smaller module
/// exchanges with node `i · ratio` of the larger (surface-to-volume style
/// striding when the modules differ in size).
pub fn coupling_pairs(a: &ModuleLayout, b: &ModuleLayout) -> Vec<(NodeId, NodeId)> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let (small, big, flip) = if a.len() <= b.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let ratio = big.len() as f64 / small.len() as f64;
    (0..small.len())
        .map(|i| {
            let j = ((i as f64 * ratio) as u32).min(big.len() - 1);
            let s = NodeId(small.nodes.start + i);
            let d = NodeId(big.nodes.start + j);
            if flip {
                (d, s)
            } else {
                (s, d)
            }
        })
        .collect()
}

/// Per-coupling-step volume for a module pair: `cells_per_node` boundary
/// cells of `bytes_per_cell` each (a simple surface-exchange model).
pub fn coupling_bytes(cells_per_node: u64, bytes_per_cell: u64) -> u64 {
    cells_per_node * bytes_per_cell
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_exact() {
        let mods = partition_modules(512, &[("atm", 2), ("ocn", 1), ("ice", 1)]);
        assert_eq!(mods.len(), 3);
        assert_eq!(mods[0].nodes, 0..256);
        assert_eq!(mods[1].nodes, 256..384);
        assert_eq!(mods[2].nodes, 384..512);
        let total: u32 = mods.iter().map(|m| m.len()).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn rounding_remainders_are_distributed() {
        let mods = partition_modules(10, &[("a", 1), ("b", 1), ("c", 1)]);
        let sizes: Vec<u32> = mods.iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)));
        // Contiguity across boundaries.
        assert_eq!(mods[0].nodes.end, mods[1].nodes.start);
        assert_eq!(mods[1].nodes.end, mods[2].nodes.start);
    }

    #[test]
    fn every_module_gets_a_node() {
        let mods = partition_modules(4, &[("a", 1000), ("b", 1), ("c", 1), ("d", 1)]);
        assert!(mods.iter().all(|m| !m.is_empty()));
        assert_eq!(mods.iter().map(|m| m.len()).sum::<u32>(), 4);
    }

    #[test]
    fn equal_modules_pair_identically() {
        let a = ModuleLayout { name: "a".into(), nodes: 0..4 };
        let b = ModuleLayout { name: "b".into(), nodes: 8..12 };
        let pairs = coupling_pairs(&a, &b);
        assert_eq!(
            pairs,
            vec![
                (NodeId(0), NodeId(8)),
                (NodeId(1), NodeId(9)),
                (NodeId(2), NodeId(10)),
                (NodeId(3), NodeId(11)),
            ]
        );
    }

    #[test]
    fn unequal_modules_stride() {
        let small = ModuleLayout { name: "s".into(), nodes: 0..2 };
        let big = ModuleLayout { name: "b".into(), nodes: 10..18 };
        let pairs = coupling_pairs(&small, &big);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (NodeId(0), NodeId(10)));
        assert_eq!(pairs[1], (NodeId(1), NodeId(14)));
        // Flipped argument order swaps the pair orientation.
        let flipped = coupling_pairs(&big, &small);
        assert_eq!(flipped[0], (NodeId(10), NodeId(0)));
    }

    #[test]
    fn coupling_volume() {
        assert_eq!(coupling_bytes(1024, 8), 8192);
    }

    #[test]
    #[should_panic(expected = "more modules than nodes")]
    fn too_many_modules_panics() {
        partition_modules(2, &[("a", 1), ("b", 1), ("c", 1)]);
    }
}
