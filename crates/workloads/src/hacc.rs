//! A HACC-like I/O workload (paper §VI).
//!
//! HACC (Hardware/Hybrid Accelerated Cosmology Code) periodically writes
//! particle data. The paper's benchmark writes **10% of the generated
//! data** — between 2 GB (8,192 cores) and 85 GB (131,072 cores) — and
//! only from the MPI ranks in the window
//! `[4·N/10, 5·N/10)` of the `N`-rank job. Only this I/O footprint matters
//! to the experiment, so we generate exactly it: a per-rank byte vector
//! that is zero outside the writer window and uniform inside it.

/// Bytes of one HACC particle record (position, velocity, potential, id,
/// mask: 9 × 4-byte fields + 2 bytes).
pub const PARTICLE_BYTES: u64 = 38;

/// Total bytes the benchmark writes at a given core count, interpolating
/// the paper's endpoints (2 GB at 8,192 cores, 85 GB at 131,072 cores)
/// with a power law: `2 GB · (cores / 8192)^1.352`.
pub fn total_write_bytes(cores: u32) -> u64 {
    assert!(cores > 0);
    let base = 2.0e9;
    let exp = (85.0f64 / 2.0).ln() / 16.0f64.ln();
    (base * (cores as f64 / 8192.0).powf(exp)) as u64
}

/// The writer window `[4N/10, 5N/10)` of the paper.
pub fn writer_range(num_ranks: u32) -> std::ops::Range<u32> {
    (4 * num_ranks / 10)..(5 * num_ranks / 10)
}

/// Per-rank write sizes for the HACC I/O benchmark: `total` bytes spread
/// evenly over the writer window (remainder to the first writers), zero
/// elsewhere.
pub fn hacc_sizes(num_ranks: u32, total: u64) -> Vec<u64> {
    let range = writer_range(num_ranks);
    let writers = (range.end - range.start).max(1) as u64;
    let base = total / writers;
    let rem = total % writers;
    (0..num_ranks)
        .map(|r| {
            if range.contains(&r) {
                let idx = (r - range.start) as u64;
                base + u64::from(idx < rem)
            } else {
                0
            }
        })
        .collect()
}

/// Convenience: the paper's configuration for a core count (10% of data,
/// writers in the 40–50% rank window).
pub fn hacc_workload(cores: u32) -> Vec<u64> {
    hacc_sizes(cores, total_write_bytes(cores))
}

/// Number of particles a given write represents.
pub fn particles_for(bytes: u64) -> u64 {
    bytes / PARTICLE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_endpoints() {
        let lo = total_write_bytes(8192);
        let hi = total_write_bytes(131072);
        assert!((1.9e9..=2.1e9).contains(&(lo as f64)), "{lo}");
        assert!((8.3e10..=8.7e10).contains(&(hi as f64)), "{hi}");
    }

    #[test]
    fn totals_grow_monotonically() {
        let mut prev = 0;
        for cores in [8192u32, 16384, 32768, 65536, 131072] {
            let t = total_write_bytes(cores);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn writers_are_the_paper_window() {
        let n = 1000;
        let r = writer_range(n);
        assert_eq!(r, 400..500);
        let sizes = hacc_sizes(n, 1_000_000);
        for (i, &s) in sizes.iter().enumerate() {
            if (400..500).contains(&(i as u32)) {
                assert!(s > 0, "writer {i} has no data");
            } else {
                assert_eq!(s, 0, "non-writer {i} has data");
            }
        }
    }

    #[test]
    fn sizes_sum_to_total_exactly() {
        for total in [0u64, 1, 999, 1_000_000, 12_345_678] {
            let sizes = hacc_sizes(1234, total);
            assert_eq!(sizes.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn exactly_ten_percent_of_ranks_write() {
        let sizes = hacc_workload(131072);
        let writers = sizes.iter().filter(|&&s| s > 0).count();
        // [4N/10, 5N/10) with integer division: 65536 - 52428 = 13108.
        assert_eq!(writers, 13108);
    }

    #[test]
    fn particle_accounting() {
        assert_eq!(particles_for(380), 10);
        assert_eq!(particles_for(0), 0);
    }
}
