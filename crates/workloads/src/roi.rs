//! Region-of-interest (ROI) patterns: sparse data concentrated on the
//! ranks whose subdomain intersects a feature of interest.
//!
//! The paper motivates pattern 2 with in-situ analyses that "write out
//! data from a region of contiguous MPI ranks while ignoring other
//! regions" and with query-driven visualization of a specific region.
//! These generators produce exactly that: one or several contiguous rank
//! windows with data, the rest empty — the intermediate case between the
//! statistical pattern 2 and the HACC writer window.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One contiguous window of ranks holding data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First rank of the region.
    pub start: u32,
    /// Number of ranks in the region.
    pub len: u32,
    /// Bytes each rank of the region holds.
    pub bytes_per_rank: u64,
}

impl Region {
    pub fn end(&self) -> u32 {
        self.start + self.len
    }

    pub fn total_bytes(&self) -> u64 {
        self.len as u64 * self.bytes_per_rank
    }
}

/// Per-rank sizes for an explicit set of regions (overlaps add up).
///
/// # Panics
/// Panics if a region extends past `num_ranks`.
pub fn region_sizes(num_ranks: u32, regions: &[Region]) -> Vec<u64> {
    let mut sizes = vec![0u64; num_ranks as usize];
    for r in regions {
        assert!(
            r.end() <= num_ranks,
            "region {}..{} exceeds {num_ranks} ranks",
            r.start,
            r.end()
        );
        for s in &mut sizes[r.start as usize..r.end() as usize] {
            *s += r.bytes_per_rank;
        }
    }
    sizes
}

/// Randomly placed regions of interest: `count` non-deterministic windows
/// each covering `region_fraction` of the job, each rank in a region
/// holding `bytes_per_rank`. Deterministic per seed.
///
/// # Panics
/// Panics if `region_fraction` is not in `(0, 1]` or `count` is zero.
pub fn random_regions(
    num_ranks: u32,
    count: u32,
    region_fraction: f64,
    bytes_per_rank: u64,
    seed: u64,
) -> Vec<Region> {
    assert!(count > 0, "need at least one region");
    assert!(
        region_fraction > 0.0 && region_fraction <= 1.0,
        "region fraction must be in (0, 1]"
    );
    let len = ((num_ranks as f64 * region_fraction) as u32).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(0..=num_ranks.saturating_sub(len));
            Region {
                start,
                len,
                bytes_per_rank,
            }
        })
        .collect()
}

/// Convenience: per-rank sizes for a single centered ROI covering
/// `fraction` of the ranks.
pub fn centered_roi_sizes(num_ranks: u32, fraction: f64, bytes_per_rank: u64) -> Vec<u64> {
    assert!(fraction > 0.0 && fraction <= 1.0);
    let len = ((num_ranks as f64 * fraction) as u32).max(1);
    let start = (num_ranks - len) / 2;
    region_sizes(
        num_ranks,
        &[Region {
            start,
            len,
            bytes_per_rank,
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_sizes_fill_exact_window() {
        let sizes = region_sizes(
            10,
            &[Region {
                start: 3,
                len: 4,
                bytes_per_rank: 7,
            }],
        );
        assert_eq!(sizes, vec![0, 0, 0, 7, 7, 7, 7, 0, 0, 0]);
    }

    #[test]
    fn overlapping_regions_accumulate() {
        let r1 = Region { start: 0, len: 4, bytes_per_rank: 5 };
        let r2 = Region { start: 2, len: 4, bytes_per_rank: 3 };
        let sizes = region_sizes(8, &[r1, r2]);
        assert_eq!(sizes, vec![5, 5, 8, 8, 3, 3, 0, 0]);
        assert_eq!(
            sizes.iter().sum::<u64>(),
            r1.total_bytes() + r2.total_bytes()
        );
    }

    #[test]
    fn random_regions_fit_and_are_deterministic() {
        let a = random_regions(1000, 5, 0.1, 1 << 20, 9);
        let b = random_regions(1000, 5, 0.1, 1 << 20, 9);
        assert_eq!(a, b);
        for r in &a {
            assert!(r.end() <= 1000);
            assert_eq!(r.len, 100);
        }
        let c = random_regions(1000, 5, 0.1, 1 << 20, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn centered_roi_is_centered() {
        let sizes = centered_roi_sizes(100, 0.2, 42);
        let first = sizes.iter().position(|&s| s > 0).unwrap();
        let last = sizes.iter().rposition(|&s| s > 0).unwrap();
        assert_eq!(last - first + 1, 20);
        assert_eq!(first, 40);
        assert_eq!(sizes.iter().filter(|&&s| s > 0).count(), 20);
    }

    #[test]
    fn tiny_fraction_still_yields_one_rank() {
        let sizes = centered_roi_sizes(10, 0.01, 1);
        assert_eq!(sizes.iter().filter(|&&s| s > 0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_range_region_panics() {
        region_sizes(5, &[Region { start: 3, len: 4, bytes_per_rank: 1 }]);
    }
}
