//! Algorithm 2: dynamic, topology-aware aggregator selection.
//!
//! For I/O, the paper introduces *aggregators*: intermediate compute nodes
//! that collect data from the (sparsely loaded) ranks and feed the I/O
//! nodes. Part I (Init) precomputes, for every candidate aggregator count
//! in `P = {1, 2, 4, …, 128}` per I/O node, a uniform placement: each pset
//! (a rectangular sub-volume of the torus) is divided along the five
//! dimensions into `na·nb·nc·nd·ne = num_agg` equal blocks and the first
//! node of each block becomes an aggregator. Part II (Redistribute)
//! reduces the total request size `T`, picks
//! `num_agg = T / S / n_io` (clamped to `P`), and sends every node's data
//! to aggregators so that all I/O nodes receive approximately equal load —
//! even IONs whose own compute nodes hold no data.

use crate::error::SdmError;
use bgq_comm::HealthMask;
use bgq_torus::{Coord, IoLayout, NodeId, PsetId, NDIMS};

/// The candidate aggregator counts per I/O node (the paper's list `P`).
pub const AGG_COUNTS: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Default minimum volume `S` handled by one aggregator (the paper leaves
/// the constant to the implementation). 64 MB keeps counts inside `P`'s
/// range across the weak-scaling study while provisioning enough
/// aggregators per ION to drive both of a pset's I/O links (one
/// aggregator per ION measurably under-uses them).
pub const DEFAULT_MIN_AGG_BYTES: u64 = 64 << 20;

/// The rectangular bounding box of a pset in torus coordinates.
///
/// For every standard partition shape, a pset (128 consecutive node ids in
/// row-major `ABCDE` order) is exactly a rectangular sub-volume; this is
/// asserted.
pub fn pset_box(layout: &IoLayout, pset: PsetId) -> (Coord, [u16; NDIMS]) {
    let shape = layout.shape();
    let mut lo = [u16::MAX; NDIMS];
    let mut hi = [0u16; NDIMS];
    for n in layout.pset_nodes(pset) {
        let c = shape.coord(n);
        for i in 0..NDIMS {
            lo[i] = lo[i].min(c.0[i]);
            hi[i] = hi[i].max(c.0[i]);
        }
    }
    let extents: [u16; NDIMS] = std::array::from_fn(|i| hi[i] - lo[i] + 1);
    let volume: u32 = extents.iter().map(|&e| e as u32).product();
    assert_eq!(
        volume,
        bgq_torus::PSET_NODES,
        "pset {pset} is not a rectangular sub-volume of {shape}",
        shape = layout.shape()
    );
    (Coord(lo), extents)
}

/// Split `num_agg` (a power of two ≤ 128) into per-dimension block factors
/// dividing `extents`, by repeatedly doubling the factor of the dimension
/// with the largest remaining quotient (ties toward `A`). This spreads the
/// aggregators as uniformly as possible over the pset volume.
pub fn block_factors(extents: [u16; NDIMS], num_agg: u32) -> [u16; NDIMS] {
    assert!(
        num_agg.is_power_of_two() && num_agg <= 128,
        "aggregator count {num_agg} not in P"
    );
    let mut factors = [1u16; NDIMS];
    let mut remaining = num_agg;
    while remaining > 1 {
        // Largest remaining quotient that is still divisible by 2.
        let mut best: Option<usize> = None;
        for i in 0..NDIMS {
            let quot = extents[i] / factors[i];
            if quot.is_multiple_of(2) && quot >= 2 {
                match best {
                    Some(b) if extents[b] / factors[b] >= quot => {}
                    _ => best = Some(i),
                }
            }
        }
        let i = best.expect("pset volume is 128 = 2^7, factors up to 128 always fit");
        factors[i] *= 2;
        remaining /= 2;
    }
    factors
}

/// Precomputed aggregator placements (Algorithm 2, part I).
///
/// ```
/// use bgq_torus::{standard_shape, IoLayout};
/// use sdm_core::AggregatorTable;
///
/// let layout = IoLayout::new(standard_shape(512).unwrap());
/// let table = AggregatorTable::precompute(&layout);
/// // A 32 GB request with the default S picks many aggregators per ION:
/// let (count, aggs) = table.select(32 << 30, sdm_core::DEFAULT_MIN_AGG_BYTES);
/// assert_eq!(aggs.len() as u32, count * layout.num_ions());
/// ```
#[derive(Debug, Clone)]
pub struct AggregatorTable {
    num_psets: u32,
    /// `placements[k][p * AGG_COUNTS[k] + j]` = j-th aggregator of pset `p`
    /// for count `AGG_COUNTS[k]`.
    placements: Vec<Vec<NodeId>>,
}

impl AggregatorTable {
    /// Precompute placements for every count in `P` (run once per job,
    /// like the paper's Init phase).
    pub fn precompute(layout: &IoLayout) -> AggregatorTable {
        let shape = *layout.shape();
        let num_psets = layout.num_psets();
        let mut placements = Vec::with_capacity(AGG_COUNTS.len());
        for &count in &AGG_COUNTS {
            let mut nodes = Vec::with_capacity((num_psets * count) as usize);
            for p in 0..num_psets {
                let (origin, extents) = pset_box(layout, PsetId(p));
                let factors = block_factors(extents, count);
                let block: [u16; NDIMS] = std::array::from_fn(|i| extents[i] / factors[i]);
                // Enumerate blocks in row-major factor order; the block's
                // first (lowest-coordinate) node is the aggregator.
                let mut idx = [0u16; NDIMS];
                loop {
                    let c = Coord(std::array::from_fn(|i| {
                        origin.0[i] + idx[i] * block[i]
                    }));
                    nodes.push(shape.node_id(c));
                    // Increment mixed-radix index.
                    let mut dim = NDIMS;
                    loop {
                        if dim == 0 {
                            break;
                        }
                        dim -= 1;
                        idx[dim] += 1;
                        if idx[dim] < factors[dim] {
                            break;
                        }
                        idx[dim] = 0;
                        if dim == 0 {
                            break;
                        }
                    }
                    if idx == [0u16; NDIMS] {
                        break;
                    }
                }
            }
            assert_eq!(nodes.len() as u32, num_psets * count);
            placements.push(nodes);
        }
        AggregatorTable {
            num_psets,
            placements,
        }
    }

    pub fn num_psets(&self) -> u32 {
        self.num_psets
    }

    /// The aggregators (across all psets) for a given per-ION count.
    ///
    /// # Panics
    /// Panics if `per_ion` is not in `P`; use
    /// [`AggregatorTable::try_aggregators`] to handle that as an
    /// [`SdmError`] instead.
    pub fn aggregators(&self, per_ion: u32) -> &[NodeId] {
        self.try_aggregators(per_ion)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AggregatorTable::aggregators`].
    pub fn try_aggregators(&self, per_ion: u32) -> Result<&[NodeId], SdmError> {
        let k = AGG_COUNTS
            .iter()
            .position(|&c| c == per_ion)
            .ok_or(SdmError::CountNotInP(per_ion))?;
        Ok(&self.placements[k])
    }

    /// Algorithm 2, part II: the per-ION aggregator count for a request of
    /// `total_bytes`, with `min_agg_bytes` per aggregator (the constant
    /// `S`). `T / S / n_io`, clamped into `P`.
    ///
    /// # Panics
    /// Panics if `min_agg_bytes` is zero; use
    /// [`AggregatorTable::try_select_count`] to handle that as an
    /// [`SdmError`] instead.
    pub fn select_count(&self, total_bytes: u64, min_agg_bytes: u64) -> u32 {
        self.try_select_count(total_bytes, min_agg_bytes)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AggregatorTable::select_count`].
    pub fn try_select_count(
        &self,
        total_bytes: u64,
        min_agg_bytes: u64,
    ) -> Result<u32, SdmError> {
        if min_agg_bytes == 0 {
            return Err(SdmError::NonPositiveMinAggBytes);
        }
        let want = total_bytes / min_agg_bytes / self.num_psets as u64;
        let mut chosen = AGG_COUNTS[0];
        for &c in &AGG_COUNTS {
            if (c as u64) <= want.max(1) {
                chosen = c;
            }
        }
        Ok(chosen)
    }

    /// Convenience: select count and return the aggregator set.
    pub fn select(&self, total_bytes: u64, min_agg_bytes: u64) -> (u32, &[NodeId]) {
        let c = self.select_count(total_bytes, min_agg_bytes);
        (c, self.aggregators(c))
    }

    /// The aggregators for `per_ion`, with nodes that are down in `health`
    /// filtered out. The survivors keep their placement order, so with a
    /// healthy mask this equals [`AggregatorTable::aggregators`].
    ///
    /// The filtered set loses the exactly-`per_ion`-per-pset property, so
    /// it pairs with [`AssignPolicy::BalancedGreedy`] (which only needs a
    /// flat set), not `PsetLocal`. Errors with
    /// [`SdmError::NoHealthyAggregators`] when nothing survives.
    pub fn try_healthy_aggregators(
        &self,
        per_ion: u32,
        health: &HealthMask,
    ) -> Result<Vec<NodeId>, SdmError> {
        let all = self.try_aggregators(per_ion)?;
        let alive: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|n| !health.down_nodes.contains(n))
            .collect();
        if alive.is_empty() {
            return Err(SdmError::NoHealthyAggregators);
        }
        Ok(alive)
    }
}

/// One chunk of data to move from a compute node to an aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    pub from: NodeId,
    pub to: NodeId,
    pub bytes: u64,
}

/// Data-to-aggregator assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignPolicy {
    /// Split each node's data into chunks and assign each chunk to the
    /// currently least-loaded aggregator (deterministic ties). This is the
    /// paper's load-balancing goal: every ION receives ≈ equal bytes.
    #[default]
    BalancedGreedy,
    /// Send each node's data to the aggregators of its own pset only
    /// (locality-first; an ablation of the balancing idea).
    PsetLocal,
}

/// Assign per-node data volumes to aggregators (Algorithm 2, part II's
/// "each node having data sends its data to its chosen aggregator(s)").
///
/// `max_chunk` bounds a single message (larger volumes are split so they
/// can spread over several aggregators).
///
/// # Panics
/// Panics on an empty aggregator set or a zero chunk size; use
/// [`try_assign_data`] to handle those as an [`SdmError`] instead.
pub fn assign_data(
    data: &[(NodeId, u64)],
    aggregators: &[NodeId],
    layout: &IoLayout,
    max_chunk: u64,
    policy: AssignPolicy,
) -> Vec<Assignment> {
    try_assign_data(data, aggregators, layout, max_chunk, policy)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`assign_data`].
pub fn try_assign_data(
    data: &[(NodeId, u64)],
    aggregators: &[NodeId],
    layout: &IoLayout,
    max_chunk: u64,
    policy: AssignPolicy,
) -> Result<Vec<Assignment>, SdmError> {
    if aggregators.is_empty() {
        return Err(SdmError::NoAggregators);
    }
    if max_chunk == 0 {
        return Err(SdmError::NonPositiveChunk);
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut out = Vec::new();
    match policy {
        AssignPolicy::BalancedGreedy => {
            // Min-heap of (load, index) over all aggregators.
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..aggregators.len() as u32)
                .map(|i| Reverse((0u64, i)))
                .collect();
            for &(node, mut bytes) in data {
                while bytes > 0 {
                    let chunk = bytes.min(max_chunk);
                    let Reverse((load, i)) = heap.pop().expect("heap never empties");
                    out.push(Assignment {
                        from: node,
                        to: aggregators[i as usize],
                        bytes: chunk,
                    });
                    heap.push(Reverse((load + chunk, i)));
                    bytes -= chunk;
                }
            }
        }
        AssignPolicy::PsetLocal => {
            // Per-pset heaps over that pset's aggregators.
            let per_pset = aggregators.len() as u32 / layout.num_psets();
            for &(node, mut bytes) in data {
                let p = layout.pset_of(node).0;
                let base = (p * per_pset) as usize;
                let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..per_pset)
                    .map(|i| Reverse((0u64, i)))
                    .collect();
                while bytes > 0 {
                    let chunk = bytes.min(max_chunk);
                    let Reverse((load, i)) = heap.pop().unwrap();
                    out.push(Assignment {
                        from: node,
                        to: aggregators[base + i as usize],
                        bytes: chunk,
                    });
                    heap.push(Reverse((load + chunk, i)));
                    bytes -= chunk;
                }
            }
        }
    }
    Ok(out)
}

/// Total bytes each aggregator receives under a set of assignments.
///
/// # Panics
/// Panics if an assignment targets a node outside `aggregators`; use
/// [`try_aggregator_loads`] to handle that as an [`SdmError`] instead.
pub fn aggregator_loads(
    assignments: &[Assignment],
    aggregators: &[NodeId],
) -> Vec<u64> {
    try_aggregator_loads(assignments, aggregators).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`aggregator_loads`].
pub fn try_aggregator_loads(
    assignments: &[Assignment],
    aggregators: &[NodeId],
) -> Result<Vec<u64>, SdmError> {
    let mut loads = vec![0u64; aggregators.len()];
    for a in assignments {
        let i = aggregators
            .iter()
            .position(|&g| g == a.to)
            .ok_or(SdmError::UnknownAggregator(a.to))?;
        loads[i] += a.bytes;
    }
    Ok(loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::standard_shape;

    fn layout(nodes: u32) -> IoLayout {
        IoLayout::new(standard_shape(nodes).unwrap())
    }

    #[test]
    fn pset_boxes_are_rectangular_for_all_standard_shapes() {
        for nodes in bgq_torus::STANDARD_SIZES {
            let l = layout(nodes);
            for p in 0..l.num_psets() {
                let (_, extents) = pset_box(&l, PsetId(p)); // asserts internally
                assert_eq!(
                    extents.iter().map(|&e| e as u32).product::<u32>(),
                    128
                );
            }
        }
    }

    #[test]
    fn block_factors_multiply_to_count_and_divide_extents() {
        let extents = [1u16, 1, 4, 16, 2];
        for &c in &AGG_COUNTS {
            let f = block_factors(extents, c);
            assert_eq!(f.iter().map(|&x| x as u32).product::<u32>(), c);
            for i in 0..NDIMS {
                assert_eq!(extents[i] % f[i], 0, "factor must divide extent");
            }
        }
    }

    #[test]
    fn table_has_unique_uniform_aggregators() {
        let l = layout(512);
        let t = AggregatorTable::precompute(&l);
        for &c in &AGG_COUNTS {
            let aggs = t.aggregators(c);
            assert_eq!(aggs.len() as u32, l.num_psets() * c);
            let mut uniq: Vec<NodeId> = aggs.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), aggs.len(), "duplicate aggregator at count {c}");
            // Each pset contributes exactly `c` aggregators from itself.
            for p in 0..l.num_psets() {
                let in_pset = aggs
                    .iter()
                    .filter(|&&a| l.pset_of(a) == PsetId(p))
                    .count() as u32;
                assert_eq!(in_pset, c, "pset {p} count {c}");
            }
        }
    }

    #[test]
    fn count_128_selects_every_node() {
        let l = layout(128);
        let t = AggregatorTable::precompute(&l);
        let mut aggs: Vec<NodeId> = t.aggregators(128).to_vec();
        aggs.sort();
        let all: Vec<NodeId> = l.shape().nodes().collect();
        assert_eq!(aggs, all);
    }

    #[test]
    fn select_count_follows_t_over_s_over_nio() {
        let l = layout(1024); // 8 psets
        let t = AggregatorTable::precompute(&l);
        let s = 256u64 << 20;
        // tiny request -> 1 aggregator per ION
        assert_eq!(t.select_count(1 << 20, s), 1);
        // T = 8 GiB over 8 IONs = 4 aggregators each
        assert_eq!(t.select_count(8 << 30, s), 4);
        // absurdly large -> clamped at 128
        assert_eq!(t.select_count(u64::MAX / 2, s), 128);
    }

    #[test]
    fn balanced_greedy_equalizes_loads() {
        let l = layout(512);
        let t = AggregatorTable::precompute(&l);
        let aggs = t.aggregators(4);
        // Very skewed data: one node holds almost everything.
        let data = vec![
            (NodeId(7), 512u64 << 20),
            (NodeId(8), 8 << 20),
            (NodeId(9), 1 << 20),
        ];
        let asg = assign_data(&data, aggs, &l, 8 << 20, AssignPolicy::BalancedGreedy);
        let total: u64 = asg.iter().map(|a| a.bytes).sum();
        assert_eq!(total, (512u64 << 20) + (8 << 20) + (1 << 20));
        let loads = aggregator_loads(&asg, aggs);
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(
            max - min <= 8 << 20,
            "greedy balance spread too wide: {min}..{max}"
        );
    }

    #[test]
    fn pset_local_keeps_data_in_pset() {
        let l = layout(512);
        let t = AggregatorTable::precompute(&l);
        let aggs = t.aggregators(2);
        let data = vec![(NodeId(5), 64u64 << 20), (NodeId(300), 64 << 20)];
        let asg = assign_data(&data, aggs, &l, 8 << 20, AssignPolicy::PsetLocal);
        for a in &asg {
            assert_eq!(l.pset_of(a.from), l.pset_of(a.to));
        }
    }

    #[test]
    fn assignments_chunked_to_max() {
        let l = layout(128);
        let t = AggregatorTable::precompute(&l);
        let aggs = t.aggregators(4);
        let asg = assign_data(
            &[(NodeId(3), 33 << 20)],
            aggs,
            &l,
            8 << 20,
            AssignPolicy::BalancedGreedy,
        );
        assert!(asg.iter().all(|a| a.bytes <= 8 << 20));
        assert_eq!(asg.iter().map(|a| a.bytes).sum::<u64>(), 33 << 20);
        assert!(asg.len() >= 5);
    }

    #[test]
    fn healthy_mask_keeps_every_aggregator() {
        let l = layout(512);
        let t = AggregatorTable::precompute(&l);
        let alive = t
            .try_healthy_aggregators(4, &HealthMask::healthy())
            .unwrap();
        assert_eq!(alive, t.aggregators(4).to_vec());
    }

    #[test]
    fn down_aggregators_are_filtered_out() {
        let l = layout(512);
        let t = AggregatorTable::precompute(&l);
        let all = t.aggregators(4);
        let mut health = HealthMask::healthy();
        health.down_nodes.insert(all[0]);
        health.down_nodes.insert(all[3]);
        let alive = t.try_healthy_aggregators(4, &health).unwrap();
        assert_eq!(alive.len(), all.len() - 2);
        assert!(alive.iter().all(|n| !health.down_nodes.contains(n)));
        // Survivors still balance a skewed request.
        let asg = assign_data(
            &[(NodeId(7), 64u64 << 20)],
            &alive,
            &l,
            8 << 20,
            AssignPolicy::BalancedGreedy,
        );
        assert_eq!(asg.iter().map(|a| a.bytes).sum::<u64>(), 64 << 20);
        assert!(asg.iter().all(|a| !health.down_nodes.contains(&a.to)));
    }

    #[test]
    fn all_aggregators_down_is_an_error() {
        let l = layout(128);
        let t = AggregatorTable::precompute(&l);
        let mut health = HealthMask::healthy();
        health.down_nodes.extend(t.aggregators(1).iter().copied());
        assert_eq!(
            t.try_healthy_aggregators(1, &health).unwrap_err(),
            SdmError::NoHealthyAggregators
        );
    }

    #[test]
    fn ion_loads_balance_even_when_data_is_concentrated() {
        // The paper's key claim: an ION whose compute nodes have no data
        // still receives ~equal load.
        let l = layout(1024); // 8 IONs
        let t = AggregatorTable::precompute(&l);
        let (_, aggs) = t.select(32 << 30, DEFAULT_MIN_AGG_BYTES);
        // All data on pset 0's nodes.
        let data: Vec<(NodeId, u64)> =
            (0..64).map(|i| (NodeId(i), 512 << 20)).collect();
        let asg = assign_data(&data, aggs, &l, 8 << 20, AssignPolicy::BalancedGreedy);
        let mut per_ion = vec![0u64; l.num_psets() as usize];
        for a in &asg {
            per_ion[l.pset_of(a.to).0 as usize] += a.bytes;
        }
        let max = *per_ion.iter().max().unwrap() as f64;
        let min = *per_ion.iter().min().unwrap() as f64;
        assert!(
            min / max > 0.9,
            "ION load imbalance: {per_ion:?}"
        );
    }
}
