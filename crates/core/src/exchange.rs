//! Sparse neighborhood exchange: batch routing of many-pair traffic.
//!
//! The paper's proxy machinery (Algorithm 1) is exercised one logical
//! pair at a time everywhere else in this workspace. A real multiphysics
//! coupling issues *many* sparse point-to-point messages in one step —
//! the sparse dynamic data exchange problem. [`NeighborhoodExchange`]
//! lowers a [`SparseSendMap`] to a transfer DAG under three
//! interchangeable algorithms:
//!
//! * [`ExchangeAlgorithm::Direct`] — one deterministic-route put per
//!   pair; the `MPI_Alltoallv`-style baseline.
//! * [`ExchangeAlgorithm::Consensus`] — the same puts, but gated behind a
//!   modeled nonblocking-consensus discovery phase
//!   ([`bgq_comm::consensus_discovery`]): nobody knows who they receive
//!   from, so everyone first pays a barrier + control-gather charge.
//! * [`ExchangeAlgorithm::ProxyMultipath`] — batch planning through
//!   [`SparseMover::plan`] with a [`LinkClaimLedger`]: every pair's
//!   deterministic direct route is claimed up front, then pairs are
//!   planned largest-first with the ledger as the planner's `avoid` set,
//!   so concurrent pairs' proxy paths stay link-disjoint across the
//!   *whole* exchange — not merely within one pair. Below-threshold
//!   pairs are message-combined (Träff-style): when one small message's
//!   route is a link-prefix of a sibling's, the shorter pair carries the
//!   longer pair's payload and its destination store-and-forwards it.
//!
//! All three deliver byte-identical per-pair payloads; they differ only
//! in *when* and *over which links* the bytes move, which is exactly what
//! the differential test layer in `crates/comm/tests/exchange.rs` pins.

use crate::planner::{Decision, PlanRequest, SparseMover};
use crate::proxy::ProxySearchConfig;
use bgq_comm::{consensus_discovery, CollectiveModel, Program, SparseSendMap, TransferHandle};
use bgq_netsim::{SimReport, TransferId};
use bgq_obs::MetricsRegistry;
use bgq_torus::{LinkId, NodeId};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// How a [`NeighborhoodExchange`] lowers the send map to transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeAlgorithm {
    /// One deterministic-route put per pair, all released at t = 0.
    Direct,
    /// Modeled nonblocking-consensus discovery (barrier + control
    /// gathers), then direct puts gated on each sender's discovery.
    Consensus,
    /// Ledger-coordinated batch planning: large pairs go proxy-multipath
    /// on links no other pair of the exchange claimed; small pairs are
    /// message-combined where routes share a prefix.
    ProxyMultipath,
}

impl ExchangeAlgorithm {
    /// All algorithms, in comparison order (the order every sweep and
    /// differential test iterates them).
    pub const ALL: [ExchangeAlgorithm; 3] = [
        ExchangeAlgorithm::Direct,
        ExchangeAlgorithm::Consensus,
        ExchangeAlgorithm::ProxyMultipath,
    ];

    /// Stable lowercase name, used in CSV columns and artifact keys.
    pub fn name(self) -> &'static str {
        match self {
            ExchangeAlgorithm::Direct => "direct",
            ExchangeAlgorithm::Consensus => "consensus",
            ExchangeAlgorithm::ProxyMultipath => "proxy_multipath",
        }
    }
}

/// The set of torus links already spoken for by earlier transfers of the
/// same exchange. Feeding it to [`PlanRequest::avoid`] keeps every proxy
/// detour link-disjoint from every other pair's traffic; claiming a
/// plan's [`links`](crate::PlanOutcome::links) back into the ledger keeps
/// the invariant inductive across the batch.
#[derive(Debug, Clone, Default)]
pub struct LinkClaimLedger {
    claimed: HashSet<LinkId>,
}

impl LinkClaimLedger {
    pub fn new() -> LinkClaimLedger {
        LinkClaimLedger::default()
    }

    /// Claim every link in `links` (idempotent per link).
    pub fn claim_all<I: IntoIterator<Item = LinkId>>(&mut self, links: I) {
        self.claimed.extend(links);
    }

    /// The claimed set, in the shape [`PlanRequest::avoid`] wants.
    pub fn claimed(&self) -> &HashSet<LinkId> {
        &self.claimed
    }

    pub fn contains(&self, link: LinkId) -> bool {
        self.claimed.contains(&link)
    }

    /// Number of distinct links claimed.
    pub fn len(&self) -> usize {
        self.claimed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.claimed.is_empty()
    }
}

/// How one pair of the exchange was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRoute {
    /// Its own deterministic direct route, payload only.
    Direct,
    /// Proxy multipath over this many link-disjoint paths.
    Multipath { paths: u32 },
    /// This pair's direct put also carries `riders` combined sibling
    /// payloads (its route is their routes' shared prefix).
    Carrier { riders: u32 },
    /// Payload rode a carrier to `via`, which store-and-forwards it the
    /// rest of the way.
    Combined { via: NodeId },
}

/// One planned pair: where its payload goes and which transfer tokens
/// must land for it to count as delivered.
#[derive(Debug, Clone)]
pub struct PlannedPair {
    pub src: NodeId,
    pub dst: NodeId,
    /// Payload bytes of this logical pair (a [`PairRoute::Carrier`]'s
    /// wire message is larger: payload + riders).
    pub bytes: u64,
    /// Tokens whose delivery completes this pair.
    pub tokens: Vec<TransferId>,
    pub route: PairRoute,
}

/// A lowered exchange: per-pair plans plus batch-level bookkeeping.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    /// Algorithm that produced the plan.
    pub algorithm: ExchangeAlgorithm,
    /// One entry per send-map pair, in map (`(src, dst)`-sorted) order.
    pub pairs: Vec<PlannedPair>,
    /// Modeled per-participant discovery latency (0 unless
    /// [`ExchangeAlgorithm::Consensus`]).
    pub discovery_cost: f64,
    /// Final link-claim ledger (empty unless
    /// [`ExchangeAlgorithm::ProxyMultipath`]).
    pub ledger: LinkClaimLedger,
}

impl ExchangePlan {
    /// Handle over every token of the exchange; `bytes` is the logical
    /// payload total (combined carriers' extra wire bytes not counted
    /// twice).
    pub fn handle(&self) -> TransferHandle {
        TransferHandle {
            tokens: self.pairs.iter().flat_map(|p| p.tokens.iter().copied()).collect(),
            bytes: self.total_bytes(),
        }
    }

    /// Total logical payload.
    pub fn total_bytes(&self) -> u64 {
        self.pairs.iter().map(|p| p.bytes).sum()
    }

    /// When the last token of the exchange lands.
    pub fn completed_at(&self, report: &SimReport) -> f64 {
        self.handle().completed_at(report)
    }

    /// Aggregate payload throughput: total logical bytes over the time
    /// the slowest pair finished. Zero when anything went undelivered.
    pub fn aggregate_throughput(&self, report: &SimReport) -> f64 {
        let t = self.completed_at(report);
        if t.is_finite() && t > 0.0 {
            self.total_bytes() as f64 / t
        } else {
            0.0
        }
    }

    /// Payload bytes delivered per pair, in map order: the pair's full
    /// payload when *every* one of its tokens was delivered, else 0.
    ///
    /// Summing delivered token spec bytes would be wrong here — a
    /// combined carrier's wire message carries more than its own payload
    /// — so delivery is all-or-nothing per logical pair, which is also
    /// the semantics an application observes.
    pub fn per_pair_delivered(&self, report: &SimReport) -> Vec<(NodeId, NodeId, u64)> {
        self.pairs
            .iter()
            .map(|p| {
                let all = p.tokens.iter().all(|&t| report.delivered_at(t).is_finite());
                (p.src, p.dst, if all { p.bytes } else { 0 })
            })
            .collect()
    }

    fn count_route(&self, f: impl Fn(&PairRoute) -> bool) -> usize {
        self.pairs.iter().filter(|p| f(&p.route)).count()
    }

    /// Pairs routed proxy-multipath.
    pub fn pairs_multipath(&self) -> usize {
        self.count_route(|r| matches!(r, PairRoute::Multipath { .. }))
    }

    /// Pairs whose payload rode a combined carrier.
    pub fn pairs_combined(&self) -> usize {
        self.count_route(|r| matches!(r, PairRoute::Combined { .. }))
    }

    /// Pairs carrying at least one combined sibling payload.
    pub fn pairs_carrier(&self) -> usize {
        self.count_route(|r| matches!(r, PairRoute::Carrier { .. }))
    }

    /// Pairs on a plain direct route (carriers not included).
    pub fn pairs_direct(&self) -> usize {
        self.count_route(|r| matches!(r, PairRoute::Direct))
    }
}

/// Batch planner for sparse neighborhood exchanges over one machine.
#[derive(Debug, Clone)]
pub struct NeighborhoodExchange<'m> {
    mover: SparseMover<'m>,
    combine: bool,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<'m> NeighborhoodExchange<'m> {
    /// Build over a fresh [`SparseMover`] for `machine`.
    pub fn new(machine: &'m bgq_comm::Machine) -> NeighborhoodExchange<'m> {
        Self::with_mover(SparseMover::new(machine))
    }

    /// Build over an existing planner (e.g. a bench session's cached
    /// mover, so the aggregator precompute is shared).
    pub fn with_mover(mover: SparseMover<'m>) -> NeighborhoodExchange<'m> {
        NeighborhoodExchange {
            mover,
            combine: true,
            metrics: None,
        }
    }

    /// Disable message-combining of below-threshold pairs.
    pub fn without_combining(mut self) -> Self {
        self.combine = false;
        self
    }

    /// Attach a metrics registry: every [`plan`](Self::plan) call then
    /// records `exchange.*` counters. Planning results are unaffected.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The underlying point-to-point planner.
    pub fn mover(&self) -> &SparseMover<'m> {
        &self.mover
    }

    /// Lower `map` into `prog` under `algorithm`.
    pub fn plan(
        &self,
        prog: &mut Program<'_>,
        map: &SparseSendMap,
        algorithm: ExchangeAlgorithm,
    ) -> ExchangePlan {
        let plan = match algorithm {
            ExchangeAlgorithm::Direct => self.plan_direct(prog, map, algorithm, None),
            ExchangeAlgorithm::Consensus => {
                let model = CollectiveModel::new(self.mover.machine());
                let disc = consensus_discovery(prog, map, &model);
                self.plan_direct(prog, map, algorithm, Some(disc))
            }
            ExchangeAlgorithm::ProxyMultipath => self.plan_multipath(prog, map),
        };
        self.record(&plan);
        plan
    }

    fn plan_direct(
        &self,
        prog: &mut Program<'_>,
        map: &SparseSendMap,
        algorithm: ExchangeAlgorithm,
        discovery: Option<bgq_comm::Discovery>,
    ) -> ExchangePlan {
        let pairs = map
            .pairs()
            .iter()
            .map(|&(src, dst, bytes)| {
                let deps: Vec<TransferId> = discovery
                    .as_ref()
                    .and_then(|d| d.gate_for(src))
                    .into_iter()
                    .collect();
                let t = prog.put_after(src, dst, bytes, deps, 0.0);
                PlannedPair {
                    src,
                    dst,
                    bytes,
                    tokens: vec![t],
                    route: PairRoute::Direct,
                }
            })
            .collect();
        ExchangePlan {
            algorithm,
            pairs,
            discovery_cost: discovery.map_or(0.0, |d| d.cost),
            ledger: LinkClaimLedger::new(),
        }
    }

    fn plan_multipath(&self, prog: &mut Program<'_>, map: &SparseSendMap) -> ExchangePlan {
        let machine = self.mover.machine();
        let shape = machine.shape();
        let zone = machine.zone();
        let direct_route =
            |src: NodeId, dst: NodeId| bgq_torus::route(shape, src, dst, zone).links;

        // Claim every pair's deterministic direct route up front: a proxy
        // detour must dodge ALL baseline traffic of the exchange, not
        // just the pairs planned so far. This is what makes the "proxy
        // multipath never loses to direct" property compositional — the
        // direct flows see weakly less contention than in the all-direct
        // plan, and the detours run on links nobody else touches.
        let mut ledger = LinkClaimLedger::new();
        for &(src, dst, _) in map.pairs() {
            ledger.claim_all(direct_route(src, dst));
        }

        // The cost model's proxy-benefit threshold at the minimum useful
        // path count splits the batch: at or above it, a pair is worth a
        // planner call (and its proxy search); below, the pair goes
        // direct or rides a combined carrier.
        let cutoff = self
            .mover
            .model()
            .threshold_bytes(ProxySearchConfig::default().min_proxies as u32)
            .unwrap_or(u64::MAX);

        // Plan large pairs first, largest payload first (ties broken by
        // (src, dst) so the order — and with it every claim and token —
        // is deterministic): the biggest messages get first pick of the
        // spare link capacity.
        let mut order: Vec<usize> = (0..map.len()).collect();
        order.sort_by_key(|&i| {
            let (src, dst, bytes) = map.pairs()[i];
            (std::cmp::Reverse(bytes), src.0, dst.0)
        });

        let mut planned: Vec<Option<PlannedPair>> = vec![None; map.len()];
        let mut small: Vec<usize> = Vec::new();
        for &i in &order {
            let (src, dst, bytes) = map.pairs()[i];
            if bytes < cutoff {
                small.push(i);
                continue;
            }
            let out = self
                .mover
                .plan(
                    prog,
                    PlanRequest::new(src, dst, bytes).avoid(ledger.claimed()),
                )
                .expect("healthy-network planning is infallible");
            let route = match out.decision {
                Decision::Multipath { paths } => {
                    ledger.claim_all(out.links.iter().copied());
                    PairRoute::Multipath { paths }
                }
                // Ledger left the search under the minimum useful path
                // count: fall back to the (pre-claimed) direct route.
                Decision::Direct(_) => PairRoute::Direct,
            };
            planned[i] = Some(PlannedPair {
                src,
                dst,
                bytes,
                tokens: out.handle.tokens,
                route,
            });
        }

        self.plan_small_pairs(prog, map, &small, &mut planned, &mut ledger);

        ExchangePlan {
            algorithm: ExchangeAlgorithm::ProxyMultipath,
            pairs: planned
                .into_iter()
                .map(|p| p.expect("every pair planned exactly once"))
                .collect(),
            discovery_cost: 0.0,
            ledger,
        }
    }

    /// Lower the below-threshold pairs: message-combine same-source
    /// pairs whose direct routes share a link prefix (the shorter pair
    /// carries the longer pair's payload; its destination forwards the
    /// remainder), plain direct puts for the rest.
    fn plan_small_pairs(
        &self,
        prog: &mut Program<'_>,
        map: &SparseSendMap,
        small: &[usize],
        planned: &mut [Option<PlannedPair>],
        ledger: &mut LinkClaimLedger,
    ) {
        let machine = self.mover.machine();
        let shape = machine.shape();
        let zone = machine.zone();
        let fwd = machine.config().forward_overhead;

        let mut by_src: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for &i in small {
            by_src.entry(map.pairs()[i].0 .0).or_default().push(i);
        }

        for idxs in by_src.values() {
            let routes: Vec<Vec<LinkId>> = idxs
                .iter()
                .map(|&i| {
                    let (src, dst, _) = map.pairs()[i];
                    bgq_torus::route(shape, src, dst, zone).links
                })
                .collect();

            // Rider assignment, longest route first: each rider picks
            // the carrier with the longest strictly-shorter route that
            // prefixes its own. One level only — a carrier never rides,
            // a rider never carries — so forwarding stays single-hop.
            let n = idxs.len();
            let mut carrier_of: Vec<Option<usize>> = vec![None; n];
            let mut riders: Vec<Vec<usize>> = vec![Vec::new(); n];
            if self.combine {
                let mut ord: Vec<usize> = (0..n).collect();
                ord.sort_by_key(|&j| {
                    (std::cmp::Reverse(routes[j].len()), map.pairs()[idxs[j]].1 .0)
                });
                for &j in &ord {
                    if !riders[j].is_empty() {
                        continue; // already carries: keep it a carrier
                    }
                    let mut best: Option<usize> = None;
                    for c in 0..n {
                        if c == j || carrier_of[c].is_some() {
                            continue;
                        }
                        let prefix = &routes[c];
                        if prefix.len() < routes[j].len()
                            && routes[j][..prefix.len()] == prefix[..]
                            && best.is_none_or(|b| prefix.len() > routes[b].len())
                        {
                            best = Some(c);
                        }
                    }
                    if let Some(c) = best {
                        carrier_of[j] = Some(c);
                        riders[c].push(j);
                    }
                }
            }

            for (j, &i) in idxs.iter().enumerate() {
                if carrier_of[j].is_some() {
                    continue; // emitted below, with its carrier
                }
                let (src, dst, bytes) = map.pairs()[i];
                let extra: u64 = riders[j].iter().map(|&r| map.pairs()[idxs[r]].2).sum();
                let t1 = prog.put(src, dst, bytes + extra);
                let route = if riders[j].is_empty() {
                    PairRoute::Direct
                } else {
                    PairRoute::Carrier {
                        riders: riders[j].len() as u32,
                    }
                };
                planned[i] = Some(PlannedPair {
                    src,
                    dst,
                    bytes,
                    tokens: vec![t1],
                    route,
                });
                for &r in &riders[j] {
                    let ir = idxs[r];
                    let (rsrc, rdst, rbytes) = map.pairs()[ir];
                    let t2 = prog.put_after(dst, rdst, rbytes, vec![t1], fwd);
                    ledger.claim_all(bgq_torus::route(shape, dst, rdst, zone).links);
                    planned[ir] = Some(PlannedPair {
                        src: rsrc,
                        dst: rdst,
                        bytes: rbytes,
                        tokens: vec![t2],
                        route: PairRoute::Combined { via: dst },
                    });
                }
            }
        }
    }

    fn record(&self, plan: &ExchangePlan) {
        let Some(m) = &self.metrics else { return };
        m.counter("exchange.plans").inc();
        m.counter("exchange.pairs").add(plan.pairs.len() as u64);
        m.counter("exchange.bytes").add(plan.total_bytes());
        m.counter("exchange.pairs_direct").add(plan.pairs_direct() as u64);
        m.counter("exchange.pairs_multipath")
            .add(plan.pairs_multipath() as u64);
        m.counter("exchange.pairs_combined")
            .add(plan.pairs_combined() as u64);
        m.counter("exchange.pairs_carrier")
            .add(plan.pairs_carrier() as u64);
        m.counter("exchange.links_claimed")
            .add(plan.ledger.len() as u64);
        if plan.algorithm == ExchangeAlgorithm::Consensus {
            m.counter("exchange.discovery_gates")
                .add(plan.pairs.iter().flat_map(|p| [p.src, p.dst]).collect::<HashSet<_>>().len()
                    as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine(nodes: u32) -> Machine {
        Machine::new(standard_shape(nodes).unwrap(), SimConfig::default())
    }

    fn antipodal_map(nodes: u32, pairs: u32, bytes: u64) -> SparseSendMap {
        let half = nodes / 2;
        SparseSendMap::from_pairs(
            (0..pairs).map(|i| (NodeId(i * (half / pairs)), NodeId(i * (half / pairs) + half), bytes)),
        )
    }

    #[test]
    fn all_algorithms_deliver_every_pair() {
        let m = machine(128);
        let ex = NeighborhoodExchange::new(&m);
        let map = SparseSendMap::from_rank_pairs(&[
            (0, 64, 16 << 20),
            (3, 67, 4 << 10),
            (3, 99, 2 << 10),
            (17, 81, 32 << 20),
        ]);
        let mut expected: Vec<(NodeId, NodeId, u64)> = map
            .pairs()
            .iter()
            .map(|&(s, d, b)| (s, d, b))
            .collect();
        expected.sort_by_key(|&(s, d, _)| (s.0, d.0));
        for alg in ExchangeAlgorithm::ALL {
            let mut prog = Program::new(&m);
            let plan = ex.plan(&mut prog, &map, alg);
            let rep = prog.run();
            assert!(rep.all_delivered(), "{alg:?} left transfers undelivered");
            assert_eq!(plan.per_pair_delivered(&rep), expected, "{alg:?}");
            assert_eq!(plan.total_bytes(), map.total_bytes());
        }
    }

    #[test]
    fn consensus_pays_discovery_before_any_payload() {
        let m = machine(128);
        let ex = NeighborhoodExchange::new(&m);
        let map = SparseSendMap::from_rank_pairs(&[(0, 64, 1 << 20), (5, 70, 1 << 20)]);

        let mut pd = Program::new(&m);
        let direct = ex.plan(&mut pd, &map, ExchangeAlgorithm::Direct);
        let td = direct.completed_at(&pd.run());
        assert_eq!(direct.discovery_cost, 0.0);

        let mut pc = Program::new(&m);
        let cons = ex.plan(&mut pc, &map, ExchangeAlgorithm::Consensus);
        let rep = pc.run();
        assert!(cons.discovery_cost > 0.0);
        let tc = cons.completed_at(&rep);
        // Consensus costs the discovery charge on top of the same puts
        // (plus the simulator's per-transfer base latency on the gate).
        assert!(
            tc - td >= cons.discovery_cost && tc - td < cons.discovery_cost + 1e-4,
            "consensus overhead {} vs discovery charge {}",
            tc - td,
            cons.discovery_cost
        );
        // No payload put starts before its sender's gate.
        for p in &cons.pairs {
            for &t in &p.tokens {
                assert!(rep.flow_start_time[t.0 as usize] >= cons.discovery_cost - 1e-12);
            }
        }
    }

    #[test]
    fn ledger_keeps_multipath_pairs_link_disjoint() {
        let m = machine(512);
        let ex = NeighborhoodExchange::new(&m);
        let map = antipodal_map(512, 4, 32 << 20);
        let mut prog = Program::new(&m);
        let plan = ex.plan(&mut prog, &map, ExchangeAlgorithm::ProxyMultipath);
        assert!(
            plan.pairs_multipath() >= 2,
            "antipodal 32 MiB pairs should go multipath, got {:?}",
            plan.pairs.iter().map(|p| p.route).collect::<Vec<_>>()
        );
        // Re-derive every pair's payload links and check pairwise
        // disjointness across the whole batch (direct routes of distinct
        // antipodal pairs are disjoint by construction; the ledger must
        // keep the proxy detours out of each other's way too).
        let shape = m.shape();
        let zone = m.zone();
        let mut seen: HashSet<LinkId> = HashSet::new();
        for p in &plan.pairs {
            let links: Vec<LinkId> = match p.route {
                PairRoute::Multipath { .. } => {
                    // All multipath links were claimed; spot-check via
                    // the ledger below instead of re-running the search.
                    continue;
                }
                _ => bgq_torus::route(shape, p.src, p.dst, zone).links,
            };
            for l in links {
                assert!(seen.insert(l), "direct routes overlap at {l}");
                assert!(plan.ledger.contains(l), "direct link {l} not in ledger");
            }
        }
        assert!(plan.ledger.len() > seen.len(), "proxy links claimed too");
    }

    #[test]
    fn small_pairs_with_shared_prefix_get_combined() {
        let m = machine(128);
        // 0 → 1 (+A one hop) and 0 → 3 (+A two hops, via 1 on a 4-long A
        // axis? depends on shape) — instead derive a guaranteed prefix
        // pair from the routing itself: pick dst2 two hops along the
        // first axis direction of dst1's route.
        let shape = m.shape();
        let zone = m.zone();
        let src = NodeId(0);
        // Find d1, d2 with route(src,d1) a strict prefix of route(src,d2).
        let mut found = None;
        'outer: for d1 in 1..shape.num_nodes() {
            for d2 in 1..shape.num_nodes() {
                if d1 == d2 {
                    continue;
                }
                let r1 = bgq_torus::route(shape, src, NodeId(d1), zone).links;
                let r2 = bgq_torus::route(shape, src, NodeId(d2), zone).links;
                if r1.len() < r2.len() && r2[..r1.len()] == r1[..] {
                    found = Some((NodeId(d1), NodeId(d2)));
                    break 'outer;
                }
            }
        }
        let (d1, d2) = found.expect("a 128-node torus has prefix route pairs");
        let map = SparseSendMap::from_pairs([(src, d1, 8 << 10), (src, d2, 4 << 10)]);
        let ex = NeighborhoodExchange::new(&m);
        let mut prog = Program::new(&m);
        let plan = ex.plan(&mut prog, &map, ExchangeAlgorithm::ProxyMultipath);
        assert_eq!(plan.pairs_carrier(), 1);
        assert_eq!(plan.pairs_combined(), 1);
        let rider = plan
            .pairs
            .iter()
            .find(|p| matches!(p.route, PairRoute::Combined { .. }))
            .unwrap();
        assert_eq!(rider.dst, d2);
        assert_eq!(rider.route, PairRoute::Combined { via: d1 });
        let rep = prog.run();
        assert!(rep.all_delivered());
        // The carrier's wire message holds both payloads: one transfer
        // from src sized b1 + b2.
        let wire: Vec<u64> = prog
            .graph()
            .specs()
            .iter()
            .filter(|s| s.src == src.0)
            .map(|s| s.bytes)
            .collect();
        assert_eq!(wire, vec![(8 << 10) + (4 << 10)]);

        // Combining off: two plain direct puts from src.
        let ex_plain = NeighborhoodExchange::new(&m).without_combining();
        let mut prog2 = Program::new(&m);
        let plan2 = ex_plain.plan(&mut prog2, &map, ExchangeAlgorithm::ProxyMultipath);
        assert_eq!(plan2.pairs_carrier(), 0);
        assert_eq!(plan2.pairs_combined(), 0);
        assert_eq!(plan2.pairs_direct(), 2);
    }

    #[test]
    fn metrics_record_the_batch_shape() {
        let m = machine(512);
        let reg = Arc::new(MetricsRegistry::new());
        let ex = NeighborhoodExchange::new(&m).with_metrics(Arc::clone(&reg));
        let map = antipodal_map(512, 4, 32 << 20);
        let mut prog = Program::new(&m);
        let plan = ex.plan(&mut prog, &map, ExchangeAlgorithm::ProxyMultipath);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("exchange.plans"), Some(1));
        assert_eq!(snap.counter("exchange.pairs"), Some(4));
        assert_eq!(snap.counter("exchange.bytes"), Some(4 * (32 << 20)));
        assert_eq!(
            snap.counter("exchange.pairs_multipath"),
            Some(plan.pairs_multipath() as u64)
        );
        assert_eq!(
            snap.counter("exchange.links_claimed"),
            Some(plan.ledger.len() as u64)
        );
    }
}
