//! Path-diversity analysis: how many link-disjoint single-proxy paths a
//! topology actually admits between two endpoints.
//!
//! The paper's Figure 7 shows that adding proxy groups beyond a point
//! degrades performance because "data movements by extra proxies intervene
//! existing ones". Under deterministic dimension-order routing that point
//! is a *topological* property of the endpoint pair: once every usable
//! outgoing link of the source (and incoming link of the destination) is
//! claimed, further proxies must share links. These utilities measure that
//! limit — they explain both the paper's "at most 4 groups" for its
//! geometry and this reproduction's measured limits.

use crate::proxy::{try_candidate, ProxyPath};
use bgq_torus::{LinkId, NodeId, Shape, Zone};
use std::collections::HashSet;

/// Exhaustive greedy packing of link-disjoint proxy paths: try *every*
/// node as a proxy (nearest detours first) and keep each one whose
/// two-segment path is disjoint from everything accepted so far.
///
/// This is a lower bound on the true maximum (disjoint-path packing is a
/// set-packing problem), but with the deterministic router it is usually
/// tight, and it dominates the directional heuristic of
/// [`crate::proxy::find_proxies`] by construction.
pub fn max_disjoint_proxy_paths(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    forbidden: &HashSet<NodeId>,
) -> Vec<ProxyPath> {
    let src_c = shape.coord(src);
    // Candidates ordered by detour length (total hops via the proxy).
    let mut candidates: Vec<(u32, NodeId)> = shape
        .nodes()
        .filter(|&p| p != src && p != dst && !forbidden.contains(&p))
        .map(|p| {
            let pc = shape.coord(p);
            let detour = shape.distance(src_c, pc) + shape.distance(pc, shape.coord(dst));
            (detour, p)
        })
        .collect();
    candidates.sort();

    let mut used: HashSet<LinkId> = HashSet::new();
    let mut paths = Vec::new();
    for (_, p) in candidates {
        if let Some(path) = try_candidate(shape, zone, src, dst, p, &used) {
            for l in path
                .to_proxy
                .links
                .iter()
                .chain(path.from_proxy.links.iter())
            {
                used.insert(*l);
            }
            paths.push(path);
        }
    }
    paths
}

/// A trivial upper bound on disjoint proxy paths: each path needs its own
/// outgoing link at the source and incoming link at the destination, of
/// which a node has ten each.
pub fn diversity_upper_bound(shape: &Shape) -> usize {
    // Dimensions of extent 1 have no usable ring at all.
    let usable_dirs: usize = bgq_torus::Dim::ALL
        .iter()
        .map(|&d| if shape.extent(d) >= 2 { 2 } else { 0 })
        .sum();
    usable_dirs
}

/// Summary of an endpoint pair's multipath potential.
#[derive(Debug, Clone)]
pub struct DiversityReport {
    pub disjoint_paths: usize,
    pub upper_bound: usize,
    /// Mean detour (extra hops) of the packed paths relative to the
    /// direct route.
    pub mean_detour_hops: f64,
}

/// Analyze an endpoint pair.
pub fn diversity_report(shape: &Shape, zone: Zone, src: NodeId, dst: NodeId) -> DiversityReport {
    let paths = max_disjoint_proxy_paths(shape, zone, src, dst, &HashSet::new());
    let direct_hops = shape.distance(shape.coord(src), shape.coord(dst)) as f64;
    let mean_detour = if paths.is_empty() {
        0.0
    } else {
        paths
            .iter()
            .map(|p| p.hops() as f64 - direct_hops)
            .sum::<f64>()
            / paths.len() as f64
    };
    DiversityReport {
        disjoint_paths: paths.len(),
        upper_bound: diversity_upper_bound(shape),
        mean_detour_hops: mean_detour,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::standard_shape;

    #[test]
    fn exhaustive_packing_dominates_directional_search() {
        let shape = standard_shape(128).unwrap();
        let (src, dst) = (NodeId(0), NodeId(127));
        let heuristic = crate::proxy::find_proxies(
            &shape,
            Zone::Z2,
            src,
            dst,
            &HashSet::new(),
            &crate::proxy::ProxySearchConfig::default(),
        );
        let exhaustive = max_disjoint_proxy_paths(&shape, Zone::Z2, src, dst, &HashSet::new());
        assert!(exhaustive.len() >= heuristic.len());
    }

    #[test]
    fn packed_paths_are_disjoint() {
        let shape = standard_shape(512).unwrap();
        let paths =
            max_disjoint_proxy_paths(&shape, Zone::Z2, NodeId(0), NodeId(511), &HashSet::new());
        let mut seen = HashSet::new();
        for p in &paths {
            for l in p.to_proxy.links.iter().chain(&p.from_proxy.links) {
                assert!(seen.insert(*l), "link {l} reused");
            }
        }
        assert!(paths.len() >= 4);
    }

    #[test]
    fn upper_bound_respects_degenerate_dims() {
        assert_eq!(diversity_upper_bound(&standard_shape(128).unwrap()), 10);
        assert_eq!(diversity_upper_bound(&Shape::new(4, 1, 1, 1, 1)), 2);
    }

    #[test]
    fn report_is_consistent() {
        let shape = standard_shape(128).unwrap();
        let r = diversity_report(&shape, Zone::Z2, NodeId(0), NodeId(127));
        assert!(r.disjoint_paths <= r.upper_bound);
        assert!(r.disjoint_paths >= 3);
        assert!(r.mean_detour_hops >= 0.0);
    }

    #[test]
    fn fig7_pair_diversity_explains_the_group_limit() {
        // The 512-node corner pair (the Fig. 7 geometry) admits only a
        // few disjoint single-proxy paths; this is the topological reason
        // our 4th proxy group shares links.
        let shape = standard_shape(512).unwrap();
        let pair_src = NodeId(0);
        let pair_dst = NodeId(480); // first dest of the corner group
        let r = diversity_report(&shape, Zone::Z2, pair_src, pair_dst);
        assert!(
            (2..=10).contains(&r.disjoint_paths),
            "unexpected diversity {}",
            r.disjoint_paths
        );
    }

    use bgq_torus::Shape;
}
