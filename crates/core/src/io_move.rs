//! Topology-aware sparse I/O data movement (Algorithm 2, part II).
//!
//! Turns an aggregator selection plus per-node data volumes into a transfer
//! DAG:
//!
//! 1. a modelled allreduce establishes the total request size `T` and a
//!    broadcast announces the selected aggregator set (the only global
//!    synchronization of the algorithm);
//! 2. every data-holding node sends its chunks to the assigned aggregators
//!    over the torus;
//! 3. each aggregator streams received chunks onward: torus hop(s) to one
//!    of its pset's two bridge nodes (alternating, to use both 2 GB/s I/O
//!    links) and across the eleventh link to the ION (`/dev/null` sink —
//!    delivery at the ION completes a chunk).
//!
//! Chunks are forwarded as they arrive (the real implementation posts the
//! I/O as data lands), so phases 2 and 3 pipeline naturally.

use crate::aggregator::{assign_data, AggregatorTable, AssignPolicy, Assignment};
use crate::multipath::TransferHandle;
use bgq_comm::{CollectiveModel, Program};
use bgq_netsim::TransferId;
use bgq_torus::{IoLayout, NodeId};
use std::collections::HashMap;

/// Options for the topology-aware write plan.
#[derive(Debug, Clone)]
pub struct IoMoveOptions {
    /// The paper's constant `S`: minimum volume per aggregator, used to
    /// pick the aggregator count (`num_agg = T / S / n_io`).
    pub min_agg_bytes: u64,
    /// Largest single message between a data node and an aggregator.
    pub max_chunk: u64,
    /// Assignment policy (balanced across all IONs vs. pset-local).
    pub policy: AssignPolicy,
}

impl Default for IoMoveOptions {
    fn default() -> Self {
        IoMoveOptions {
            min_agg_bytes: crate::aggregator::DEFAULT_MIN_AGG_BYTES,
            max_chunk: 8 << 20,
            policy: AssignPolicy::BalancedGreedy,
        }
    }
}

/// The built plan, with enough structure for reporting.
#[derive(Debug, Clone)]
pub struct IoMovePlan {
    /// ION-side delivery tokens (completion of the logical write).
    pub handle: TransferHandle,
    /// Selected aggregators-per-ION count.
    pub num_agg_per_ion: u32,
    /// The chunk assignments that were planned.
    pub assignments: Vec<Assignment>,
}

/// Build the topology-aware write plan for `data` (per-node volumes;
/// zero-byte entries are ignored).
///
/// # Panics
/// Panics if the machine has no I/O layout.
pub fn plan_topology_aware_write(
    prog: &mut Program<'_>,
    table: &AggregatorTable,
    data: &[(NodeId, u64)],
    opts: &IoMoveOptions,
) -> IoMovePlan {
    let machine = prog.machine();
    let layout: IoLayout = machine.io_layout().clone();
    let data: Vec<(NodeId, u64)> = data.iter().copied().filter(|&(_, b)| b > 0).collect();
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    // Part II, step 1: reduce+broadcast of the total size and the chosen
    // aggregator list (modelled collective over all nodes).
    let cm = CollectiveModel::new(machine);
    let n = machine.num_nodes();
    let sync_cost = cm.allreduce(n, 8) + cm.bcast(n, 8);
    let sync = prog.modeled_sync(NodeId(0), sync_cost, Vec::new());

    let (num_agg, aggregators) = table.select(total, opts.min_agg_bytes);
    let assignments = assign_data(&data, aggregators, &layout, opts.max_chunk, opts.policy);

    let fwd = machine.config().forward_overhead;
    let tokens = route_chunks_to_ions(prog, &layout, &assignments, fwd, Some(sync));

    IoMovePlan {
        handle: TransferHandle { tokens, bytes: total },
        num_agg_per_ion: num_agg,
        assignments,
    }
}

/// Shared plumbing: move each assignment chunk `from → to` over the torus,
/// then from `to` (the aggregator) through a bridge to the ION. Bridges of
/// a pset are alternated per aggregator to engage both I/O links.
///
/// Returns the ION delivery tokens.
pub fn route_chunks_to_ions(
    prog: &mut Program<'_>,
    layout: &IoLayout,
    assignments: &[Assignment],
    forward_overhead: f64,
    gate: Option<TransferId>,
) -> Vec<TransferId> {
    let mut tokens = Vec::with_capacity(assignments.len());
    // Round-robin bridge slot per aggregator.
    let mut bridge_rr: HashMap<NodeId, usize> = HashMap::new();

    for a in assignments {
        let deps0: Vec<TransferId> = gate.into_iter().collect();
        // Phase: data node -> aggregator (skip if they coincide).
        let (agg_deps, stage_delay) = if a.from == a.to {
            (deps0, 0.0)
        } else {
            let t = prog.put_after(a.from, a.to, a.bytes, deps0, 0.0);
            (vec![t], forward_overhead)
        };

        // Phase: aggregator -> bridge -> ION.
        let pset = layout.pset_of(a.to);
        let bridges = layout.bridges_of_pset(pset);
        let slot = bridge_rr.entry(a.to).or_insert(0);
        let bridge = bridges[*slot % bridges.len()];
        *slot += 1;

        let ion_dep = if bridge == a.to {
            agg_deps
        } else {
            vec![prog.put_after(a.to, bridge, a.bytes, agg_deps, stage_delay)]
        };
        let t = prog.ion_forward(bridge, a.bytes, ion_dep, forward_overhead);
        tokens.push(t);
    }
    tokens
}

/// The reverse of [`plan_topology_aware_write`]: a sparse collective
/// *read* (restart). The same dynamic aggregator selection applies, with
/// the flow reversed: ION → bridge (inbound eleventh link) → aggregator →
/// owning node. Load is balanced over all IONs exactly as for writes, so
/// a restart enjoys the same both-links/all-IONs parallelism.
pub fn plan_topology_aware_read(
    prog: &mut Program<'_>,
    table: &AggregatorTable,
    data: &[(NodeId, u64)],
    opts: &IoMoveOptions,
) -> IoMovePlan {
    let machine = prog.machine();
    let layout: IoLayout = machine.io_layout().clone();
    let data: Vec<(NodeId, u64)> = data.iter().copied().filter(|&(_, b)| b > 0).collect();
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    let cm = CollectiveModel::new(machine);
    let n = machine.num_nodes();
    let sync_cost = cm.allreduce(n, 8) + cm.bcast(n, 8);
    let sync = prog.modeled_sync(NodeId(0), sync_cost, Vec::new());

    let (num_agg, aggregators) = table.select(total, opts.min_agg_bytes);
    let assignments = assign_data(&data, aggregators, &layout, opts.max_chunk, opts.policy);

    let fwd = machine.config().forward_overhead;
    let mut tokens = Vec::with_capacity(assignments.len());
    let mut bridge_rr: HashMap<NodeId, usize> = HashMap::new();
    for a in &assignments {
        // ION -> bridge (alternating) -> aggregator -> owner.
        let pset = layout.pset_of(a.to);
        let bridges = layout.bridges_of_pset(pset);
        let slot = bridge_rr.entry(a.to).or_insert(0);
        let bridge = bridges[*slot % bridges.len()];
        *slot += 1;

        let at_bridge = prog.ion_read(bridge, a.bytes, vec![sync], 0.0);
        let at_agg = if bridge == a.to {
            at_bridge
        } else {
            prog.put_after(bridge, a.to, a.bytes, vec![at_bridge], fwd)
        };
        let delivered = if a.from == a.to {
            at_agg
        } else {
            prog.put_after(a.to, a.from, a.bytes, vec![at_agg], fwd)
        };
        tokens.push(delivered);
    }

    IoMovePlan {
        handle: TransferHandle { tokens, bytes: total },
        num_agg_per_ion: num_agg,
        assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine(nodes: u32) -> Machine {
        Machine::new(standard_shape(nodes).unwrap(), SimConfig::default())
    }

    fn uniform_data(n: u32, bytes: u64) -> Vec<(NodeId, u64)> {
        (0..n).map(|i| (NodeId(i), bytes)).collect()
    }

    #[test]
    fn plan_completes_and_moves_all_bytes() {
        let m = machine(128);
        let table = AggregatorTable::precompute(m.io_layout());
        let mut p = Program::new(&m);
        let data = uniform_data(128, 4 << 20);
        let plan = plan_topology_aware_write(&mut p, &table, &data, &IoMoveOptions::default());
        assert_eq!(plan.handle.bytes, 128 * (4 << 20));
        let rep = p.run();
        let t = plan.handle.completed_at(&rep);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn throughput_bounded_by_pset_io_ceiling() {
        // One pset has 2 x 2 GB/s I/O links: aggregate write throughput
        // can never exceed 4 GB/s (paper §III).
        let m = machine(128);
        let table = AggregatorTable::precompute(m.io_layout());
        let mut p = Program::new(&m);
        let data = uniform_data(128, 16 << 20);
        let plan = plan_topology_aware_write(&mut p, &table, &data, &IoMoveOptions::default());
        let rep = p.run();
        let thr = plan.handle.throughput(&rep);
        assert!(thr <= 4.0e9 * 1.01, "exceeds pset ceiling: {thr}");
        assert!(thr >= 2.0e9, "should engage both bridges: {thr}");
    }

    #[test]
    fn zero_byte_nodes_are_skipped() {
        let m = machine(128);
        let table = AggregatorTable::precompute(m.io_layout());
        let mut p = Program::new(&m);
        let mut data = uniform_data(128, 0);
        data[5].1 = 1 << 20;
        let plan = plan_topology_aware_write(&mut p, &table, &data, &IoMoveOptions::default());
        assert_eq!(plan.handle.bytes, 1 << 20);
        assert!(!plan.assignments.iter().any(|a| a.bytes == 0));
    }

    #[test]
    fn concentrated_data_engages_all_ions() {
        // Data only on the first pset; the plan must still deliver to every
        // ION (the balancing claim of Algorithm 2).
        let m = machine(512);
        let layout = m.io_layout().clone();
        let table = AggregatorTable::precompute(&layout);
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 16 << 20)).collect();
        let plan = plan_topology_aware_write(&mut p, &table, &data, &IoMoveOptions::default());
        let mut ions_used = std::collections::HashSet::new();
        for a in &plan.assignments {
            ions_used.insert(layout.pset_of(a.to).0);
        }
        assert_eq!(
            ions_used.len() as u32,
            layout.num_psets(),
            "balanced policy must spread over all IONs"
        );
    }

    #[test]
    fn pset_local_policy_stays_local() {
        let m = machine(512);
        let layout = m.io_layout().clone();
        let table = AggregatorTable::precompute(&layout);
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 4 << 20)).collect();
        let opts = IoMoveOptions {
            policy: AssignPolicy::PsetLocal,
            ..Default::default()
        };
        let plan = plan_topology_aware_write(&mut p, &table, &data, &opts);
        for a in &plan.assignments {
            assert_eq!(layout.pset_of(a.from), layout.pset_of(a.to));
        }
    }

    #[test]
    fn read_plan_completes_and_conserves() {
        let m = machine(128);
        let table = AggregatorTable::precompute(m.io_layout());
        let mut p = Program::new(&m);
        let data = uniform_data(128, 4 << 20);
        let plan = plan_topology_aware_read(&mut p, &table, &data, &IoMoveOptions::default());
        assert_eq!(plan.handle.bytes, 128 * (4 << 20));
        let rep = p.run();
        assert!(plan.handle.completed_at(&rep) > 0.0);
    }

    #[test]
    fn read_engages_both_inbound_links() {
        // Restart reads should enjoy the same two-links-per-pset
        // parallelism as writes: > 2 GB/s on a one-pset partition.
        let m = machine(128);
        let table = AggregatorTable::precompute(m.io_layout());
        let mut p = Program::new(&m);
        let data = uniform_data(128, 16 << 20);
        let plan = plan_topology_aware_read(&mut p, &table, &data, &IoMoveOptions::default());
        let rep = p.run();
        let thr = plan.handle.throughput(&rep);
        // A single inbound link caps at 2 GB/s and the three-stage
        // store-and-forward pipeline costs some fill time; comfortably
        // exceeding one link's worth of end-to-end rate proves both
        // inbound links carry traffic.
        assert!(thr > 1.5e9, "read should use both inbound links: {thr}");
        assert!(thr <= 4.0e9 * 1.01);
    }

    #[test]
    fn topology_aware_read_beats_default_collective_read() {
        let m = machine(128);
        let table = AggregatorTable::precompute(m.io_layout());
        let data = uniform_data(128, 8 << 20);

        let mut p = Program::new(&m);
        let plan = plan_topology_aware_read(&mut p, &table, &data, &IoMoveOptions::default());
        let ours = plan.handle.throughput(&p.run());

        let mut p = Program::new(&m);
        let h = bgq_iosys_shim::plan_collective_read_for_test(&mut p, &data);
        let baseline = h.throughput(&p.run());
        assert!(
            ours > baseline * 1.3,
            "topology-aware read {ours:.3e} vs default {baseline:.3e}"
        );
    }

    /// Tiny shim: sdm-core cannot depend on bgq-iosys (the baseline crate
    /// depends the other way in spirit), so reproduce the default read's
    /// essential shape here: all traffic through bridge 0, 8 static
    /// aggregators at the pset start.
    mod bgq_iosys_shim {
        use super::*;

        pub fn plan_collective_read_for_test(
            prog: &mut Program<'_>,
            data: &[(NodeId, u64)],
        ) -> TransferHandle {
            let layout = prog.machine().io_layout().clone();
            let total: u64 = data.iter().map(|&(_, b)| b).sum();
            let mut tokens = Vec::new();
            for &(node, bytes) in data {
                if bytes == 0 {
                    continue;
                }
                let pset = layout.pset_of(node);
                let bridge = layout.bridges_of_pset(pset)[0];
                let agg = layout.pset_start(pset);
                let at_bridge = prog.ion_read(bridge, bytes, Vec::new(), 0.0);
                let at_agg = if bridge == agg {
                    at_bridge
                } else {
                    prog.put_after(bridge, agg, bytes, vec![at_bridge], 0.0)
                };
                let t = if node == agg {
                    at_agg
                } else {
                    prog.put_after(agg, node, bytes, vec![at_agg], 0.0)
                };
                tokens.push(t);
            }
            TransferHandle { tokens, bytes: total }
        }
    }

    #[test]
    fn balanced_beats_pset_local_for_concentrated_data() {
        // The ablation the design hinges on: when data is concentrated in
        // one pset, balancing across all IONs must outperform staying local.
        let m = machine(512);
        let table = AggregatorTable::precompute(m.io_layout());
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 8 << 20)).collect();

        let run = |policy: AssignPolicy| {
            let mut p = Program::new(&m);
            let opts = IoMoveOptions {
                policy,
                ..Default::default()
            };
            let plan = plan_topology_aware_write(&mut p, &table, &data, &opts);
            plan.handle.throughput(&p.run())
        };
        let balanced = run(AssignPolicy::BalancedGreedy);
        let local = run(AssignPolicy::PsetLocal);
        assert!(
            balanced > local * 1.5,
            "balanced {balanced:.3e} should beat local {local:.3e} by >1.5x"
        );
    }
}
