//! High-level facade: decide and plan sparse data movement.
//!
//! [`SparseMover`] bundles the cost model (when do proxies pay off?), the
//! proxy search (where can they go?) and the aggregator machinery into the
//! API an application would call: give it endpoints and sizes, get back an
//! executable plan plus the decision it made.

use crate::aggregator::AggregatorTable;
use crate::error::SdmError;
use crate::io_move::{plan_topology_aware_write, IoMoveOptions, IoMovePlan};
use crate::model::CostModel;
use crate::multipath::{
    direct_gated, plan_group_direct, plan_group_via, plan_via_proxies, MultipathOptions,
    TransferHandle,
};
use crate::proxy::{
    find_proxies_constrained, find_proxy_groups, ProxySearchConfig, SearchStats,
};
use bgq_comm::{HealthMask, Machine, Program};
use bgq_obs::MetricsRegistry;
use bgq_torus::{LinkId, NodeId};
use std::collections::HashSet;
use std::sync::Arc;

/// What the planner decided for a transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Single default path; the reason proxies were not used.
    Direct(DirectReason),
    /// Multipath through this many proxies (or proxy groups).
    Multipath { paths: u32 },
}

/// Why a transfer went direct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectReason {
    /// The message is below the proxy-benefit threshold (Eq. 5 regime).
    BelowThreshold,
    /// Fewer than the minimum useful proxies (3) could be placed.
    NoDisjointPaths,
    /// The caller asked for a direct plan ([`PlanPolicy::DirectOnly`]);
    /// the cost model was never consulted.
    Requested,
}

/// How [`SparseMover::plan`] is allowed to route a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanPolicy {
    /// The paper's decision procedure (§IV.B): direct below the
    /// proxy-benefit threshold, multipath above it, multipath *forced*
    /// when a supplied health mask kills the deterministic direct route.
    #[default]
    Auto,
    /// Always a single direct path, skipping the proxy search and the
    /// cost model. The plan still honors `MultipathOptions::gate`, which
    /// is how a stubborn-direct retry loop chains attempts.
    DirectOnly,
}

/// One point-to-point planning request for [`SparseMover::plan`] — the
/// single entry point that replaced `plan_transfer`,
/// `try_plan_transfer_resilient` and `plan_direct_gated`.
///
/// Build one with [`PlanRequest::new`] and refine it with the builder
/// methods:
///
/// ```ignore
/// let req = PlanRequest::new(src, dst, bytes)
///     .health(&mask)                    // route around known faults
///     .policy(PlanPolicy::DirectOnly);  // or force a direct plan
/// let outcome = mover.plan(&mut prog, req)?;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest<'h> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message size in bytes.
    pub bytes: u64,
    /// Network health the plan must route around. `None` plans on an
    /// assumed-healthy network and can never fail with
    /// [`SdmError::EndpointDown`].
    pub health: Option<&'h HealthMask>,
    /// Links some other transfer of the same batch already claimed (a
    /// neighborhood exchange's link-claim ledger): proxy paths must be
    /// link-disjoint from them. Unlike dead links, a claimed link never
    /// forces multipath — the hardware is healthy, merely spoken for.
    pub avoid: Option<&'h HashSet<LinkId>>,
    /// Routing policy; defaults to [`PlanPolicy::Auto`].
    pub policy: PlanPolicy,
}

impl<'h> PlanRequest<'h> {
    /// A healthy-network, auto-policy request.
    pub fn new(src: NodeId, dst: NodeId, bytes: u64) -> PlanRequest<'h> {
        PlanRequest {
            src,
            dst,
            bytes,
            health: None,
            avoid: None,
            policy: PlanPolicy::Auto,
        }
    }

    /// Plan under a network health mask: proxies avoid dead links and
    /// down nodes, a dead direct route forces multipath, and a down
    /// endpoint is an error.
    pub fn health(mut self, health: &'h HealthMask) -> Self {
        self.health = Some(health);
        self
    }

    /// Override the routing policy.
    pub fn policy(mut self, policy: PlanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Keep proxy paths link-disjoint from `claimed` (a batch planner's
    /// link-claim ledger).
    pub fn avoid(mut self, claimed: &'h HashSet<LinkId>) -> Self {
        self.avoid = Some(claimed);
        self
    }
}

/// What [`SparseMover::plan`] produced: the executable plan plus the
/// decision that shaped it.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// Handle over the planned transfer's tokens.
    pub handle: TransferHandle,
    /// The routing decision that was made.
    pub decision: Decision,
    /// Every torus link the plan sends payload over: the deterministic
    /// direct route for a [`Decision::Direct`] plan, the union of both
    /// segments of every proxy path for a multipath plan. This is what a
    /// batch planner feeds back into its link-claim ledger.
    pub links: Vec<LinkId>,
}

/// The sparse data movement planner for one machine.
#[derive(Debug, Clone)]
pub struct SparseMover<'m> {
    machine: &'m Machine,
    model: CostModel,
    search: ProxySearchConfig,
    multipath: MultipathOptions,
    aggregators: Option<Arc<AggregatorTable>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<'m> SparseMover<'m> {
    /// Build a planner; precomputes the aggregator table when the machine
    /// has an I/O layout (Algorithm 2's Init).
    pub fn new(machine: &'m Machine) -> SparseMover<'m> {
        let aggregators = machine
            .io()
            .map(|io| Arc::new(AggregatorTable::precompute(io)));
        Self::build(machine, aggregators)
    }

    /// Build a planner around an already-computed (shared) aggregator
    /// table, skipping the Init phase. This is how an experiment session
    /// reuses one precomputation across many sweep points: the table is
    /// behind an [`Arc`], so clones are free and thread-safe.
    ///
    /// The table must have been computed for this machine's I/O layout;
    /// pass `None` for partitions without one.
    pub fn with_aggregator_table(
        machine: &'m Machine,
        table: Option<Arc<AggregatorTable>>,
    ) -> SparseMover<'m> {
        debug_assert_eq!(
            table.as_ref().map(|t| t.num_psets()),
            machine.io().map(|io| io.num_psets()),
            "aggregator table does not match the machine's I/O layout"
        );
        Self::build(machine, table)
    }

    fn build(
        machine: &'m Machine,
        aggregators: Option<Arc<AggregatorTable>>,
    ) -> SparseMover<'m> {
        let model = CostModel::from_sim_config(machine.config(), machine.mean_hops());
        SparseMover {
            machine,
            model,
            search: ProxySearchConfig::default(),
            multipath: MultipathOptions::default(),
            aggregators,
            metrics: None,
        }
    }

    /// Override the proxy search configuration.
    pub fn with_search(mut self, search: ProxySearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Attach a metrics registry: every planning call then records its
    /// decision (`planner.multipath_chosen`, `planner.direct_*`) and the
    /// proxy search's candidate accounting (`planner.proxy.*`). Planning
    /// results are unaffected — counters are a write-only side channel.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn count(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.counter(name).inc();
        }
    }

    fn record_search(&self, stats: &SearchStats) {
        if let Some(m) = &self.metrics {
            m.counter("planner.proxy.candidates_tried")
                .add(stats.candidates_tried);
            m.counter("planner.proxy.accepted").add(stats.accepted);
            m.counter("planner.proxy.rejected_overlap")
                .add(stats.rejected_overlap);
            m.counter("planner.proxy.dead_link_skips")
                .add(stats.dead_link_skips);
            m.counter("planner.proxy.down_node_skips")
                .add(stats.down_node_skips);
            m.counter("planner.proxy.forbidden_skips")
                .add(stats.forbidden_skips);
        }
    }

    /// Override multipath construction options (e.g. pipelined forwarding).
    pub fn with_multipath(mut self, opts: MultipathOptions) -> Self {
        self.multipath = opts;
        self
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    pub fn aggregator_table(&self) -> Option<&AggregatorTable> {
        self.aggregators.as_deref()
    }

    /// The shared aggregator table handle, for reuse by another planner
    /// over the same machine.
    pub fn shared_aggregator_table(&self) -> Option<Arc<AggregatorTable>> {
        self.aggregators.clone()
    }

    /// Plan a point-to-point transfer — the single planning entry point.
    ///
    /// Under [`PlanPolicy::Auto`] this is the paper's decision procedure
    /// (§IV.B: "Calculate the message sizes to see if using intermediate
    /// nodes benefits performance"): direct below the proxy-benefit
    /// threshold, multipath above it. When the request carries a
    /// [`HealthMask`], proxies route around dead links and down nodes,
    /// and a dead link on the deterministic direct route *forces*
    /// multipath (with the minimum-useful-proxies rule relaxed to 1 —
    /// any surviving detour beats a route that delivers nothing),
    /// overriding the cost model's below-threshold verdict.
    ///
    /// Direct plans honor `MultipathOptions::gate`, so retry loops can
    /// chain attempts regardless of policy.
    ///
    /// # Errors
    /// [`SdmError::EndpointDown`] when the request has a health mask and
    /// `src` or `dst` itself is down — no plan can help then; the caller
    /// should back off and re-query the mask later. Without a health
    /// mask, planning is infallible.
    pub fn plan(
        &self,
        prog: &mut Program<'_>,
        req: PlanRequest<'_>,
    ) -> Result<PlanOutcome, SdmError> {
        let PlanRequest {
            src,
            dst,
            bytes,
            health,
            avoid,
            policy,
        } = req;
        if let Some(h) = health {
            if h.down_nodes.contains(&src) {
                self.count("planner.endpoint_down");
                return Err(SdmError::EndpointDown(src));
            }
            if h.down_nodes.contains(&dst) {
                self.count("planner.endpoint_down");
                return Err(SdmError::EndpointDown(dst));
            }
        }
        let shape = self.machine.shape();
        let zone = self.machine.zone();
        let direct_links = || bgq_torus::route(shape, src, dst, zone).links;
        if policy == PlanPolicy::DirectOnly {
            self.count("planner.direct_requested");
            return Ok(PlanOutcome {
                handle: direct_gated(prog, src, dst, bytes, &self.multipath),
                decision: Decision::Direct(DirectReason::Requested),
                links: direct_links(),
            });
        }
        let direct_dead = match health {
            Some(h) => direct_links().iter().any(|l| h.dead_links.contains(l)),
            None => false,
        };
        if direct_dead {
            self.count("planner.direct_route_dead");
        }
        let forced_search;
        let search = if direct_dead {
            forced_search = ProxySearchConfig {
                min_proxies: 1,
                ..self.search.clone()
            };
            &forced_search
        } else {
            &self.search
        };
        let healthy;
        let mask = match health {
            Some(h) => h,
            None => {
                healthy = HealthMask::healthy();
                &healthy
            }
        };
        let no_claims = HashSet::new();
        let (sel, stats) = find_proxies_constrained(
            shape,
            zone,
            src,
            dst,
            &HashSet::new(),
            avoid.unwrap_or(&no_claims),
            search,
            mask,
        );
        self.record_search(&stats);
        if sel.is_empty() {
            self.count("planner.direct_no_disjoint");
            return Ok(PlanOutcome {
                handle: direct_gated(prog, src, dst, bytes, &self.multipath),
                decision: Decision::Direct(DirectReason::NoDisjointPaths),
                links: direct_links(),
            });
        }
        let k = sel.len() as u32;
        if !direct_dead && !self.model.should_use_proxies(bytes, k) {
            self.count("planner.direct_below_threshold");
            return Ok(PlanOutcome {
                handle: direct_gated(prog, src, dst, bytes, &self.multipath),
                decision: Decision::Direct(DirectReason::BelowThreshold),
                links: direct_links(),
            });
        }
        if direct_dead {
            self.count("planner.multipath_forced");
        }
        self.count("planner.multipath_chosen");
        let links: Vec<LinkId> = sel.paths.iter().flat_map(|p| p.links()).collect();
        let handle = plan_via_proxies(prog, src, dst, bytes, &sel.proxies(), &self.multipath);
        Ok(PlanOutcome {
            handle,
            decision: Decision::Multipath { paths: k },
            links,
        })
    }

    /// Plan a point-to-point transfer, choosing direct vs. multipath by
    /// the cost model and proxy availability.
    #[deprecated(note = "use `SparseMover::plan` with a `PlanRequest`")]
    pub fn plan_transfer(
        &self,
        prog: &mut Program<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (TransferHandle, Decision) {
        let out = self
            .plan(prog, PlanRequest::new(src, dst, bytes))
            .expect("planning without a health mask is infallible");
        (out.handle, out.decision)
    }

    /// Plan a point-to-point transfer under a network [`HealthMask`].
    #[deprecated(note = "use `SparseMover::plan` with `PlanRequest::health`")]
    pub fn try_plan_transfer_resilient(
        &self,
        prog: &mut Program<'_>,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        health: &HealthMask,
    ) -> Result<(TransferHandle, Decision), SdmError> {
        self.plan(prog, PlanRequest::new(src, dst, bytes).health(health))
            .map(|out| (out.handle, out.decision))
    }

    /// Plan a group-to-group coupling (`sources[i] → dests[i]`, `bytes`
    /// each), choosing direct vs. proxy groups.
    pub fn plan_group_coupling(
        &self,
        prog: &mut Program<'_>,
        sources: &[NodeId],
        dests: &[NodeId],
        bytes: u64,
    ) -> (TransferHandle, Decision) {
        let groups = find_proxy_groups(
            self.machine.shape(),
            self.machine.zone(),
            sources,
            dests,
            &self.search,
        );
        if groups.is_empty() {
            self.count("planner.group.direct_no_disjoint");
            return (
                plan_group_direct(prog, sources, dests, bytes),
                Decision::Direct(DirectReason::NoDisjointPaths),
            );
        }
        let k = groups.len() as u32;
        if !self.model.should_use_proxies(bytes, k) {
            self.count("planner.group.direct_below_threshold");
            return (
                plan_group_direct(prog, sources, dests, bytes),
                Decision::Direct(DirectReason::BelowThreshold),
            );
        }
        self.count("planner.group.multipath_chosen");
        let handle =
            plan_group_via(prog, sources, dests, bytes, &groups, false, &self.multipath);
        (handle, Decision::Multipath { paths: k })
    }

    /// Plan a sparse collective write (Algorithm 2).
    ///
    /// # Panics
    /// Panics if the machine has no I/O layout; use
    /// [`SparseMover::try_plan_sparse_write`] to handle that as an
    /// [`SdmError`] instead.
    pub fn plan_sparse_write(
        &self,
        prog: &mut Program<'_>,
        data: &[(NodeId, u64)],
        opts: &IoMoveOptions,
    ) -> IoMovePlan {
        self.try_plan_sparse_write(prog, data, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SparseMover::plan_sparse_write`].
    pub fn try_plan_sparse_write(
        &self,
        prog: &mut Program<'_>,
        data: &[(NodeId, u64)],
        opts: &IoMoveOptions,
    ) -> Result<IoMovePlan, SdmError> {
        let table = self.aggregators.as_ref().ok_or(SdmError::NoIoLayout)?;
        Ok(plan_topology_aware_write(prog, table, data, opts))
    }

    /// Plan a sparse collective read (restart) — Algorithm 2 reversed.
    ///
    /// # Panics
    /// Panics if the machine has no I/O layout; use
    /// [`SparseMover::try_plan_sparse_read`] to handle that as an
    /// [`SdmError`] instead.
    pub fn plan_sparse_read(
        &self,
        prog: &mut Program<'_>,
        data: &[(NodeId, u64)],
        opts: &IoMoveOptions,
    ) -> IoMovePlan {
        self.try_plan_sparse_read(prog, data, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SparseMover::plan_sparse_read`].
    pub fn try_plan_sparse_read(
        &self,
        prog: &mut Program<'_>,
        data: &[(NodeId, u64)],
        opts: &IoMoveOptions,
    ) -> Result<IoMovePlan, SdmError> {
        let table = self.aggregators.as_ref().ok_or(SdmError::NoIoLayout)?;
        Ok(crate::io_move::plan_topology_aware_read(prog, table, data, opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multipath::plan_direct;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn small_transfers_go_direct() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let mut p = Program::new(&m);
        let out = mover
            .plan(&mut p, PlanRequest::new(NodeId(0), NodeId(127), 4096))
            .unwrap();
        assert_eq!(out.decision, Decision::Direct(DirectReason::BelowThreshold));
    }

    #[test]
    fn large_transfers_go_multipath() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let mut p = Program::new(&m);
        let out = mover
            .plan(&mut p, PlanRequest::new(NodeId(0), NodeId(127), 32 << 20))
            .unwrap();
        let d = out.decision;
        assert!(matches!(d, Decision::Multipath { paths } if paths >= 3), "{d:?}");
    }

    #[test]
    fn planner_decision_actually_wins() {
        // Whatever the planner picks for a large message must beat the
        // alternative it rejected.
        let m = machine();
        let mover = SparseMover::new(&m);
        let bytes = 64u64 << 20;

        let mut p1 = Program::new(&m);
        let out = mover
            .plan(&mut p1, PlanRequest::new(NodeId(0), NodeId(127), bytes))
            .unwrap();
        assert!(matches!(out.decision, Decision::Multipath { .. }));
        let t_chosen = out.handle.completed_at(&p1.run());

        let mut p2 = Program::new(&m);
        let h2 = plan_direct(&mut p2, NodeId(0), NodeId(127), bytes);
        let t_direct = h2.completed_at(&p2.run());
        assert!(t_chosen < t_direct, "{t_chosen} !< {t_direct}");
    }

    #[test]
    fn degenerate_topology_reports_no_disjoint_paths() {
        let m = bgq_comm::Machine::new(bgq_torus::Shape::new(2, 1, 1, 1, 1), SimConfig::default());
        let mover = SparseMover::new(&m);
        let mut p = Program::new(&m);
        let out = mover
            .plan(&mut p, PlanRequest::new(NodeId(0), NodeId(1), 128 << 20))
            .unwrap();
        assert_eq!(out.decision, Decision::Direct(DirectReason::NoDisjointPaths));
    }

    #[test]
    fn healthy_mask_matches_maskless_decision() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let healthy = HealthMask::healthy();
        for bytes in [4096u64, 32 << 20] {
            let mut p1 = Program::new(&m);
            let plain = mover
                .plan(&mut p1, PlanRequest::new(NodeId(0), NodeId(127), bytes))
                .unwrap();
            let mut p2 = Program::new(&m);
            let resilient = mover
                .plan(
                    &mut p2,
                    PlanRequest::new(NodeId(0), NodeId(127), bytes).health(&healthy),
                )
                .unwrap();
            assert_eq!(plain.decision, resilient.decision, "at {bytes} bytes");
        }
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated wrappers to the unified entry point
    fn deprecated_wrappers_match_plan() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let first_link = bgq_torus::route(m.shape(), NodeId(0), NodeId(127), m.zone()).links[0];
        let mut health = HealthMask::healthy();
        health.dead_links.insert(first_link);

        for bytes in [4096u64, 32 << 20] {
            let mut p1 = Program::new(&m);
            let (h1, d1) = mover.plan_transfer(&mut p1, NodeId(0), NodeId(127), bytes);
            let mut p2 = Program::new(&m);
            let out = mover
                .plan(&mut p2, PlanRequest::new(NodeId(0), NodeId(127), bytes))
                .unwrap();
            assert_eq!(d1, out.decision, "plan_transfer decision at {bytes}");
            assert_eq!(h1.tokens, out.handle.tokens, "plan_transfer tokens at {bytes}");

            let mut p3 = Program::new(&m);
            let (h3, d3) = mover
                .try_plan_transfer_resilient(&mut p3, NodeId(0), NodeId(127), bytes, &health)
                .unwrap();
            let mut p4 = Program::new(&m);
            let out = mover
                .plan(
                    &mut p4,
                    PlanRequest::new(NodeId(0), NodeId(127), bytes).health(&health),
                )
                .unwrap();
            assert_eq!(d3, out.decision, "resilient decision at {bytes}");
            assert_eq!(h3.tokens, out.handle.tokens, "resilient tokens at {bytes}");
        }
    }

    #[test]
    fn direct_only_policy_skips_the_cost_model() {
        let m = machine();
        let reg = Arc::new(MetricsRegistry::new());
        let mover = SparseMover::new(&m).with_metrics(Arc::clone(&reg));
        // 32 MiB would normally go multipath; DirectOnly must not.
        let mut p = Program::new(&m);
        let out = mover
            .plan(
                &mut p,
                PlanRequest::new(NodeId(0), NodeId(127), 32 << 20)
                    .policy(PlanPolicy::DirectOnly),
            )
            .unwrap();
        assert_eq!(out.decision, Decision::Direct(DirectReason::Requested));
        assert_eq!(out.handle.tokens.len(), 1, "one direct put");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("planner.direct_requested"), Some(1));
        assert_eq!(snap.counter("planner.multipath_chosen"), None);
    }

    #[test]
    fn direct_only_policy_honors_the_gate() {
        let m = machine();
        let mut p = Program::new(&m);
        // Gate: a zero-byte self-put that becomes available at t = 1 s.
        let gate = p.add_spec(
            bgq_netsim::TransferSpec::new(0, 0, 0, Vec::new()).not_before(1.0),
        );
        let mover = SparseMover::new(&m).with_multipath(MultipathOptions {
            gate: Some(gate),
            ..Default::default()
        });
        let out = mover
            .plan(
                &mut p,
                PlanRequest::new(NodeId(0), NodeId(127), 4 << 10)
                    .policy(PlanPolicy::DirectOnly),
            )
            .unwrap();
        let rep = p.run();
        assert!(
            out.handle.completed_at(&rep) > 1.0,
            "transfer must not finish before the gate opens"
        );
    }

    #[test]
    fn dead_direct_route_forces_multipath() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let first_link = bgq_torus::route(m.shape(), NodeId(0), NodeId(127), m.zone()).links[0];
        let mut health = HealthMask::healthy();
        health.dead_links.insert(first_link);
        // 4 KiB is deep below the threshold, yet direct would deliver
        // nothing — the planner must detour.
        let mut p = Program::new(&m);
        let out = mover
            .plan(
                &mut p,
                PlanRequest::new(NodeId(0), NodeId(127), 4096).health(&health),
            )
            .unwrap();
        let d = out.decision;
        assert!(matches!(d, Decision::Multipath { .. }), "{d:?}");
    }

    #[test]
    fn resilient_multipath_survives_a_fault_the_direct_plan_does_not() {
        use bgq_netsim::{FaultPlan, ResourceId};
        let m = machine();
        let mover = SparseMover::new(&m);
        let bytes = 32u64 << 20;
        let first_link = bgq_torus::route(m.shape(), NodeId(0), NodeId(127), m.zone()).links[0];
        // The link dies before any transfer starts and never recovers.
        let plan = FaultPlan::new().fail_link(0.0, ResourceId(first_link.0));
        let health = HealthMask::at(&m, &plan, 0.0);

        let mut pd = Program::new(&m);
        let hd = crate::multipath::plan_direct(&mut pd, NodeId(0), NodeId(127), bytes);
        let rd = pd.run_with_faults(&plan);
        assert!(!rd.all_delivered(), "direct over the dead link must stall");
        assert!(hd.completed_at(&rd).is_infinite());

        let mut pm = Program::new(&m);
        let out = mover
            .plan(
                &mut pm,
                PlanRequest::new(NodeId(0), NodeId(127), bytes).health(&health),
            )
            .unwrap();
        assert!(matches!(out.decision, Decision::Multipath { .. }));
        let rm = pm.run_with_faults(&plan);
        assert!(rm.all_delivered(), "health-aware multipath must complete");
        assert!(out.handle.completed_at(&rm).is_finite());
    }

    #[test]
    fn down_endpoint_is_an_error() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let mut health = HealthMask::healthy();
        health.down_nodes.insert(NodeId(127));
        let mut p = Program::new(&m);
        let err = mover
            .plan(
                &mut p,
                PlanRequest::new(NodeId(0), NodeId(127), 1 << 20).health(&health),
            )
            .unwrap_err();
        assert_eq!(err, SdmError::EndpointDown(NodeId(127)));
    }

    #[test]
    fn metrics_record_decisions_without_changing_them() {
        let m = machine();
        let reg = Arc::new(MetricsRegistry::new());
        let plain = SparseMover::new(&m);
        let observed = SparseMover::new(&m).with_metrics(Arc::clone(&reg));

        for bytes in [4096u64, 32 << 20] {
            let mut p1 = Program::new(&m);
            let d1 = plain
                .plan(&mut p1, PlanRequest::new(NodeId(0), NodeId(127), bytes))
                .unwrap()
                .decision;
            let mut p2 = Program::new(&m);
            let d2 = observed
                .plan(&mut p2, PlanRequest::new(NodeId(0), NodeId(127), bytes))
                .unwrap()
                .decision;
            assert_eq!(d1, d2, "metrics must not alter the decision at {bytes}");
        }
        // Forced-multipath path under a dead direct route.
        let first_link = bgq_torus::route(m.shape(), NodeId(0), NodeId(127), m.zone()).links[0];
        let mut health = HealthMask::healthy();
        health.dead_links.insert(first_link);
        let mut p = Program::new(&m);
        observed
            .plan(
                &mut p,
                PlanRequest::new(NodeId(0), NodeId(127), 4096).health(&health),
            )
            .unwrap();

        let snap = reg.snapshot();
        assert_eq!(snap.counter("planner.direct_below_threshold"), Some(1));
        assert_eq!(snap.counter("planner.multipath_chosen"), Some(2));
        assert_eq!(snap.counter("planner.multipath_forced"), Some(1));
        assert_eq!(snap.counter("planner.direct_route_dead"), Some(1));
        assert!(snap.counter("planner.proxy.candidates_tried").unwrap() > 0);
        assert!(snap.counter("planner.proxy.accepted").unwrap() >= 4);
        assert!(
            snap.counter("planner.proxy.dead_link_skips").unwrap_or(0) >= 1,
            "the dead direct link must surface in search stats"
        );
    }

    #[test]
    fn plan_reports_the_links_it_uses() {
        let m = machine();
        let mover = SparseMover::new(&m);
        // Direct plan: exactly the deterministic route.
        let mut p = Program::new(&m);
        let out = mover
            .plan(&mut p, PlanRequest::new(NodeId(0), NodeId(127), 4096))
            .unwrap();
        assert_eq!(
            out.links,
            bgq_torus::route(m.shape(), NodeId(0), NodeId(127), m.zone()).links
        );
        // Multipath plan: the union of the proxy-path segments, none of
        // which may repeat (paths are pairwise link-disjoint).
        let mut p2 = Program::new(&m);
        let out = mover
            .plan(&mut p2, PlanRequest::new(NodeId(0), NodeId(127), 32 << 20))
            .unwrap();
        assert!(matches!(out.decision, Decision::Multipath { .. }));
        let unique: HashSet<_> = out.links.iter().copied().collect();
        assert_eq!(unique.len(), out.links.len(), "multipath links must be disjoint");
    }

    #[test]
    fn avoided_links_keep_proxy_paths_clear() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let bytes = 32u64 << 20;
        let mut p1 = Program::new(&m);
        let free = mover
            .plan(&mut p1, PlanRequest::new(NodeId(0), NodeId(127), bytes))
            .unwrap();
        assert!(matches!(free.decision, Decision::Multipath { .. }));
        // Claim the first path's worth of links; the re-plan must dodge
        // every one of them (or legitimately fall back to direct).
        let claimed: HashSet<bgq_torus::LinkId> = free.links.iter().take(4).copied().collect();
        let mut p2 = Program::new(&m);
        let out = mover
            .plan(
                &mut p2,
                PlanRequest::new(NodeId(0), NodeId(127), bytes).avoid(&claimed),
            )
            .unwrap();
        if matches!(out.decision, Decision::Multipath { .. }) {
            for l in &out.links {
                assert!(!claimed.contains(l), "plan crossed claimed link {l}");
            }
        }
        // An empty claim set changes nothing.
        let none = HashSet::new();
        let mut p3 = Program::new(&m);
        let same = mover
            .plan(
                &mut p3,
                PlanRequest::new(NodeId(0), NodeId(127), bytes).avoid(&none),
            )
            .unwrap();
        assert_eq!(same.decision, free.decision);
        assert_eq!(same.links, free.links);
    }

    #[test]
    fn group_coupling_decision() {
        let m = Machine::new(standard_shape(512).unwrap(), SimConfig::default());
        let mover = SparseMover::new(&m);
        let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
        let dests: Vec<NodeId> = (480..512).map(NodeId).collect();
        let mut p = Program::new(&m);
        let (_, d) = mover.plan_group_coupling(&mut p, &sources, &dests, 16 << 20);
        assert!(matches!(d, Decision::Multipath { .. }), "{d:?}");
        let mut p2 = Program::new(&m);
        let (_, d2) = mover.plan_group_coupling(&mut p2, &sources, &dests, 1024);
        assert!(matches!(d2, Decision::Direct(_)), "{d2:?}");
    }

    #[test]
    fn sparse_write_runs_through_facade() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 1 << 20)).collect();
        let plan = mover.plan_sparse_write(&mut p, &data, &IoMoveOptions::default());
        let rep = p.run();
        assert!(plan.handle.completed_at(&rep) > 0.0);
    }

    #[test]
    fn sparse_write_without_io_layout_is_an_error() {
        let m = Machine::new(bgq_torus::Shape::new(2, 2, 2, 2, 2), SimConfig::default());
        let mover = SparseMover::new(&m);
        let mut p = Program::new(&m);
        let data = [(NodeId(0), 1u64 << 20)];
        let err = mover
            .try_plan_sparse_write(&mut p, &data, &IoMoveOptions::default())
            .unwrap_err();
        assert_eq!(err, crate::SdmError::NoIoLayout);
    }

    #[test]
    fn shared_table_plans_identically_to_fresh_precompute() {
        let m = machine();
        let fresh = SparseMover::new(&m);
        let table = fresh.shared_aggregator_table();
        let shared = SparseMover::with_aggregator_table(&m, table);
        let data: Vec<(NodeId, u64)> = (0..64).map(|i| (NodeId(i), 4 << 20)).collect();

        let mut p1 = Program::new(&m);
        let t1 = fresh
            .plan_sparse_write(&mut p1, &data, &IoMoveOptions::default())
            .handle
            .completed_at(&p1.run());
        let mut p2 = Program::new(&m);
        let t2 = shared
            .plan_sparse_write(&mut p2, &data, &IoMoveOptions::default())
            .handle
            .completed_at(&p2.run());
        assert_eq!(t1, t2, "shared table must not change the plan");
    }

    #[test]
    fn sparse_read_runs_through_facade() {
        let m = machine();
        let mover = SparseMover::new(&m);
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 1 << 20)).collect();
        let plan = mover.plan_sparse_read(&mut p, &data, &IoMoveOptions::default());
        let rep = p.run();
        assert!(plan.handle.completed_at(&rep) > 0.0);
        assert_eq!(plan.handle.bytes, 128 << 20);
    }
}
