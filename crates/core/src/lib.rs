//! # sdm-core
//!
//! The primary contribution of *"Improving Data Movement Performance for
//! Sparse Data Patterns on the Blue Gene/Q Supercomputer"* (Bui, Leigh,
//! Jung, Vishwanath, Papka — ICPP 2014), implemented over the simulated
//! BG/Q substrate (`bgq-torus` + `bgq-netsim` + `bgq-comm`):
//!
//! * [`model`] — the analytical cost model of §IV.B (Eqs. 1–5): direct vs.
//!   proxied transfer times, the k/2 asymptotic speedup, the ≥3-proxy rule
//!   and the message-size threshold;
//! * [`proxy`] — Algorithm 1: distributed selection of link-disjoint proxy
//!   locations in the `2L` torus directions, for node pairs and for
//!   coupled groups;
//! * [`multipath`] — Algorithm 1 part III: multipath transfer plans
//!   (store-and-forward, plus the §VII pipelined variant);
//! * [`aggregator`] — Algorithm 2: precomputed uniform aggregator
//!   placements per pset and dynamic `T / S / n_io` selection, with
//!   ION-load-balancing data assignment;
//! * [`io_move`] — the sparse collective-write plan (nodes → aggregators →
//!   bridge nodes → I/O nodes);
//! * [`planner`] — the [`SparseMover`] facade that makes the
//!   direct-vs-multipath decision automatically;
//! * [`exchange`] — the many-pair consumer: [`NeighborhoodExchange`]
//!   lowers a sparse send map under direct / consensus / proxy-multipath
//!   algorithms, with a link-claim ledger keeping concurrent pairs'
//!   proxy paths disjoint across the whole batch.
//!
//! ## Quick example
//!
//! ```
//! use bgq_comm::{Machine, Program};
//! use bgq_netsim::SimConfig;
//! use bgq_torus::{standard_shape, NodeId};
//! use sdm_core::{PlanRequest, SparseMover};
//!
//! let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
//! let mover = SparseMover::new(&machine);
//! let mut prog = Program::new(&machine);
//! let outcome = mover
//!     .plan(&mut prog, PlanRequest::new(NodeId(0), NodeId(127), 32 << 20))
//!     .unwrap();
//! let report = prog.run();
//! println!(
//!     "{:?}: {:.2} GB/s",
//!     outcome.decision,
//!     outcome.handle.throughput(&report) / 1e9
//! );
//! ```

pub mod aggregator;
pub mod analysis;
pub mod error;
pub mod exchange;
pub mod io_move;
pub mod model;
pub mod multipath;
pub mod planner;
pub mod proxy;
pub mod setup;

pub use analysis::{
    diversity_report, diversity_upper_bound, max_disjoint_proxy_paths, DiversityReport,
};
pub use aggregator::{
    aggregator_loads, assign_data, block_factors, pset_box, try_aggregator_loads,
    try_assign_data, AggregatorTable, AssignPolicy, Assignment, AGG_COUNTS,
    DEFAULT_MIN_AGG_BYTES,
};
pub use error::SdmError;
pub use exchange::{
    ExchangeAlgorithm, ExchangePlan, LinkClaimLedger, NeighborhoodExchange, PairRoute,
    PlannedPair,
};
pub use io_move::{
    plan_topology_aware_read, plan_topology_aware_write, route_chunks_to_ions, IoMoveOptions,
    IoMovePlan,
};
pub use model::CostModel;
pub use multipath::{
    plan_direct, plan_direct_dynamic, plan_group_direct, plan_group_via, plan_via_proxies,
    split_chunks, MultipathOptions, TransferHandle,
};
#[allow(deprecated)] // re-exported until the last out-of-tree caller migrates
pub use multipath::plan_direct_gated;
pub use setup::{
    add_coupling_setup, coupling_init_cost, proxy_search_cost_model, COORD_BYTES,
};
pub use planner::{
    Decision, DirectReason, PlanOutcome, PlanPolicy, PlanRequest, SparseMover,
};
pub use proxy::{
    displace_group, find_proxies, find_proxies_avoiding, find_proxies_avoiding_with_stats,
    find_proxies_constrained, find_proxy_groups, find_proxy_groups_global, proxy_groups_along,
    ProxyGroup, ProxyPath,
    ProxySearchConfig, ProxySelection, RejectReason, SearchStats,
};
