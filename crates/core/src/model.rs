//! The analytical transfer-time model of Section IV.B (Equations 1–5).
//!
//! The paper models a memory-to-memory transfer of `d` bytes as
//!
//! ```text
//! t = t_s + t_t + t_r                                  (Eq. 1)
//! ```
//!
//! where `t_s` is sender processing/queueing/injection, `t_t` the wire
//! transfer and `t_r` receiver processing/queueing/storing. With `k`
//! link-disjoint paths through `k` proxies, each carrying `d/k`
//! store-and-forward, the end-to-end time doubles per-hop:
//!
//! ```text
//! t' = 2 (t_s' + t_t' + t_r')                          (Eq. 2)
//! ```
//!
//! For messages above a threshold the per-byte terms dominate and
//! `t_s' ≈ t_s/k`, `t_t' = t_t/k`, `t_r' ≈ t_r/k` (Eq. 4), so the ratio
//! `t'/t → 2/k` (Eq. 5): **k proxies give a k/2 speedup, and at least 3
//! proxies are needed to win at all**. Below the threshold the fixed
//! per-message and per-phase costs dominate and direct transfer is better.
//!
//! Each term decomposes into a fixed overhead plus a per-byte cost; the
//! defaults are derived from the same calibration constants as the
//! simulator so that model and simulation agree on the crossover.

/// Analytical cost model for direct vs. proxied transfers.
///
/// ```
/// use sdm_core::CostModel;
/// let m = CostModel::bgq_defaults();
/// assert_eq!(m.min_beneficial_proxies(), 3);            // the k >= 3 rule
/// assert!(m.should_use_proxies(32 << 20, 4));           // 32 MB: proxies win
/// assert!(!m.should_use_proxies(4 << 10, 4));           // 4 KB: direct wins
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed per-message cost at the sender (descriptor injection), seconds.
    pub sender_overhead: f64,
    /// Fixed per-message cost at the receiver, seconds.
    pub receiver_overhead: f64,
    /// Fixed cost of one RMA synchronization phase (the proxy protocol
    /// pays one per hop stage), seconds.
    pub phase_overhead: f64,
    /// Per-byte transfer cost of one path (1 / single-path bandwidth).
    pub per_byte: f64,
    /// Pipeline latency of one path traversal, seconds.
    pub path_latency: f64,
}

impl CostModel {
    /// Model with the paper-calibrated defaults (single-path put peak of
    /// 1.6 GB/s, microsecond-scale message overheads, ~35 µs per RMA
    /// synchronization phase).
    pub fn bgq_defaults() -> CostModel {
        CostModel {
            sender_overhead: 1.2e-6,
            receiver_overhead: 0.8e-6,
            phase_overhead: 35e-6,
            per_byte: 1.0 / 1.6e9,
            path_latency: 0.5e-6,
        }
    }

    /// Build a model from simulator parameters.
    pub fn from_sim_config(c: &bgq_netsim::SimConfig, mean_hops: f64) -> CostModel {
        CostModel {
            sender_overhead: c.send_overhead,
            receiver_overhead: c.recv_overhead,
            phase_overhead: c.rma_phase_overhead,
            per_byte: 1.0 / c.per_flow_cap,
            path_latency: mean_hops * c.hop_latency,
        }
    }

    /// Eq. 1: time for a direct single-path transfer of `bytes`.
    pub fn direct_time(&self, bytes: u64) -> f64 {
        self.sender_overhead
            + self.receiver_overhead
            + self.path_latency
            + bytes as f64 * self.per_byte
    }

    /// Eq. 2: time for a transfer of `bytes` over `k` proxy paths,
    /// store-and-forward, equal split.
    ///
    /// Each of the two stages moves `bytes/k` per path concurrently; the
    /// sender injects `k` descriptors serially; each stage pays one
    /// synchronization phase.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn proxy_time(&self, bytes: u64, k: u32) -> f64 {
        assert!(k > 0, "need at least one path");
        let chunk = bytes as f64 / k as f64;
        let stage = k as f64 * self.sender_overhead   // serial injections
            + self.receiver_overhead
            + self.path_latency
            + self.phase_overhead
            + chunk * self.per_byte;
        2.0 * stage
    }

    /// Predicted speedup of `k` proxies over direct for `bytes`
    /// (`> 1` means proxies win).
    pub fn speedup(&self, bytes: u64, k: u32) -> f64 {
        self.direct_time(bytes) / self.proxy_time(bytes, k)
    }

    /// Eq. 5's asymptotic speedup: `k/2`.
    pub fn asymptotic_speedup(k: u32) -> f64 {
        k as f64 / 2.0
    }

    /// The message-size threshold above which `k` proxies beat a direct
    /// transfer, or `None` if they never do (k < 3; Eq. 5's condition).
    ///
    /// Solves `direct_time(d) = proxy_time(d, k)` for `d`:
    /// both are affine in `d`, direct with slope `per_byte` and proxies
    /// with slope `2·per_byte/k`, so a finite positive crossover exists
    /// iff `k > 2` (the paper's "at least 3 proxies" rule).
    pub fn threshold_bytes(&self, k: u32) -> Option<u64> {
        assert!(k > 0);
        let slope_direct = self.per_byte;
        let slope_proxy = 2.0 * self.per_byte / k as f64;
        if slope_proxy >= slope_direct {
            return None; // k <= 2: proxies never win
        }
        let fixed_direct = self.sender_overhead + self.receiver_overhead + self.path_latency;
        let fixed_proxy = 2.0
            * (k as f64 * self.sender_overhead
                + self.receiver_overhead
                + self.path_latency
                + self.phase_overhead);
        let d = (fixed_proxy - fixed_direct) / (slope_direct - slope_proxy);
        if d <= 0.0 {
            Some(0)
        } else {
            Some(d.ceil() as u64)
        }
    }

    /// Minimum number of proxies for which proxying can ever win (the
    /// paper's `k >= 3`).
    pub fn min_beneficial_proxies(&self) -> u32 {
        for k in 1..=16 {
            if self.threshold_bytes(k).is_some() {
                return k;
            }
        }
        unreachable!("slope condition must hold for some k <= 16")
    }

    /// Decision procedure: should a transfer of `bytes` with `k` available
    /// proxies use them?
    pub fn should_use_proxies(&self, bytes: u64, k: u32) -> bool {
        if k == 0 {
            return false;
        }
        match self.threshold_bytes(k) {
            Some(th) => bytes >= th,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::bgq_defaults()
    }

    #[test]
    fn direct_time_is_affine_in_bytes() {
        let m = m();
        let t1 = m.direct_time(1_000_000);
        let t2 = m.direct_time(2_000_000);
        let t3 = m.direct_time(3_000_000);
        assert!((t3 - t2) - (t2 - t1) < 1e-12);
        assert!(t2 > t1);
    }

    #[test]
    fn two_proxies_never_win() {
        let m = m();
        assert_eq!(m.threshold_bytes(1), None);
        assert_eq!(m.threshold_bytes(2), None);
        for bytes in [1u64 << 10, 1 << 20, 1 << 30] {
            assert!(m.speedup(bytes, 2) < 1.0, "2 proxies won at {bytes}");
        }
    }

    #[test]
    fn min_beneficial_is_three() {
        assert_eq!(m().min_beneficial_proxies(), 3);
    }

    #[test]
    fn asymptotic_speedup_is_k_over_2() {
        let m = m();
        let huge = 4u64 << 30;
        for k in [3u32, 4, 5, 8] {
            let s = m.speedup(huge, k);
            let expect = CostModel::asymptotic_speedup(k);
            assert!(
                (s - expect).abs() / expect < 0.05,
                "k={k}: speedup {s} vs asymptotic {expect}"
            );
        }
    }

    #[test]
    fn threshold_matches_paper_fig5_ballpark() {
        // Fig. 5: with 4 proxies between two nodes the crossover is 256 KB.
        let th = m().threshold_bytes(4).unwrap();
        assert!(
            (128 * 1024..=512 * 1024).contains(&th),
            "4-proxy threshold {th} not within 2x of 256 KB"
        );
    }

    #[test]
    fn small_messages_prefer_direct() {
        let m = m();
        assert!(!m.should_use_proxies(1024, 4));
        assert!(!m.should_use_proxies(64 * 1024, 4));
        assert!(m.should_use_proxies(128 << 20, 4));
    }

    #[test]
    fn threshold_is_consistent_with_speedup() {
        let m = m();
        for k in [3u32, 4, 5] {
            let th = m.threshold_bytes(k).unwrap();
            assert!(m.speedup(th + 4096, k) >= 1.0, "just above threshold must win");
            if th > 4096 {
                assert!(m.speedup(th - 4096, k) <= 1.0, "just below threshold must lose");
            }
        }
    }

    #[test]
    fn more_proxies_lower_threshold() {
        let m = m();
        let t3 = m.threshold_bytes(3).unwrap();
        let t4 = m.threshold_bytes(4).unwrap();
        let t8 = m.threshold_bytes(8).unwrap();
        assert!(t4 < t3);
        assert!(t8 < t4);
    }

    #[test]
    fn from_sim_config_round_trips_parameters() {
        let c = bgq_netsim::SimConfig::default();
        let m = CostModel::from_sim_config(&c, 5.0);
        assert_eq!(m.sender_overhead, c.send_overhead);
        assert_eq!(m.per_byte, 1.0 / c.per_flow_cap);
        assert!((m.path_latency - 5.0 * c.hop_latency).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn zero_paths_panics() {
        m().proxy_time(1024, 0);
    }
}
