//! Workspace-wide error type for the planning layer.
//!
//! Every `try_*` entry point in this crate reports failures as an
//! [`SdmError`] instead of panicking; the panicking variants remain as
//! thin wrappers for call sites that treat misuse as a bug. Substrate
//! errors ([`bgq_comm::MachineError`]) convert via `From`, so `?` works
//! across the layer boundary.

use bgq_comm::MachineError;
use bgq_torus::NodeId;

/// Why a planning operation could not be carried out.
#[derive(Debug, Clone, PartialEq)]
pub enum SdmError {
    /// The underlying machine rejected its configuration.
    Machine(MachineError),
    /// The operation needs an I/O layout (psets/bridges/IONs) but the
    /// partition is not a whole number of psets.
    NoIoLayout,
    /// A per-ION aggregator count outside the paper's candidate list `P`.
    CountNotInP(u32),
    /// The minimum per-aggregator volume `S` must be positive.
    NonPositiveMinAggBytes,
    /// Data assignment needs at least one aggregator.
    NoAggregators,
    /// Assignment chunk sizes must be positive.
    NonPositiveChunk,
    /// An assignment references a node that is not in the aggregator set.
    UnknownAggregator(NodeId),
    /// A transfer endpoint is down in the supplied health mask; no plan
    /// can deliver to or from a failed node.
    EndpointDown(NodeId),
    /// Every precomputed aggregator for the requested count is on a down
    /// node; the collective cannot be staged until something recovers.
    NoHealthyAggregators,
}

impl std::fmt::Display for SdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SdmError::Machine(e) => write!(f, "{e}"),
            SdmError::NoIoLayout => {
                write!(f, "machine has no I/O layout (not a pset multiple)")
            }
            SdmError::CountNotInP(c) => write!(f, "aggregator count {c} not in P"),
            SdmError::NonPositiveMinAggBytes => write!(f, "S must be positive"),
            SdmError::NoAggregators => write!(f, "need at least one aggregator"),
            SdmError::NonPositiveChunk => write!(f, "max_chunk must be positive"),
            SdmError::UnknownAggregator(n) => {
                write!(f, "assignment targets unknown aggregator {n}")
            }
            SdmError::EndpointDown(n) => {
                write!(f, "transfer endpoint {n} is down")
            }
            SdmError::NoHealthyAggregators => {
                write!(f, "no healthy aggregators at the requested count")
            }
        }
    }
}

impl std::error::Error for SdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdmError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for SdmError {
    fn from(e: MachineError) -> SdmError {
        match e {
            MachineError::NoIoLayout => SdmError::NoIoLayout,
            other => SdmError::Machine(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_errors_convert() {
        let e: SdmError = MachineError::NoIoLayout.into();
        assert_eq!(e, SdmError::NoIoLayout);
        let e: SdmError = MachineError::RandomizedZone(bgq_torus::Zone::Z0).into();
        assert!(matches!(e, SdmError::Machine(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_matches_legacy_panic_messages() {
        assert_eq!(SdmError::CountNotInP(3).to_string(), "aggregator count 3 not in P");
        assert_eq!(SdmError::NonPositiveChunk.to_string(), "max_chunk must be positive");
    }
}
