//! Setup-phase costs of the paper's algorithms.
//!
//! Algorithm 1's Init part exchanges the coordinates of all sources and
//! destinations and computes each node's proxy set; Algorithm 2's Init
//! precomputes the aggregator table. The paper argues both are cheap
//! ("run once … the overhead for searching for proxies is negligible",
//! §IV.C) and amortized over many transfers. These helpers make that
//! claim checkable: they model the one-time communication cost and let a
//! plan include it explicitly, so experiments can report amortized vs.
//! cold-start throughput.

use crate::proxy::ProxySearchConfig;
use bgq_comm::{CollectiveModel, Program};
use bgq_netsim::TransferId;
use bgq_torus::NodeId;

/// Bytes to ship one node's coordinates (5 × u16, padded).
pub const COORD_BYTES: u64 = 16;

/// Modeled cost of Algorithm 1's Init: an allgather of the coordinates of
/// all `m` sources and `n` destinations over the participants.
pub fn coupling_init_cost(prog: &Program<'_>, m: u32, n: u32) -> f64 {
    let cm = CollectiveModel::new(prog.machine());
    let participants = m + n;
    // Allgather payload grows to (m+n) coordinate records.
    cm.allreduce(participants, (m as u64 + n as u64) * COORD_BYTES)
}

/// The search-work model of Algorithm 1 part II: `O(M·N·L)` candidate
/// checks (paper §IV.C), each a couple of route computations. Returns the
/// modeled CPU seconds for one node's search.
pub fn proxy_search_cost_model(
    m_sources: u32,
    n_dests_per_source: u32,
    cfg: &ProxySearchConfig,
    per_check_seconds: f64,
) -> f64 {
    // 2L directions x offsets checked per (source, destination).
    let checks = 2.0
        * bgq_torus::NDIMS as f64
        * cfg.max_offset as f64
        * m_sources as f64
        * n_dests_per_source as f64;
    checks * per_check_seconds
}

/// Add the coupling setup (coordinate exchange + local proxy search) to a
/// program as a synchronization token all subsequent transfers should
/// depend on. Returns the token.
pub fn add_coupling_setup(
    prog: &mut Program<'_>,
    sources: &[NodeId],
    dests: &[NodeId],
    cfg: &ProxySearchConfig,
) -> TransferId {
    let comm_cost = coupling_init_cost(prog, sources.len() as u32, dests.len() as u32);
    // Route computation is microseconds; 2 routes per candidate check.
    // Each node runs its own search over its targets (pairwise coupling:
    // one target per source), concurrently with the others.
    let targets_per_source =
        (dests.len() / sources.len().max(1)).max(1) as u32;
    let search_cost = proxy_search_cost_model(1, targets_per_source, cfg, 2e-6);
    let anchor = sources.first().copied().unwrap_or(NodeId(0));
    prog.modeled_sync(anchor, comm_cost + search_cost, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multipath::{plan_group_via, MultipathOptions};
    use crate::proxy::find_proxy_groups;
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, Zone};

    fn machine() -> Machine {
        Machine::new(standard_shape(512).unwrap(), SimConfig::default())
    }

    #[test]
    fn init_cost_grows_with_group_size() {
        let m = machine();
        let p = Program::new(&m);
        let small = coupling_init_cost(&p, 8, 8);
        let large = coupling_init_cost(&p, 256, 256);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn search_cost_model_scales_with_mnl() {
        let cfg = ProxySearchConfig::default();
        let a = proxy_search_cost_model(10, 1, &cfg, 1e-6);
        let b = proxy_search_cost_model(20, 1, &cfg, 1e-6);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn setup_is_negligible_for_large_coupled_transfers() {
        // The paper's claim: setup overhead is negligible relative to the
        // data movement it enables.
        let m = machine();
        let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
        let dests: Vec<NodeId> = (480..512).map(NodeId).collect();
        let groups = find_proxy_groups(
            m.shape(),
            Zone::Z2,
            &sources,
            &dests,
            &ProxySearchConfig::default(),
        );
        assert!(!groups.is_empty());

        // Cold start: setup gates every transfer.
        let mut prog = Program::new(&m);
        let setup = add_coupling_setup(&mut prog, &sources, &dests, &ProxySearchConfig::default());
        let rep_setup_only = {
            let r = prog.run();
            r.delivered_at(setup)
        };

        let mut prog = Program::new(&m);
        let h = plan_group_via(
            &mut prog,
            &sources,
            &dests,
            32 << 20,
            &groups,
            false,
            &MultipathOptions::default(),
        );
        let t_transfer = h.completed_at(&prog.run());

        assert!(
            rep_setup_only < t_transfer * 0.05,
            "setup {rep_setup_only} not negligible vs transfer {t_transfer}"
        );
    }
}
