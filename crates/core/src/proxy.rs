//! Algorithm 1: selecting the number and location of proxies.
//!
//! A *proxy* is a compute node through which one chunk of a logical message
//! is relayed (source → proxy → destination, store-and-forward), adding one
//! extra link-disjoint path on top of the deterministic default route.
//! Because BG/Q zone-2/3 routes are known a priori, candidate proxies can
//! be checked for link-disjointness before any data moves.
//!
//! Following the paper (§IV.C), candidates are searched in the `2L`
//! axis directions around the source, dimensions visited in routing order
//! (longest first), a small offset range per direction playing the role of
//! the `ε, δ, θ, σ` placement offsets of Figure 4. A candidate is accepted
//! if its two-segment path shares no directed link with any previously
//! accepted path (nor with itself). If fewer than `min_proxies` (3, from
//! the cost model) are found, the search reports failure and the caller
//! falls back to a direct transfer.

use bgq_comm::HealthMask;
use bgq_torus::{route, Dim, Direction, NodeId, Route, Shape, Sign, Zone};
use std::collections::HashSet;

/// Tunables for the proxy search.
#[derive(Debug, Clone)]
pub struct ProxySearchConfig {
    /// Minimum useful number of proxies (Eq. 5: at least 3).
    pub min_proxies: usize,
    /// Upper bound on proxies per transfer (at most `2L` = 10 directions).
    pub max_proxies: usize,
    /// Offsets tried along each direction (the paper's region offsets).
    pub max_offset: u16,
}

impl Default for ProxySearchConfig {
    fn default() -> Self {
        ProxySearchConfig {
            min_proxies: 3,
            max_proxies: 10,
            max_offset: 3,
        }
    }
}

/// A selected proxy and its two route segments.
#[derive(Debug, Clone)]
pub struct ProxyPath {
    pub proxy: NodeId,
    pub to_proxy: Route,
    pub from_proxy: Route,
}

impl ProxyPath {
    /// Total hops over both segments.
    pub fn hops(&self) -> usize {
        self.to_proxy.hops() + self.from_proxy.hops()
    }

    /// Every directed link the path crosses, both segments in order.
    pub fn links(&self) -> impl Iterator<Item = bgq_torus::LinkId> + '_ {
        path_links(self)
    }
}

/// Result of a per-pair proxy search.
#[derive(Debug, Clone)]
pub struct ProxySelection {
    pub paths: Vec<ProxyPath>,
}

impl ProxySelection {
    /// Number of proxies found.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The proxy nodes.
    pub fn proxies(&self) -> Vec<NodeId> {
        self.paths.iter().map(|p| p.proxy).collect()
    }
}

fn path_links(p: &ProxyPath) -> impl Iterator<Item = bgq_torus::LinkId> + '_ {
    p.to_proxy
        .links
        .iter()
        .chain(p.from_proxy.links.iter())
        .copied()
}

/// Why one candidate proxy was rejected by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The candidate is the source or destination itself.
    Endpoint,
    /// The candidate's two segments share a link with each other.
    SegmentsOverlap,
    /// A segment crosses a link the health mask reports dead.
    DeadLink,
    /// A segment crosses a link claimed by an already-accepted path.
    LinkInUse,
}

/// Decision counters from one proxy search — the planner's raw material
/// for `planner.proxy.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates whose two-segment path was actually routed and checked.
    pub candidates_tried: u64,
    /// Candidates accepted into the selection.
    pub accepted: u64,
    /// Rejections: segment self-overlap or overlap with accepted paths.
    pub rejected_overlap: u64,
    /// Candidates rejected because a segment crossed a dead link.
    pub dead_link_skips: u64,
    /// Candidates skipped because the proxy node itself was down.
    pub down_node_skips: u64,
    /// Candidates skipped because the node was forbidden (group member).
    pub forbidden_skips: u64,
}

/// Try one candidate proxy; `used` holds links claimed by accepted paths.
pub(crate) fn try_candidate(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    proxy: NodeId,
    used: &HashSet<bgq_torus::LinkId>,
) -> Option<ProxyPath> {
    let none = HashSet::new();
    try_candidate_explained(shape, zone, src, dst, proxy, used, &none).ok()
}

/// [`try_candidate`] with the rejection reason made explicit. `dead`
/// holds health-mask dead links, checked before `used` so a skip caused
/// by a failure is distinguishable from ordinary disjointness pressure.
pub(crate) fn try_candidate_explained(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    proxy: NodeId,
    used: &HashSet<bgq_torus::LinkId>,
    dead: &HashSet<bgq_torus::LinkId>,
) -> Result<ProxyPath, RejectReason> {
    if proxy == src || proxy == dst {
        return Err(RejectReason::Endpoint);
    }
    let to_proxy = route(shape, src, proxy, zone);
    let from_proxy = route(shape, proxy, dst, zone);
    // The two segments of one path must not overlap each other…
    if to_proxy.shares_link_with(&from_proxy) {
        return Err(RejectReason::SegmentsOverlap);
    }
    let candidate = ProxyPath {
        proxy,
        to_proxy,
        from_proxy,
    };
    // …nor cross a dead link…
    if path_links(&candidate).any(|l| dead.contains(&l)) {
        return Err(RejectReason::DeadLink);
    }
    // …nor any link already claimed by another path.
    if path_links(&candidate).any(|l| used.contains(&l)) {
        return Err(RejectReason::LinkInUse);
    }
    Ok(candidate)
}

/// Algorithm 1, parts I–II, for a single source/destination pair.
///
/// `forbidden` lists nodes that must not serve as proxies (e.g. the other
/// members of communicating groups). Returns an empty selection when fewer
/// than `cfg.min_proxies` link-disjoint paths exist — per the paper, the
/// transfer should then go direct.
///
/// ```
/// use bgq_torus::{standard_shape, NodeId, Zone};
/// use sdm_core::{find_proxies, ProxySearchConfig};
/// use std::collections::HashSet;
///
/// let shape = standard_shape(128).unwrap();
/// let sel = find_proxies(&shape, Zone::Z2, NodeId(0), NodeId(127),
///                        &HashSet::new(), &ProxySearchConfig::default());
/// assert!(sel.len() >= 4); // the paper's Fig. 5 partition supports 4+
/// ```
pub fn find_proxies(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    forbidden: &HashSet<NodeId>,
    cfg: &ProxySearchConfig,
) -> ProxySelection {
    find_proxies_avoiding(shape, zone, src, dst, forbidden, cfg, &HealthMask::healthy())
}

/// [`find_proxies`] under a network [`HealthMask`]: candidates on a down
/// node are skipped, and a path is rejected if either of its segments
/// crosses a dead link. The dead links are seeded into the same `used` set
/// that enforces link-disjointness, so the search routes around failures
/// with no extra passes.
///
/// With a healthy mask this is exactly `find_proxies` — the seed set is
/// empty and no node is skipped.
pub fn find_proxies_avoiding(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    forbidden: &HashSet<NodeId>,
    cfg: &ProxySearchConfig,
    health: &HealthMask,
) -> ProxySelection {
    find_proxies_avoiding_with_stats(shape, zone, src, dst, forbidden, cfg, health).0
}

/// [`find_proxies_avoiding`] plus the search's decision counters: how
/// many candidates were routed, accepted, rejected for overlap, or
/// skipped for dead links / down nodes / forbidden membership. The
/// selection is identical to the plain search — the stats are a pure
/// by-product of the same traversal.
pub fn find_proxies_avoiding_with_stats(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    forbidden: &HashSet<NodeId>,
    cfg: &ProxySearchConfig,
    health: &HealthMask,
) -> (ProxySelection, SearchStats) {
    find_proxies_constrained(
        shape,
        zone,
        src,
        dst,
        forbidden,
        &HashSet::new(),
        cfg,
        health,
    )
}

/// [`find_proxies_avoiding_with_stats`] under an additional set of
/// *claimed* links: links some other transfer of the same batch already
/// owns (a neighborhood exchange's link-claim ledger). Claimed links seed
/// the disjointness set, so every accepted path is link-disjoint not only
/// from its siblings but from everything the caller claimed — candidates
/// crossing them are rejected as ordinary overlap ([`RejectReason::LinkInUse`]),
/// not as dead links, because the hardware is fine, it is merely spoken
/// for. With an empty `claimed` set this is exactly
/// [`find_proxies_avoiding_with_stats`].
#[allow(clippy::too_many_arguments)] // mirrors the unconstrained search plus the ledger
pub fn find_proxies_constrained(
    shape: &Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    forbidden: &HashSet<NodeId>,
    claimed: &HashSet<bgq_torus::LinkId>,
    cfg: &ProxySearchConfig,
    health: &HealthMask,
) -> (ProxySelection, SearchStats) {
    let src_c = shape.coord(src);
    let dst_c = shape.coord(dst);
    let hops = shape.hops_per_dim(src_c, dst_c);

    // Dimensions in routing order (longest first, canonical tie-break),
    // then the remaining dimensions: directions orthogonal to the route
    // are checked too, exactly because they yield disjoint paths.
    let mut dims: Vec<Dim> = Dim::ALL.to_vec();
    dims.sort_by_key(|d| std::cmp::Reverse(hops[d.index()]));

    let dead: HashSet<bgq_torus::LinkId> = health.dead_links.iter().copied().collect();
    let mut used: HashSet<bgq_torus::LinkId> = claimed.clone();
    let mut paths: Vec<ProxyPath> = Vec::new();
    let mut stats = SearchStats::default();

    'dirs: for dim in dims {
        for sign in [Sign::Plus, Sign::Minus] {
            if paths.len() >= cfg.max_proxies {
                break 'dirs;
            }
            let dir = Direction::new(dim, sign);
            // Candidates in this direction: offsets from the source (the
            // paper's regions around S) and offsets from the destination
            // (the regions around T) — the latter diversify the link the
            // path finally arrives on, which dimension-order routing would
            // otherwise funnel into one corridor.
            let max_theta = cfg.max_offset.min(shape.extent(dim).saturating_sub(1));
            let mut from_src = src_c;
            let mut from_dst = dst_c;
            'offsets: for _theta in 1..=max_theta {
                from_src = shape.neighbor(from_src, dir);
                from_dst = shape.neighbor(from_dst, dir);
                for c in [from_src, from_dst] {
                    let p = shape.node_id(c);
                    if forbidden.contains(&p) {
                        stats.forbidden_skips += 1;
                        continue;
                    }
                    if health.down_nodes.contains(&p) {
                        stats.down_node_skips += 1;
                        continue;
                    }
                    stats.candidates_tried += 1;
                    match try_candidate_explained(shape, zone, src, dst, p, &used, &dead) {
                        Ok(path) => {
                            used.extend(path_links(&path));
                            paths.push(path);
                            stats.accepted += 1;
                            break 'offsets; // one proxy per direction
                        }
                        Err(RejectReason::DeadLink) => stats.dead_link_skips += 1,
                        Err(_) => stats.rejected_overlap += 1,
                    }
                }
            }
        }
    }

    let selection = if paths.len() < cfg.min_proxies {
        ProxySelection { paths: Vec::new() }
    } else {
        ProxySelection { paths }
    };
    (selection, stats)
}

/// A group of proxies for a group-to-group transfer: one proxy per source,
/// all displaced the same way (the paper's "groups of proxies", §V.A).
#[derive(Debug, Clone)]
pub struct ProxyGroup {
    pub direction: Direction,
    pub offset: u16,
    /// `nodes[i]` relays the chunk of `sources[i]`.
    pub nodes: Vec<NodeId>,
}

/// Displace every node of `group` by `offset` hops along `direction`.
pub fn displace_group(
    shape: &Shape,
    group: &[NodeId],
    direction: Direction,
    offset: u16,
) -> Vec<NodeId> {
    group
        .iter()
        .map(|&n| {
            let mut c = shape.coord(n);
            for _ in 0..offset {
                c = shape.neighbor(c, direction);
            }
            shape.node_id(c)
        })
        .collect()
}

/// Build proxy groups along explicit directions *without* disjointness
/// checking. Used to reproduce Figure 7's over-provisioning experiment,
/// where a fifth group intentionally interferes with existing paths.
pub fn proxy_groups_along(
    shape: &Shape,
    sources: &[NodeId],
    placements: &[(Direction, u16)],
) -> Vec<ProxyGroup> {
    placements
        .iter()
        .map(|&(direction, offset)| ProxyGroup {
            direction,
            offset,
            nodes: displace_group(shape, sources, direction, offset),
        })
        .collect()
}

/// Algorithm 1 adapted to two communicating groups: find up to
/// `cfg.max_proxies` proxy groups such that, for every source `i`, the
/// path `sources[i] → proxy → dests[i]` is link-disjoint from that
/// source's paths through all previously accepted groups.
///
/// Proxies are not allowed to be members of either group. Returns an empty
/// list when fewer than `cfg.min_proxies` groups qualify.
pub fn find_proxy_groups(
    shape: &Shape,
    zone: Zone,
    sources: &[NodeId],
    dests: &[NodeId],
    cfg: &ProxySearchConfig,
) -> Vec<ProxyGroup> {
    assert_eq!(
        sources.len(),
        dests.len(),
        "group transfer pairs sources to destinations"
    );
    if sources.is_empty() {
        return Vec::new();
    }
    let members: HashSet<NodeId> = sources.iter().chain(dests.iter()).copied().collect();

    // Routing-order directions from the bounding pair (first source/dest).
    let hops = shape.hops_per_dim(shape.coord(sources[0]), shape.coord(dests[0]));
    let mut dims: Vec<Dim> = Dim::ALL.to_vec();
    dims.sort_by_key(|d| std::cmp::Reverse(hops[d.index()]));

    // Per-source sets of links already claimed.
    let mut used: Vec<HashSet<bgq_torus::LinkId>> = vec![HashSet::new(); sources.len()];
    let mut groups: Vec<ProxyGroup> = Vec::new();

    'dirs: for dim in dims {
        for sign in [Sign::Plus, Sign::Minus] {
            if groups.len() >= cfg.max_proxies {
                break 'dirs;
            }
            let dir = Direction::new(dim, sign);
            let max_theta = cfg.max_offset.min(shape.extent(dim).saturating_sub(1));
            'offsets: for theta in 1..=max_theta {
                // Source-side group (displaced copy of S) and dest-side
                // group (displaced copy of T): the latter diversifies the
                // arrival links, as in Figure 4(b)'s P2/P3 regions.
                let mut accepted = false;
                'variants: for base in [sources, dests] {
                    let nodes = displace_group(shape, base, dir, theta);
                    let mut candidate_paths = Vec::with_capacity(sources.len());
                    for (i, (&s, &d)) in sources.iter().zip(dests).enumerate() {
                        let p = nodes[i];
                        if members.contains(&p) {
                            continue 'variants;
                        }
                        match try_candidate(shape, zone, s, d, p, &used[i]) {
                            Some(path) => candidate_paths.push(path),
                            None => continue 'variants,
                        }
                    }
                    // Whole group qualifies: claim its links.
                    for (i, path) in candidate_paths.iter().enumerate() {
                        used[i].extend(path_links(path));
                    }
                    groups.push(ProxyGroup {
                        direction: dir,
                        offset: theta,
                        nodes,
                    });
                    accepted = true;
                    break;
                }
                if accepted {
                    break 'offsets; // one group per direction, try next sign
                }
            }
        }
    }

    if groups.len() < cfg.min_proxies {
        Vec::new()
    } else {
        groups
    }
}

/// Like [`find_proxy_groups`], but with *global* link-disjointness: a
/// candidate group is accepted only if every path it adds is disjoint
/// from the paths of **all** sources' previously accepted groups, not
/// just its own source's. This is stricter — cross-source sharing inside
/// a group's corridor (which per-source checking tolerates and the
/// simulator then prices as contention) is ruled out entirely — so it
/// finds fewer groups, each contributing full bandwidth.
///
/// Returns however many globally clean groups exist (no minimum is
/// enforced; callers combine with per-source groups as they see fit).
pub fn find_proxy_groups_global(
    shape: &Shape,
    zone: Zone,
    sources: &[NodeId],
    dests: &[NodeId],
    cfg: &ProxySearchConfig,
) -> Vec<ProxyGroup> {
    assert_eq!(sources.len(), dests.len());
    if sources.is_empty() {
        return Vec::new();
    }
    let members: HashSet<NodeId> = sources.iter().chain(dests.iter()).copied().collect();
    let hops = shape.hops_per_dim(shape.coord(sources[0]), shape.coord(dests[0]));
    let mut dims: Vec<Dim> = Dim::ALL.to_vec();
    dims.sort_by_key(|d| std::cmp::Reverse(hops[d.index()]));

    let mut used: HashSet<bgq_torus::LinkId> = HashSet::new();
    let mut groups: Vec<ProxyGroup> = Vec::new();

    'dirs: for dim in dims {
        for sign in [Sign::Plus, Sign::Minus] {
            if groups.len() >= cfg.max_proxies {
                break 'dirs;
            }
            let dir = Direction::new(dim, sign);
            let max_theta = cfg.max_offset.min(shape.extent(dim).saturating_sub(1));
            'offsets: for theta in 1..=max_theta {
                'variants: for base in [sources, dests] {
                    let nodes = displace_group(shape, base, dir, theta);
                    let mut candidate_paths = Vec::with_capacity(sources.len());
                    // One shared set: candidates must clear links claimed
                    // by every accepted group AND by the other paths of
                    // this same candidate group.
                    let mut tentative = used.clone();
                    for (i, (&s, &d)) in sources.iter().zip(dests).enumerate() {
                        let p = nodes[i];
                        if members.contains(&p) {
                            continue 'variants;
                        }
                        match try_candidate(shape, zone, s, d, p, &tentative) {
                            Some(path) => {
                                tentative.extend(path_links(&path));
                                candidate_paths.push(path);
                            }
                            None => continue 'variants,
                        }
                    }
                    used = tentative;
                    groups.push(ProxyGroup {
                        direction: dir,
                        offset: theta,
                        nodes,
                    });
                    break 'offsets;
                }
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::standard_shape;

    fn cfg() -> ProxySearchConfig {
        ProxySearchConfig::default()
    }

    /// Paper Fig. 5 setting: first and last node of the 128-node partition.
    #[test]
    fn fig5_setting_finds_four_plus_proxies() {
        let shape = standard_shape(128).unwrap();
        let sel = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        assert!(
            sel.len() >= 4,
            "the 2x2x4x4x2 partition supports 4 proxies (paper uses +B,+C,+D,+E), got {}",
            sel.len()
        );
    }

    #[test]
    fn selected_paths_are_pairwise_link_disjoint() {
        let shape = standard_shape(512).unwrap();
        let sel = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(511),
            &HashSet::new(),
            &cfg(),
        );
        assert!(sel.len() >= 3);
        let all: Vec<Vec<bgq_torus::LinkId>> = sel
            .paths
            .iter()
            .map(|p| path_links(p).collect())
            .collect();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                for l in &all[i] {
                    assert!(
                        !all[j].contains(l),
                        "paths {i} and {j} share link {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn segments_within_a_path_are_disjoint() {
        let shape = standard_shape(512).unwrap();
        let sel = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(3),
            NodeId(200),
            &HashSet::new(),
            &cfg(),
        );
        for p in &sel.paths {
            assert!(!p.to_proxy.shares_link_with(&p.from_proxy));
            assert_eq!(p.to_proxy.dst, p.proxy);
            assert_eq!(p.from_proxy.src, p.proxy);
        }
    }

    #[test]
    fn proxies_avoid_forbidden_nodes() {
        let shape = standard_shape(128).unwrap();
        let sel_free = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        let forbidden: HashSet<NodeId> = sel_free.proxies().into_iter().collect();
        let sel = find_proxies(&shape, Zone::Z2, NodeId(0), NodeId(127), &forbidden, &cfg());
        for p in sel.proxies() {
            assert!(!forbidden.contains(&p));
        }
    }

    #[test]
    fn too_small_partition_falls_back_to_direct() {
        // A 1D-ish degenerate shape cannot provide 3 disjoint detours
        // between adjacent nodes.
        let shape = Shape::new(2, 1, 1, 1, 1);
        let sel = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(1),
            &HashSet::new(),
            &cfg(),
        );
        assert!(sel.is_empty(), "must signal fallback to direct transfer");
    }

    #[test]
    fn group_search_finds_groups_in_2k_partition() {
        // Paper Fig. 6: two groups of 256 nodes at opposite corners of the
        // 4x4x4x16x2 partition; 3 proxy groups were found.
        let shape = standard_shape(2048).unwrap();
        let n = shape.num_nodes();
        let sources: Vec<NodeId> = (0..256).map(NodeId).collect();
        let dests: Vec<NodeId> = (n - 256..n).map(NodeId).collect();
        let groups = find_proxy_groups(&shape, Zone::Z2, &sources, &dests, &cfg());
        assert!(
            groups.len() >= 3,
            "expected >= 3 proxy groups as in the paper, got {}",
            groups.len()
        );
        for g in &groups {
            assert_eq!(g.nodes.len(), 256);
        }
    }

    #[test]
    fn group_paths_are_disjoint_per_source() {
        let shape = standard_shape(512).unwrap();
        let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
        let dests: Vec<NodeId> = (480..512).map(NodeId).collect();
        let groups = find_proxy_groups(&shape, Zone::Z2, &sources, &dests, &cfg());
        assert!(groups.len() >= 3);
        for (i, (&s, &d)) in sources.iter().zip(&dests).enumerate() {
            let mut seen: HashSet<bgq_torus::LinkId> = HashSet::new();
            for g in &groups {
                let p = g.nodes[i];
                let seg1 = route(&shape, s, p, Zone::Z2);
                let seg2 = route(&shape, p, d, Zone::Z2);
                for l in seg1.links.iter().chain(&seg2.links) {
                    assert!(seen.insert(*l), "source {i}: link {l} reused across groups");
                }
            }
        }
    }

    #[test]
    fn displace_group_wraps() {
        let shape = standard_shape(128).unwrap();
        let g = displace_group(
            &shape,
            &[NodeId(0)],
            Direction::new(Dim::C, Sign::Minus),
            1,
        );
        let c = shape.coord(g[0]);
        assert_eq!(c.get(Dim::C), 3);
    }

    #[test]
    fn global_search_paths_are_disjoint_across_all_sources() {
        let shape = standard_shape(512).unwrap();
        let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
        let dests: Vec<NodeId> = (480..512).map(NodeId).collect();
        let groups = find_proxy_groups_global(&shape, Zone::Z2, &sources, &dests, &cfg());
        assert!(!groups.is_empty());
        let mut seen: HashSet<bgq_torus::LinkId> = HashSet::new();
        for g in &groups {
            for (i, (&s, &d)) in sources.iter().zip(&dests).enumerate() {
                let p = g.nodes[i];
                let seg1 = route(&shape, s, p, Zone::Z2);
                let seg2 = route(&shape, p, d, Zone::Z2);
                for l in seg1.links.iter().chain(&seg2.links) {
                    assert!(seen.insert(*l), "global search reused link {l}");
                }
            }
        }
    }

    #[test]
    fn global_search_finds_at_most_per_source_count() {
        let shape = standard_shape(2048).unwrap();
        let n = shape.num_nodes();
        let sources: Vec<NodeId> = (0..256).map(NodeId).collect();
        let dests: Vec<NodeId> = (n - 256..n).map(NodeId).collect();
        let per_source = find_proxy_groups(&shape, Zone::Z2, &sources, &dests, &cfg());
        let global = find_proxy_groups_global(
            &shape,
            Zone::Z2,
            &sources,
            &dests,
            &ProxySearchConfig {
                min_proxies: 0,
                ..cfg()
            },
        );
        assert!(global.len() <= per_source.len().max(1));
    }

    #[test]
    fn healthy_mask_reproduces_the_plain_search() {
        let shape = standard_shape(128).unwrap();
        let plain = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        let masked = find_proxies_avoiding(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
            &HealthMask::healthy(),
        );
        assert_eq!(plain.proxies(), masked.proxies());
    }

    #[test]
    fn health_aware_search_routes_around_dead_links() {
        let shape = standard_shape(128).unwrap();
        let free = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        assert!(free.len() >= 4);
        // Kill every link of the first selected path.
        let mut health = HealthMask::healthy();
        health.dead_links.extend(path_links(&free.paths[0]));
        let sel = find_proxies_avoiding(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
            &health,
        );
        assert!(sel.len() >= 3, "survivors must still form a selection");
        for p in &sel.paths {
            for l in path_links(p) {
                assert!(!health.dead_links.contains(&l), "path crosses dead link {l}");
            }
        }
    }

    #[test]
    fn health_aware_search_skips_down_nodes() {
        let shape = standard_shape(128).unwrap();
        let free = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        let mut health = HealthMask::healthy();
        health.down_nodes.extend(free.proxies());
        let sel = find_proxies_avoiding(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
            &health,
        );
        for p in sel.proxies() {
            assert!(!health.down_nodes.contains(&p), "selected a down node {p}");
        }
    }

    #[test]
    fn stats_search_returns_the_same_selection() {
        let shape = standard_shape(128).unwrap();
        let mut health = HealthMask::healthy();
        let free = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        health.dead_links.extend(path_links(&free.paths[0]));
        let plain = find_proxies_avoiding(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
            &health,
        );
        let (with_stats, stats) = find_proxies_avoiding_with_stats(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
            &health,
        );
        assert_eq!(plain.proxies(), with_stats.proxies());
        assert_eq!(stats.accepted as usize, with_stats.len());
        assert!(stats.candidates_tried >= stats.accepted);
        assert!(
            stats.dead_link_skips >= 1,
            "killing a whole selected path must surface as dead-link skips: {stats:?}"
        );
    }

    #[test]
    fn constrained_search_respects_claimed_links() {
        let shape = standard_shape(128).unwrap();
        let free = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        assert!(free.len() >= 4);
        // Claim every link of the first two selected paths, as a batch
        // planner's ledger would.
        let claimed: HashSet<bgq_torus::LinkId> = free.paths[..2]
            .iter()
            .flat_map(|p| p.links())
            .collect();
        let (sel, stats) = find_proxies_constrained(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &claimed,
            &cfg(),
            &HealthMask::healthy(),
        );
        for p in &sel.paths {
            for l in p.links() {
                assert!(!claimed.contains(&l), "path crosses claimed link {l}");
            }
        }
        // Claimed links surface as overlap pressure, never as dead links.
        assert_eq!(stats.dead_link_skips, 0);
        assert!(stats.rejected_overlap >= 1, "{stats:?}");

        // An empty claim set reproduces the unconstrained search exactly.
        let (unclaimed, _) = find_proxies_constrained(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &HashSet::new(),
            &cfg(),
            &HealthMask::healthy(),
        );
        assert_eq!(unclaimed.proxies(), free.proxies());
    }

    #[test]
    fn stats_count_down_node_and_forbidden_skips() {
        let shape = standard_shape(128).unwrap();
        let free = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg(),
        );
        let mut health = HealthMask::healthy();
        health.down_nodes.insert(free.proxies()[0]);
        let forbidden: HashSet<NodeId> = free.proxies()[1..2].iter().copied().collect();
        let (_, stats) = find_proxies_avoiding_with_stats(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &forbidden,
            &cfg(),
            &health,
        );
        assert!(stats.down_node_skips >= 1, "{stats:?}");
        assert!(stats.forbidden_skips >= 1, "{stats:?}");
    }

    #[test]
    fn proxy_groups_along_builds_requested_count() {
        let shape = standard_shape(512).unwrap();
        let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
        let placements = [
            (Direction::new(Dim::A, Sign::Plus), 1),
            (Direction::new(Dim::A, Sign::Minus), 1),
            (Direction::new(Dim::B, Sign::Plus), 1),
            (Direction::new(Dim::B, Sign::Minus), 1),
            (Direction::new(Dim::C, Sign::Plus), 1),
        ];
        let groups = proxy_groups_along(&shape, &sources, &placements);
        assert_eq!(groups.len(), 5);
    }

    use bgq_torus::Shape;
}
