//! Algorithm 1, part III: multipath data movement plans.
//!
//! Builds the transfer DAG that moves one logical message (or one group
//! coupling) over `k` proxy paths: phase 1 puts the chunks from the source
//! to the proxies; each proxy forwards its chunk to the destination as soon
//! as it is fully received (store-and-forward, as modelled in §IV.B). Each
//! phase pays an RMA synchronization epoch; the proxy additionally pays a
//! software forwarding overhead.
//!
//! An optional *pipelined* mode (the paper's §VII future work) splits each
//! chunk into sub-chunks that are forwarded as they arrive, overlapping the
//! two phases.

use crate::proxy::ProxyGroup;
use bgq_comm::Program;
use bgq_netsim::TransferId;
use bgq_torus::NodeId;

/// Options for multipath plan construction.
#[derive(Debug, Clone, Default)]
pub struct MultipathOptions {
    /// If set, chunks are forwarded in sub-chunks of this size (pipelined
    /// forwarding, §VII); if `None`, pure store-and-forward.
    pub pipeline_chunk: Option<u64>,
    /// If set, no transfer of the plan starts before this token is
    /// delivered (epoch chaining: e.g. a previous coupling step's
    /// completion).
    pub gate: Option<TransferId>,
}

pub use bgq_comm::TransferHandle;

/// Split `bytes` into `k` near-equal chunks (first chunks take the
/// remainder), never returning zero-sized chunks unless `bytes < k`.
pub fn split_chunks(bytes: u64, k: usize) -> Vec<u64> {
    assert!(k > 0, "cannot split into zero chunks");
    let base = bytes / k as u64;
    let rem = (bytes % k as u64) as usize;
    (0..k)
        .map(|i| base + u64::from(i < rem))
        .collect()
}

/// Plan a plain direct transfer (the baseline in every microbenchmark).
pub fn plan_direct(prog: &mut Program<'_>, src: NodeId, dst: NodeId, bytes: u64) -> TransferHandle {
    let t = prog.put(src, dst, bytes);
    TransferHandle {
        tokens: vec![t],
        bytes,
    }
}

/// Like [`plan_direct`], but honoring `opts.gate`: the put does not start
/// before the gate token is delivered. With no gate this is exactly
/// [`plan_direct`]. This is the direct-plan primitive behind the unified
/// planner entry point (`SparseMover::plan`).
pub(crate) fn direct_gated(
    prog: &mut Program<'_>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    opts: &MultipathOptions,
) -> TransferHandle {
    let deps: Vec<TransferId> = opts.gate.into_iter().collect();
    let t = prog.put_after(src, dst, bytes, deps, 0.0);
    TransferHandle {
        tokens: vec![t],
        bytes,
    }
}

/// Like [`plan_direct`], but honoring `opts.gate`.
#[deprecated(
    note = "use `SparseMover::plan` with `PlanPolicy::DirectOnly` (the gate comes from \
            `MultipathOptions::gate` via `SparseMover::with_multipath`)"
)]
pub fn plan_direct_gated(
    prog: &mut Program<'_>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    opts: &MultipathOptions,
) -> TransferHandle {
    direct_gated(prog, src, dst, bytes, opts)
}

/// Plan a direct transfer under *dynamic* routing (zones 0/1): the
/// message's packets spread over several dimension orders, modelled as
/// `samples` equal sub-flows each following one randomly drawn zone-0
/// route. This is how large default-routed messages behave on the real
/// machine when the partition offers routing flexibility (§III), and it
/// serves as a second baseline for the multipath comparison.
pub fn plan_direct_dynamic<R: rand::Rng + ?Sized>(
    prog: &mut Program<'_>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    samples: usize,
    rng: &mut R,
) -> TransferHandle {
    assert!(samples > 0, "need at least one route sample");
    let shape = *prog.machine().shape();
    let chunks = split_chunks(bytes, samples);
    let mut tokens = Vec::with_capacity(samples);
    for &chunk in &chunks {
        let route = bgq_torus::route_with_rng(&shape, src, dst, bgq_torus::Zone::Z0, rng);
        let resources = route
            .links
            .iter()
            .map(|l| prog.machine().torus_resource(*l))
            .collect();
        tokens.push(prog.add_spec(
            bgq_netsim::TransferSpec::new(src.0, dst.0, chunk, resources),
        ));
    }
    TransferHandle { tokens, bytes }
}

/// Plan one chunk over one proxy path.
fn plan_chunk(
    prog: &mut Program<'_>,
    src: NodeId,
    proxy: NodeId,
    dst: NodeId,
    chunk: u64,
    opts: &MultipathOptions,
) -> Vec<TransferId> {
    let cfg = prog.machine().config();
    let phase = cfg.rma_phase_overhead;
    let fwd = cfg.forward_overhead;

    let gate: Vec<TransferId> = opts.gate.into_iter().collect();
    if proxy == src {
        // Degenerate "proxy is the source itself": the chunk takes the
        // direct path (used by Fig. 7's over-provisioning study).
        return vec![prog.put_after(src, dst, chunk, gate, phase)];
    }

    match opts.pipeline_chunk {
        None => {
            let p1 = prog.put_after(src, proxy, chunk, gate, phase);
            let p2 = prog.put_after(proxy, dst, chunk, vec![p1], phase + fwd);
            vec![p2]
        }
        Some(sub) => {
            assert!(sub > 0, "pipeline chunk must be positive");
            // Sub-chunks form a pipeline: sub-chunk k's first leg starts
            // after sub-chunk k-1's first leg (one stream on the wire, not
            // self-contending flows); its second leg starts once it has
            // arrived at the proxy and the previous forward was issued.
            let mut tokens = Vec::new();
            let mut off = 0u64;
            let mut prev1: Option<TransferId> = None;
            let mut prev2: Option<TransferId> = None;
            let mut first = true;
            while off < chunk.max(1) {
                let sz = sub.min(chunk - off).max(if chunk == 0 { 0 } else { 1 });
                // Phase epoch paid once, on the first sub-chunk of each leg.
                let d1 = if first { phase } else { 0.0 };
                let deps1: Vec<TransferId> = match prev1 {
                    Some(p) => vec![p],
                    None => gate.clone(),
                };
                let p1 = prog.put_after(src, proxy, sz, deps1, d1);
                let d2 = if first { phase } else { 0.0 } + fwd;
                let deps2: Vec<TransferId> =
                    std::iter::once(p1).chain(prev2).collect();
                let p2 = prog.put_after(proxy, dst, sz, deps2, d2);
                tokens.push(p2);
                prev1 = Some(p1);
                prev2 = Some(p2);
                first = false;
                if chunk == 0 {
                    break;
                }
                off += sz;
            }
            tokens
        }
    }
}

/// Plan a multipath transfer of `bytes` from `src` to `dst` via `proxies`
/// (one chunk per proxy).
///
/// # Panics
/// Panics if `proxies` is empty — callers must fall back to
/// [`plan_direct`] when the proxy search failed.
pub fn plan_via_proxies(
    prog: &mut Program<'_>,
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    proxies: &[NodeId],
    opts: &MultipathOptions,
) -> TransferHandle {
    assert!(!proxies.is_empty(), "no proxies given; use plan_direct");
    let chunks = split_chunks(bytes, proxies.len());
    let mut tokens = Vec::new();
    for (&p, &chunk) in proxies.iter().zip(&chunks) {
        tokens.extend(plan_chunk(prog, src, p, dst, chunk, opts));
    }
    TransferHandle { tokens, bytes }
}

/// Plan a direct group-to-group coupling: `sources[i]` sends `bytes` to
/// `dests[i]` over the default single path.
pub fn plan_group_direct(
    prog: &mut Program<'_>,
    sources: &[NodeId],
    dests: &[NodeId],
    bytes: u64,
) -> TransferHandle {
    assert_eq!(sources.len(), dests.len());
    let tokens = sources
        .iter()
        .zip(dests)
        .map(|(&s, &d)| prog.put(s, d, bytes))
        .collect();
    TransferHandle {
        tokens,
        bytes: bytes * sources.len() as u64,
    }
}

/// Plan a multipath group coupling via proxy groups: source `i` splits its
/// `bytes` into one chunk per group, relayed by `groups[g].nodes[i]`.
///
/// `include_direct` adds the direct path as an extra (k+1)-th "path",
/// reproducing Fig. 7's fifth group (the source itself as proxy).
pub fn plan_group_via(
    prog: &mut Program<'_>,
    sources: &[NodeId],
    dests: &[NodeId],
    bytes: u64,
    groups: &[ProxyGroup],
    include_direct: bool,
    opts: &MultipathOptions,
) -> TransferHandle {
    assert_eq!(sources.len(), dests.len());
    assert!(!groups.is_empty(), "no proxy groups; use plan_group_direct");
    for g in groups {
        assert_eq!(
            g.nodes.len(),
            sources.len(),
            "each proxy group must provide one proxy per source"
        );
    }
    let npaths = groups.len() + usize::from(include_direct);
    let mut tokens = Vec::new();
    for (i, (&s, &d)) in sources.iter().zip(dests).enumerate() {
        let chunks = split_chunks(bytes, npaths);
        for (g, &chunk) in groups.iter().zip(&chunks) {
            tokens.extend(plan_chunk(prog, s, g.nodes[i], d, chunk, opts));
        }
        if include_direct {
            tokens.extend(plan_chunk(prog, s, s, d, chunks[npaths - 1], opts));
        }
    }
    TransferHandle {
        tokens,
        bytes: bytes * sources.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::{find_proxies, find_proxy_groups, ProxySearchConfig};
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, Zone};
    use std::collections::HashSet;

    fn machine128() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    fn proxies_for(m: &Machine, src: NodeId, dst: NodeId, max: usize) -> Vec<NodeId> {
        let cfg = ProxySearchConfig {
            max_proxies: max,
            ..Default::default()
        };
        find_proxies(m.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg).proxies()
    }

    #[test]
    fn split_chunks_is_exact_and_balanced() {
        assert_eq!(split_chunks(10, 3), vec![4, 3, 3]);
        assert_eq!(split_chunks(9, 3), vec![3, 3, 3]);
        assert_eq!(split_chunks(2, 4), vec![1, 1, 0, 0]);
        let c = split_chunks(128 << 20, 5);
        assert_eq!(c.iter().sum::<u64>(), 128 << 20);
        assert!(c.iter().max().unwrap() - c.iter().min().unwrap() <= 1);
    }

    #[test]
    fn large_message_proxies_beat_direct() {
        // The heart of Fig. 5: at 128 MB, 4 proxies ≈ 2x direct.
        let m = machine128();
        let (src, dst) = (NodeId(0), NodeId(127));
        let bytes = 128u64 << 20;
        let proxies = proxies_for(&m, src, dst, 4);
        assert_eq!(proxies.len(), 4);

        let mut p_direct = Program::new(&m);
        let h_direct = plan_direct(&mut p_direct, src, dst, bytes);
        let t_direct = h_direct.completed_at(&p_direct.run());

        let mut p_multi = Program::new(&m);
        let h_multi = plan_via_proxies(
            &mut p_multi,
            src,
            dst,
            bytes,
            &proxies,
            &MultipathOptions::default(),
        );
        let t_multi = h_multi.completed_at(&p_multi.run());

        let speedup = t_direct / t_multi;
        assert!(
            (1.7..=2.2).contains(&speedup),
            "expected ~2x speedup with 4 proxies, got {speedup:.2} ({t_direct} vs {t_multi})"
        );
    }

    #[test]
    fn small_message_direct_beats_proxies() {
        let m = machine128();
        let (src, dst) = (NodeId(0), NodeId(127));
        let bytes = 4u64 << 10;
        let proxies = proxies_for(&m, src, dst, 4);

        let mut p_direct = Program::new(&m);
        let h_direct = plan_direct(&mut p_direct, src, dst, bytes);
        let t_direct = h_direct.completed_at(&p_direct.run());

        let mut p_multi = Program::new(&m);
        let h_multi = plan_via_proxies(
            &mut p_multi,
            src,
            dst,
            bytes,
            &proxies,
            &MultipathOptions::default(),
        );
        let t_multi = h_multi.completed_at(&p_multi.run());
        assert!(
            t_direct < t_multi,
            "small messages must prefer direct: {t_direct} vs {t_multi}"
        );
    }

    #[test]
    fn pipelining_beats_store_and_forward() {
        let m = machine128();
        let (src, dst) = (NodeId(0), NodeId(127));
        let bytes = 64u64 << 20;
        let proxies = proxies_for(&m, src, dst, 4);

        let run = |opts: &MultipathOptions| {
            let mut p = Program::new(&m);
            let h = plan_via_proxies(&mut p, src, dst, bytes, &proxies, opts);
            h.completed_at(&p.run())
        };
        let saf = run(&MultipathOptions::default());
        let pipe = run(&MultipathOptions {
            pipeline_chunk: Some(1 << 20),
            ..Default::default()
        });
        assert!(
            pipe < saf,
            "pipelined forwarding should overlap phases: {pipe} vs {saf}"
        );
    }

    #[test]
    fn group_multipath_beats_group_direct_for_large_messages() {
        // Fig. 7 shape: two groups of 32 in the 512-node partition.
        let m = Machine::new(standard_shape(512).unwrap(), SimConfig::default());
        let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
        let dests: Vec<NodeId> = (480..512).map(NodeId).collect();
        let bytes = 32u64 << 20;
        let groups = find_proxy_groups(
            m.shape(),
            Zone::Z2,
            &sources,
            &dests,
            &ProxySearchConfig {
                max_proxies: 4,
                ..Default::default()
            },
        );
        assert!(groups.len() >= 3);

        let mut pd = Program::new(&m);
        let hd = plan_group_direct(&mut pd, &sources, &dests, bytes);
        let td = hd.completed_at(&pd.run());

        let mut pm = Program::new(&m);
        let hm = plan_group_via(
            &mut pm,
            &sources,
            &dests,
            bytes,
            &groups,
            false,
            &MultipathOptions::default(),
        );
        let tm = hm.completed_at(&pm.run());
        assert!(
            tm < td,
            "group multipath should win at 32 MB: {tm} vs {td}"
        );
    }

    #[test]
    fn handle_throughput_accounts_all_bytes() {
        let m = machine128();
        let mut p = Program::new(&m);
        let h = plan_direct(&mut p, NodeId(0), NodeId(1), 1 << 20);
        let rep = p.run();
        assert_eq!(h.bytes, 1 << 20);
        assert!(h.throughput(&rep) > 0.0);
    }

    #[test]
    fn dynamic_direct_routing_is_valid_and_complete() {
        use rand::{rngs::StdRng, SeedableRng};
        let m = machine128();
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = Program::new(&m);
        let h = plan_direct_dynamic(&mut p, NodeId(0), NodeId(127), 8 << 20, 4, &mut rng);
        assert_eq!(h.tokens.len(), 4);
        let rep = p.run();
        assert!(h.completed_at(&rep) > 0.0);
        // Sub-flows share endpoints but may take different dimension
        // orders; total bytes conserved.
        assert_eq!(h.bytes, 8 << 20);
    }

    #[test]
    fn dynamic_splitting_helps_but_multipath_matches_it_deterministically() {
        // Splitting a message over randomly-ordered zone-0 routes does
        // recover bandwidth when collisions permit, but the outcome is
        // left to chance and cannot be coordinated across transfers: a
        // bad draw can even lose to the single deterministic path. The
        // planned proxy scheme must land within a small factor of the
        // randomized alternative's *best* draw while being deterministic,
        // and must clearly beat the deterministic single path.
        use rand::{rngs::StdRng, SeedableRng};
        let m = machine128();
        let bytes = 64u64 << 20;
        let proxies = proxies_for(&m, NodeId(0), NodeId(127), 4);

        let mut pd = Program::new(&m);
        let t_direct = plan_direct(&mut pd, NodeId(0), NodeId(127), bytes)
            .completed_at(&pd.run());

        let mut worst: f64 = 0.0;
        let mut best: f64 = f64::INFINITY;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = Program::new(&m);
            let h = plan_direct_dynamic(&mut p, NodeId(0), NodeId(127), bytes, 4, &mut rng);
            let t = h.completed_at(&p.run());
            worst = worst.max(t);
            best = best.min(t);
        }

        let mut pm = Program::new(&m);
        let hm = plan_via_proxies(
            &mut pm,
            NodeId(0),
            NodeId(127),
            bytes,
            &proxies,
            &MultipathOptions::default(),
        );
        let t_multi = hm.completed_at(&pm.run());

        assert!(
            worst > best,
            "route draws should produce a spread of outcomes: {best}..{worst}"
        );
        assert!(
            best < t_direct * 0.75,
            "a lucky dynamic draw should beat the single path: {best} vs {t_direct}"
        );
        assert!(t_multi < t_direct * 0.6, "multipath should beat single path");
        assert!(
            t_multi < best * 1.25,
            "planned multipath {t_multi} should match randomized splitting's best draw {best}"
        );
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated wrapper's behavior
    fn gated_direct_without_gate_matches_plain_direct() {
        let m = machine128();
        let bytes = 8u64 << 20;
        let mut p1 = Program::new(&m);
        let t1 = plan_direct(&mut p1, NodeId(0), NodeId(127), bytes).completed_at(&p1.run());
        let mut p2 = Program::new(&m);
        let t2 = plan_direct_gated(
            &mut p2,
            NodeId(0),
            NodeId(127),
            bytes,
            &MultipathOptions::default(),
        )
        .completed_at(&p2.run());
        assert_eq!(t1, t2, "no gate must mean no change");
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated wrapper's behavior
    fn gated_direct_waits_for_the_gate() {
        let m = machine128();
        let mut p = Program::new(&m);
        // Gate: a zero-byte self-put that becomes available at t = 1 s.
        let gate = p.add_spec(
            bgq_netsim::TransferSpec::new(0, 0, 0, Vec::new()).not_before(1.0),
        );
        let h = plan_direct_gated(
            &mut p,
            NodeId(0),
            NodeId(127),
            4 << 10,
            &MultipathOptions {
                gate: Some(gate),
                ..Default::default()
            },
        );
        let rep = p.run();
        assert!(
            h.completed_at(&rep) > 1.0,
            "transfer must not finish before the gate opens"
        );
    }

    #[test]
    #[should_panic(expected = "use plan_direct")]
    fn empty_proxies_panics() {
        let m = machine128();
        let mut p = Program::new(&m);
        plan_via_proxies(
            &mut p,
            NodeId(0),
            NodeId(1),
            1024,
            &[],
            &MultipathOptions::default(),
        );
    }
}
