//! Property-based tests for the sparse data movement algorithms.

use bgq_torus::{route, standard_shape, Dim, NodeId, Shape, Zone};
use proptest::prelude::*;
use sdm_core::*;
use std::collections::HashSet;

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(standard_shape(128).unwrap()),
        Just(standard_shape(256).unwrap()),
        Just(standard_shape(512).unwrap()),
        Just(Shape::new(4, 4, 4, 4, 4)),
        Just(Shape::new(2, 2, 2, 4, 2)),
    ]
}

fn shape_and_pair() -> impl Strategy<Value = (Shape, NodeId, NodeId)> {
    arb_shape().prop_flat_map(|s| {
        let n = s.num_nodes();
        (Just(s), 0..n, 0..n).prop_map(|(s, a, b)| (s, NodeId(a), NodeId(b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn proxy_paths_are_always_pairwise_disjoint((s, a, b) in shape_and_pair()) {
        prop_assume!(a != b);
        let sel = find_proxies(&s, Zone::Z2, a, b, &HashSet::new(), &ProxySearchConfig::default());
        // Either empty (fallback) or >= 3 paths, per the model.
        prop_assert!(sel.is_empty() || sel.len() >= 3);
        let mut seen: HashSet<bgq_torus::LinkId> = HashSet::new();
        for p in &sel.paths {
            prop_assert_eq!(p.to_proxy.src, a);
            prop_assert_eq!(p.to_proxy.dst, p.proxy);
            prop_assert_eq!(p.from_proxy.src, p.proxy);
            prop_assert_eq!(p.from_proxy.dst, b);
            prop_assert!(p.proxy != a && p.proxy != b);
            for l in p.to_proxy.links.iter().chain(&p.from_proxy.links) {
                prop_assert!(seen.insert(*l), "link {l} reused across proxy paths");
            }
        }
    }

    #[test]
    fn split_chunks_conserves_bytes(bytes in 0u64..1_000_000_000, k in 1usize..11) {
        let chunks = split_chunks(bytes, k);
        prop_assert_eq!(chunks.len(), k);
        prop_assert_eq!(chunks.iter().sum::<u64>(), bytes);
        let max = *chunks.iter().max().unwrap();
        let min = *chunks.iter().min().unwrap();
        prop_assert!(max - min <= 1, "chunks must be near-equal");
    }

    #[test]
    fn cost_model_threshold_separates_regimes(
        k in 3u32..11,
        below in 1u64..1000,
        above in 1u64..1_000_000,
    ) {
        let m = CostModel::bgq_defaults();
        let th = m.threshold_bytes(k).unwrap();
        if th > below {
            prop_assert!(m.direct_time(th - below) <= m.proxy_time(th - below, k) * 1.0001);
        }
        prop_assert!(m.proxy_time(th + above, k) <= m.direct_time(th + above) * 1.0001);
    }

    #[test]
    fn speedup_is_monotone_in_message_size(k in 3u32..11, d1 in 1u64..50_000_000, d2 in 1u64..50_000_000) {
        // Larger messages can only make proxies look better.
        let m = CostModel::bgq_defaults();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.speedup(hi, k) >= m.speedup(lo, k) - 1e-12);
    }

    #[test]
    fn block_factors_always_valid(count_idx in 0usize..8) {
        let count = AGG_COUNTS[count_idx];
        // All pset box extents that occur in standard shapes.
        for extents in [
            [2u16, 2, 4, 4, 2],
            [1, 2, 4, 8, 2],
            [1, 1, 4, 16, 2],
            [2, 1, 4, 4, 2] as [u16; 5],
        ] {
            if extents.iter().map(|&e| e as u32).product::<u32>() != 128 {
                continue;
            }
            let f = block_factors(extents, count);
            prop_assert_eq!(f.iter().map(|&x| x as u32).product::<u32>(), count);
            for i in 0..5 {
                prop_assert_eq!(extents[i] % f[i], 0);
            }
        }
    }

    #[test]
    fn assignment_conserves_bytes_and_respects_chunks(
        sizes in proptest::collection::vec(0u64..64_000_000, 1..64),
        max_chunk in 1u64..16_000_000,
    ) {
        let layout = bgq_torus::IoLayout::new(standard_shape(512).unwrap());
        let table = AggregatorTable::precompute(&layout);
        let aggs = table.aggregators(4);
        let data: Vec<(NodeId, u64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| (NodeId(i as u32), b))
            .collect();
        let total: u64 = sizes.iter().sum();
        for policy in [AssignPolicy::BalancedGreedy, AssignPolicy::PsetLocal] {
            let asg = assign_data(&data, aggs, &layout, max_chunk, policy);
            prop_assert_eq!(asg.iter().map(|a| a.bytes).sum::<u64>(), total);
            prop_assert!(asg.iter().all(|a| a.bytes <= max_chunk && a.bytes > 0));
        }
    }

    #[test]
    fn balanced_greedy_is_within_one_chunk_of_optimal(
        sizes in proptest::collection::vec(1u64..32_000_000, 1..40),
    ) {
        let layout = bgq_torus::IoLayout::new(standard_shape(128).unwrap());
        let table = AggregatorTable::precompute(&layout);
        let aggs = table.aggregators(8);
        let data: Vec<(NodeId, u64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| (NodeId(i as u32), b))
            .collect();
        let chunk = 4u64 << 20;
        let asg = assign_data(&data, aggs, &layout, chunk, AssignPolicy::BalancedGreedy);
        let loads = aggregator_loads(&asg, aggs);
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        prop_assert!(max - min <= chunk, "imbalance {} > chunk {chunk}", max - min);
    }
}

#[test]
fn group_search_respects_membership_on_many_layouts() {
    for (nodes, gsize) in [(128u32, 8usize), (512, 32), (2048, 128)] {
        let shape = standard_shape(nodes).unwrap();
        let n = shape.num_nodes();
        let sources: Vec<NodeId> = (0..gsize as u32).map(NodeId).collect();
        let dests: Vec<NodeId> = (n - gsize as u32..n).map(NodeId).collect();
        let members: HashSet<NodeId> = sources.iter().chain(&dests).copied().collect();
        let groups = find_proxy_groups(
            &shape,
            Zone::Z2,
            &sources,
            &dests,
            &ProxySearchConfig::default(),
        );
        for g in &groups {
            for p in &g.nodes {
                assert!(!members.contains(p), "proxy inside a communicating group");
            }
        }
    }
}

#[test]
fn proxy_selection_never_uses_the_direct_route_links() {
    // The direct route stays free, so multipath + direct can coexist
    // (Fig. 7's include_direct mode splits over k+1 truly distinct paths
    // only when this holds for the chosen proxies).
    let shape = standard_shape(128).unwrap();
    let (a, b) = (NodeId(0), NodeId(127));
    let sel = find_proxies(
        &shape,
        Zone::Z2,
        a,
        b,
        &HashSet::new(),
        &ProxySearchConfig::default(),
    );
    assert!(!sel.is_empty());
    let direct = route(&shape, a, b, Zone::Z2);
    // Count how many proxy paths intersect the direct route; the search
    // does not guarantee zero, but the first few disjoint paths should
    // leave most of the direct corridor alone.
    let mut clashes = 0;
    for p in &sel.paths {
        if p.to_proxy.shares_link_with(&direct) || p.from_proxy.shares_link_with(&direct) {
            clashes += 1;
        }
    }
    assert!(
        clashes <= sel.len() / 2,
        "{clashes}/{} proxy paths clash with the direct route",
        sel.len()
    );
}

#[test]
fn pset_box_volume_is_always_128() {
    for nodes in [128u32, 256, 512, 1024, 2048, 4096, 8192] {
        let layout = bgq_torus::IoLayout::new(standard_shape(nodes).unwrap());
        for p in 0..layout.num_psets() {
            let (_, extents) = pset_box(&layout, bgq_torus::PsetId(p));
            assert_eq!(extents.iter().map(|&e| e as u32).product::<u32>(), 128);
        }
    }
}

#[test]
fn aggregators_cover_every_dim_extent() {
    // At count 128 the aggregators of a pset are exactly its nodes; at
    // lower counts they are spread (no two in the same block).
    let layout = bgq_torus::IoLayout::new(standard_shape(2048).unwrap());
    let table = AggregatorTable::precompute(&layout);
    let shape = layout.shape();
    for &c in &AGG_COUNTS {
        let aggs = table.aggregators(c);
        // All aggregators distinct.
        let set: HashSet<NodeId> = aggs.iter().copied().collect();
        assert_eq!(set.len(), aggs.len());
        // Spread check: aggregator D-coordinates within a pset are evenly
        // spaced when the D dimension is subdivided.
        if c >= 8 {
            let first_pset: Vec<NodeId> = aggs
                .iter()
                .copied()
                .filter(|a| layout.pset_of(*a) == bgq_torus::PsetId(0))
                .collect();
            let dcoords: HashSet<u16> = first_pset
                .iter()
                .map(|a| shape.coord(*a).get(Dim::D))
                .collect();
            assert!(dcoords.len() >= 2, "count {c} leaves D unsplit");
        }
    }
}
