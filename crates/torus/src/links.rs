//! Dense identifiers for the directed torus links of a partition.
//!
//! Each node owns ten *outgoing* directed links, one per [`Direction`].
//! A link is identified by `(owner node, direction)` and densely indexed as
//! `node * 10 + direction`, which lets the network simulator store per-link
//! state in flat vectors. The eleventh (I/O) link of bridge nodes lives in a
//! separate resource space managed by `bgq-iosys`.

use crate::coords::{Direction, NDIMS};
use crate::shape::{NodeId, Shape};
use std::fmt;

/// Number of torus links per node (two per dimension).
pub const LINKS_PER_NODE: u32 = (2 * NDIMS) as u32;

/// A directed torus link, identified by its owning (sending) node and the
/// direction it points in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Build a link id from its owner and direction.
    #[inline]
    pub fn new(node: NodeId, dir: Direction) -> LinkId {
        LinkId(node.0 * LINKS_PER_NODE + dir.index() as u32)
    }

    /// The node this link leaves from.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 / LINKS_PER_NODE)
    }

    /// The direction this link points in.
    #[inline]
    pub fn direction(self) -> Direction {
        Direction::from_index((self.0 % LINKS_PER_NODE) as usize)
    }

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node(), self.direction())
    }
}

/// Total number of directed torus links in a partition.
pub fn num_links(shape: &Shape) -> u32 {
    shape.num_nodes() * LINKS_PER_NODE
}

/// The node a link arrives at (the owner's neighbour in the link direction).
pub fn link_target(shape: &Shape, link: LinkId) -> NodeId {
    let from = shape.coord(link.node());
    shape.node_id(shape.neighbor(from, link.direction()))
}

/// Iterate over every directed link in the partition.
pub fn all_links(shape: &Shape) -> impl Iterator<Item = LinkId> {
    (0..num_links(shape)).map(LinkId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::{Coord, Dim, Sign};

    #[test]
    fn link_id_round_trip() {
        let shape = Shape::new(2, 2, 4, 4, 2);
        for node in shape.nodes() {
            for dir in Direction::all() {
                let l = LinkId::new(node, dir);
                assert_eq!(l.node(), node);
                assert_eq!(l.direction(), dir);
            }
        }
    }

    #[test]
    fn num_links_is_ten_per_node() {
        let shape = Shape::new(4, 4, 4, 4, 2);
        assert_eq!(num_links(&shape), 512 * 10);
        assert_eq!(all_links(&shape).count(), 5120);
    }

    #[test]
    fn link_target_is_neighbor() {
        let shape = Shape::new(2, 2, 4, 4, 2);
        let n = shape.node_id(Coord::new(0, 0, 3, 0, 0));
        let l = LinkId::new(n, Direction::new(Dim::C, Sign::Plus));
        assert_eq!(
            link_target(&shape, l),
            shape.node_id(Coord::new(0, 0, 0, 0, 0)),
            "+C from C=3 wraps to C=0"
        );
    }

    #[test]
    fn opposite_links_are_distinct_resources() {
        // u -> v via +A and v -> u via -A are different directed links.
        let shape = Shape::new(4, 2, 2, 2, 2);
        let u = shape.node_id(Coord::new(0, 0, 0, 0, 0));
        let v = shape.node_id(Coord::new(1, 0, 0, 0, 0));
        let uv = LinkId::new(u, Direction::new(Dim::A, Sign::Plus));
        let vu = LinkId::new(v, Direction::new(Dim::A, Sign::Minus));
        assert_ne!(uv, vu);
        assert_eq!(link_target(&shape, uv), v);
        assert_eq!(link_target(&shape, vu), u);
    }
}
