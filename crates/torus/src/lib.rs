//! # bgq-torus
//!
//! A faithful topology model of the IBM Blue Gene/Q interconnect, built as
//! the substrate for reproducing *"Improving Data Movement Performance for
//! Sparse Data Patterns on the Blue Gene/Q Supercomputer"* (Bui et al.,
//! ICPP 2014).
//!
//! The crate provides:
//!
//! * 5D torus [`coords`] (dimensions `A..E`, ten directions per node);
//! * partition [`shape::Shape`]s with dense [`shape::NodeId`]s and torus
//!   distance arithmetic;
//! * directed [`links`] with dense indices for simulator bookkeeping;
//! * deterministic and randomized dimension-order zone [`routing`]
//!   (PAMI zones 0–3);
//! * standard Mira [`partition`] shapes (128 … 49,152 nodes);
//! * [`pset`] / bridge-node / I/O-node layout (128-node psets, two 2 GB/s
//!   I/O links each);
//! * MPI rank [`mapping`]s (`ABCDET`, `TABCDE`).
//!
//! Everything is deterministic given explicit RNGs, so higher layers can
//! reproduce experiments bit-for-bit.

pub mod coords;
pub mod links;
pub mod mapfile;
pub mod mapping;
pub mod midplane;
pub mod partition;
pub mod pset;
pub mod routing;
pub mod shape;

pub use coords::{Coord, Dim, Direction, Sign, NDIMS};
pub use links::{all_links, link_target, num_links, LinkId, LINKS_PER_NODE};
pub use mapfile::{MapFile, MapFileError};
pub use mapping::{MapOrder, Rank, RankMap};
pub use midplane::{
    is_valid_partition, midplane_grid, midplane_shape, midplanes_for, node_board_shape,
    MIDPLANE_NODES, NODE_BOARD_NODES,
};
pub use partition::{shape_for_cores, standard_shape, CORES_PER_NODE, PSET_NODES, STANDARD_SIZES};
pub use pset::{IoLayout, IonId, PsetId, BRIDGES_PER_PSET};
pub use routing::{dim_order, route, route_with_rng, select_zone, Route, Zone};
pub use shape::{NodeId, Shape};
