//! Dimension-ordered zone routing, as implemented by the BG/Q network DMA.
//!
//! BG/Q routes every packet of a message along a single dimension-ordered
//! path. Four "routing zones" control how the dimension order is chosen
//! (paper §III, citing Chen et al. SC'12 and the BG/Q redbook):
//!
//! * **Zone 0** — longest-to-shortest order; dimensions with equal remaining
//!   hop counts are ordered randomly.
//! * **Zone 1** — unrestricted: dimensions are traversed in random order.
//! * **Zone 2 / Zone 3** — fully deterministic longest-to-shortest order:
//!   for a given source, destination and message size the path is always the
//!   same and is *known before the message is routed*. This is the property
//!   Algorithm 1 of the paper exploits to place proxies on link-disjoint
//!   paths. We break ties between equal-length dimensions by canonical
//!   `A<B<C<D<E` order for zone 2 and by reverse order for zone 3 (the real
//!   hardware tie-break is an undisclosed experiment-based table; any fixed
//!   deterministic rule preserves the behaviour the algorithms rely on).
//!
//! Within one dimension the shorter way around the ring is always taken,
//! with half-way ties broken toward the positive direction
//! (see [`Shape::signed_delta`]).

use crate::coords::{Coord, Dim, Direction, Sign};
use crate::links::LinkId;
use crate::shape::{NodeId, Shape};
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// BG/Q routing zone id (settable via the `PAMI_ROUTING` environment
/// variable on the real machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Zone {
    /// Longest-to-shortest, random tie-break.
    Z0,
    /// Random dimension order.
    Z1,
    /// Deterministic longest-to-shortest (canonical tie-break). The default
    /// used throughout this crate, since the paper's algorithms require
    /// routes known a priori.
    #[default]
    Z2,
    /// Deterministic longest-to-shortest (reverse tie-break).
    Z3,
}

impl Zone {
    /// Whether routes in this zone are fully deterministic.
    pub fn is_deterministic(self) -> bool {
        matches!(self, Zone::Z2 | Zone::Z3)
    }
}

/// A concrete single path through the torus: the ordered list of directed
/// links a message traverses from `src` to `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    pub src: NodeId,
    pub dst: NodeId,
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of hops (links) on the route.
    #[inline]
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Whether this route and `other` traverse any common directed link.
    pub fn shares_link_with(&self, other: &Route) -> bool {
        // Routes are short (max ~30 hops); quadratic scan beats hashing.
        self.links
            .iter()
            .any(|l| other.links.contains(l))
    }

    /// Whether this route passes through `node` as an intermediate hop
    /// (excluding the endpoints).
    pub fn passes_through(&self, node: NodeId) -> bool {
        if node == self.src || node == self.dst {
            return false;
        }
        // Intermediate nodes are the owners of every link after the first.
        self.links.iter().skip(1).any(|l| l.node() == node)
    }

    /// Every node visited, in order, from `src` to `dst` inclusive.
    pub fn nodes(&self, shape: &Shape) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.links.len() + 1);
        out.push(self.src);
        for l in &self.links {
            out.push(crate::links::link_target(shape, *l));
        }
        out
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ({} hops)", self.src, self.dst, self.hops())
    }
}

/// The dimension traversal order for a message from `src` to `dst` under
/// `zone`. Only dimensions with nonzero hop counts are returned.
///
/// For the randomized zones (0 and 1) the caller must supply an `rng`.
pub fn dim_order<R: Rng + ?Sized>(
    shape: &Shape,
    src: Coord,
    dst: Coord,
    zone: Zone,
    mut rng: Option<&mut R>,
) -> Vec<Dim> {
    let hops = shape.hops_per_dim(src, dst);
    let mut dims: Vec<Dim> = Dim::ALL
        .into_iter()
        .filter(|d| hops[d.index()] > 0)
        .collect();
    match zone {
        Zone::Z1 => {
            let rng = rng
                .as_deref_mut()
                .expect("zone 1 routing requires an RNG");
            dims.shuffle(rng);
        }
        Zone::Z0 => {
            let rng = rng
                .expect("zone 0 routing requires an RNG");
            // Longest-to-shortest with random tie-break: shuffle first so
            // the stable sort leaves equal keys in random relative order.
            dims.shuffle(rng);
            dims.sort_by_key(|d| std::cmp::Reverse(hops[d.index()]));
        }
        Zone::Z2 => {
            // Stable sort: canonical A..E order among equals.
            dims.sort_by_key(|d| std::cmp::Reverse(hops[d.index()]));
        }
        Zone::Z3 => {
            dims.sort_by(|x, y| {
                hops[y.index()]
                    .cmp(&hops[x.index()])
                    .then(y.index().cmp(&x.index()))
            });
        }
    }
    dims
}

/// Compute the deterministic route from `src` to `dst` under a
/// deterministic zone (2 or 3).
///
/// ```
/// use bgq_torus::{route, standard_shape, NodeId, Zone};
/// let shape = standard_shape(128).unwrap();
/// let r = route(&shape, NodeId(0), NodeId(127), Zone::Z2);
/// // Dimension-order routes are minimal: hop count == torus distance.
/// assert_eq!(r.hops() as u32,
///            shape.distance(shape.coord(NodeId(0)), shape.coord(NodeId(127))));
/// ```
///
/// # Panics
/// Panics if `zone` is randomized (use [`route_with_rng`] for zones 0/1).
pub fn route(shape: &Shape, src: NodeId, dst: NodeId, zone: Zone) -> Route {
    assert!(
        zone.is_deterministic(),
        "route() requires a deterministic zone; use route_with_rng for {zone:?}"
    );
    route_inner::<rand::rngs::ThreadRng>(shape, src, dst, zone, None)
}

/// Compute a route under any zone, drawing randomized ordering decisions
/// from `rng`.
pub fn route_with_rng<R: Rng + ?Sized>(
    shape: &Shape,
    src: NodeId,
    dst: NodeId,
    zone: Zone,
    rng: &mut R,
) -> Route {
    route_inner(shape, src, dst, zone, Some(rng))
}

fn route_inner<R: Rng + ?Sized>(
    shape: &Shape,
    src: NodeId,
    dst: NodeId,
    zone: Zone,
    rng: Option<&mut R>,
) -> Route {
    let src_c = shape.coord(src);
    let dst_c = shape.coord(dst);
    let order = dim_order(shape, src_c, dst_c, zone, rng);
    let mut links = Vec::with_capacity(shape.distance(src_c, dst_c) as usize);
    let mut cur = src_c;
    for dim in order {
        let delta = shape.signed_delta(cur, dst_c, dim);
        let sign = if delta >= 0 { Sign::Plus } else { Sign::Minus };
        let dir = Direction::new(dim, sign);
        for _ in 0..delta.unsigned_abs() {
            links.push(LinkId::new(shape.node_id(cur), dir));
            cur = shape.neighbor(cur, dir);
        }
    }
    debug_assert_eq!(cur, dst_c, "route must terminate at the destination");
    Route { src, dst, links }
}

/// The default zone the messaging stack would pick for a message, as a
/// function of partition "flexibility" and message size.
///
/// On the real machine this selection is experiment-based and hard-coded in
/// the low-level libraries (paper §III). We model the documented intent:
/// small messages use fully deterministic routing (zone 3); larger messages
/// on partitions with enough routing flexibility use the progressively less
/// restricted zones. The exact thresholds are a modelling choice; the
/// paper's algorithms always pin zone 2 explicitly, so this function only
/// affects "default routing" baselines.
pub fn select_zone(shape: &Shape, src: NodeId, dst: NodeId, msg_bytes: u64) -> Zone {
    let d = shape.distance(shape.coord(src), shape.coord(dst));
    let longest = Dim::ALL
        .into_iter()
        .map(|dim| shape.extent(dim) as u32)
        .max()
        .unwrap_or(1);
    // Flexibility grows with hop distance relative to the torus size.
    let flexibility = d as f64 / longest as f64;
    if msg_bytes < 64 * 1024 {
        Zone::Z3
    } else if flexibility < 1.0 {
        Zone::Z2
    } else if msg_bytes < 2 * 1024 * 1024 {
        Zone::Z0
    } else {
        Zone::Z1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::link_target;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shape128() -> Shape {
        Shape::new(2, 2, 4, 4, 2)
    }

    fn assert_route_valid(shape: &Shape, r: &Route) {
        // Links must chain: each link starts where the previous ended.
        let mut cur = r.src;
        for l in &r.links {
            assert_eq!(l.node(), cur, "link must leave the current node");
            cur = link_target(shape, *l);
        }
        assert_eq!(cur, r.dst, "route must end at dst");
        assert_eq!(
            r.links.len() as u32,
            shape.distance(shape.coord(r.src), shape.coord(r.dst)),
            "dimension-order routes are minimal"
        );
    }

    #[test]
    fn deterministic_route_is_valid_and_minimal() {
        let s = shape128();
        let src = NodeId(0);
        let dst = NodeId(s.num_nodes() - 1);
        let r = route(&s, src, dst, Zone::Z2);
        assert_route_valid(&s, &r);
    }

    #[test]
    fn route_to_self_is_empty() {
        let s = shape128();
        let r = route(&s, NodeId(5), NodeId(5), Zone::Z2);
        assert!(r.links.is_empty());
    }

    #[test]
    fn z2_routes_longest_dimension_first() {
        let s = Shape::new(4, 4, 4, 16, 2);
        let src = s.node_id(Coord::new(0, 0, 0, 0, 0));
        let dst = s.node_id(Coord::new(1, 0, 0, 5, 0));
        let r = route(&s, src, dst, Zone::Z2);
        // D has 5 hops (longest), A has 1: D must come first.
        assert_eq!(r.links[0].direction().dim, Dim::D);
        assert_eq!(r.links.last().unwrap().direction().dim, Dim::A);
    }

    #[test]
    fn z2_and_z3_tie_breaks_differ() {
        let s = Shape::new(4, 4, 4, 4, 2);
        let src = s.node_id(Coord::new(0, 0, 0, 0, 0));
        // One hop in A and one hop in B: a tie.
        let dst = s.node_id(Coord::new(1, 1, 0, 0, 0));
        let r2 = route(&s, src, dst, Zone::Z2);
        let r3 = route(&s, src, dst, Zone::Z3);
        assert_eq!(r2.links[0].direction().dim, Dim::A, "Z2 ties: canonical order");
        assert_eq!(r3.links[0].direction().dim, Dim::B, "Z3 ties: reverse order");
    }

    #[test]
    fn deterministic_routes_are_repeatable() {
        let s = Shape::new(4, 4, 4, 16, 2);
        let src = NodeId(3);
        let dst = NodeId(1000);
        assert_eq!(route(&s, src, dst, Zone::Z2), route(&s, src, dst, Zone::Z2));
        assert_eq!(route(&s, src, dst, Zone::Z3), route(&s, src, dst, Zone::Z3));
    }

    #[test]
    fn randomized_routes_are_valid() {
        let s = Shape::new(4, 4, 4, 4, 2);
        let mut rng = StdRng::seed_from_u64(42);
        for zone in [Zone::Z0, Zone::Z1] {
            for _ in 0..32 {
                let src = NodeId(rng.gen_range(0..s.num_nodes()));
                let dst = NodeId(rng.gen_range(0..s.num_nodes()));
                let r = route_with_rng(&s, src, dst, zone, &mut rng);
                assert_route_valid(&s, &r);
            }
        }
    }

    #[test]
    fn z0_orders_longest_to_shortest() {
        let s = Shape::new(4, 4, 4, 16, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let src = s.node_id(Coord::new(0, 0, 0, 0, 0));
        let dst = s.node_id(Coord::new(1, 2, 0, 7, 0));
        for _ in 0..16 {
            let order = dim_order(&s, s.coord(src), s.coord(dst), Zone::Z0, Some(&mut rng));
            let hops = s.hops_per_dim(s.coord(src), s.coord(dst));
            for w in order.windows(2) {
                assert!(
                    hops[w[0].index()] >= hops[w[1].index()],
                    "Z0 must be longest-to-shortest"
                );
            }
        }
    }

    #[test]
    fn shares_link_detects_overlap() {
        let s = shape128();
        let a = route(&s, NodeId(0), NodeId(127), Zone::Z2);
        let b = route(&s, NodeId(0), NodeId(127), Zone::Z2);
        assert!(a.shares_link_with(&b));
        // A route never shares links with itself reversed (directed links).
        let rev = route(&s, NodeId(127), NodeId(0), Zone::Z2);
        assert!(!a.shares_link_with(&rev));
    }

    #[test]
    fn route_nodes_lists_every_hop() {
        let s = shape128();
        let r = route(&s, NodeId(0), NodeId(127), Zone::Z2);
        let nodes = r.nodes(&s);
        assert_eq!(nodes.len(), r.hops() + 1);
        assert_eq!(nodes[0], NodeId(0));
        assert_eq!(*nodes.last().unwrap(), NodeId(127));
    }

    #[test]
    fn select_zone_small_messages_deterministic() {
        let s = shape128();
        assert_eq!(select_zone(&s, NodeId(0), NodeId(127), 1024), Zone::Z3);
    }
}
