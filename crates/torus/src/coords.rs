//! Coordinates, dimensions and directions of the Blue Gene/Q 5D torus.
//!
//! The BG/Q interconnect is a five-dimensional torus with dimensions
//! conventionally named `A`, `B`, `C`, `D`, `E`. Every compute node has ten
//! torus links: one in the positive and one in the negative direction of
//! each dimension (plus an eleventh I/O link on bridge nodes, modelled in
//! `bgq-iosys`).

use std::fmt;

/// Number of torus dimensions.
pub const NDIMS: usize = 5;

/// A torus dimension (`A` through `E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    A,
    B,
    C,
    D,
    E,
}

impl Dim {
    /// All dimensions in canonical `A..E` order.
    pub const ALL: [Dim; NDIMS] = [Dim::A, Dim::B, Dim::C, Dim::D, Dim::E];

    /// Index of this dimension in canonical order (`A` = 0 … `E` = 4).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Dimension with the given canonical index.
    ///
    /// # Panics
    /// Panics if `i >= 5`.
    #[inline]
    pub fn from_index(i: usize) -> Dim {
        Dim::ALL[i]
    }

    /// One-letter name of the dimension.
    pub fn name(self) -> &'static str {
        match self {
            Dim::A => "A",
            Dim::B => "B",
            Dim::C => "C",
            Dim::D => "D",
            Dim::E => "E",
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sign of a direction along a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    Plus,
    Minus,
}

impl Sign {
    /// `+1` for `Plus`, `-1` for `Minus`.
    #[inline]
    pub fn delta(self) -> i32 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }

    /// The opposite sign.
    #[inline]
    pub fn opposite(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Plus => "+",
            Sign::Minus => "-",
        })
    }
}

/// One of the ten torus directions (a dimension plus a sign), e.g. `+B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Direction {
    pub dim: Dim,
    pub sign: Sign,
}

impl Direction {
    /// Construct a direction.
    #[inline]
    pub fn new(dim: Dim, sign: Sign) -> Direction {
        Direction { dim, sign }
    }

    /// All ten directions: `+A, -A, +B, -B, …, +E, -E`.
    pub fn all() -> impl Iterator<Item = Direction> {
        Dim::ALL.into_iter().flat_map(|dim| {
            [Sign::Plus, Sign::Minus]
                .into_iter()
                .map(move |sign| Direction { dim, sign })
        })
    }

    /// Dense index in `0..10`: `+A`=0, `-A`=1, `+B`=2, …, `-E`=9.
    #[inline]
    pub fn index(self) -> usize {
        self.dim.index() * 2
            + match self.sign {
                Sign::Plus => 0,
                Sign::Minus => 1,
            }
    }

    /// Direction with the given dense index.
    ///
    /// # Panics
    /// Panics if `i >= 10`.
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        assert!(i < 2 * NDIMS, "direction index {i} out of range");
        Direction {
            dim: Dim::from_index(i / 2),
            sign: if i.is_multiple_of(2) { Sign::Plus } else { Sign::Minus },
        }
    }

    /// The opposite direction (same dimension, opposite sign).
    #[inline]
    pub fn opposite(self) -> Direction {
        Direction {
            dim: self.dim,
            sign: self.sign.opposite(),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.sign, self.dim)
    }
}

/// A coordinate in the 5D torus, one component per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord(pub [u16; NDIMS]);

impl Coord {
    /// Build a coordinate from its five components.
    #[inline]
    pub fn new(a: u16, b: u16, c: u16, d: u16, e: u16) -> Coord {
        Coord([a, b, c, d, e])
    }

    /// Component along `dim`.
    #[inline]
    pub fn get(&self, dim: Dim) -> u16 {
        self.0[dim.index()]
    }

    /// Set the component along `dim`.
    #[inline]
    pub fn set(&mut self, dim: Dim, v: u16) {
        self.0[dim.index()] = v;
    }

    /// Return a copy with the component along `dim` replaced by `v`.
    #[inline]
    pub fn with(&self, dim: Dim, v: u16) -> Coord {
        let mut c = *self;
        c.set(dim, v);
        c
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{},{})",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_indices_round_trip() {
        for (i, d) in Dim::ALL.into_iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Dim::from_index(i), d);
        }
    }

    #[test]
    fn direction_indices_round_trip() {
        let dirs: Vec<Direction> = Direction::all().collect();
        assert_eq!(dirs.len(), 10);
        for (i, d) in dirs.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(Direction::from_index(i), *d);
        }
    }

    #[test]
    fn direction_opposite_is_involution() {
        for d in Direction::all() {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.opposite().dim, d.dim);
            assert_ne!(d.opposite().sign, d.sign);
        }
    }

    #[test]
    fn sign_delta() {
        assert_eq!(Sign::Plus.delta(), 1);
        assert_eq!(Sign::Minus.delta(), -1);
    }

    #[test]
    fn coord_accessors() {
        let mut c = Coord::new(1, 2, 3, 4, 5);
        assert_eq!(c.get(Dim::A), 1);
        assert_eq!(c.get(Dim::E), 5);
        c.set(Dim::C, 9);
        assert_eq!(c.get(Dim::C), 9);
        let c2 = c.with(Dim::A, 7);
        assert_eq!(c2.get(Dim::A), 7);
        assert_eq!(c.get(Dim::A), 1, "with() must not mutate the original");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(0, 1, 2, 3, 4).to_string(), "(0,1,2,3,4)");
        assert_eq!(
            Direction::new(Dim::B, Sign::Plus).to_string(),
            "+B"
        );
        assert_eq!(
            Direction::new(Dim::E, Sign::Minus).to_string(),
            "-E"
        );
    }
}
