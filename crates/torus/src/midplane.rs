//! Mira's physical packaging hierarchy.
//!
//! The machine is built from *node boards* of 32 compute nodes
//! (a `2x2x2x2x2` sub-torus), 16 of which form a *midplane* of 512 nodes
//! (`4x4x4x4x2`); two midplanes fill a rack, and Mira has 48 racks
//! (49,152 nodes). Jobs smaller than a midplane get rectangular
//! *sub-blocks*; larger jobs get whole midplanes wired into larger tori.
//! The paper's partitions (§III: "the machine can be partitioned into
//! non-overlapping rectangular submachines") follow this hierarchy, which
//! is why every standard partition shape is a product of these unit
//! shapes.

use crate::shape::Shape;

/// Nodes in one node board.
pub const NODE_BOARD_NODES: u32 = 32;

/// The sub-torus shape of a node board.
pub fn node_board_shape() -> Shape {
    Shape::new(2, 2, 2, 2, 2)
}

/// Nodes in one midplane.
pub const MIDPLANE_NODES: u32 = 512;

/// The torus shape of a midplane.
pub fn midplane_shape() -> Shape {
    Shape::new(4, 4, 4, 4, 2)
}

/// Number of midplanes needed for a partition of `shape`.
///
/// Partitions of at least one midplane are whole numbers of midplanes;
/// smaller ones are sub-blocks of a single midplane (reported as 1).
pub fn midplanes_for(shape: &Shape) -> u32 {
    shape.num_nodes().div_ceil(MIDPLANE_NODES)
}

/// Whether `shape` is a valid sub-block: every dimension extent divides
/// the corresponding midplane extent, or is a multiple of it.
///
/// Sub-midplane blocks halve dimensions of the midplane; super-midplane
/// partitions multiply them. Mixed shapes (one dimension bigger, another
/// not dividing) do not occur on the real machine.
pub fn is_valid_partition(shape: &Shape) -> bool {
    let mp = midplane_shape();
    let n = shape.num_nodes();
    if n < MIDPLANE_NODES {
        // Sub-block: each extent must divide the midplane's.
        crate::coords::Dim::ALL
            .into_iter()
            .all(|d| mp.extent(d).is_multiple_of(shape.extent(d)))
    } else {
        // Multi-midplane: each extent must be a multiple of the midplane's.
        crate::coords::Dim::ALL
            .into_iter()
            .all(|d| shape.extent(d).is_multiple_of(mp.extent(d)))
    }
}

/// Decompose a partition into its (logical) midplane grid: how many
/// midplanes along each dimension. Only meaningful for multi-midplane
/// partitions.
pub fn midplane_grid(shape: &Shape) -> Option<[u16; 5]> {
    if shape.num_nodes() < MIDPLANE_NODES || !is_valid_partition(shape) {
        return None;
    }
    let mp = midplane_shape();
    Some(std::array::from_fn(|i| {
        shape.0[i] / mp.0[i]
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{standard_shape, STANDARD_SIZES};

    #[test]
    fn unit_shapes_have_right_sizes() {
        assert_eq!(node_board_shape().num_nodes(), NODE_BOARD_NODES);
        assert_eq!(midplane_shape().num_nodes(), MIDPLANE_NODES);
    }

    #[test]
    fn all_standard_partitions_are_valid() {
        for n in STANDARD_SIZES {
            let s = standard_shape(n).unwrap();
            assert!(is_valid_partition(&s), "{s} invalid");
        }
    }

    #[test]
    fn midplane_counts() {
        assert_eq!(midplanes_for(&standard_shape(128).unwrap()), 1);
        assert_eq!(midplanes_for(&standard_shape(512).unwrap()), 1);
        assert_eq!(midplanes_for(&standard_shape(2048).unwrap()), 4);
        assert_eq!(midplanes_for(&standard_shape(49152).unwrap()), 96);
    }

    #[test]
    fn midplane_grid_for_large_partitions() {
        assert_eq!(
            midplane_grid(&standard_shape(2048).unwrap()),
            Some([1, 1, 1, 4, 1])
        );
        assert_eq!(
            midplane_grid(&standard_shape(8192).unwrap()),
            Some([1, 2, 2, 4, 1])
        );
        assert_eq!(midplane_grid(&standard_shape(128).unwrap()), None);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        // 3 does not divide the midplane's 4.
        assert!(!is_valid_partition(&Shape::new(3, 4, 4, 4, 2)));
        // 6 is not a multiple of 4 for a super-midplane shape.
        assert!(!is_valid_partition(&Shape::new(6, 4, 4, 16, 2)));
    }
}
