//! MPI rank ↔ compute node mappings.
//!
//! BG/Q jobs choose how MPI ranks are laid out over the torus with a mapping
//! string such as `ABCDET` (the default: the `T` coordinate — the rank slot
//! within a node — varies fastest, then `E`, `D`, …) or `TABCDE` (ranks
//! round-robin over nodes first). The paper's workloads use the default
//! contiguous mapping, which is what makes its "contiguous groups of ranks"
//! assumption (§IV.C) hold.

use crate::shape::{NodeId, Shape};
use std::fmt;

/// An MPI rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub u32);

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Rank layout order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapOrder {
    /// `ABCDET`: consecutive ranks fill a node before moving to the next
    /// node (in `ABCDE` node order). The BG/Q default.
    #[default]
    AbcdeT,
    /// `TABCDE`: consecutive ranks go to consecutive nodes, wrapping back to
    /// slot 1 of node 0 after every node got slot 0.
    TAbcde,
}

/// A concrete rank mapping: partition shape, ranks per node, layout order.
#[derive(Debug, Clone)]
pub struct RankMap {
    shape: Shape,
    ranks_per_node: u32,
    order: MapOrder,
}

impl RankMap {
    /// Build a mapping.
    ///
    /// # Panics
    /// Panics if `ranks_per_node` is 0 or exceeds 64 (4 hardware threads on
    /// each of 16 cores).
    pub fn new(shape: Shape, ranks_per_node: u32, order: MapOrder) -> RankMap {
        assert!(
            (1..=64).contains(&ranks_per_node),
            "ranks per node must be in 1..=64, got {ranks_per_node}"
        );
        RankMap {
            shape,
            ranks_per_node,
            order,
        }
    }

    /// Default `ABCDET` mapping with the given ranks per node.
    pub fn default_map(shape: Shape, ranks_per_node: u32) -> RankMap {
        RankMap::new(shape, ranks_per_node, MapOrder::AbcdeT)
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn ranks_per_node(&self) -> u32 {
        self.ranks_per_node
    }

    pub fn order(&self) -> MapOrder {
        self.order
    }

    /// Total number of ranks in the job.
    pub fn num_ranks(&self) -> u32 {
        self.shape.num_nodes() * self.ranks_per_node
    }

    /// The node hosting `rank`.
    ///
    /// # Panics
    /// Panics if the rank is out of range.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        assert!(rank.0 < self.num_ranks(), "rank {rank} out of range");
        match self.order {
            MapOrder::AbcdeT => NodeId(rank.0 / self.ranks_per_node),
            MapOrder::TAbcde => NodeId(rank.0 % self.shape.num_nodes()),
        }
    }

    /// The on-node slot (the `T` coordinate) of `rank`.
    pub fn slot_of(&self, rank: Rank) -> u32 {
        assert!(rank.0 < self.num_ranks(), "rank {rank} out of range");
        match self.order {
            MapOrder::AbcdeT => rank.0 % self.ranks_per_node,
            MapOrder::TAbcde => rank.0 / self.shape.num_nodes(),
        }
    }

    /// The rank at `(node, slot)`.
    pub fn rank_at(&self, node: NodeId, slot: u32) -> Rank {
        assert!(node.0 < self.shape.num_nodes() && slot < self.ranks_per_node);
        match self.order {
            MapOrder::AbcdeT => Rank(node.0 * self.ranks_per_node + slot),
            MapOrder::TAbcde => Rank(slot * self.shape.num_nodes() + node.0),
        }
    }

    /// All ranks hosted on `node`.
    pub fn ranks_on(&self, node: NodeId) -> Vec<Rank> {
        (0..self.ranks_per_node)
            .map(|s| self.rank_at(node, s))
            .collect()
    }

    /// Iterate over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        (0..self.num_ranks()).map(Rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map16() -> RankMap {
        RankMap::default_map(Shape::new(2, 2, 4, 4, 2), 16)
    }

    #[test]
    fn num_ranks_scales() {
        assert_eq!(map16().num_ranks(), 2048);
    }

    #[test]
    fn abcdet_packs_node_first() {
        let m = map16();
        assert_eq!(m.node_of(Rank(0)), NodeId(0));
        assert_eq!(m.node_of(Rank(15)), NodeId(0));
        assert_eq!(m.node_of(Rank(16)), NodeId(1));
        assert_eq!(m.slot_of(Rank(17)), 1);
    }

    #[test]
    fn tabcde_round_robins_nodes() {
        let m = RankMap::new(Shape::new(2, 2, 4, 4, 2), 4, MapOrder::TAbcde);
        assert_eq!(m.node_of(Rank(0)), NodeId(0));
        assert_eq!(m.node_of(Rank(1)), NodeId(1));
        assert_eq!(m.node_of(Rank(128)), NodeId(0));
        assert_eq!(m.slot_of(Rank(128)), 1);
    }

    #[test]
    fn rank_at_round_trips() {
        for order in [MapOrder::AbcdeT, MapOrder::TAbcde] {
            let m = RankMap::new(Shape::new(2, 2, 4, 4, 2), 8, order);
            for r in m.ranks() {
                let (n, s) = (m.node_of(r), m.slot_of(r));
                assert_eq!(m.rank_at(n, s), r);
            }
        }
    }

    #[test]
    fn ranks_on_node_are_consistent() {
        let m = map16();
        let rs = m.ranks_on(NodeId(3));
        assert_eq!(rs.len(), 16);
        for r in rs {
            assert_eq!(m.node_of(r), NodeId(3));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        map16().node_of(Rank(99999));
    }
}
