//! Psets, bridge nodes and I/O nodes.
//!
//! On BG/Q every 128 compute nodes form a *pset* served by one I/O node
//! (ION). Two of the 128 are *bridge nodes*; each bridge node has an
//! eleventh 2 GB/s link to the ION, so a pset has at most 4 GB/s of I/O
//! bandwidth (paper §III). I/O traffic is routed deterministically over the
//! torus from a compute node to its *default* bridge node, then over the
//! eleventh link to the ION.
//!
//! The real machine wires bridge nodes at fixed physical positions; we place
//! them at offsets 0 and 64 within the pset's node-id range, which preserves
//! the property the paper depends on — each bridge serves a fixed half of
//! the pset, so unbalanced data across compute nodes translates into
//! unbalanced bridge/ION load.

use crate::partition::PSET_NODES;
use crate::shape::{NodeId, Shape};
use std::fmt;

/// Identifier of a pset (and of its I/O node: they are 1:1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PsetId(pub u32);

/// Identifier of an I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IonId(pub u32);

impl fmt::Display for PsetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pset{}", self.0)
    }
}

impl fmt::Display for IonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ion{}", self.0)
    }
}

/// Pset / bridge-node / ION layout for a partition.
#[derive(Debug, Clone)]
pub struct IoLayout {
    shape: Shape,
    num_psets: u32,
}

/// Number of bridge nodes per pset.
pub const BRIDGES_PER_PSET: u32 = 2;

/// Offsets of the bridge nodes within a pset's node-id range.
pub const BRIDGE_OFFSETS: [u32; BRIDGES_PER_PSET as usize] = [0, 64];

impl IoLayout {
    /// Build the I/O layout for `shape`.
    ///
    /// # Panics
    /// Panics if the partition is not a whole number of psets (all standard
    /// partitions are).
    pub fn new(shape: Shape) -> IoLayout {
        let n = shape.num_nodes();
        assert!(
            n.is_multiple_of(PSET_NODES) && n > 0,
            "partition of {n} nodes is not a whole number of {PSET_NODES}-node psets"
        );
        IoLayout {
            shape,
            num_psets: n / PSET_NODES,
        }
    }

    /// The partition shape this layout belongs to.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of psets (= number of IONs) in the partition.
    pub fn num_psets(&self) -> u32 {
        self.num_psets
    }

    /// Number of I/O nodes available to the partition.
    pub fn num_ions(&self) -> u32 {
        self.num_psets
    }

    /// The pset a compute node belongs to.
    pub fn pset_of(&self, node: NodeId) -> PsetId {
        debug_assert!(node.0 < self.shape.num_nodes());
        PsetId(node.0 / PSET_NODES)
    }

    /// The ION serving a pset.
    pub fn ion_of_pset(&self, pset: PsetId) -> IonId {
        debug_assert!(pset.0 < self.num_psets);
        IonId(pset.0)
    }

    /// The default ION a compute node's I/O traffic goes to.
    pub fn default_ion(&self, node: NodeId) -> IonId {
        self.ion_of_pset(self.pset_of(node))
    }

    /// First node id of a pset.
    pub fn pset_start(&self, pset: PsetId) -> NodeId {
        NodeId(pset.0 * PSET_NODES)
    }

    /// All compute nodes of a pset.
    pub fn pset_nodes(&self, pset: PsetId) -> impl Iterator<Item = NodeId> {
        let start = pset.0 * PSET_NODES;
        (start..start + PSET_NODES).map(NodeId)
    }

    /// The two bridge nodes of a pset.
    pub fn bridges_of_pset(&self, pset: PsetId) -> [NodeId; BRIDGES_PER_PSET as usize] {
        let start = pset.0 * PSET_NODES;
        [NodeId(start + BRIDGE_OFFSETS[0]), NodeId(start + BRIDGE_OFFSETS[1])]
    }

    /// Whether `node` is a bridge node.
    pub fn is_bridge(&self, node: NodeId) -> bool {
        let off = node.0 % PSET_NODES;
        BRIDGE_OFFSETS.contains(&off)
    }

    /// The default bridge node a compute node routes its I/O through.
    ///
    /// Each bridge serves a fixed half of the pset: nodes `0..64` use the
    /// first bridge, nodes `64..128` the second.
    pub fn default_bridge(&self, node: NodeId) -> NodeId {
        let pset = self.pset_of(node);
        let off = node.0 % PSET_NODES;
        let bridges = self.bridges_of_pset(pset);
        if off < BRIDGE_OFFSETS[1] {
            bridges[0]
        } else {
            bridges[1]
        }
    }

    /// All bridge nodes of the partition, in pset order.
    pub fn all_bridges(&self) -> Vec<NodeId> {
        (0..self.num_psets)
            .flat_map(|p| self.bridges_of_pset(PsetId(p)))
            .collect()
    }

    /// Dense index of a bridge node's I/O link in `0..num_io_links()`,
    /// or `None` if `node` is not a bridge.
    pub fn io_link_index(&self, node: NodeId) -> Option<u32> {
        let pset = node.0 / PSET_NODES;
        let off = node.0 % PSET_NODES;
        BRIDGE_OFFSETS
            .iter()
            .position(|&b| b == off)
            .map(|slot| pset * BRIDGES_PER_PSET + slot as u32)
    }

    /// Total number of I/O (eleventh) links in the partition.
    pub fn num_io_links(&self) -> u32 {
        self.num_psets * BRIDGES_PER_PSET
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::standard_shape;

    fn layout_512() -> IoLayout {
        IoLayout::new(standard_shape(512).unwrap())
    }

    #[test]
    fn pset_count() {
        assert_eq!(layout_512().num_psets(), 4);
        assert_eq!(
            IoLayout::new(standard_shape(8192).unwrap()).num_ions(),
            64
        );
    }

    #[test]
    fn every_node_has_exactly_one_pset() {
        let l = layout_512();
        for node in l.shape().nodes() {
            let p = l.pset_of(node);
            assert!(l.pset_nodes(p).any(|n| n == node));
        }
    }

    #[test]
    fn pset_nodes_count_is_128() {
        let l = layout_512();
        for p in 0..l.num_psets() {
            assert_eq!(l.pset_nodes(PsetId(p)).count(), 128);
        }
    }

    #[test]
    fn two_bridges_per_pset_and_membership() {
        let l = layout_512();
        for p in 0..l.num_psets() {
            let bridges = l.bridges_of_pset(PsetId(p));
            assert_eq!(bridges.len(), 2);
            for b in bridges {
                assert!(l.is_bridge(b));
                assert_eq!(l.pset_of(b), PsetId(p));
            }
        }
        assert_eq!(l.all_bridges().len() as u32, l.num_io_links());
    }

    #[test]
    fn default_bridge_serves_own_half() {
        let l = layout_512();
        let p = PsetId(1);
        let start = l.pset_start(p).0;
        assert_eq!(l.default_bridge(NodeId(start + 10)), NodeId(start));
        assert_eq!(l.default_bridge(NodeId(start + 63)), NodeId(start));
        assert_eq!(l.default_bridge(NodeId(start + 64)), NodeId(start + 64));
        assert_eq!(l.default_bridge(NodeId(start + 127)), NodeId(start + 64));
    }

    #[test]
    fn bridge_load_is_balanced_64_each() {
        let l = layout_512();
        for p in 0..l.num_psets() {
            let mut counts = [0u32; 2];
            let bridges = l.bridges_of_pset(PsetId(p));
            for n in l.pset_nodes(PsetId(p)) {
                let b = l.default_bridge(n);
                let slot = bridges.iter().position(|&x| x == b).unwrap();
                counts[slot] += 1;
            }
            assert_eq!(counts, [64, 64]);
        }
    }

    #[test]
    fn io_link_indices_are_dense_and_unique() {
        let l = layout_512();
        let mut seen = vec![false; l.num_io_links() as usize];
        for b in l.all_bridges() {
            let i = l.io_link_index(b).unwrap();
            assert!(!seen[i as usize], "duplicate io link index");
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
        // Non-bridge nodes have no I/O link.
        assert_eq!(l.io_link_index(NodeId(5)), None);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn non_pset_multiple_panics() {
        IoLayout::new(Shape::new(2, 2, 2, 2, 2)); // 32 nodes
    }
}
