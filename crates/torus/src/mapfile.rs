//! BG/Q map files: explicit rank → coordinate mappings.
//!
//! Besides the permutation mappings (`ABCDET`, …), BG/Q jobs can supply a
//! *map file* via `runjob --mapping`, one line per rank with the
//! coordinates `A B C D E T`. Topology-aware applications (including the
//! paper's multiphysics layouts) use these to place ranks precisely. This
//! module parses and validates that format and turns it into a rank
//! lookup usable wherever a [`RankMap`](crate::RankMap) is.

use crate::coords::Coord;
use crate::shape::{NodeId, Shape};
use std::fmt;

/// A parsed, validated map file: one `(node, slot)` per rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapFile {
    shape: Shape,
    ranks_per_node: u32,
    /// `placement[rank] = (node, slot)`.
    placement: Vec<(NodeId, u32)>,
}

/// Errors from map-file parsing/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapFileError {
    /// Line did not contain exactly six integers.
    Malformed { line: usize },
    /// Coordinates outside the partition shape.
    OutOfShape { line: usize },
    /// `T` coordinate at or beyond ranks-per-node.
    SlotOutOfRange { line: usize, slot: u32 },
    /// The same `(node, slot)` was assigned to two ranks.
    DuplicatePlacement { line: usize },
    /// The file had no lines.
    Empty,
}

impl fmt::Display for MapFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapFileError::Malformed { line } => {
                write!(f, "line {line}: expected six integers 'A B C D E T'")
            }
            MapFileError::OutOfShape { line } => {
                write!(f, "line {line}: coordinates outside the partition")
            }
            MapFileError::SlotOutOfRange { line, slot } => {
                write!(f, "line {line}: T coordinate {slot} out of range")
            }
            MapFileError::DuplicatePlacement { line } => {
                write!(f, "line {line}: (node, slot) already taken")
            }
            MapFileError::Empty => write!(f, "map file has no entries"),
        }
    }
}

impl std::error::Error for MapFileError {}

impl MapFile {
    /// Parse map-file text (`A B C D E T` per line; blank lines and `#`
    /// comments allowed). Rank `i` is the i-th data line.
    pub fn parse(
        text: &str,
        shape: Shape,
        ranks_per_node: u32,
    ) -> Result<MapFile, MapFileError> {
        let mut placement = Vec::new();
        let mut seen = vec![false; (shape.num_nodes() * ranks_per_node) as usize];
        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let nums: Vec<u32> = trimmed
                .split_whitespace()
                .map(|t| t.parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| MapFileError::Malformed { line })?;
            if nums.len() != 6 {
                return Err(MapFileError::Malformed { line });
            }
            let c = Coord::new(
                nums[0] as u16,
                nums[1] as u16,
                nums[2] as u16,
                nums[3] as u16,
                nums[4] as u16,
            );
            if !shape.contains(c) {
                return Err(MapFileError::OutOfShape { line });
            }
            let slot = nums[5];
            if slot >= ranks_per_node {
                return Err(MapFileError::SlotOutOfRange { line, slot });
            }
            let node = shape.node_id(c);
            let key = (node.0 * ranks_per_node + slot) as usize;
            if seen[key] {
                return Err(MapFileError::DuplicatePlacement { line });
            }
            seen[key] = true;
            placement.push((node, slot));
        }
        if placement.is_empty() {
            return Err(MapFileError::Empty);
        }
        Ok(MapFile {
            shape,
            ranks_per_node,
            placement,
        })
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of ranks the file places.
    pub fn num_ranks(&self) -> u32 {
        self.placement.len() as u32
    }

    /// The node hosting `rank`.
    ///
    /// # Panics
    /// Panics if the rank is out of range.
    pub fn node_of(&self, rank: u32) -> NodeId {
        self.placement[rank as usize].0
    }

    /// The on-node slot of `rank`.
    pub fn slot_of(&self, rank: u32) -> u32 {
        self.placement[rank as usize].1
    }

    /// Render back to map-file text (inverse of [`MapFile::parse`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &(node, slot) in &self.placement {
            let c = self.shape.coord(node);
            out.push_str(&format!(
                "{} {} {} {} {} {}\n",
                c.0[0], c.0[1], c.0[2], c.0[3], c.0[4], slot
            ));
        }
        out
    }

    /// Generate the text of the default `ABCDET` mapping for a shape — a
    /// starting point for hand-tuned map files.
    pub fn default_text(shape: &Shape, ranks_per_node: u32) -> String {
        let mut out = String::new();
        for n in shape.nodes() {
            let c = shape.coord(n);
            for t in 0..ranks_per_node {
                out.push_str(&format!(
                    "{} {} {} {} {} {}\n",
                    c.0[0], c.0[1], c.0[2], c.0[3], c.0[4], t
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::standard_shape;

    fn shape() -> Shape {
        standard_shape(128).unwrap()
    }

    #[test]
    fn parse_simple_mapping() {
        let text = "0 0 0 0 0 0\n0 0 0 0 1 0\n# comment\n\n1 1 3 3 1 0\n";
        let m = MapFile::parse(text, shape(), 16).unwrap();
        assert_eq!(m.num_ranks(), 3);
        assert_eq!(m.node_of(0), NodeId(0));
        assert_eq!(m.node_of(1), NodeId(1));
        assert_eq!(m.node_of(2), NodeId(127));
        assert_eq!(m.slot_of(2), 0);
    }

    #[test]
    fn default_text_round_trips() {
        let s = shape();
        let text = MapFile::default_text(&s, 4);
        let m = MapFile::parse(&text, s, 4).unwrap();
        assert_eq!(m.num_ranks(), 512);
        // ABCDET: rank = node * rpn + t.
        for r in [0u32, 5, 511] {
            assert_eq!(m.node_of(r), NodeId(r / 4));
            assert_eq!(m.slot_of(r), r % 4);
        }
        assert_eq!(m.render(), text);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(
            MapFile::parse("0 0 0 0 0\n", shape(), 16),
            Err(MapFileError::Malformed { line: 1 })
        );
        assert_eq!(
            MapFile::parse("0 0 0 x 0 0\n", shape(), 16),
            Err(MapFileError::Malformed { line: 1 })
        );
    }

    #[test]
    fn rejects_out_of_shape() {
        assert_eq!(
            MapFile::parse("9 0 0 0 0 0\n", shape(), 16),
            Err(MapFileError::OutOfShape { line: 1 })
        );
    }

    #[test]
    fn rejects_bad_slot_and_duplicates() {
        assert_eq!(
            MapFile::parse("0 0 0 0 0 16\n", shape(), 16),
            Err(MapFileError::SlotOutOfRange { line: 1, slot: 16 })
        );
        assert_eq!(
            MapFile::parse("0 0 0 0 0 3\n0 0 0 0 0 3\n", shape(), 16),
            Err(MapFileError::DuplicatePlacement { line: 2 })
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            MapFile::parse("# nothing\n", shape(), 16),
            Err(MapFileError::Empty)
        );
    }

    #[test]
    fn errors_display() {
        let e = MapFileError::SlotOutOfRange { line: 7, slot: 20 };
        assert!(e.to_string().contains("line 7"));
    }
}
