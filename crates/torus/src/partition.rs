//! Standard ALCF/Mira partition shapes.
//!
//! Mira can be partitioned into non-overlapping rectangular sub-machines
//! (paper §III). Jobs are allocated in power-of-two node counts; each count
//! has a standard torus shape. The shapes below match the ones the paper
//! names explicitly (128 = `2x2x4x4x2`, 512 = `4x4x4x4x2`,
//! 2048 = `4x4x4x16x2`) and interpolate the remaining powers of two the way
//! ALCF blocks are built (doubling one dimension at a time), up to the full
//! 49,152-node machine (`8x12x16x16x2`).

use crate::shape::Shape;

/// Nodes per pset: each group of 128 compute nodes shares one I/O node
/// reached through two bridge nodes (paper §III).
pub const PSET_NODES: u32 = 128;

/// Hardware threads/cores usable per node for application ranks.
pub const CORES_PER_NODE: u32 = 16;

/// The standard torus shape for a partition of `nodes` compute nodes, or
/// `None` if no standard partition of that size exists.
pub fn standard_shape(nodes: u32) -> Option<Shape> {
    let s = match nodes {
        128 => Shape::new(2, 2, 4, 4, 2),
        256 => Shape::new(4, 2, 4, 4, 2),
        512 => Shape::new(4, 4, 4, 4, 2),
        1024 => Shape::new(4, 4, 4, 8, 2),
        2048 => Shape::new(4, 4, 4, 16, 2),
        4096 => Shape::new(4, 4, 8, 16, 2),
        8192 => Shape::new(4, 8, 8, 16, 2),
        16384 => Shape::new(8, 8, 8, 16, 2),
        49152 => Shape::new(8, 12, 16, 16, 2),
        _ => return None,
    };
    debug_assert_eq!(s.num_nodes(), nodes);
    Some(s)
}

/// The standard shape for a partition with `cores` compute cores
/// (16 per node).
pub fn shape_for_cores(cores: u32) -> Option<Shape> {
    if !cores.is_multiple_of(CORES_PER_NODE) {
        return None;
    }
    standard_shape(cores / CORES_PER_NODE)
}

/// All standard partition sizes (in nodes) in increasing order.
pub const STANDARD_SIZES: [u32; 9] = [
    128, 256, 512, 1024, 2048, 4096, 8192, 16384, 49152,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_standard_shapes_have_right_node_count() {
        for n in STANDARD_SIZES {
            let s = standard_shape(n).unwrap();
            assert_eq!(s.num_nodes(), n, "shape {s} for {n} nodes");
        }
    }

    #[test]
    fn paper_named_partitions() {
        assert_eq!(standard_shape(128).unwrap(), Shape::new(2, 2, 4, 4, 2));
        assert_eq!(standard_shape(512).unwrap(), Shape::new(4, 4, 4, 4, 2));
        assert_eq!(standard_shape(2048).unwrap(), Shape::new(4, 4, 4, 16, 2));
    }

    #[test]
    fn unknown_sizes_return_none() {
        assert!(standard_shape(100).is_none());
        assert!(standard_shape(0).is_none());
    }

    #[test]
    fn shape_for_cores_scales_by_16() {
        // The paper's weak-scaling study: 2,048 .. 131,072 cores.
        assert_eq!(shape_for_cores(2048).unwrap().num_nodes(), 128);
        assert_eq!(shape_for_cores(131072).unwrap().num_nodes(), 8192);
        assert!(shape_for_cores(100).is_none());
    }

    #[test]
    fn partitions_are_pset_multiples() {
        for n in STANDARD_SIZES {
            assert_eq!(n % PSET_NODES, 0);
        }
    }
}
