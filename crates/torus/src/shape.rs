//! Torus shapes (partition dimensions) and node identifiers.

use crate::coords::{Coord, Dim, Direction, NDIMS};
use std::fmt;

/// Identifier of a compute node within a partition.
///
/// Node ids are dense in `0..shape.num_nodes()` and correspond to the
/// row-major `ABCDE` ordering of coordinates (`E` varies fastest), the same
/// ordering used by the default BG/Q rank mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The shape of a torus partition: the extent of each of the five dimensions.
///
/// For example Mira's full machine is `8x12x16x16x2` (49,152 nodes) and the
/// paper's 128-node partition is `2x2x4x4x2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape(pub [u16; NDIMS]);

impl Shape {
    /// Build a shape from the five dimension extents.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    pub fn new(a: u16, b: u16, c: u16, d: u16, e: u16) -> Shape {
        let s = Shape([a, b, c, d, e]);
        assert!(
            s.0.iter().all(|&x| x > 0),
            "torus dimensions must be nonzero: {s}"
        );
        s
    }

    /// Extent along `dim`.
    #[inline]
    pub fn extent(&self, dim: Dim) -> u16 {
        self.0[dim.index()]
    }

    /// Total number of nodes in the partition.
    pub fn num_nodes(&self) -> u32 {
        self.0.iter().map(|&x| x as u32).product()
    }

    /// Whether `c` lies inside this shape.
    pub fn contains(&self, c: Coord) -> bool {
        c.0.iter().zip(self.0.iter()).all(|(&ci, &si)| ci < si)
    }

    /// Dense node id of a coordinate (row-major `ABCDE`, `E` fastest).
    ///
    /// # Panics
    /// Panics if `c` is outside the shape.
    pub fn node_id(&self, c: Coord) -> NodeId {
        assert!(self.contains(c), "coordinate {c} outside shape {self}");
        let mut id: u32 = 0;
        for i in 0..NDIMS {
            id = id * self.0[i] as u32 + c.0[i] as u32;
        }
        NodeId(id)
    }

    /// Coordinate of a node id (inverse of [`Shape::node_id`]).
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    pub fn coord(&self, n: NodeId) -> Coord {
        assert!(
            n.0 < self.num_nodes(),
            "node {n} out of range for shape {self}"
        );
        let mut rem = n.0;
        let mut c = [0u16; NDIMS];
        for i in (0..NDIMS).rev() {
            let ext = self.0[i] as u32;
            c[i] = (rem % ext) as u16;
            rem /= ext;
        }
        Coord(c)
    }

    /// Iterate over all node ids in the partition.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Iterate over all coordinates in row-major `ABCDE` order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.nodes().map(move |n| self.coord(n))
    }

    /// The neighbour of `c` one hop away in `dir`, with torus wraparound.
    pub fn neighbor(&self, c: Coord, dir: Direction) -> Coord {
        let ext = self.extent(dir.dim) as i32;
        let cur = c.get(dir.dim) as i32;
        let next = (cur + dir.sign.delta()).rem_euclid(ext) as u16;
        c.with(dir.dim, next)
    }

    /// Signed shortest displacement from `from` to `to` along `dim`.
    ///
    /// The magnitude is the hop count along that dimension; the sign is the
    /// direction of travel. Ties (exactly half way around an even-sized
    /// ring) are broken toward the positive direction, matching the
    /// deterministic tie-break of BG/Q zone-2/3 routing.
    pub fn signed_delta(&self, from: Coord, to: Coord, dim: Dim) -> i32 {
        let ext = self.extent(dim) as i32;
        let diff = (to.get(dim) as i32 - from.get(dim) as i32).rem_euclid(ext);
        if diff == 0 {
            0
        } else if diff * 2 <= ext {
            diff // forward (positive) is shortest, or tie -> positive
        } else {
            diff - ext // negative direction is shorter
        }
    }

    /// Torus (Manhattan-with-wraparound) hop distance between two nodes.
    pub fn distance(&self, from: Coord, to: Coord) -> u32 {
        Dim::ALL
            .into_iter()
            .map(|d| self.signed_delta(from, to, d).unsigned_abs())
            .sum()
    }

    /// Per-dimension unsigned hop counts from `from` to `to`.
    pub fn hops_per_dim(&self, from: Coord, to: Coord) -> [u32; NDIMS] {
        let mut h = [0u32; NDIMS];
        for d in Dim::ALL {
            h[d.index()] = self.signed_delta(from, to, d).unsigned_abs();
        }
        h
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}x{}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Sign;

    fn paper_128() -> Shape {
        Shape::new(2, 2, 4, 4, 2)
    }

    #[test]
    fn num_nodes_matches_paper_partitions() {
        assert_eq!(paper_128().num_nodes(), 128);
        assert_eq!(Shape::new(4, 4, 4, 4, 2).num_nodes(), 512);
        assert_eq!(Shape::new(4, 4, 4, 16, 2).num_nodes(), 2048);
        assert_eq!(Shape::new(8, 12, 16, 16, 2).num_nodes(), 49152);
    }

    #[test]
    fn node_id_round_trip() {
        let s = paper_128();
        for n in s.nodes() {
            assert_eq!(s.node_id(s.coord(n)), n);
        }
    }

    #[test]
    fn node_id_is_row_major_abcde() {
        let s = paper_128();
        // E varies fastest.
        assert_eq!(s.node_id(Coord::new(0, 0, 0, 0, 0)).0, 0);
        assert_eq!(s.node_id(Coord::new(0, 0, 0, 0, 1)).0, 1);
        assert_eq!(s.node_id(Coord::new(0, 0, 0, 1, 0)).0, 2);
        assert_eq!(s.node_id(Coord::new(0, 0, 1, 0, 0)).0, 8);
        assert_eq!(s.node_id(Coord::new(0, 1, 0, 0, 0)).0, 32);
        assert_eq!(s.node_id(Coord::new(1, 0, 0, 0, 0)).0, 64);
    }

    #[test]
    fn neighbor_wraps_around() {
        let s = paper_128();
        let c = Coord::new(0, 0, 0, 0, 0);
        let plus_a = s.neighbor(c, Direction::new(Dim::A, Sign::Plus));
        assert_eq!(plus_a, Coord::new(1, 0, 0, 0, 0));
        let minus_a = s.neighbor(c, Direction::new(Dim::A, Sign::Minus));
        assert_eq!(minus_a, Coord::new(1, 0, 0, 0, 0), "size-2 ring wraps to same node");
        let minus_c = s.neighbor(c, Direction::new(Dim::C, Sign::Minus));
        assert_eq!(minus_c, Coord::new(0, 0, 3, 0, 0));
    }

    #[test]
    fn signed_delta_shortest_and_tie_break() {
        let s = Shape::new(4, 4, 4, 4, 2);
        let o = Coord::new(0, 0, 0, 0, 0);
        assert_eq!(s.signed_delta(o, Coord::new(1, 0, 0, 0, 0), Dim::A), 1);
        assert_eq!(s.signed_delta(o, Coord::new(3, 0, 0, 0, 0), Dim::A), -1);
        // Halfway around an even ring: tie broken toward positive.
        assert_eq!(s.signed_delta(o, Coord::new(2, 0, 0, 0, 0), Dim::A), 2);
        assert_eq!(s.signed_delta(o, o, Dim::A), 0);
    }

    #[test]
    fn distance_is_sum_of_dim_hops() {
        let s = Shape::new(4, 4, 4, 16, 2);
        let a = Coord::new(0, 0, 0, 0, 0);
        let b = Coord::new(3, 3, 3, 15, 1);
        // shortest: 1 + 1 + 1 + 1 + 1 (all wrap)
        assert_eq!(s.distance(a, b), 5);
        let c = Coord::new(2, 2, 2, 8, 1);
        assert_eq!(s.distance(a, c), 2 + 2 + 2 + 8 + 1);
    }

    #[test]
    fn distance_symmetry() {
        let s = Shape::new(4, 4, 4, 8, 2);
        let a = Coord::new(1, 2, 3, 5, 0);
        let b = Coord::new(3, 0, 1, 7, 1);
        assert_eq!(s.distance(a, b), s.distance(b, a));
    }

    #[test]
    #[should_panic(expected = "outside shape")]
    fn node_id_out_of_shape_panics() {
        paper_128().node_id(Coord::new(5, 0, 0, 0, 0));
    }
}
