//! Property tests for map files and midplane structure.

use bgq_torus::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn default_mapfile_round_trips(rpn in 1u32..=16) {
        let shape = standard_shape(128).unwrap();
        let text = MapFile::default_text(&shape, rpn);
        let m = MapFile::parse(&text, shape, rpn).unwrap();
        prop_assert_eq!(m.num_ranks(), 128 * rpn);
        prop_assert_eq!(m.render(), text);
        // Agreement with the built-in ABCDET mapping.
        let builtin = RankMap::default_map(shape, rpn);
        for r in 0..m.num_ranks() {
            prop_assert_eq!(m.node_of(r), builtin.node_of(Rank(r)));
            prop_assert_eq!(m.slot_of(r), builtin.slot_of(Rank(r)));
        }
    }

    #[test]
    fn shuffled_mapfile_parses_and_preserves_lines(seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let shape = standard_shape(128).unwrap();
        let mut lines: Vec<String> = MapFile::default_text(&shape, 2)
            .lines()
            .map(str::to_string)
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        lines.shuffle(&mut rng);
        let text = lines.join("\n");
        let m = MapFile::parse(&text, shape, 2).unwrap();
        prop_assert_eq!(m.num_ranks(), 256);
        // Rank i is line i: spot-check a few.
        for (i, line) in lines.iter().enumerate().take(16) {
            let nums: Vec<u16> = line
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            let c = Coord::new(nums[0], nums[1], nums[2], nums[3], nums[4]);
            prop_assert_eq!(m.node_of(i as u32), shape.node_id(c));
        }
    }

    #[test]
    fn midplane_counts_are_consistent(idx in 0usize..7) {
        let nodes = STANDARD_SIZES[idx];
        let shape = standard_shape(nodes).unwrap();
        let mp = midplanes_for(&shape);
        if nodes <= MIDPLANE_NODES {
            prop_assert_eq!(mp, 1);
        } else {
            prop_assert_eq!(mp * MIDPLANE_NODES, nodes);
            let grid = midplane_grid(&shape).unwrap();
            let product: u32 = grid.iter().map(|&g| g as u32).product();
            prop_assert_eq!(product, mp);
        }
    }
}
