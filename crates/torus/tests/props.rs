//! Property-based tests for the torus topology model.

use bgq_torus::*;
use proptest::prelude::*;

/// Strategy: a valid shape with small extents (keeps routes short).
fn shapes() -> impl Strategy<Value = Shape> {
    (1u16..=8, 1u16..=8, 1u16..=8, 1u16..=16, 1u16..=2)
        .prop_map(|(a, b, c, d, e)| Shape::new(a, b, c, d, e))
}

/// Strategy: a shape plus two node ids inside it.
fn shape_and_pair() -> impl Strategy<Value = (Shape, NodeId, NodeId)> {
    shapes().prop_flat_map(|s| {
        let n = s.num_nodes();
        (Just(s), 0..n, 0..n).prop_map(|(s, a, b)| (s, NodeId(a), NodeId(b)))
    })
}

proptest! {
    #[test]
    fn node_id_coord_round_trip((s, a, _b) in shape_and_pair()) {
        let c = s.coord(a);
        prop_assert!(s.contains(c));
        prop_assert_eq!(s.node_id(c), a);
    }

    #[test]
    fn distance_is_a_metric((s, a, b) in shape_and_pair()) {
        let (ca, cb) = (s.coord(a), s.coord(b));
        // symmetry
        prop_assert_eq!(s.distance(ca, cb), s.distance(cb, ca));
        // identity
        prop_assert_eq!(s.distance(ca, ca), 0);
        if a != b {
            prop_assert!(s.distance(ca, cb) > 0);
        }
    }

    #[test]
    fn distance_triangle_inequality((s, a, b) in shape_and_pair(), c_idx in 0u32..4096) {
        let c = NodeId(c_idx % s.num_nodes());
        let (ca, cb, cc) = (s.coord(a), s.coord(b), s.coord(c));
        prop_assert!(s.distance(ca, cb) <= s.distance(ca, cc) + s.distance(cc, cb));
    }

    #[test]
    fn signed_delta_is_shortest((s, a, b) in shape_and_pair()) {
        let (ca, cb) = (s.coord(a), s.coord(b));
        for dim in Dim::ALL {
            let d = s.signed_delta(ca, cb, dim);
            let ext = s.extent(dim) as i32;
            prop_assert!(d.abs() <= ext / 2, "delta {d} too long for extent {ext}");
            // Walking |d| hops in sign(d) lands on the target component.
            let landed = (ca.get(dim) as i32 + d).rem_euclid(ext) as u16;
            prop_assert_eq!(landed, cb.get(dim));
        }
    }

    #[test]
    fn deterministic_routes_chain_and_are_minimal((s, a, b) in shape_and_pair()) {
        for zone in [Zone::Z2, Zone::Z3] {
            let r = route(&s, a, b, zone);
            let mut cur = a;
            for l in &r.links {
                prop_assert_eq!(l.node(), cur);
                cur = link_target(&s, *l);
            }
            prop_assert_eq!(cur, b);
            prop_assert_eq!(r.hops() as u32, s.distance(s.coord(a), s.coord(b)));
        }
    }

    #[test]
    fn route_links_are_unique((s, a, b) in shape_and_pair()) {
        let r = route(&s, a, b, Zone::Z2);
        let mut links = r.links.clone();
        links.sort();
        links.dedup();
        prop_assert_eq!(links.len(), r.links.len(), "a minimal route never repeats a link");
    }

    #[test]
    fn randomized_routes_are_minimal((s, a, b) in shape_and_pair(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for zone in [Zone::Z0, Zone::Z1] {
            let r = route_with_rng(&s, a, b, zone, &mut rng);
            prop_assert_eq!(r.hops() as u32, s.distance(s.coord(a), s.coord(b)));
        }
    }

    #[test]
    fn neighbor_is_involutive_for_large_rings((_s, _, _) in shape_and_pair()) {
        // Use a fixed shape with all extents > 2 so +d then -d returns.
        let s = Shape::new(4, 4, 4, 4, 4);
        for node in [NodeId(0), NodeId(5), NodeId(100)] {
            let c = s.coord(node);
            for dir in Direction::all() {
                let back = s.neighbor(s.neighbor(c, dir), dir.opposite());
                prop_assert_eq!(back, c);
            }
        }
    }

    #[test]
    fn rank_map_round_trip(rpn in 1u32..=16, order_t in 0u8..2) {
        let order = if order_t == 0 { MapOrder::AbcdeT } else { MapOrder::TAbcde };
        let m = RankMap::new(Shape::new(2, 2, 4, 4, 2), rpn, order);
        for r in m.ranks() {
            prop_assert_eq!(m.rank_at(m.node_of(r), m.slot_of(r)), r);
        }
    }
}

#[test]
fn pset_layout_partitions_all_standard_shapes() {
    for n in STANDARD_SIZES {
        let shape = standard_shape(n).unwrap();
        let layout = IoLayout::new(shape);
        let mut count = 0u32;
        for p in 0..layout.num_psets() {
            count += layout.pset_nodes(PsetId(p)).count() as u32;
        }
        assert_eq!(count, shape.num_nodes());
    }
}
