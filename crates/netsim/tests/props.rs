//! Property-based tests for the network simulator.

use bgq_netsim::*;
use proptest::prelude::*;

/// Strategy: a random small network scenario.
///
/// Produces (num_nodes, capacities, transfers) where each transfer has a
/// random source/destination, size, and a route of 1..4 random resources.
fn scenario() -> impl Strategy<Value = (u32, Vec<f64>, Vec<TransferSpec>)> {
    let nodes = 2u32..8;
    let nres = 1usize..8;
    (nodes, nres).prop_flat_map(|(n, r)| {
        let caps = proptest::collection::vec(1.0f64..1000.0, r);
        let transfers = proptest::collection::vec(
            (
                0..n,
                0..n,
                0u64..100_000,
                proptest::collection::vec(0..r as u32, 0..4),
            ),
            1..20,
        );
        (Just(n), caps, transfers).prop_map(|(n, caps, ts)| {
            let specs = ts
                .into_iter()
                .map(|(src, dst, bytes, route)| {
                    TransferSpec::new(
                        src,
                        dst,
                        bytes,
                        route.into_iter().map(ResourceId).collect(),
                    )
                })
                .collect();
            (n, caps, specs)
        })
    })
}

fn quick_config() -> SimConfig {
    SimConfig {
        link_bandwidth: 100.0,
        io_link_bandwidth: 100.0,
        per_flow_cap: 50.0,
        hop_latency: 1e-3,
        send_overhead: 1e-2,
        recv_overhead: 1e-2,
        rma_phase_overhead: 0.0,
        forward_overhead: 0.0,
        contention_penalty: 0.0,
        contention_floor: 1.0,
        collect_link_stats: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_transfer_is_delivered((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps, quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let rep = sim.simulate(&g, SimOptions::new());
        for (i, t) in rep.delivery_time.iter().enumerate() {
            prop_assert!(t.is_finite(), "transfer {i} never delivered");
            prop_assert!(*t >= 0.0);
        }
        prop_assert!(rep.makespan.is_finite());
    }

    #[test]
    fn simulation_is_deterministic((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps, quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let r1 = sim.simulate(&g, SimOptions::new());
        let r2 = sim.simulate(&g, SimOptions::new());
        prop_assert_eq!(r1.delivery_time, r2.delivery_time);
        prop_assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn bytes_are_conserved_on_links((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps.clone(), quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let rep = sim.simulate(&g, SimOptions::new());
        // Each resource must have carried exactly the bytes of the
        // transfers routed over it (within float tolerance).
        let mut expect = vec![0.0f64; caps.len()];
        for s in g.specs() {
            for r in &s.route {
                expect[r.0 as usize] += s.bytes as f64;
            }
        }
        let got = rep.resource_bytes.as_ref().unwrap();
        for (i, (e, g)) in expect.iter().zip(got).enumerate() {
            prop_assert!(
                (e - g).abs() <= 1.0 + e * 1e-6,
                "resource {i}: expected {e} bytes, accounted {g}"
            );
        }
    }

    #[test]
    fn chains_deliver_in_order(len in 2usize..8, bytes in 1u64..50_000) {
        // A dependency chain must deliver strictly monotonically.
        let sim = Simulator::new(2, vec![100.0], quick_config());
        let mut g = TransferGraph::new();
        let mut prev: Option<TransferId> = None;
        let mut ids = Vec::new();
        for _ in 0..len {
            let mut s = TransferSpec::new(0, 1, bytes, vec![ResourceId(0)]);
            if let Some(p) = prev {
                s = s.after(vec![p]);
            }
            let id = g.add(s);
            ids.push(id);
            prev = Some(id);
        }
        let rep = sim.simulate(&g, SimOptions::new());
        for w in ids.windows(2) {
            prop_assert!(rep.delivered_at(w[0]) < rep.delivered_at(w[1]));
        }
    }

    #[test]
    fn more_contention_never_speeds_up_a_flow(extra in 0usize..6) {
        // Adding competing flows on the same link cannot make the probe
        // transfer finish earlier (monotonicity of fair sharing).
        let sim = Simulator::new(4, vec![100.0], quick_config());
        let run_with = |k: usize| {
            let mut g = TransferGraph::new();
            let probe = g.add(TransferSpec::new(0, 1, 10_000, vec![ResourceId(0)]));
            for i in 0..k {
                g.add(TransferSpec::new(
                    (2 + i as u32 % 2) % 4,
                    1,
                    10_000,
                    vec![ResourceId(0)],
                ));
            }
            sim.simulate(&g, SimOptions::new()).delivered_at(probe)
        };
        let base = run_with(0);
        let loaded = run_with(extra);
        prop_assert!(loaded >= base - 1e-9, "probe sped up under load: {base} -> {loaded}");
    }

    #[test]
    fn splitting_over_disjoint_paths_helps_large_messages(
        bytes in 1_000_000u64..10_000_000,
    ) {
        // One flow capped at 50 on a single path vs. two halves on two
        // disjoint paths: the split must win for large messages.
        let sim = Simulator::new(2, vec![100.0, 100.0], quick_config());
        let mut direct = TransferGraph::new();
        let d = direct.add(TransferSpec::new(0, 1, bytes, vec![ResourceId(0)]));
        let t_direct = sim.simulate(&direct, SimOptions::new()).delivered_at(d);

        let mut split = TransferGraph::new();
        let a = split.add(TransferSpec::new(0, 1, bytes / 2, vec![ResourceId(0)]));
        let b = split.add(TransferSpec::new(0, 1, bytes - bytes / 2, vec![ResourceId(1)]));
        let rep = sim.simulate(&split, SimOptions::new());
        let t_split = rep.last_delivery(&[a, b]);
        prop_assert!(t_split < t_direct, "split {t_split} vs direct {t_direct}");
    }
}

/// Strategy: capacities plus flows as (route, cap) with owned routes,
/// feeding [`Waterfill`] directly (no engine in between).
fn waterfill_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<(Vec<u32>, f64)>)> {
    (1usize..8).prop_flat_map(|r| {
        let caps = proptest::collection::vec(1.0f64..1000.0, r);
        let flows = proptest::collection::vec(
            (proptest::collection::vec(0..r as u32, 0..4), 0.5f64..500.0),
            1..16,
        );
        (caps, flows)
    })
}

fn waterfill_rates(caps: &[f64], flows: &[(Vec<u32>, f64)]) -> Vec<f64> {
    let routes: Vec<Vec<ResourceId>> = flows
        .iter()
        .map(|(r, _)| r.iter().copied().map(ResourceId).collect())
        .collect();
    let demands: Vec<FlowDemand> = routes
        .iter()
        .zip(flows)
        .map(|(route, (_, cap))| FlowDemand { route, cap: *cap })
        .collect();
    let mut wf = Waterfill::new(caps.len());
    let mut rates = Vec::new();
    wf.compute(&demands, caps, &mut rates);
    rates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Flow conservation: no flow is allocated more than its demand (cap),
    // and every flow makes progress.
    #[test]
    fn waterfill_respects_flow_demands((caps, flows) in waterfill_scenario()) {
        let rates = waterfill_rates(&caps, &flows);
        for ((_, cap), rate) in flows.iter().zip(&rates) {
            prop_assert!(*rate > 0.0, "flow starved: {rate}");
            prop_assert!(
                *rate <= cap * (1.0 + 1e-9),
                "allocation {rate} exceeds demand {cap}"
            );
        }
    }

    // Capacity respect: per resource, allocations sum to at most the
    // capacity.
    #[test]
    fn waterfill_respects_capacities((caps, flows) in waterfill_scenario()) {
        let rates = waterfill_rates(&caps, &flows);
        let mut used = vec![0.0f64; caps.len()];
        for ((route, _), rate) in flows.iter().zip(&rates) {
            for &r in route {
                used[r as usize] += rate;
            }
        }
        for (i, (u, c)) in used.iter().zip(&caps).enumerate() {
            prop_assert!(
                *u <= c * (1.0 + 1e-6),
                "resource {i} over capacity: {u} > {c}"
            );
        }
    }

    // Max-min monotonicity under added flows. Pointwise monotonicity is
    // false in general (a new flow can throttle a competitor on one link,
    // freeing capacity elsewhere), but max-min maximizes the minimum:
    // adding demand never raises the worst-off pre-existing allocation.
    #[test]
    fn waterfill_min_allocation_never_rises_under_added_flows(
        (caps, flows) in waterfill_scenario(),
        extra_route in proptest::collection::vec(0u32..8, 0..4),
        extra_cap in 0.5f64..500.0,
    ) {
        let extra_route: Vec<u32> = extra_route
            .into_iter()
            .map(|r| r % caps.len() as u32)
            .collect();
        let before = waterfill_rates(&caps, &flows);
        let mut grown = flows.clone();
        grown.push((extra_route, extra_cap));
        let after = waterfill_rates(&caps, &grown);
        let min_before = before.iter().cloned().fold(f64::INFINITY, f64::min);
        let min_after = after[..before.len()]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            min_after <= min_before * (1.0 + 1e-9),
            "worst-off flow sped up when a flow was added: {min_before} -> {min_after}"
        );
    }

    // On a single shared bottleneck monotonicity *is* pointwise: adding a
    // flow never increases any existing flow's allocation.
    #[test]
    fn waterfill_is_pointwise_monotone_on_one_link(
        link_cap in 1.0f64..1000.0,
        flow_caps in proptest::collection::vec(0.5f64..500.0, 1..12),
        extra_cap in 0.5f64..500.0,
    ) {
        let route = [ResourceId(0)];
        let rates_for = |caps: &[f64]| {
            let demands: Vec<FlowDemand> = caps
                .iter()
                .map(|&cap| FlowDemand { route: &route, cap })
                .collect();
            let mut wf = Waterfill::new(1);
            let mut rates = Vec::new();
            wf.compute(&demands, &[link_cap], &mut rates);
            rates
        };
        let before = rates_for(&flow_caps);
        let mut grown = flow_caps.clone();
        grown.push(extra_cap);
        let after = rates_for(&grown);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                *a <= b * (1.0 + 1e-9),
                "flow {i} sped up when a flow was added: {b} -> {a}"
            );
        }
    }

    // The sharding contract: executing contention components on worker
    // threads is an implementation detail. For any random graph and any
    // random fault plan, the report must be *bit-identical* at every
    // thread count — merge order is canonical, never completion order.
    #[test]
    fn sharded_reports_are_bit_identical_at_every_thread_count(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
        faulted in any::<bool>(),
    ) {
        let sim = Simulator::new(n, caps.clone(), quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        let opts = || {
            let o = SimOptions::new();
            if faulted { o.faults(&plan) } else { o }
        };
        let sequential = sim.simulate(&g, opts());
        for threads in [1usize, 2, 8] {
            let sharded = sim.simulate(&g, opts().sharded(threads));
            prop_assert_eq!(
                &sharded, &sequential,
                "report diverged at {} threads (faulted: {})", threads, faulted
            );
        }
    }

    // Fault plans: every transfer ends in exactly one consistent state,
    // and an identical plan replays to identical outcomes.
    #[test]
    fn faulted_runs_classify_every_transfer(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
    ) {
        let sim = Simulator::new(n, caps.clone(), quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        let rep = sim.simulate(&g, SimOptions::new().faults(&plan));
        for i in 0..g.len() {
            let start = rep.flow_start_time[i];
            let end = rep.delivery_time[i];
            match rep.status[i] {
                TransferStatus::Delivered => {
                    prop_assert!(start.is_finite() && end.is_finite() && end >= start);
                }
                TransferStatus::Stalled => {
                    prop_assert!(start.is_finite() && end == f64::INFINITY);
                }
                TransferStatus::NotStarted => {
                    prop_assert!(start == f64::INFINITY && end == f64::INFINITY);
                }
            }
        }
        prop_assert!(rep.end_time.is_finite());
        let again = sim.simulate(&g, SimOptions::new().faults(&plan));
        prop_assert_eq!(rep.delivery_time, again.delivery_time);
        prop_assert_eq!(rep.status, again.status);
    }
}

#[test]
fn water_filling_matches_hand_computed_scenario() {
    // Three flows: two share link 0 (cap 100), one alone on link 1.
    // Flow caps 50 each: so flows on link 0 get 50 each exactly (no
    // contention loss), lone flow gets 50 (cap-bound).
    let sim = Simulator::new(4, vec![100.0, 100.0], quick_config());
    let mut g = TransferGraph::new();
    let a = g.add(TransferSpec::new(0, 1, 5_000, vec![ResourceId(0)]));
    let b = g.add(TransferSpec::new(2, 1, 5_000, vec![ResourceId(0)]));
    let c = g.add(TransferSpec::new(3, 1, 5_000, vec![ResourceId(1)]));
    let rep = sim.simulate(&g, SimOptions::new());
    let times: Vec<f64> = [a, b, c].iter().map(|t| rep.delivered_at(*t)).collect();
    // All three transfer at 50 B/s -> 100 s + overheads, same finish.
    assert!((times[0] - times[1]).abs() < 1e-6);
    assert!((times[0] - times[2]).abs() < 1e-6);
}
