//! Property-based tests for the network simulator.

use bgq_netsim::*;
use proptest::prelude::*;

/// Strategy: a random small network scenario.
///
/// Produces (num_nodes, capacities, transfers) where each transfer has a
/// random source/destination, size, and a route of 1..4 random resources.
fn scenario() -> impl Strategy<Value = (u32, Vec<f64>, Vec<TransferSpec>)> {
    let nodes = 2u32..8;
    let nres = 1usize..8;
    (nodes, nres).prop_flat_map(|(n, r)| {
        let caps = proptest::collection::vec(1.0f64..1000.0, r);
        let transfers = proptest::collection::vec(
            (
                0..n,
                0..n,
                0u64..100_000,
                proptest::collection::vec(0..r as u32, 0..4),
            ),
            1..20,
        );
        (Just(n), caps, transfers).prop_map(|(n, caps, ts)| {
            let specs = ts
                .into_iter()
                .map(|(src, dst, bytes, route)| {
                    TransferSpec::new(
                        src,
                        dst,
                        bytes,
                        route.into_iter().map(ResourceId).collect(),
                    )
                })
                .collect();
            (n, caps, specs)
        })
    })
}

fn quick_config() -> SimConfig {
    SimConfig {
        link_bandwidth: 100.0,
        io_link_bandwidth: 100.0,
        per_flow_cap: 50.0,
        hop_latency: 1e-3,
        send_overhead: 1e-2,
        recv_overhead: 1e-2,
        rma_phase_overhead: 0.0,
        forward_overhead: 0.0,
        contention_penalty: 0.0,
        contention_floor: 1.0,
        collect_link_stats: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_transfer_is_delivered((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps, quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let rep = sim.run(&g);
        for (i, t) in rep.delivery_time.iter().enumerate() {
            prop_assert!(t.is_finite(), "transfer {i} never delivered");
            prop_assert!(*t >= 0.0);
        }
        prop_assert!(rep.makespan.is_finite());
    }

    #[test]
    fn simulation_is_deterministic((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps, quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let r1 = sim.run(&g);
        let r2 = sim.run(&g);
        prop_assert_eq!(r1.delivery_time, r2.delivery_time);
        prop_assert_eq!(r1.makespan, r2.makespan);
    }

    #[test]
    fn bytes_are_conserved_on_links((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps.clone(), quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let rep = sim.run(&g);
        // Each resource must have carried exactly the bytes of the
        // transfers routed over it (within float tolerance).
        let mut expect = vec![0.0f64; caps.len()];
        for s in g.specs() {
            for r in &s.route {
                expect[r.0 as usize] += s.bytes as f64;
            }
        }
        let got = rep.resource_bytes.as_ref().unwrap();
        for (i, (e, g)) in expect.iter().zip(got).enumerate() {
            prop_assert!(
                (e - g).abs() <= 1.0 + e * 1e-6,
                "resource {i}: expected {e} bytes, accounted {g}"
            );
        }
    }

    #[test]
    fn chains_deliver_in_order(len in 2usize..8, bytes in 1u64..50_000) {
        // A dependency chain must deliver strictly monotonically.
        let sim = Simulator::new(2, vec![100.0], quick_config());
        let mut g = TransferGraph::new();
        let mut prev: Option<TransferId> = None;
        let mut ids = Vec::new();
        for _ in 0..len {
            let mut s = TransferSpec::new(0, 1, bytes, vec![ResourceId(0)]);
            if let Some(p) = prev {
                s = s.after(vec![p]);
            }
            let id = g.add(s);
            ids.push(id);
            prev = Some(id);
        }
        let rep = sim.run(&g);
        for w in ids.windows(2) {
            prop_assert!(rep.delivered_at(w[0]) < rep.delivered_at(w[1]));
        }
    }

    #[test]
    fn more_contention_never_speeds_up_a_flow(extra in 0usize..6) {
        // Adding competing flows on the same link cannot make the probe
        // transfer finish earlier (monotonicity of fair sharing).
        let sim = Simulator::new(4, vec![100.0], quick_config());
        let run_with = |k: usize| {
            let mut g = TransferGraph::new();
            let probe = g.add(TransferSpec::new(0, 1, 10_000, vec![ResourceId(0)]));
            for i in 0..k {
                g.add(TransferSpec::new(
                    (2 + i as u32 % 2) % 4,
                    1,
                    10_000,
                    vec![ResourceId(0)],
                ));
            }
            sim.run(&g).delivered_at(probe)
        };
        let base = run_with(0);
        let loaded = run_with(extra);
        prop_assert!(loaded >= base - 1e-9, "probe sped up under load: {base} -> {loaded}");
    }

    #[test]
    fn splitting_over_disjoint_paths_helps_large_messages(
        bytes in 1_000_000u64..10_000_000,
    ) {
        // One flow capped at 50 on a single path vs. two halves on two
        // disjoint paths: the split must win for large messages.
        let sim = Simulator::new(2, vec![100.0, 100.0], quick_config());
        let mut direct = TransferGraph::new();
        let d = direct.add(TransferSpec::new(0, 1, bytes, vec![ResourceId(0)]));
        let t_direct = sim.run(&direct).delivered_at(d);

        let mut split = TransferGraph::new();
        let a = split.add(TransferSpec::new(0, 1, bytes / 2, vec![ResourceId(0)]));
        let b = split.add(TransferSpec::new(0, 1, bytes - bytes / 2, vec![ResourceId(1)]));
        let rep = sim.run(&split);
        let t_split = rep.last_delivery(&[a, b]);
        prop_assert!(t_split < t_direct, "split {t_split} vs direct {t_direct}");
    }
}

#[test]
fn water_filling_matches_hand_computed_scenario() {
    // Three flows: two share link 0 (cap 100), one alone on link 1.
    // Flow caps 50 each: so flows on link 0 get 50 each exactly (no
    // contention loss), lone flow gets 50 (cap-bound).
    let sim = Simulator::new(4, vec![100.0, 100.0], quick_config());
    let mut g = TransferGraph::new();
    let a = g.add(TransferSpec::new(0, 1, 5_000, vec![ResourceId(0)]));
    let b = g.add(TransferSpec::new(2, 1, 5_000, vec![ResourceId(0)]));
    let c = g.add(TransferSpec::new(3, 1, 5_000, vec![ResourceId(1)]));
    let rep = sim.run(&g);
    let times: Vec<f64> = [a, b, c].iter().map(|t| rep.delivered_at(*t)).collect();
    // All three transfer at 50 B/s -> 100 s + overheads, same finish.
    assert!((times[0] - times[1]).abs() < 1e-6);
    assert!((times[0] - times[2]).abs() < 1e-6);
}
