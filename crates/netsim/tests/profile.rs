//! The bottleneck-attribution profiler's contract (see
//! `src/profile.rs` module docs): for ANY transfer graph and ANY fault
//! plan,
//!
//! * per flow, the time categories sum to its elapsed time;
//! * per-link blame sums to the network-limited total, and every blamed
//!   link lies on the flow's route;
//! * profiles are bit-identical between `SolverMode::Full` and
//!   `SolverMode::Incremental`;
//! * profiling is passive — the rest of the report is bit-identical to
//!   an unprofiled run;
//! * fault-free runs never charge a nanosecond to `stalled_by_fault`.

use bgq_netsim::*;
use proptest::prelude::*;

/// Strategy: a random small network scenario (mirrors `incremental.rs`).
fn scenario() -> impl Strategy<Value = (u32, Vec<f64>, Vec<TransferSpec>)> {
    let nodes = 2u32..8;
    let nres = 1usize..8;
    (nodes, nres).prop_flat_map(|(n, r)| {
        let caps = proptest::collection::vec(1.0f64..1000.0, r);
        let transfers = proptest::collection::vec(
            (
                0..n,
                0..n,
                0u64..100_000,
                proptest::collection::vec(0..r as u32, 0..4),
            ),
            1..20,
        );
        (Just(n), caps, transfers).prop_map(|(n, caps, ts)| {
            let specs = ts
                .into_iter()
                .map(|(src, dst, bytes, route)| {
                    TransferSpec::new(
                        src,
                        dst,
                        bytes,
                        route.into_iter().map(ResourceId).collect(),
                    )
                })
                .collect();
            (n, caps, specs)
        })
    })
}

fn quick_config() -> SimConfig {
    SimConfig {
        link_bandwidth: 100.0,
        io_link_bandwidth: 100.0,
        per_flow_cap: 50.0,
        hop_latency: 1e-3,
        send_overhead: 1e-2,
        recv_overhead: 1e-2,
        rma_phase_overhead: 0.0,
        forward_overhead: 0.0,
        contention_penalty: 0.0,
        contention_floor: 1.0,
        collect_link_stats: true,
    }
}

fn build(n: u32, caps: Vec<f64>, specs: Vec<TransferSpec>) -> (Simulator, TransferGraph) {
    let sim = Simulator::new(n, caps, quick_config());
    let mut g = TransferGraph::new();
    for s in specs {
        g.add(s);
    }
    (sim, g)
}

/// Per-flow accounting: categories sum to elapsed time (delivery − ready,
/// or run end − ready for flows still in flight when the queue drained).
fn assert_decomposition_sums(report: &SimReport, ctx: &str) -> Result<(), TestCaseError> {
    let profile = report.profile.as_ref().expect("profiled run");
    prop_assert_eq!(
        profile.end_time.to_bits(),
        report.end_time.to_bits(),
        "profile clock ({})",
        ctx
    );
    for (i, tp) in profile.transfers.iter().enumerate() {
        for part in [
            tp.queued_before_start,
            tp.cap_limited,
            tp.stalled_by_fault,
            tp.delivery_latency,
        ] {
            prop_assert!(part >= 0.0, "negative category t{} ({}): {:?}", i, ctx, tp);
        }
        for &(_, s) in &tp.bottlenecked_on {
            prop_assert!(s >= 0.0, "negative link blame t{} ({}): {:?}", i, ctx, tp);
        }
        if tp.ready_time.is_infinite() {
            // Never became ready (dependency never delivered): nothing to
            // account.
            prop_assert_eq!(tp.accounted().to_bits(), 0.0f64.to_bits(), "t{} ({})", i, ctx);
            continue;
        }
        let delivered = report.delivery_time[i];
        let elapsed = if delivered.is_finite() {
            delivered - tp.ready_time
        } else {
            report.end_time - tp.ready_time
        };
        let accounted = tp.accounted();
        let tol = 1e-9 * elapsed.abs().max(1.0);
        prop_assert!(
            (accounted - elapsed).abs() <= tol,
            "t{}: accounted {} != elapsed {} ({}): {:?}",
            i,
            accounted,
            elapsed,
            ctx,
            tp
        );
    }
    Ok(())
}

/// Per-link blame: sums to the network-limited total and only ever names
/// links on the flow's own route; binding timelines are time-ordered and
/// deduplicated.
fn assert_blame_consistent(
    report: &SimReport,
    g: &TransferGraph,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let profile = report.profile.as_ref().expect("profiled run");
    let mut per_flow_total = 0.0f64;
    for (i, tp) in profile.transfers.iter().enumerate() {
        per_flow_total += tp.network_limited();
        let route = &g.specs()[i].route;
        for &(r, _) in &tp.bottlenecked_on {
            prop_assert!(
                route.contains(&r),
                "t{} blamed off-route link {:?} ({})",
                i,
                r,
                ctx
            );
        }
        for w in tp.bottlenecked_on.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "t{} blame unsorted ({})", i, ctx);
        }
        for w in tp.binding_timeline.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "t{} timeline unordered ({})", i, ctx);
            prop_assert!(w[0].1 != w[1].1, "t{} timeline not deduped ({})", i, ctx);
        }
    }
    let rollup = profile
        .link_blame()
        .iter()
        .fold(0.0f64, |a, &(_, s)| a + s);
    let total = profile.total_network_limited();
    let tol = 1e-9 * total.abs().max(1.0);
    prop_assert!(
        (rollup - total).abs() <= tol,
        "rollup {} != per-flow total {} ({})",
        rollup,
        total,
        ctx
    );
    prop_assert!(
        (per_flow_total - total).abs() <= tol,
        "total_network_limited {} != hand sum {} ({})",
        total,
        per_flow_total,
        ctx
    );
    Ok(())
}

/// Bit-level equality of two profiles, field by field.
fn assert_profiles_identical(
    a: &SimProfile,
    b: &SimProfile,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.end_time.to_bits(), b.end_time.to_bits(), "end_time ({})", ctx);
    prop_assert_eq!(a.transfers.len(), b.transfers.len(), "len ({})", ctx);
    for (i, (x, y)) in a.transfers.iter().zip(&b.transfers).enumerate() {
        for (fx, fy, name) in [
            (x.ready_time, y.ready_time, "ready_time"),
            (x.queued_before_start, y.queued_before_start, "queued"),
            (x.cap_limited, y.cap_limited, "cap_limited"),
            (x.stalled_by_fault, y.stalled_by_fault, "stalled"),
            (x.delivery_latency, y.delivery_latency, "latency"),
        ] {
            prop_assert_eq!(fx.to_bits(), fy.to_bits(), "t{} {} ({})", i, name, ctx);
        }
        prop_assert_eq!(
            x.bottlenecked_on.len(),
            y.bottlenecked_on.len(),
            "t{} blame len ({})",
            i,
            ctx
        );
        for ((rx, sx), (ry, sy)) in x.bottlenecked_on.iter().zip(&y.bottlenecked_on) {
            prop_assert_eq!(rx, ry, "t{} blame link ({})", i, ctx);
            prop_assert_eq!(sx.to_bits(), sy.to_bits(), "t{} blame secs ({})", i, ctx);
        }
        prop_assert_eq!(
            x.binding_timeline.len(),
            y.binding_timeline.len(),
            "t{} timeline len ({})",
            i,
            ctx
        );
        for ((tx, bx), (ty, by)) in x.binding_timeline.iter().zip(&y.binding_timeline) {
            prop_assert_eq!(tx.to_bits(), ty.to_bits(), "t{} timeline time ({})", i, ctx);
            prop_assert_eq!(bx, by, "t{} timeline binding ({})", i, ctx);
        }
    }
    Ok(())
}

/// Bit-level equality of everything in the report *except* the profile.
fn assert_reports_identical(
    a: &SimReport,
    b: &SimReport,
    ctx: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.status.clone(), b.status.clone(), "status ({})", ctx);
    for (i, (x, y)) in a.delivery_time.iter().zip(&b.delivery_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "delivery_time[{}] ({})", i, ctx);
    }
    for (i, (x, y)) in a.flow_start_time.iter().zip(&b.flow_start_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "flow_start_time[{}] ({})", i, ctx);
    }
    for (i, (x, y)) in a.stall_time.iter().zip(&b.stall_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "stall_time[{}] ({})", i, ctx);
    }
    prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "makespan ({})", ctx);
    prop_assert_eq!(a.end_time.to_bits(), b.end_time.to_bits(), "end_time ({})", ctx);
    match (&a.resource_bytes, &b.resource_bytes) {
        (Some(x), Some(y)) => {
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                prop_assert_eq!(u.to_bits(), v.to_bits(), "resource_bytes[{}] ({})", i, ctx);
            }
        }
        (None, None) => {}
        _ => prop_assert!(false, "resource_bytes presence differs ({})", ctx),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fault-free: decomposition sums, blame consistency, and zero fault
    /// stall on every random graph.
    #[test]
    fn decomposition_accounts_for_every_second((n, caps, specs) in scenario()) {
        let (sim, g) = build(n, caps, specs);
        let report = sim.simulate(&g, SimOptions::new().profiled());
        assert_decomposition_sums(&report, "fault-free")?;
        assert_blame_consistent(&report, &g, "fault-free")?;
        let profile = report.profile.as_ref().unwrap();
        for (i, tp) in profile.transfers.iter().enumerate() {
            prop_assert_eq!(
                tp.stalled_by_fault.to_bits(),
                0.0f64.to_bits(),
                "t{} charged to faults without a fault plan",
                i
            );
        }
    }

    /// Under random fault plans the books still balance: stall seconds
    /// are a category like any other.
    #[test]
    fn decomposition_accounts_under_faults(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
    ) {
        let (sim, g) = build(n, caps.clone(), specs);
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        let report = sim.simulate(&g, SimOptions::new().faults(&plan).profiled());
        assert_decomposition_sums(&report, "faulted")?;
        assert_blame_consistent(&report, &g, "faulted")?;
    }

    /// Attribution is solver-independent: Full and Incremental produce
    /// bit-identical profiles (the solvers pop the same binding resource
    /// in the same order), with or without faults.
    #[test]
    fn profile_identical_between_solvers(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
    ) {
        let (sim, g) = build(n, caps.clone(), specs);
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        for (plan, ctx) in [(None, "fault-free"), (Some(&plan), "faulted")] {
            let mut opts_full = SimOptions::new().solver(SolverMode::Full).profiled();
            let mut opts_inc = SimOptions::new().solver(SolverMode::default()).profiled();
            if let Some(p) = plan {
                opts_full = opts_full.faults(p);
                opts_inc = opts_inc.faults(p);
            }
            let full = sim.simulate(&g, opts_full);
            let inc = sim.simulate(&g, opts_inc);
            assert_profiles_identical(
                full.profile.as_ref().unwrap(),
                inc.profile.as_ref().unwrap(),
                ctx,
            )?;
            assert_reports_identical(&full, &inc, ctx)?;
        }
    }

    /// Profiling is passive: a profiled run's report (minus the profile
    /// itself) is bit-identical to an unprofiled run.
    #[test]
    fn profiling_never_perturbs_the_simulation(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
    ) {
        let (sim, g) = build(n, caps.clone(), specs);
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        let plain = sim.simulate(&g, SimOptions::new().faults(&plan));
        let profiled = sim.simulate(&g, SimOptions::new().faults(&plan).profiled());
        prop_assert!(plain.profile.is_none());
        prop_assert!(profiled.profile.is_some());
        assert_reports_identical(&plain, &profiled, "passivity")?;
    }
}

/// Deterministic pinning of the attribution itself: three flows fan in
/// on one link (each is link-bound there), a fourth runs alone under its
/// cap, and a mid-run degrade charges stall seconds. Mirrors the
/// `incremental.rs` regression shape so the two suites watch the same
/// scenario from both sides.
#[test]
fn fan_in_blames_the_shared_link() {
    let sim = Simulator::new(6, vec![100.0, 100.0, 100.0], quick_config());
    let mut g = TransferGraph::new();
    g.add(TransferSpec::new(0, 1, 40_000, vec![ResourceId(0)]));
    g.add(TransferSpec::new(2, 1, 25_000, vec![ResourceId(0)]));
    g.add(TransferSpec::new(3, 1, 10_000, vec![ResourceId(0), ResourceId(1)]));
    // Disjoint pair on link 2: alone, so cap-limited (cap 50 < link 100).
    g.add(TransferSpec::new(4, 5, 30_000, vec![ResourceId(2)]));

    let report = sim.simulate(&g, SimOptions::new().profiled());
    assert!(report.all_delivered());
    let profile = report.profile.as_ref().unwrap();

    // The fan-in flows all spent time bound by the shared link 0 (three
    // flows × 50 cap > 100 link bandwidth).
    for i in 0..3 {
        let tp = &profile.transfers[i];
        let on_link0 = tp
            .bottlenecked_on
            .iter()
            .find(|&&(r, _)| r == ResourceId(0))
            .map(|&(_, s)| s)
            .unwrap_or(0.0);
        assert!(on_link0 > 0.0, "t{i} never blamed the contended link: {tp:?}");
        assert!(!tp.binding_timeline.is_empty(), "t{i} has no timeline");
    }
    // The disjoint flow is purely cap-limited: no link blame at all.
    let solo = &profile.transfers[3];
    assert!(solo.bottlenecked_on.is_empty(), "solo flow blamed a link: {solo:?}");
    assert!(solo.cap_limited > 0.0);
    assert_eq!(
        solo.binding_timeline.iter().map(|&(_, b)| b).collect::<Vec<_>>(),
        vec![Binding::FlowCap]
    );
    // Link 0 tops the run-level rollup.
    assert_eq!(profile.top_bottlenecks(1)[0].0, ResourceId(0));

    // Degrading link 2 mid-run stalls the solo flow: the stall category
    // picks up exactly what `SimReport::stall_time` reports.
    let plan = FaultPlan::new()
        .fail_link(1.0, ResourceId(2))
        .restore_link(5.0, ResourceId(2));
    let faulted = sim.simulate(&g, SimOptions::new().faults(&plan).profiled());
    let fp = faulted.profile.as_ref().unwrap();
    assert!(fp.transfers[3].stalled_by_fault > 0.0, "{:?}", fp.transfers[3]);
    assert_eq!(
        fp.transfers[3].stalled_by_fault.to_bits(),
        faulted.stall_time[3].to_bits()
    );
}
