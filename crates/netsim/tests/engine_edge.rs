//! Edge-case integration tests for the DES engine: wide fan-in/out,
//! deep dependency chains, mixed zero-byte synchronization, and penalty
//! interaction with caps.

use bgq_netsim::*;

fn cfg() -> SimConfig {
    SimConfig {
        link_bandwidth: 100.0,
        io_link_bandwidth: 100.0,
        per_flow_cap: 100.0,
        hop_latency: 0.0,
        send_overhead: 0.0,
        recv_overhead: 0.0,
        rma_phase_overhead: 0.0,
        forward_overhead: 0.0,
        contention_penalty: 0.0,
        contention_floor: 1.0,
        collect_link_stats: true,
    }
}

#[test]
fn thousand_flow_fan_in_is_fair_and_exact() {
    // 1,000 senders over 1,000 private links into one shared final link.
    let n = 1000u32;
    let mut caps = vec![100.0; n as usize];
    caps.push(1000.0); // the shared link
    let shared = ResourceId(n);
    let sim = Simulator::new(n + 1, caps, cfg());
    let mut g = TransferGraph::new();
    for i in 0..n {
        g.add(TransferSpec::new(
            i,
            n,
            1000,
            vec![ResourceId(i), shared],
        ));
    }
    let rep = sim.simulate(&g, SimOptions::new());
    // Shared link: 1000 flows over 1000 B/s -> 1 B/s each; 1000 bytes
    // each -> all complete at t = 1000.
    for t in &rep.delivery_time {
        assert!((t - 1000.0).abs() < 1e-3, "{t}");
    }
    // Byte conservation on the shared link.
    let rb = rep.resource_bytes.as_ref().unwrap();
    assert!((rb[n as usize] - 1_000_000.0).abs() < 10.0);
}

#[test]
fn deep_chain_of_thousand_transfers() {
    let sim = Simulator::new(2, vec![100.0], cfg());
    let mut g = TransferGraph::new();
    let mut prev = None;
    for i in 0..1000u32 {
        let mut s = TransferSpec::new(i % 2, (i + 1) % 2, 100, vec![ResourceId(0)]);
        if let Some(p) = prev {
            s = s.after(vec![p]);
        }
        prev = Some(g.add(s));
    }
    let rep = sim.simulate(&g, SimOptions::new());
    // Each link transfer takes 1 s; strictly sequential.
    assert!((rep.makespan - 1000.0).abs() < 1e-3, "{}", rep.makespan);
}

#[test]
fn zero_byte_barrier_tree_collapses_to_latency() {
    let mut c = cfg();
    c.hop_latency = 0.5;
    let sim = Simulator::new(8, vec![100.0; 8], c);
    let mut g = TransferGraph::new();
    // A 3-level binary fan-in of zero-byte messages.
    let leaves: Vec<TransferId> = (0..4)
        .map(|i| g.add(TransferSpec::new(i, 4, 0, vec![ResourceId(i)])))
        .collect();
    let mid = g.add(TransferSpec::new(4, 5, 0, vec![ResourceId(4)]).after(leaves));
    let root = g.add(TransferSpec::new(5, 6, 0, vec![ResourceId(5)]).after(vec![mid]));
    let rep = sim.simulate(&g, SimOptions::new());
    // 3 levels x (1 hop x 0.5 s); injections are free in this config.
    assert!((rep.delivered_at(root) - 1.5).abs() < 1e-9);
}

#[test]
fn penalty_and_cap_compose() {
    // Two flows share a 100-unit link with caps of 30: the penalty
    // derates the link to 100/1.1 = 90.9, but the caps (30 + 30 = 60)
    // bind first, so rates are unchanged by the penalty.
    let mut c = cfg();
    c.contention_penalty = 0.1;
    c.contention_floor = 0.7;
    c.per_flow_cap = 30.0;
    let sim = Simulator::new(3, vec![100.0], c);
    let mut g = TransferGraph::new();
    let a = g.add(TransferSpec::new(0, 2, 300, vec![ResourceId(0)]));
    let b = g.add(TransferSpec::new(1, 2, 300, vec![ResourceId(0)]));
    let rep = sim.simulate(&g, SimOptions::new());
    assert!((rep.delivered_at(a) - 10.0).abs() < 1e-6);
    assert!((rep.delivered_at(b) - 10.0).abs() < 1e-6);
}

#[test]
fn penalty_binds_when_caps_do_not() {
    let mut c = cfg();
    c.contention_penalty = 0.25;
    c.contention_floor = 0.5;
    let sim = Simulator::new(3, vec![100.0], c);
    let mut g = TransferGraph::new();
    // Two uncapped (cap=100) flows on a 100-unit link: derated total
    // 100/1.25 = 80 -> 40 each -> 400 bytes in 10 s.
    let a = g.add(TransferSpec::new(0, 2, 400, vec![ResourceId(0)]));
    g.add(TransferSpec::new(1, 2, 400, vec![ResourceId(0)]));
    let rep = sim.simulate(&g, SimOptions::new());
    assert!((rep.delivered_at(a) - 10.0).abs() < 1e-6, "{}", rep.delivered_at(a));
}

#[test]
fn wide_fan_out_from_one_node_serializes_injection() {
    let mut c = cfg();
    c.send_overhead = 0.1;
    let sim = Simulator::new(101, vec![1e9; 100], c);
    let mut g = TransferGraph::new();
    for i in 0..100u32 {
        g.add(TransferSpec::new(0, i + 1, 1, vec![ResourceId(i)]));
    }
    let rep = sim.simulate(&g, SimOptions::new());
    // The 100th injection cannot start before 99 x 0.1 s of CPU time.
    let last_start = rep
        .flow_start_time
        .iter()
        .fold(0.0f64, |a, &b| a.max(b));
    assert!(last_start >= 9.999, "{last_start}");
}

#[test]
fn mixed_start_times_interleave_correctly() {
    let sim = Simulator::new(3, vec![100.0], cfg());
    let mut g = TransferGraph::new();
    // Flow A runs 0..10 alone (1000 bytes at 100); flow B enters at t=4.
    let a = g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
    let b = g.add(TransferSpec::new(1, 2, 300, vec![ResourceId(0)]).not_before(4.0));
    let rep = sim.simulate(&g, SimOptions::new());
    // A: 400 bytes alone (t=0..4), then shares 50/50. B needs 300 bytes
    // at 50 -> 6 s -> done at 10. A: 400 + 6x50 = 700 by t=10, 300 left
    // alone at 100 -> done at 13.
    assert!((rep.delivered_at(b) - 10.0).abs() < 1e-6, "{}", rep.delivered_at(b));
    assert!((rep.delivered_at(a) - 13.0).abs() < 1e-6, "{}", rep.delivered_at(a));
}
