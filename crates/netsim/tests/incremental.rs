//! The incremental waterfill solver's contract: for ANY transfer graph
//! and ANY fault plan, [`SolverMode::Incremental`] produces a report
//! bit-identical to [`SolverMode::Full`] — the dirty-set machinery and
//! its fallback threshold are pure performance knobs, never visible in
//! results.

use bgq_netsim::*;
use proptest::prelude::*;

/// Strategy: a random small network scenario (mirrors `props.rs`).
fn scenario() -> impl Strategy<Value = (u32, Vec<f64>, Vec<TransferSpec>)> {
    let nodes = 2u32..8;
    let nres = 1usize..8;
    (nodes, nres).prop_flat_map(|(n, r)| {
        let caps = proptest::collection::vec(1.0f64..1000.0, r);
        let transfers = proptest::collection::vec(
            (
                0..n,
                0..n,
                0u64..100_000,
                proptest::collection::vec(0..r as u32, 0..4),
            ),
            1..20,
        );
        (Just(n), caps, transfers).prop_map(|(n, caps, ts)| {
            let specs = ts
                .into_iter()
                .map(|(src, dst, bytes, route)| {
                    TransferSpec::new(
                        src,
                        dst,
                        bytes,
                        route.into_iter().map(ResourceId).collect(),
                    )
                })
                .collect();
            (n, caps, specs)
        })
    })
}

fn quick_config() -> SimConfig {
    SimConfig {
        link_bandwidth: 100.0,
        io_link_bandwidth: 100.0,
        per_flow_cap: 50.0,
        hop_latency: 1e-3,
        send_overhead: 1e-2,
        recv_overhead: 1e-2,
        rma_phase_overhead: 0.0,
        forward_overhead: 0.0,
        contention_penalty: 0.0,
        contention_floor: 1.0,
        collect_link_stats: true,
    }
}

/// Bit-level equality of two reports, field by field.
fn assert_reports_identical(a: &SimReport, b: &SimReport, ctx: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.status.clone(), b.status.clone(), "status ({})", ctx);
    for (i, (x, y)) in a.delivery_time.iter().zip(&b.delivery_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "delivery_time[{}] ({})", i, ctx);
    }
    for (i, (x, y)) in a.flow_start_time.iter().zip(&b.flow_start_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "flow_start_time[{}] ({})", i, ctx);
    }
    for (i, (x, y)) in a.stall_time.iter().zip(&b.stall_time).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "stall_time[{}] ({})", i, ctx);
    }
    prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "makespan ({})", ctx);
    prop_assert_eq!(a.end_time.to_bits(), b.end_time.to_bits(), "end_time ({})", ctx);
    match (&a.resource_bytes, &b.resource_bytes) {
        (Some(x), Some(y)) => {
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                prop_assert_eq!(u.to_bits(), v.to_bits(), "resource_bytes[{}] ({})", i, ctx);
            }
        }
        (None, None) => {}
        _ => prop_assert!(false, "resource_bytes presence differs ({})", ctx),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental == Full on random graphs, fault-free.
    #[test]
    fn incremental_matches_full_without_faults((n, caps, specs) in scenario()) {
        let sim = Simulator::new(n, caps, quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let full = sim.simulate(&g, SimOptions::new().solver(SolverMode::Full));
        let inc = sim.simulate(&g, SimOptions::new().solver(SolverMode::default()));
        assert_reports_identical(&full, &inc, "fault-free")?;
    }

    /// Incremental == Full on random graphs × random fault plans: faults
    /// exercise the repartition path (stall, resume, capacity dirtying).
    #[test]
    fn incremental_matches_full_under_random_faults(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
    ) {
        let sim = Simulator::new(n, caps.clone(), quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        let full = sim.simulate(
            &g,
            SimOptions::new().faults(&plan).solver(SolverMode::Full),
        );
        let inc = sim.simulate(
            &g,
            SimOptions::new().faults(&plan).solver(SolverMode::default()),
        );
        assert_reports_identical(&full, &inc, "faulted")?;
    }

    /// The fallback threshold is a pure performance knob: every setting
    /// (always-fallback through never-fallback) yields the same report.
    #[test]
    fn fallback_threshold_never_changes_results(
        (n, caps, specs) in scenario(),
        seed in 0u64..1_000,
    ) {
        let sim = Simulator::new(n, caps.clone(), quick_config());
        let mut g = TransferGraph::new();
        for s in specs {
            g.add(s);
        }
        let plan = FaultPlan::random_link_faults(seed, caps.len() as u32, 20.0, 0.05, 1.0);
        let reference = sim.simulate(
            &g,
            SimOptions::new().faults(&plan).solver(SolverMode::Full),
        );
        for full_fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let rep = sim.simulate(
                &g,
                SimOptions::new()
                    .faults(&plan)
                    .solver(SolverMode::Incremental { full_fraction }),
            );
            assert_reports_identical(&reference, &rep, &format!("threshold {full_fraction}"))?;
        }
    }
}

/// Deterministic regression: a contended fan-in plus a disjoint pair,
/// with a mid-run degrade/restore fault, across every threshold. This is
/// the shape that caught threshold-dependent divergence during
/// development; keep it pinned outside proptest so the exact case always
/// runs.
#[test]
fn threshold_regression_contended_fan_in() {
    let sim = Simulator::new(6, vec![100.0, 100.0, 100.0], quick_config());
    let mut g = TransferGraph::new();
    // Fan-in: three flows share link 0.
    g.add(TransferSpec::new(0, 1, 40_000, vec![ResourceId(0)]));
    g.add(TransferSpec::new(2, 1, 25_000, vec![ResourceId(0)]));
    g.add(TransferSpec::new(3, 1, 10_000, vec![ResourceId(0), ResourceId(1)]));
    // Disjoint pair on link 2.
    g.add(TransferSpec::new(4, 5, 30_000, vec![ResourceId(2)]));
    // Degrade the shared link mid-run, restore later.
    let plan = FaultPlan::new()
        .degrade_link(50.0, ResourceId(0), 0.25)
        .degrade_link(300.0, ResourceId(0), 1.0);

    let reference = sim.simulate(
        &g,
        SimOptions::new().faults(&plan).solver(SolverMode::Full),
    );
    assert!(reference.all_delivered());
    for full_fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let rep = sim.simulate(
            &g,
            SimOptions::new()
                .faults(&plan)
                .solver(SolverMode::Incremental { full_fraction }),
        );
        assert_eq!(rep.status, reference.status, "threshold {full_fraction}");
        for (i, (x, y)) in reference
            .delivery_time
            .iter()
            .zip(&rep.delivery_time)
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "delivery_time[{i}] at threshold {full_fraction}"
            );
        }
        assert_eq!(
            reference.end_time.to_bits(),
            rep.end_time.to_bits(),
            "end_time at threshold {full_fraction}"
        );
    }
}
