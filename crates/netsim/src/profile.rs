//! Bottleneck attribution: where every simulated nanosecond went.
//!
//! The max-min waterfill does not just produce a rate per flow — the
//! progressive-filling loop *names* the resource whose residual fixed
//! each flow's rate (the flow's **binding resource**: either a link it
//! crosses or its own rate cap). The engine keeps that name per flow per
//! epoch, accrues elapsed time against it, and folds the result into a
//! per-transfer [`TransferTimeProfile`]:
//!
//! * `queued_before_start` — ready (dependencies met) until the flow's
//!   first byte moved: injection-CPU queueing, `send_overhead`, and time
//!   parked behind a down source node;
//! * `bottlenecked_on[link] → seconds` — time spent rate-limited by each
//!   link on the route (the flow was active and that link's residual
//!   fixed its rate);
//! * `cap_limited` — time the flow's own rate cap (the per-flow protocol
//!   limit) was the binding resource;
//! * `stalled_by_fault` — frozen by a dead link / down endpoint;
//! * `delivery_latency` — last byte drained until delivery (pipeline hop
//!   latency + `recv_overhead`).
//!
//! Invariants (pinned by `tests/profile.rs`):
//!
//! * per-flow, the categories sum to `delivery − ready` (run end for
//!   undelivered flows) within float-accumulation noise;
//! * `network_limited` **is** the sum of the per-link blame — exact by
//!   construction — and the run-level per-link rollup redistributes the
//!   same seconds;
//! * profiles are bit-identical between [`crate::SolverMode::Full`] and
//!   [`crate::SolverMode::Incremental`], and a profiled run's
//!   [`crate::SimReport`] is bit-identical to an unprofiled one.

use crate::graph::ResourceId;

/// Sentinel binding code for "the flow's own rate cap" (the waterfill's
/// private per-flow virtual resource).
pub(crate) const CAP_BINDING: u32 = u32::MAX;

/// The resource that fixed a flow's rate in a max-min allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Binding {
    /// A shared link on the flow's route saturated first.
    Link(ResourceId),
    /// The flow's own rate cap bound before any link did.
    FlowCap,
}

impl Binding {
    pub(crate) fn from_code(code: u32) -> Binding {
        if code == CAP_BINDING {
            Binding::FlowCap
        } else {
            Binding::Link(ResourceId(code))
        }
    }
}

impl std::fmt::Display for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Binding::Link(r) => write!(f, "link{}", r.0),
            Binding::FlowCap => write!(f, "cap"),
        }
    }
}

/// Time decomposition of one transfer (see module docs for the
/// category definitions).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferTimeProfile {
    /// When the transfer's dependencies were met (`start_at` /
    /// `extra_delay` included); `INFINITY` if it never became ready.
    pub ready_time: f64,
    /// Ready → first byte moved (or run end if it never started).
    pub queued_before_start: f64,
    /// Seconds the flow's own rate cap was the binding resource.
    pub cap_limited: f64,
    /// Seconds frozen by faults (mirrors `SimReport::stall_time`).
    pub stalled_by_fault: f64,
    /// Last byte drained → delivered (hop latency + recv overhead).
    pub delivery_latency: f64,
    /// Seconds rate-limited by each link, sorted by resource id. Only
    /// links that were ever this flow's binding resource appear.
    pub bottlenecked_on: Vec<(ResourceId, f64)>,
    /// Binding-resource change points `(time, binding)`: one entry per
    /// waterfill epoch at which this flow's binding differed from the
    /// previous epoch (the first entry is the flow's first epoch).
    pub binding_timeline: Vec<(f64, Binding)>,
}

impl TransferTimeProfile {
    /// Total seconds rate-limited by links (the sum of
    /// [`bottlenecked_on`](Self::bottlenecked_on) — exact by
    /// construction). Folded from `+0.0`: an empty `Sum` would yield
    /// `-0.0`.
    pub fn network_limited(&self) -> f64 {
        self.bottlenecked_on.iter().fold(0.0, |a, &(_, s)| a + s)
    }

    /// Sum of every category; equals the transfer's elapsed time
    /// (delivery − ready, or run end − ready) within float noise.
    pub fn accounted(&self) -> f64 {
        self.queued_before_start
            + self.cap_limited
            + self.stalled_by_fault
            + self.delivery_latency
            + self.network_limited()
    }

    /// The link this flow spent the most time bound by, if any.
    pub fn dominant_link(&self) -> Option<(ResourceId, f64)> {
        self.bottlenecked_on
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
    }
}

/// Per-run bottleneck attribution: one [`TransferTimeProfile`] per
/// transfer (graph indexing), plus the run clock for closing the books
/// on undelivered flows.
#[derive(Debug, Clone, PartialEq)]
pub struct SimProfile {
    pub transfers: Vec<TransferTimeProfile>,
    /// Simulation clock when the event queue drained (mirrors
    /// `SimReport::end_time`).
    pub end_time: f64,
    /// Contention shards the run executed (1 when the whole graph was a
    /// single component). Profiles are bit-identical at every thread
    /// count, so this records graph structure, not scheduling.
    pub shards: u32,
}

impl SimProfile {
    /// Run-level per-link blame rollup, sorted by resource id: the same
    /// seconds as every flow's `bottlenecked_on`, regrouped by link.
    pub fn link_blame(&self) -> Vec<(ResourceId, f64)> {
        let mut acc: std::collections::BTreeMap<ResourceId, f64> = std::collections::BTreeMap::new();
        for tp in &self.transfers {
            for &(r, s) in &tp.bottlenecked_on {
                *acc.entry(r).or_insert(0.0) += s;
            }
        }
        acc.into_iter().collect()
    }

    /// Total network-limited seconds across all transfers.
    pub fn total_network_limited(&self) -> f64 {
        self.transfers
            .iter()
            .fold(0.0, |a, t| a + t.network_limited())
    }

    /// The `k` links carrying the most blame, descending (ties broken
    /// by ascending resource id).
    pub fn top_bottlenecks(&self, k: usize) -> Vec<(ResourceId, f64)> {
        let mut blame = self.link_blame();
        blame.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        blame.truncate(k);
        blame
    }
}

/// Engine-side accumulator, allocated only when profiling is requested.
/// Bindings are carried as raw `u32` codes ([`CAP_BINDING`] = flow cap)
/// until [`finish`](ProfileState::finish) decodes them.
#[derive(Debug)]
pub(crate) struct ProfileState {
    ready: Vec<f64>,
    drained: Vec<f64>,
    /// Per-transfer `(binding code, seconds)` in first-binding order.
    blame: Vec<Vec<(u32, f64)>>,
    timeline: Vec<Vec<(f64, u32)>>,
}

impl ProfileState {
    pub fn new(n: usize) -> ProfileState {
        ProfileState {
            ready: vec![f64::INFINITY; n],
            drained: vec![f64::INFINITY; n],
            blame: vec![Vec::new(); n],
            timeline: vec![Vec::new(); n],
        }
    }

    /// First time the transfer became ready (re-readies after a node
    /// recovery keep the original instant).
    pub fn note_ready(&mut self, tid: u32, now: f64) {
        let slot = &mut self.ready[tid as usize];
        if slot.is_infinite() {
            *slot = now;
        }
    }

    /// The flow's payload finished draining (delivery is latency later).
    pub fn note_drained(&mut self, tid: u32, now: f64) {
        self.drained[tid as usize] = now;
    }

    /// Attribute `dt` seconds of active flow time to `binding`.
    pub fn accrue(&mut self, tid: u32, binding: u32, dt: f64) {
        let row = &mut self.blame[tid as usize];
        match row.iter_mut().find(|(b, _)| *b == binding) {
            Some((_, s)) => *s += dt,
            None => row.push((binding, dt)),
        }
    }

    /// Record the flow's binding after a re-level; appends a timeline
    /// entry only when it changed.
    pub fn note_binding(&mut self, tid: u32, now: f64, binding: u32) {
        let tl = &mut self.timeline[tid as usize];
        if tl.last().map(|&(_, b)| b) != Some(binding) {
            tl.push((now, binding));
        }
    }

    /// Fold one shard's accumulators into this (global) one, scattering
    /// its local transfer slots through `tids` and remapping binding
    /// codes through `resources` ([`CAP_BINDING`] passes through). Both
    /// maps are sorted ascending, so per-transfer blame and timeline
    /// orderings survive the remap unchanged.
    pub fn absorb(&mut self, other: ProfileState, tids: &[u32], resources: &[u32]) {
        let code = |c: u32| {
            if c == CAP_BINDING {
                CAP_BINDING
            } else {
                resources[c as usize]
            }
        };
        for (li, &t) in tids.iter().enumerate() {
            let gi = t as usize;
            self.ready[gi] = other.ready[li];
            self.drained[gi] = other.drained[li];
            self.blame[gi] = other.blame[li].iter().map(|&(c, s)| (code(c), s)).collect();
            self.timeline[gi] = other.timeline[li]
                .iter()
                .map(|&(time, c)| (time, code(c)))
                .collect();
        }
    }

    /// Fold the accumulators into a [`SimProfile`].
    pub fn finish(
        self,
        delivery_time: &[f64],
        flow_start_time: &[f64],
        stall_time: &[f64],
        end_time: f64,
        shards: u32,
    ) -> SimProfile {
        let n = self.ready.len();
        let mut transfers = Vec::with_capacity(n);
        for i in 0..n {
            let ready = self.ready[i];
            let started = flow_start_time[i];
            let queued = if started.is_finite() {
                started - ready
            } else if ready.is_finite() {
                end_time - ready
            } else {
                0.0
            };
            let drained = self.drained[i];
            let latency = if delivery_time[i].is_finite() && drained.is_finite() {
                delivery_time[i] - drained
            } else {
                0.0
            };
            let mut cap_limited = 0.0;
            let mut links: Vec<(ResourceId, f64)> = Vec::new();
            for &(code, secs) in &self.blame[i] {
                if code == CAP_BINDING {
                    cap_limited += secs;
                } else {
                    links.push((ResourceId(code), secs));
                }
            }
            links.sort_by_key(|&(r, _)| r);
            transfers.push(TransferTimeProfile {
                ready_time: ready,
                queued_before_start: queued,
                cap_limited,
                stalled_by_fault: stall_time[i],
                delivery_latency: latency,
                bottlenecked_on: links,
                binding_timeline: self.timeline[i]
                    .iter()
                    .map(|&(t, b)| (t, Binding::from_code(b)))
                    .collect(),
            });
        }
        SimProfile {
            transfers,
            end_time,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(links: &[(u32, f64)], cap: f64) -> TransferTimeProfile {
        TransferTimeProfile {
            ready_time: 0.0,
            queued_before_start: 1.0,
            cap_limited: cap,
            stalled_by_fault: 0.0,
            delivery_latency: 0.5,
            bottlenecked_on: links.iter().map(|&(r, s)| (ResourceId(r), s)).collect(),
            binding_timeline: Vec::new(),
        }
    }

    #[test]
    fn accounted_sums_all_categories() {
        let t = tp(&[(0, 2.0), (3, 4.0)], 0.25);
        assert!((t.network_limited() - 6.0).abs() < 1e-12);
        assert!((t.accounted() - (1.0 + 0.25 + 0.5 + 6.0)).abs() < 1e-12);
        assert_eq!(t.dominant_link(), Some((ResourceId(3), 4.0)));
    }

    #[test]
    fn link_blame_rolls_up_across_transfers() {
        let p = SimProfile {
            transfers: vec![tp(&[(0, 2.0), (1, 1.0)], 0.0), tp(&[(1, 3.0)], 0.0)],
            end_time: 10.0,
            shards: 1,
        };
        assert_eq!(
            p.link_blame(),
            vec![(ResourceId(0), 2.0), (ResourceId(1), 4.0)]
        );
        assert!((p.total_network_limited() - 6.0).abs() < 1e-12);
        assert_eq!(p.top_bottlenecks(1), vec![(ResourceId(1), 4.0)]);
    }

    #[test]
    fn binding_display_and_decode() {
        assert_eq!(Binding::from_code(7), Binding::Link(ResourceId(7)));
        assert_eq!(Binding::from_code(CAP_BINDING), Binding::FlowCap);
        assert_eq!(format!("{}", Binding::Link(ResourceId(7))), "link7");
        assert_eq!(format!("{}", Binding::FlowCap), "cap");
    }

    #[test]
    fn profile_state_accrues_and_dedups_timeline() {
        let mut ps = ProfileState::new(1);
        ps.note_ready(0, 1.0);
        ps.note_ready(0, 5.0); // re-ready keeps the first instant
        ps.accrue(0, 2, 1.5);
        ps.accrue(0, CAP_BINDING, 0.5);
        ps.accrue(0, 2, 0.5);
        ps.note_binding(0, 2.0, 2);
        ps.note_binding(0, 3.0, 2); // unchanged: no entry
        ps.note_binding(0, 4.0, CAP_BINDING);
        ps.note_drained(0, 6.0);
        let prof = ps.finish(&[6.5], &[2.0], &[0.0], 6.5, 1);
        let t = &prof.transfers[0];
        assert_eq!(t.ready_time, 1.0);
        assert_eq!(t.queued_before_start, 1.0);
        assert_eq!(t.cap_limited, 0.5);
        assert_eq!(t.delivery_latency, 0.5);
        assert_eq!(t.bottlenecked_on, vec![(ResourceId(2), 2.0)]);
        assert_eq!(
            t.binding_timeline,
            vec![(2.0, Binding::Link(ResourceId(2))), (4.0, Binding::FlowCap)]
        );
    }
}
