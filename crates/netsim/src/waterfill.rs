//! Max-min fair bandwidth allocation (progressive filling / water-filling).
//!
//! Given a set of flows, each with a route over capacitated resources and a
//! per-flow rate cap, compute the max-min fair rate vector: rates are raised
//! uniformly until a resource saturates, flows through saturated resources
//! are frozen, and the process repeats. Per-flow caps are handled uniformly
//! by giving each flow a private virtual resource whose capacity is the cap.
//!
//! This is the classical fluid model of network sharing; it is how the
//! BG/Q torus behaves at the message level when several messages contend
//! for a link (the Messaging Unit arbitrates packet slots fairly).

use crate::graph::ResourceId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-flow binding code reported by [`Waterfill::bindings`] when the
/// flow's own rate cap (its private virtual resource) fixed its rate.
pub const CAP_BINDING: u32 = u32::MAX;

/// One flow's demand: its route and rate cap.
#[derive(Debug, Clone, Copy)]
pub struct FlowDemand<'a> {
    pub route: &'a [ResourceId],
    pub cap: f64,
}

/// Reusable scratch state for water-filling computations.
///
/// Allocate once per simulation (sized by the number of real resources) and
/// call [`Waterfill::compute`] at every rate recomputation; internal buffers
/// are recycled so steady-state computation does not allocate.
#[derive(Debug)]
pub struct Waterfill {
    num_resources: usize,
    remaining: Vec<f64>,
    count: Vec<u32>,
    version: Vec<u32>,
    flows_on: Vec<Vec<u32>>,
    touched: Vec<u32>,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    binding: Vec<u32>,
}

impl Waterfill {
    /// Create scratch state for a network with `num_resources` real
    /// resources.
    pub fn new(num_resources: usize) -> Waterfill {
        Waterfill {
            num_resources,
            remaining: vec![0.0; num_resources],
            count: vec![0; num_resources],
            version: vec![0; num_resources],
            flows_on: (0..num_resources).map(|_| Vec::new()).collect(),
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            binding: Vec::new(),
        }
    }

    /// Per-flow binding resource of the most recent compute: for each
    /// flow (same indexing as the demand slice), the real resource whose
    /// residual fixed its rate, or [`CAP_BINDING`] when its own rate cap
    /// bound first. The popped bottleneck in progressive filling *is*
    /// the max-min binding resource, so this falls out of the solve for
    /// free.
    pub fn bindings(&self) -> &[u32] {
        &self.binding
    }

    fn ensure_capacity(&mut self, total: usize) {
        if self.remaining.len() < total {
            self.remaining.resize(total, 0.0);
            self.count.resize(total, 0);
            self.version.resize(total, 0);
            self.flows_on.resize_with(total, Vec::new);
        }
    }

    /// Compute max-min fair rates with ideal sharing (no contention
    /// penalty).
    pub fn compute(
        &mut self,
        flows: &[FlowDemand<'_>],
        capacities: &[f64],
        rates: &mut Vec<f64>,
    ) {
        self.compute_with_penalty(flows, capacities, 0.0, 1.0, rates)
    }

    /// Compute max-min fair rates.
    ///
    /// `capacities[r]` is the capacity of real resource `r`; every resource
    /// on a route must have positive capacity. `rates` is cleared and filled
    /// with one rate per flow, in order.
    ///
    /// `contention_penalty` (γ) derates a resource shared by `n` flows to
    /// `capacity · max(floor, 1 / (1 + γ·(n-1)))`, modelling per-flow
    /// arbitration loss that saturates at `contention_floor`; γ = 0 (or
    /// floor = 1) is ideal fluid sharing.
    ///
    /// # Panics
    /// Panics if a route references a resource with non-positive capacity
    /// or out of range of `capacities`, if γ is negative, or if the floor
    /// is outside `(0, 1]`.
    pub fn compute_with_penalty(
        &mut self,
        flows: &[FlowDemand<'_>],
        capacities: &[f64],
        contention_penalty: f64,
        contention_floor: f64,
        rates: &mut Vec<f64>,
    ) {
        assert!(
            capacities.len() >= self.num_resources,
            "capacity table smaller than resource space"
        );
        assert!(
            contention_penalty >= 0.0,
            "contention penalty must be non-negative"
        );
        assert!(
            contention_floor > 0.0 && contention_floor <= 1.0,
            "contention floor must be in (0, 1]"
        );
        rates.clear();
        rates.resize(flows.len(), 0.0);
        self.binding.clear();
        self.binding.resize(flows.len(), CAP_BINDING);
        if flows.is_empty() {
            return;
        }

        let nr = self.num_resources;
        self.ensure_capacity(nr + flows.len());
        debug_assert!(self.touched.is_empty());

        // Populate per-resource state for the resources in use.
        for (fi, f) in flows.iter().enumerate() {
            assert!(f.cap > 0.0, "flow {fi} has non-positive cap");
            for r in f.route {
                let ri = r.0 as usize;
                assert!(ri < nr, "route references unknown resource {ri}");
                if self.count[ri] == 0 {
                    let c = capacities[ri];
                    assert!(c > 0.0, "resource {ri} has non-positive capacity");
                    self.remaining[ri] = c;
                    self.touched.push(ri as u32);
                }
                self.count[ri] += 1;
                self.flows_on[ri].push(fi as u32);
            }
            // Private cap resource for the flow.
            let pi = nr + fi;
            self.remaining[pi] = f.cap;
            self.count[pi] = 1;
            self.flows_on[pi].push(fi as u32);
            self.touched.push(pi as u32);
        }

        // Derate shared real resources by the arbitration penalty (private
        // per-flow caps are not links and are never derated).
        if contention_penalty > 0.0 && contention_floor < 1.0 {
            for &ri in &self.touched {
                let ri = ri as usize;
                if ri < nr && self.count[ri] > 1 {
                    let eff = (1.0
                        / (1.0 + contention_penalty * (self.count[ri] - 1) as f64))
                        .max(contention_floor);
                    self.remaining[ri] *= eff;
                }
            }
        }

        let mut fixed = vec![false; flows.len()];
        let mut unfixed = flows.len();

        // Progressive filling driven by a lazy min-heap of per-resource
        // fair shares: pop the most constrained resource, freeze its
        // unfixed flows at its share, push updated entries for every
        // resource those flows touched. Entries are invalidated by a
        // per-resource version counter instead of being removed, so each
        // filling pass costs O(Σ route length · log) rather than
        // O(iterations · touched resources).
        self.heap.clear();
        for &ri in &self.touched {
            let ri_us = ri as usize;
            self.heap.push(Reverse(HeapEntry {
                share: Share(self.remaining[ri_us].max(0.0) / self.count[ri_us] as f64),
                version: self.version[ri_us],
                resource: ri,
            }));
        }

        while unfixed > 0 {
            let Reverse(entry) = self
                .heap
                .pop()
                .unwrap_or_else(|| panic!("{unfixed} flows unfixed but no constrained resource"));
            let ri = entry.resource as usize;
            if self.count[ri] == 0 || entry.version != self.version[ri] {
                continue; // stale
            }
            let s = self.remaining[ri].max(0.0) / self.count[ri] as f64;

            // Freeze every unfixed flow crossing this bottleneck at s.
            debug_assert!(!self.flows_on[ri].is_empty());
            for fj in 0..self.flows_on[ri].len() {
                let fi = self.flows_on[ri][fj] as usize;
                if fixed[fi] {
                    continue;
                }
                fixed[fi] = true;
                unfixed -= 1;
                rates[fi] = s;
                self.binding[fi] = if ri < nr { ri as u32 } else { CAP_BINDING };
                let private = nr + fi;
                let resources = flows[fi]
                    .route
                    .iter()
                    .map(|r| r.0 as usize)
                    .chain(std::iter::once(private));
                for rr in resources {
                    self.remaining[rr] -= s;
                    self.count[rr] -= 1;
                    self.version[rr] = self.version[rr].wrapping_add(1);
                    if self.count[rr] > 0 {
                        self.heap.push(Reverse(HeapEntry {
                            share: Share(self.remaining[rr].max(0.0) / self.count[rr] as f64),
                            version: self.version[rr],
                            resource: rr as u32,
                        }));
                    }
                }
            }
            debug_assert_eq!(self.count[ri], 0, "bottleneck must drain completely");
        }

        // Reset scratch for the next call. Versions are zeroed too, so the
        // allocation (including share-tie resolution, which compares
        // versions) is a pure function of the demand set — a sub-solve
        // over one contention component returns bit-identical rates to
        // the same component inside a full solve, no matter what calls
        // came before.
        for &ri in &self.touched {
            let ri = ri as usize;
            self.remaining[ri] = 0.0;
            self.count[ri] = 0;
            self.version[ri] = 0;
            self.flows_on[ri].clear();
        }
        self.touched.clear();
        self.heap.clear();
    }
}

/// Total-ordered share value for the filling heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Share(f64);

impl Eq for Share {}

impl PartialOrd for Share {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Share {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct HeapEntry {
    share: Share,
    version: u32,
    resource: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(v: &[u32]) -> Vec<ResourceId> {
        v.iter().map(|&x| ResourceId(x)).collect()
    }

    fn run(num_res: usize, caps: &[f64], flows: &[(Vec<ResourceId>, f64)]) -> Vec<f64> {
        let mut wf = Waterfill::new(num_res);
        let demands: Vec<FlowDemand> = flows
            .iter()
            .map(|(r, c)| FlowDemand { route: r, cap: *c })
            .collect();
        let mut rates = Vec::new();
        wf.compute(&demands, caps, &mut rates);
        rates
    }

    #[test]
    fn single_flow_gets_its_cap() {
        let rates = run(2, &[10.0, 10.0], &[(rid(&[0, 1]), 3.0)]);
        assert_eq!(rates, vec![3.0]);
    }

    #[test]
    fn single_flow_limited_by_link() {
        let rates = run(2, &[2.0, 10.0], &[(rid(&[0, 1]), 5.0)]);
        assert_eq!(rates, vec![2.0]);
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = vec![(rid(&[0]), 10.0), (rid(&[0]), 10.0), (rid(&[0]), 10.0)];
        let rates = run(1, &[6.0], &flows);
        for r in rates {
            assert!((r - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capped_flow_releases_bandwidth_to_others() {
        // Two flows on a 10-unit link; one capped at 2 -> other gets 8.
        let flows = vec![(rid(&[0]), 2.0), (rid(&[0]), 100.0)];
        let rates = run(1, &[10.0], &flows);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn classic_three_link_max_min() {
        // Textbook example: long flow over links 0,1; short flows on each.
        // caps: link0 = 10, link1 = 4.
        // Fair: bottleneck link1 share 2 (long, short1), then short0 gets 8.
        let flows = vec![
            (rid(&[0, 1]), 100.0), // long
            (rid(&[0]), 100.0),    // short on link 0
            (rid(&[1]), 100.0),    // short on link 1
        ];
        let rates = run(2, &[10.0, 4.0], &flows);
        assert!((rates[0] - 2.0).abs() < 1e-9, "long flow {}", rates[0]);
        assert!((rates[1] - 8.0).abs() < 1e-9, "short0 {}", rates[1]);
        assert!((rates[2] - 2.0).abs() < 1e-9, "short1 {}", rates[2]);
    }

    #[test]
    fn empty_route_flow_gets_cap() {
        let rates = run(1, &[10.0], &[(rid(&[]), 7.0)]);
        assert_eq!(rates, vec![7.0]);
    }

    #[test]
    fn no_flows_is_fine() {
        let rates = run(1, &[10.0], &[]);
        assert!(rates.is_empty());
    }

    #[test]
    fn capacity_never_exceeded() {
        // Randomish asymmetric scenario, checked exhaustively.
        let flows = vec![
            (rid(&[0, 1, 2]), 5.0),
            (rid(&[1]), 9.0),
            (rid(&[2, 0]), 1.5),
            (rid(&[0]), 9.0),
            (rid(&[2]), 0.25),
        ];
        let caps = [4.0, 3.0, 2.0];
        let rates = run(3, &caps, &flows);
        let mut used = [0.0f64; 3];
        for ((route, cap), rate) in flows.iter().zip(&rates) {
            assert!(*rate <= cap * (1.0 + 1e-9), "rate exceeds cap");
            assert!(*rate > 0.0, "every flow must make progress");
            for r in route {
                used[r.0 as usize] += rate;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            assert!(u <= &(c * (1.0 + 1e-6)), "capacity exceeded: {u} > {c}");
        }
    }

    #[test]
    fn bindings_name_the_fixing_resource() {
        let mut wf = Waterfill::new(2);
        // Textbook max-min (see classic_three_link_max_min): the long
        // flow and short1 are fixed by link 1, short0 by link 0.
        let long = rid(&[0, 1]);
        let short0 = rid(&[0]);
        let short1 = rid(&[1]);
        let demands = [
            FlowDemand { route: &long, cap: 100.0 },
            FlowDemand { route: &short0, cap: 100.0 },
            FlowDemand { route: &short1, cap: 100.0 },
        ];
        let mut rates = Vec::new();
        wf.compute(&demands, &[10.0, 4.0], &mut rates);
        assert_eq!(wf.bindings(), &[1, 0, 1]);
    }

    #[test]
    fn bindings_report_cap_limited_flows() {
        let mut wf = Waterfill::new(1);
        let route = rid(&[0]);
        let demands = [
            FlowDemand { route: &route, cap: 2.0 },
            FlowDemand { route: &route, cap: 100.0 },
        ];
        let mut rates = Vec::new();
        wf.compute(&demands, &[10.0], &mut rates);
        // Flow 0's private cap (share 2) pops before the link (share 5):
        // flow 0 is cap-bound, flow 1 link-bound.
        assert_eq!(wf.bindings(), &[CAP_BINDING, 0]);
        // Empty routes have only the private cap resource.
        let empty = rid(&[]);
        let demands = [FlowDemand { route: &empty, cap: 7.0 }];
        wf.compute(&demands, &[10.0], &mut rates);
        assert_eq!(wf.bindings(), &[CAP_BINDING]);
    }

    #[test]
    fn scratch_state_resets_between_calls() {
        let mut wf = Waterfill::new(1);
        let route = rid(&[0]);
        let demands = [FlowDemand { route: &route, cap: 100.0 }];
        let mut rates = Vec::new();
        wf.compute(&demands, &[10.0], &mut rates);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        // Second call must see a clean slate.
        wf.compute(&demands, &[10.0], &mut rates);
        assert!((rates[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn contention_penalty_derates_shared_links() {
        let mut wf = Waterfill::new(1);
        let route = rid(&[0]);
        let demands = [
            FlowDemand { route: &route, cap: 100.0 },
            FlowDemand { route: &route, cap: 100.0 },
        ];
        let mut rates = Vec::new();
        // Ideal sharing: 5 + 5.
        wf.compute_with_penalty(&demands, &[10.0], 0.0, 1.0, &mut rates);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        // γ = 0.5, floor 0.5: effective capacity 10 / 1.5 -> 3.333 each.
        wf.compute_with_penalty(&demands, &[10.0], 0.5, 0.5, &mut rates);
        assert!((rates[0] - 10.0 / 1.5 / 2.0).abs() < 1e-9, "{}", rates[0]);
        assert!((rates[1] - rates[0]).abs() < 1e-12);
        // Same γ but floor 0.8: the floor binds -> 4.0 each.
        wf.compute_with_penalty(&demands, &[10.0], 0.5, 0.8, &mut rates);
        assert!((rates[0] - 4.0).abs() < 1e-9, "{}", rates[0]);
    }

    #[test]
    fn contention_penalty_leaves_lone_flows_alone() {
        let mut wf = Waterfill::new(2);
        let r0 = rid(&[0]);
        let r1 = rid(&[1]);
        let demands = [
            FlowDemand { route: &r0, cap: 100.0 },
            FlowDemand { route: &r1, cap: 100.0 },
        ];
        let mut rates = Vec::new();
        wf.compute_with_penalty(&demands, &[10.0, 10.0], 0.9, 0.5, &mut rates);
        assert_eq!(rates, vec![10.0, 10.0], "disjoint flows see no penalty");
    }

    #[test]
    #[should_panic(expected = "penalty must be non-negative")]
    fn negative_penalty_panics() {
        let mut wf = Waterfill::new(1);
        let route = rid(&[0]);
        let demands = [FlowDemand { route: &route, cap: 1.0 }];
        let mut rates = Vec::new();
        wf.compute_with_penalty(&demands, &[10.0], -0.1, 1.0, &mut rates);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        run(1, &[10.0], &[(rid(&[3]), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-positive capacity")]
    fn zero_capacity_panics() {
        run(1, &[0.0], &[(rid(&[0]), 1.0)]);
    }
}
