//! Simulator configuration and calibration constants.
//!
//! The defaults reproduce the bandwidth arithmetic the paper reports for
//! Mira (§III and Figures 5–7):
//!
//! * each of the ten torus links moves 2 GB/s raw per direction, of which
//!   up to 90% (1.8 GB/s) is available to user data;
//! * a single put over a single path plateaus at ≈1.6 GB/s (Fig. 5's
//!   "direct" curve) because of packet/protocol and endpoint processing
//!   overheads — modelled as a per-flow rate cap;
//! * the eleventh (bridge → ION) links run at 2 GB/s;
//! * per-message software costs (descriptor injection, reception, RMA
//!   epoch synchronization, store-and-forward handling at a proxy) produce
//!   the small-message regime where direct transfers beat proxied ones,
//!   with the crossover near 256 KB for the 2-node microbenchmark.

/// All tunable parameters of the network model.
///
/// Times are in seconds, bandwidths in bytes/second.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// User-payload bandwidth of one torus link in one direction.
    /// Paper: 2 GB/s raw, 90% available to user data.
    pub link_bandwidth: f64,
    /// Bandwidth of the eleventh (bridge node → I/O node) link.
    pub io_link_bandwidth: f64,
    /// Maximum rate a single flow (one message over one path) can sustain,
    /// capturing packet/protocol overhead and endpoint processing.
    /// Paper Fig. 5: direct put plateaus at ≈1.6 GB/s.
    pub per_flow_cap: f64,
    /// Per-hop wire+router latency.
    pub hop_latency: f64,
    /// CPU time to prepare and inject one message descriptor at the sender.
    /// Injections on one node are serialized (one messaging thread).
    pub send_overhead: f64,
    /// Per-message processing/buffering cost at the receiver.
    pub recv_overhead: f64,
    /// Cost of one RMA synchronization epoch (window fence / flush). The
    /// proxy protocol pays this once per phase; it is the dominant fixed
    /// cost that makes proxying lose below the message-size threshold.
    pub rma_phase_overhead: f64,
    /// Software handling cost at an intermediate node for one
    /// store-and-forward chunk (buffer management + re-injection setup).
    pub forward_overhead: f64,
    /// Per-flow arbitration efficiency loss on shared links: a link
    /// carrying `n` concurrent flows delivers `capacity / (1 + γ·(n-1))`
    /// in total. Packet-level arbitration, FIFO head-of-line blocking and
    /// dynamic-routing interactions make contended links less efficient
    /// than ideal fair sharing; this is what makes *over-provisioned*
    /// proxy sets degrade (paper Fig. 7: "data movements by extra proxies
    /// intervene existing ones"). Set to 0 for ideal fluid sharing.
    pub contention_penalty: f64,
    /// Lower bound on a contended link's efficiency: however many flows
    /// share it, it still delivers at least `floor · capacity` in total
    /// (arbitration loss saturates; heavy but well-formed fan-in, e.g.
    /// I/O aggregation, does not collapse).
    pub contention_floor: f64,
    /// Whether to accumulate per-resource byte counters (adds overhead).
    pub collect_link_stats: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_bandwidth: 1.8e9,
            io_link_bandwidth: 2.0e9,
            per_flow_cap: 1.6e9,
            hop_latency: 40e-9,
            send_overhead: 1.2e-6,
            recv_overhead: 0.8e-6,
            rma_phase_overhead: 35e-6,
            forward_overhead: 2e-6,
            contention_penalty: 0.1,
            contention_floor: 0.7,
            collect_link_stats: false,
        }
    }
}

impl SimConfig {
    /// Config with link statistics collection enabled.
    pub fn with_link_stats(mut self) -> Self {
        self.collect_link_stats = true;
        self
    }

    /// Sanity-check the parameters, reporting the first violation.
    pub fn check(&self) -> Result<(), String> {
        if self.link_bandwidth <= 0.0 {
            return Err("link bandwidth must be positive".into());
        }
        if self.io_link_bandwidth <= 0.0 {
            return Err("io link bandwidth must be positive".into());
        }
        if self.per_flow_cap <= 0.0 {
            return Err("per-flow cap must be positive".into());
        }
        for (name, v) in [
            ("hop_latency", self.hop_latency),
            ("send_overhead", self.send_overhead),
            ("recv_overhead", self.recv_overhead),
            ("rma_phase_overhead", self.rma_phase_overhead),
            ("forward_overhead", self.forward_overhead),
            ("contention_penalty", self.contention_penalty),
        ] {
            if v < 0.0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if !(self.contention_floor > 0.0 && self.contention_floor <= 1.0) {
            return Err("contention floor must be in (0, 1]".into());
        }
        Ok(())
    }

    /// Sanity-check the parameters.
    ///
    /// # Panics
    /// Panics if any bandwidth is non-positive or any overhead is negative.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SimConfig::default();
        assert_eq!(c.link_bandwidth, 1.8e9);
        assert_eq!(c.io_link_bandwidth, 2.0e9);
        assert_eq!(c.per_flow_cap, 1.6e9);
        c.validate();
    }

    #[test]
    fn per_flow_cap_below_link_bandwidth() {
        // The cap models protocol overhead; it must not exceed raw payload bw.
        let c = SimConfig::default();
        assert!(c.per_flow_cap <= c.link_bandwidth);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn validate_rejects_zero_bandwidth() {
        let c = SimConfig {
            link_bandwidth: 0.0,
            ..SimConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn validate_rejects_negative_overhead() {
        let c = SimConfig {
            send_overhead: -1.0,
            ..SimConfig::default()
        };
        c.validate();
    }
}
