//! # bgq-netsim
//!
//! A deterministic, flow-level discrete-event simulator of a capacitated
//! network, used as the hardware substrate for reproducing *"Improving Data
//! Movement Performance for Sparse Data Patterns on the Blue Gene/Q
//! Supercomputer"* (Bui et al., ICPP 2014).
//!
//! The simulator is topology-agnostic: it executes a [`TransferGraph`] — a
//! DAG of point-to-point transfers whose routes are explicit lists of
//! [`ResourceId`]s (directed links). Bandwidth on contended links is shared
//! max-min fairly ([`Waterfill`]), message injection is serialized per node
//! with a fixed CPU overhead, and store-and-forward protocols are expressed
//! as transfer dependencies. The `bgq-comm` crate binds this engine to the
//! `bgq-torus` topology.
//!
//! ## Example
//!
//! ```
//! use bgq_netsim::{SimConfig, SimOptions, Simulator, TransferGraph, TransferSpec, ResourceId};
//!
//! // Two nodes joined by one 1.8 GB/s link.
//! let sim = Simulator::new(2, vec![1.8e9], SimConfig::default());
//! let mut g = TransferGraph::new();
//! let t = g.add(TransferSpec::new(0, 1, 1 << 20, vec![ResourceId(0)]));
//! let report = sim.simulate(&g, SimOptions::new());
//! assert!(report.delivered_at(t) > 0.0);
//! ```

pub mod config;
pub mod engine;
pub mod fault;
pub mod graph;
pub mod obs;
pub mod profile;
pub mod stats;
pub mod trace;
pub mod waterfill;

pub use config::SimConfig;
pub use engine::{SimOptions, SimReport, Simulator, SolverMode, TransferStatus, DEFAULT_FULL_FRACTION};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use graph::{ResourceId, TransferGraph, TransferId, TransferSpec};
pub use obs::{FaultReLevel, HeatmapSample, LinkHeatmap, ShardMerge, SimObserver};
pub use profile::{Binding, SimProfile, TransferTimeProfile};
pub use stats::{
    active_fraction, activity_timeline, node_traffic, stragglers, try_active_fraction,
    try_utilization, utilization, windowed_throughput, StatsError, Utilization,
};
pub use trace::{gantt, to_csv as trace_to_csv, trace, TraceRow};
pub use waterfill::{FlowDemand, Waterfill};
