//! Deterministic, seedable fault schedules.
//!
//! A [`FaultPlan`] is a time-ordered list of capacity-change events —
//! link degradations, full link failures, node failures, and recoveries —
//! applied by [`Simulator::run_with_faults`](crate::Simulator::run_with_faults)
//! at fixed simulation timestamps. Plans are plain data: building one
//! never touches the engine, and an empty plan leaves the engine's
//! behaviour (and its exact float arithmetic) untouched.
//!
//! Determinism: events fire in `(time, insertion order)` order, the
//! random generator is a hand-rolled SplitMix64 (no external RNG
//! dependency), and every query (`link_factors_at`, `down_nodes_at`) is a
//! pure replay of the schedule. Identical seeds therefore produce
//! identical fault histories on every platform.

use crate::graph::ResourceId;

/// One kind of fault (or recovery) event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Scale a resource's capacity to `factor ·` its configured value.
    /// `factor == 0.0` kills the link (flows over it stall); `1.0`
    /// restores it fully; values in between model a sick link.
    LinkFactor { resource: ResourceId, factor: f64 },
    /// Take a node down: it injects no new messages and every flow whose
    /// endpoint it is stalls until the node recovers.
    NodeDown { node: u32 },
    /// Bring a node back up; parked injections resume in arrival order.
    NodeUp { node: u32 },
}

/// A fault at a simulation timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulation time (seconds) at which the fault takes effect.
    pub time: f64,
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, sorted by time (ties keep
/// insertion order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults; the engine fast-path).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, sorted by time (stable for equal timestamps).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Add one event.
    ///
    /// # Panics
    /// Panics if `time` is not finite and non-negative, or if a
    /// `LinkFactor` factor is outside `[0, 1]`.
    pub fn push(&mut self, time: f64, kind: FaultKind) {
        assert!(
            time.is_finite() && time >= 0.0,
            "fault time must be finite and non-negative, got {time}"
        );
        if let FaultKind::LinkFactor { factor, .. } = kind {
            assert!(
                (0.0..=1.0).contains(&factor),
                "link factor must be in [0, 1], got {factor}"
            );
        }
        self.events.push(FaultEvent { time, kind });
        // Stable sort: equal timestamps keep insertion order, so a
        // restore pushed after a failure at the same instant wins.
        self.events.sort_by(|a, b| a.time.total_cmp(&b.time));
    }

    /// Kill a link at `time` (capacity factor 0).
    pub fn fail_link(mut self, time: f64, resource: ResourceId) -> Self {
        self.push(time, FaultKind::LinkFactor { resource, factor: 0.0 });
        self
    }

    /// Degrade a link to `factor ·` capacity at `time`.
    pub fn degrade_link(mut self, time: f64, resource: ResourceId, factor: f64) -> Self {
        self.push(time, FaultKind::LinkFactor { resource, factor });
        self
    }

    /// Restore a link to full capacity at `time`.
    pub fn restore_link(mut self, time: f64, resource: ResourceId) -> Self {
        self.push(time, FaultKind::LinkFactor { resource, factor: 1.0 });
        self
    }

    /// Take a node down at `time`.
    pub fn fail_node(mut self, time: f64, node: u32) -> Self {
        self.push(time, FaultKind::NodeDown { node });
        self
    }

    /// Bring a node back up at `time`.
    pub fn restore_node(mut self, time: f64, node: u32) -> Self {
        self.push(time, FaultKind::NodeUp { node });
        self
    }

    /// Capacity factors in effect at time `t` (inclusive), for every
    /// resource whose factor differs from 1.0.
    pub fn link_factors_at(&self, t: f64) -> Vec<(ResourceId, f64)> {
        let mut factors: Vec<(ResourceId, f64)> = Vec::new();
        for ev in self.events.iter().take_while(|ev| ev.time <= t) {
            if let FaultKind::LinkFactor { resource, factor } = ev.kind {
                match factors.iter_mut().find(|(r, _)| *r == resource) {
                    Some(slot) => slot.1 = factor,
                    None => factors.push((resource, factor)),
                }
            }
        }
        factors.retain(|&(_, f)| f != 1.0);
        factors
    }

    /// Resources dead (factor 0) at time `t` (inclusive).
    pub fn dead_resources_at(&self, t: f64) -> Vec<ResourceId> {
        self.link_factors_at(t)
            .into_iter()
            .filter(|&(_, f)| f == 0.0)
            .map(|(r, _)| r)
            .collect()
    }

    /// Nodes down at time `t` (inclusive), in first-failure order.
    pub fn down_nodes_at(&self, t: f64) -> Vec<u32> {
        let mut down: Vec<u32> = Vec::new();
        for ev in self.events.iter().take_while(|ev| ev.time <= t) {
            match ev.kind {
                FaultKind::NodeDown { node } => {
                    if !down.contains(&node) {
                        down.push(node);
                    }
                }
                FaultKind::NodeUp { node } => down.retain(|&n| n != node),
                FaultKind::LinkFactor { .. } => {}
            }
        }
        down
    }

    /// A seeded random schedule of transient link outages.
    ///
    /// Failures arrive as a Poisson process of `faults_per_second` over
    /// `[0, horizon)`; each failure kills a uniformly chosen resource in
    /// `[0, num_resources)` and schedules its recovery an exponentially
    /// distributed `mean_outage` later (recoveries may land past the
    /// horizon — an outage in flight at the horizon still heals).
    /// Identical arguments produce an identical plan.
    ///
    /// # Panics
    /// Panics if `num_resources` is zero or any rate/duration is not
    /// positive and finite.
    pub fn random_link_faults(
        seed: u64,
        num_resources: u32,
        faults_per_second: f64,
        mean_outage: f64,
        horizon: f64,
    ) -> FaultPlan {
        assert!(num_resources > 0, "need at least one resource");
        assert!(
            faults_per_second > 0.0 && faults_per_second.is_finite(),
            "fault rate must be positive and finite"
        );
        assert!(
            mean_outage > 0.0 && mean_outage.is_finite(),
            "mean outage must be positive and finite"
        );
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "horizon must be positive and finite"
        );
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::new();
        let mut t = 0.0f64;
        loop {
            t += rng.next_exp(1.0 / faults_per_second);
            if t >= horizon {
                break;
            }
            let resource = ResourceId(rng.next_u64() as u32 % num_resources);
            let outage = rng.next_exp(mean_outage);
            plan.push(t, FaultKind::LinkFactor { resource, factor: 0.0 });
            plan.push(t + outage, FaultKind::LinkFactor { resource, factor: 1.0 });
        }
        plan
    }
}

/// SplitMix64: tiny, portable, splittable PRNG (Steele et al., OOPSLA'14).
/// Used instead of an external RNG crate so fault schedules stay
/// dependency-free and bit-reproducible.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed with the given mean.
    fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 - u is in (0, 1], so ln() is finite (0 at worst).
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_by_time_stable() {
        let plan = FaultPlan::new()
            .fail_link(2.0, ResourceId(1))
            .fail_node(1.0, 3)
            .restore_link(2.0, ResourceId(1));
        let times: Vec<f64> = plan.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 2.0, 2.0]);
        // Equal-time events keep insertion order: fail before restore.
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::LinkFactor { resource: ResourceId(1), factor: 0.0 }
        );
        assert_eq!(
            plan.events()[2].kind,
            FaultKind::LinkFactor { resource: ResourceId(1), factor: 1.0 }
        );
    }

    #[test]
    fn state_queries_replay_the_schedule() {
        let plan = FaultPlan::new()
            .fail_link(1.0, ResourceId(0))
            .degrade_link(2.0, ResourceId(1), 0.5)
            .restore_link(3.0, ResourceId(0))
            .fail_node(1.5, 7)
            .restore_node(4.0, 7);
        assert!(plan.dead_resources_at(0.5).is_empty());
        assert_eq!(plan.dead_resources_at(1.0), vec![ResourceId(0)]);
        assert_eq!(
            plan.link_factors_at(2.5),
            vec![(ResourceId(0), 0.0), (ResourceId(1), 0.5)]
        );
        assert_eq!(plan.link_factors_at(3.0), vec![(ResourceId(1), 0.5)]);
        assert_eq!(plan.down_nodes_at(2.0), vec![7]);
        assert!(plan.down_nodes_at(4.0).is_empty());
    }

    #[test]
    fn random_plan_is_reproducible_and_in_range() {
        let a = FaultPlan::random_link_faults(42, 10, 5.0, 0.1, 2.0);
        let b = FaultPlan::random_link_faults(42, 10, 5.0, 0.1, 2.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rate 5/s over 2 s should produce events");
        for ev in a.events() {
            assert!(ev.time >= 0.0 && ev.time.is_finite());
            match ev.kind {
                FaultKind::LinkFactor { resource, factor } => {
                    assert!(resource.0 < 10);
                    assert!(factor == 0.0 || factor == 1.0);
                }
                _ => panic!("random plan only produces link events"),
            }
        }
        let c = FaultPlan::random_link_faults(43, 10, 5.0, 0.1, 2.0);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn every_random_failure_heals() {
        let plan = FaultPlan::random_link_faults(7, 4, 10.0, 0.05, 1.0);
        // After the last event, nothing is dead.
        let end = plan.events().last().unwrap().time;
        assert!(plan.dead_resources_at(end).is_empty());
    }

    #[test]
    #[should_panic(expected = "factor must be in [0, 1]")]
    fn out_of_range_factor_panics() {
        FaultPlan::new().degrade_link(0.0, ResourceId(0), 1.5);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        FaultPlan::new().fail_link(-1.0, ResourceId(0));
    }
}
