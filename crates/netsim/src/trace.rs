//! Timeline traces: per-transfer phase timelines suitable for debugging
//! protocols and for rendering simple text Gantt charts.
//!
//! A trace row combines the graph's structure with the report's timings:
//! when a transfer became eligible (all dependencies delivered), when its
//! flow started moving bytes (injection complete) and when it was
//! delivered. Queueing and synchronization time is the gap between
//! eligibility and flow start.

use crate::engine::SimReport;
use crate::graph::{TransferGraph, TransferId};
use std::fmt::Write as _;

/// Timeline of one transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRow {
    pub id: TransferId,
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    /// When the last dependency was delivered (0 for root transfers).
    pub eligible: f64,
    /// When bytes started moving.
    pub flow_start: f64,
    /// Delivery at the destination.
    pub delivered: f64,
}

impl TraceRow {
    /// Time spent queued/synchronizing before the flow started.
    pub fn wait(&self) -> f64 {
        self.flow_start - self.eligible
    }

    /// Time the flow spent moving bytes.
    pub fn transfer_time(&self) -> f64 {
        self.delivered - self.flow_start
    }

    /// Average rate while flowing (0 for zero-byte syncs).
    pub fn rate(&self) -> f64 {
        let t = self.transfer_time();
        if t > 0.0 {
            self.bytes as f64 / t
        } else {
            0.0
        }
    }
}

/// Build the trace for every transfer of a completed run.
pub fn trace(graph: &TransferGraph, report: &SimReport) -> Vec<TraceRow> {
    graph
        .specs()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let eligible = s
                .deps
                .iter()
                .map(|d| report.delivery_time[d.index()])
                .fold(s.start_at, f64::max);
            TraceRow {
                id: TransferId(i as u32),
                src: s.src,
                dst: s.dst,
                bytes: s.bytes,
                eligible,
                flow_start: report.flow_start_time[i],
                delivered: report.delivery_time[i],
            }
        })
        .collect()
}

/// Render a text Gantt chart of the trace (one row per transfer), `width`
/// characters across the full makespan. Rows are ordered by flow start.
pub fn gantt(rows: &[TraceRow], makespan: f64, width: usize) -> String {
    assert!(width >= 10, "gantt needs at least 10 columns");
    let mut sorted: Vec<&TraceRow> = rows.iter().collect();
    sorted.sort_by(|a, b| a.flow_start.total_cmp(&b.flow_start));
    let span = makespan.max(f64::MIN_POSITIVE);
    let scale = |t: f64| ((t / span) * (width - 1) as f64).round() as usize;

    let mut out = String::new();
    for r in sorted {
        let s = scale(r.flow_start).min(width - 1);
        let e = scale(r.delivered).clamp(s + 1, width);
        let mut bar = vec![b' '; width];
        for b in bar.iter_mut().take(e).skip(s) {
            *b = b'=';
        }
        let _ = writeln!(
            out,
            "{:>6} {:>5}->{:<5} |{}| {:>9.3}ms",
            r.id.to_string(),
            r.src,
            r.dst,
            String::from_utf8(bar).unwrap(),
            r.delivered * 1e3
        );
    }
    out
}

/// Dump the trace as CSV.
pub fn to_csv(rows: &[TraceRow]) -> String {
    let mut out = String::from("id,src,dst,bytes,eligible,flow_start,delivered,wait,rate\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.9},{:.9},{:.9},{:.9},{:.3}",
            r.id.0,
            r.src,
            r.dst,
            r.bytes,
            r.eligible,
            r.flow_start,
            r.delivered,
            r.wait(),
            r.rate()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulator;
    use crate::graph::{ResourceId, TransferSpec};

    fn run() -> (TransferGraph, SimReport) {
        let cfg = SimConfig {
            link_bandwidth: 100.0,
            io_link_bandwidth: 100.0,
            per_flow_cap: 100.0,
            hop_latency: 0.0,
            send_overhead: 1.0,
            recv_overhead: 0.0,
            rma_phase_overhead: 0.0,
            forward_overhead: 0.0,
            contention_penalty: 0.0,
            contention_floor: 1.0,
            collect_link_stats: false,
        };
        let sim = Simulator::new(3, vec![100.0, 100.0], cfg);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        g.add(
            TransferSpec::new(1, 2, 500, vec![ResourceId(1)])
                .after(vec![a])
                .with_delay(0.5),
        );
        let rep = sim.simulate(&g, crate::SimOptions::new());
        (g, rep)
    }

    #[test]
    fn trace_reconstructs_phases() {
        let (g, rep) = run();
        let rows = trace(&g, &rep);
        assert_eq!(rows.len(), 2);
        // Root transfer: eligible at 0, flow starts after 1s injection.
        assert_eq!(rows[0].eligible, 0.0);
        assert!((rows[0].flow_start - 1.0).abs() < 1e-9);
        assert!((rows[0].rate() - 100.0).abs() < 1e-6);
        // Dependent: eligible when the first was delivered (11.0); waits
        // the 0.5 s forwarding delay plus 1 s injection.
        assert!((rows[1].eligible - 11.0).abs() < 1e-9);
        assert!((rows[1].wait() - 1.5).abs() < 1e-9, "{}", rows[1].wait());
    }

    #[test]
    fn gantt_renders_every_row() {
        let (g, rep) = run();
        let rows = trace(&g, &rep);
        let chart = gantt(&rows, rep.makespan, 40);
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains('='));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (g, rep) = run();
        let rows = trace(&g, &rep);
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("id,src,dst"));
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn tiny_gantt_rejected() {
        gantt(&[], 1.0, 5);
    }
}
