//! Component sharding: partition a transfer graph into independent
//! contention components and execute them as isolated sub-simulations.
//!
//! Two transfers interact mechanically only through three channels:
//!
//! * **shared route resources** — they contend in the same waterfill
//!   component;
//! * **a shared source node** — the injection CPU serializes their
//!   sends;
//! * **dependency edges** — delivery of one readies the other.
//!
//! Union-find over those three relations yields connected components
//! whose event sequences are provably independent: no event in one
//! component can change a float in another. Each component becomes a
//! *shard* — a self-contained sub-problem with transfers, resources and
//! nodes remapped to dense local ids — and the engine runs one event
//! loop per shard, inline or on a worker pool ([`execute`]).
//!
//! Determinism: shards are ordered by their minimum global transfer id
//! (the *canonical shard order*), local ids are assigned in ascending
//! global order (so every comparison the waterfill or the event queue
//! performs on ids orders local exactly like global), and merge always
//! walks shards in canonical order. The result is bit-identical at
//! every thread count, including the inline `threads <= 1` path.
//!
//! Fault events route to shards by what they touch: a `LinkFactor`
//! goes to the unique shard owning that resource; `NodeDown`/`NodeUp`
//! replicate to every shard where the node is an endpoint. Faults that
//! touch no shard are dropped — they could not have moved any flow.

use crate::fault::{FaultEvent, FaultKind};
use crate::graph::{ResourceId, TransferGraph, TransferId, TransferSpec};

const NONE: u32 = u32::MAX;

/// Union-find with path halving.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins: keeps the representative the minimum
            // transfer id, which the canonical shard order reads off.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// One contention component, remapped to a dense local universe.
pub(crate) struct ShardPlan {
    /// Global transfer ids, ascending — local tid `i` is `tids[i]`.
    pub tids: Vec<u32>,
    /// Global resource ids used by the shard, ascending.
    pub resources: Vec<u32>,
    /// Global node ids referenced by the shard, ascending.
    pub nodes: Vec<u32>,
    /// The shard's transfer graph in local ids.
    pub graph: TransferGraph,
    /// Local capacity table (gathered from the global one).
    pub caps: Vec<f64>,
    /// Fault events routed to this shard, in plan order, local ids.
    pub faults: Vec<FaultEvent>,
}

/// How `simulate` should execute a partitioned graph.
pub(crate) enum PartitionOutcome {
    /// The whole graph is one contention component: run the original
    /// universe directly (zero remap cost) under the filtered faults.
    Single { faults: Vec<FaultEvent> },
    /// Several components: run each shard's local universe.
    Sharded(Vec<ShardPlan>),
}

/// Group transfers into contention components (union by shared route
/// resource, shared source node, and dependency edges), in canonical
/// order. `specs` must already be validated against the capacity table
/// and node count.
fn components(specs: &[TransferSpec], num_resources: usize, num_nodes: u32) -> Vec<Vec<u32>> {
    let n = specs.len();
    let mut dsu = Dsu::new(n);
    let mut res_owner = vec![NONE; num_resources];
    let mut src_owner = vec![NONE; num_nodes as usize];
    for (i, s) in specs.iter().enumerate() {
        let i = i as u32;
        for r in &s.route {
            let slot = &mut res_owner[r.0 as usize];
            if *slot == NONE {
                *slot = i;
            } else {
                dsu.union(i, *slot);
            }
        }
        let slot = &mut src_owner[s.src as usize];
        if *slot == NONE {
            *slot = i;
        } else {
            dsu.union(i, *slot);
        }
        for d in &s.deps {
            dsu.union(i, d.0);
        }
    }
    // First-seen roots in ascending tid order = ascending minimum tid.
    let mut comp_of_root = vec![NONE; n];
    let mut comps: Vec<Vec<u32>> = Vec::new();
    for i in 0..n as u32 {
        let root = dsu.find(i) as usize;
        if comp_of_root[root] == NONE {
            comp_of_root[root] = comps.len() as u32;
            comps.push(Vec::new());
        }
        comps[comp_of_root[root] as usize].push(i);
    }
    comps
}

/// Partition `specs` into shards (or detect the single-component fast
/// path). Fault events are filtered to what each shard can observe;
/// events touching no shard are dropped.
pub(crate) fn partition(
    specs: &[TransferSpec],
    fault_events: &[FaultEvent],
    caps: &[f64],
    num_nodes: u32,
) -> PartitionOutcome {
    let num_resources = caps.len();
    let comps = components(specs, num_resources, num_nodes);

    if comps.len() <= 1 {
        // Filter faults against global membership; ids stay global.
        let mut res_used = vec![false; num_resources];
        let mut node_used = vec![false; num_nodes as usize];
        for s in specs {
            for r in &s.route {
                res_used[r.0 as usize] = true;
            }
            node_used[s.src as usize] = true;
            node_used[s.dst as usize] = true;
        }
        let faults = fault_events
            .iter()
            .filter(|ev| match ev.kind {
                FaultKind::LinkFactor { resource, .. } => res_used[resource.0 as usize],
                FaultKind::NodeDown { node } | FaultKind::NodeUp { node } => {
                    node_used[node as usize]
                }
            })
            .copied()
            .collect();
        return PartitionOutcome::Single { faults };
    }

    // Local-id assignment. Resources belong to exactly one shard (a
    // shared resource would have unioned the sharers); nodes can appear
    // in several shards (as a destination), so they carry a per-shard
    // membership list instead of a single owner.
    let mut res_local = vec![NONE; num_resources];
    let mut node_shards: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_nodes as usize];
    let mut plans: Vec<ShardPlan> = Vec::with_capacity(comps.len());

    for (k, tids) in comps.iter().enumerate() {
        let mut resources: Vec<u32> = Vec::new();
        let mut nodes: Vec<u32> = Vec::new();
        for &t in tids {
            let s = &specs[t as usize];
            for r in &s.route {
                resources.push(r.0);
            }
            nodes.push(s.src);
            nodes.push(s.dst);
        }
        resources.sort_unstable();
        resources.dedup();
        nodes.sort_unstable();
        nodes.dedup();
        for (li, &r) in resources.iter().enumerate() {
            res_local[r as usize] = li as u32;
        }
        for (li, &nd) in nodes.iter().enumerate() {
            node_shards[nd as usize].push((k as u32, li as u32));
        }
        let local_caps = resources.iter().map(|&r| caps[r as usize]).collect();
        plans.push(ShardPlan {
            tids: tids.clone(),
            resources,
            nodes,
            graph: TransferGraph::new(),
            caps: local_caps,
            faults: Vec::new(),
        });
    }

    // Global tid -> local tid (each transfer is in exactly one shard).
    let mut tid_local = vec![NONE; specs.len()];
    for plan in &plans {
        for (li, &t) in plan.tids.iter().enumerate() {
            tid_local[t as usize] = li as u32;
        }
    }

    // Build each shard's local graph. Remaps are monotonic (sorted
    // ascending), so every id comparison downstream orders local ids
    // exactly like the global ids they stand for.
    for plan in &mut plans {
        let mut g = TransferGraph::new();
        for &t in &plan.tids {
            let s = &specs[t as usize];
            let local_node =
                |nd: u32| plan.nodes.binary_search(&nd).expect("node in shard") as u32;
            let mut spec = s.clone();
            spec.src = local_node(s.src);
            spec.dst = local_node(s.dst);
            spec.route = s.route.iter().map(|r| ResourceId(res_local[r.0 as usize])).collect();
            spec.deps = s
                .deps
                .iter()
                .map(|d| TransferId(tid_local[d.index()]))
                .collect();
            g.add(spec);
        }
        plan.graph = g;
    }

    // Route fault events: link faults to the owning shard (a shared
    // resource would have unioned its users, so ownership is unique),
    // node faults to every shard the node appears in; plan order is
    // preserved per shard.
    let mut res_shard = vec![NONE; num_resources];
    for (k, plan) in plans.iter().enumerate() {
        for &r in &plan.resources {
            res_shard[r as usize] = k as u32;
        }
    }
    for ev in fault_events {
        match ev.kind {
            FaultKind::LinkFactor { resource, factor } => {
                let ri = resource.0 as usize;
                if res_shard[ri] != NONE {
                    plans[res_shard[ri] as usize].faults.push(FaultEvent {
                        time: ev.time,
                        kind: FaultKind::LinkFactor {
                            resource: ResourceId(res_local[ri]),
                            factor,
                        },
                    });
                }
            }
            FaultKind::NodeDown { node } => {
                for &(k, local) in &node_shards[node as usize] {
                    plans[k as usize].faults.push(FaultEvent {
                        time: ev.time,
                        kind: FaultKind::NodeDown { node: local },
                    });
                }
            }
            FaultKind::NodeUp { node } => {
                for &(k, local) in &node_shards[node as usize] {
                    plans[k as usize].faults.push(FaultEvent {
                        time: ev.time,
                        kind: FaultKind::NodeUp { node: local },
                    });
                }
            }
        }
    }

    PartitionOutcome::Sharded(plans)
}

/// Run `f(shard_index)` for every shard, inline when `threads <= 1`,
/// otherwise on a scoped worker pool with atomic work stealing. Results
/// come back indexed by shard — the caller merges them in canonical
/// order, so scheduling never influences output.
pub(crate) fn execute<R, F>(count: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let r = f(i);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("worker completed the shard"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn spec(src: u32, dst: u32, route: &[u32]) -> TransferSpec {
        TransferSpec::new(
            src,
            dst,
            100,
            route.iter().map(|&r| ResourceId(r)).collect(),
        )
    }

    #[test]
    fn disjoint_transfers_form_singleton_components() {
        let specs = vec![spec(0, 1, &[0]), spec(2, 3, &[1]), spec(4, 5, &[2])];
        let comps = components(&specs, 3, 6);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn shared_resource_source_and_deps_union() {
        // 0,1 share link 0; 2 shares source node with 1; 3 depends on 2.
        let mut s3 = spec(6, 7, &[3]);
        s3.deps = vec![TransferId(2)];
        let specs = vec![spec(0, 1, &[0]), spec(2, 3, &[0]), spec(2, 5, &[2]), s3];
        let comps = components(&specs, 4, 8);
        assert_eq!(comps, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn shared_destination_does_not_union() {
        // Same destination node, disjoint links and sources: no channel
        // couples them (destinations have no CPU in this model).
        let specs = vec![spec(0, 2, &[0]), spec(1, 2, &[1])];
        let comps = components(&specs, 2, 3);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn partition_remaps_to_dense_local_ids() {
        let specs = vec![spec(0, 1, &[4]), spec(2, 3, &[9])];
        let plan = FaultPlan::new()
            .degrade_link(1.0, ResourceId(9), 0.5)
            .fail_node(2.0, 3)
            .fail_link(3.0, ResourceId(7)); // unused: dropped
        let out = partition(&specs, plan.events(), &[1.0; 10], 4);
        let plans = match out {
            PartitionOutcome::Sharded(p) => p,
            PartitionOutcome::Single { .. } => panic!("expected two shards"),
        };
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].resources, vec![4]);
        assert_eq!(plans[1].resources, vec![9]);
        assert_eq!(plans[1].nodes, vec![2, 3]);
        // Local spec of shard 1 references local ids.
        let s = &plans[1].graph.specs()[0];
        assert_eq!((s.src, s.dst), (0, 1));
        assert_eq!(s.route, vec![ResourceId(0)]);
        // The degrade routed to shard 1 with a local resource id; the
        // node fault followed node 3 into shard 1; the unused-link
        // fault was dropped.
        assert_eq!(plans[0].faults.len(), 0);
        assert_eq!(plans[1].faults.len(), 2);
        match plans[1].faults[0].kind {
            FaultKind::LinkFactor { resource, .. } => assert_eq!(resource, ResourceId(0)),
            _ => panic!("expected link fault first"),
        }
        match plans[1].faults[1].kind {
            FaultKind::NodeDown { node } => assert_eq!(node, 1),
            _ => panic!("expected node fault second"),
        }
    }

    #[test]
    fn single_component_filters_but_keeps_global_ids() {
        let specs = vec![spec(0, 1, &[5]), spec(0, 2, &[6])];
        let plan = FaultPlan::new()
            .fail_link(1.0, ResourceId(5))
            .fail_link(2.0, ResourceId(3)); // unused: dropped
        let out = partition(&specs, plan.events(), &[1.0; 8], 4);
        match out {
            PartitionOutcome::Single { faults } => {
                assert_eq!(faults.len(), 1);
                match faults[0].kind {
                    FaultKind::LinkFactor { resource, .. } => {
                        assert_eq!(resource, ResourceId(5), "ids stay global");
                    }
                    _ => panic!("wrong kind"),
                }
            }
            PartitionOutcome::Sharded(_) => panic!("shared source: one component"),
        }
    }

    #[test]
    fn executor_is_order_stable_at_any_thread_count() {
        let inputs: Vec<usize> = (0..37).collect();
        let run = |threads| execute(inputs.len(), threads, |i| i * i);
        let expected: Vec<usize> = inputs.iter().map(|i| i * i).collect();
        assert_eq!(run(1), expected);
        assert_eq!(run(2), expected);
        assert_eq!(run(8), expected);
        assert_eq!(run(64), expected);
    }
}
