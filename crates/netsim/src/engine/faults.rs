//! Fault application: the mutable health state a fault plan drives.
//!
//! Allocated only when the run has a non-empty [`crate::FaultPlan`]; a
//! fault-free run carries no health state and performs exactly the same
//! operations it did before faults existed.

use crate::fault::FaultKind;
use crate::graph::TransferSpec;

#[derive(Debug)]
pub(crate) struct FaultState {
    /// Per-resource effective capacity (base capacity × current factor).
    pub eff_caps: Vec<f64>,
    /// Resources whose factor is exactly zero (dead links).
    pub dead: Vec<bool>,
    /// Nodes currently down.
    pub node_down: Vec<bool>,
    /// Injections that arrived while their source node was down.
    pub parked: Vec<Vec<u32>>,
}

impl FaultState {
    pub fn new(capacities: &[f64], num_nodes: u32) -> FaultState {
        FaultState {
            eff_caps: capacities.to_vec(),
            dead: vec![false; capacities.len()],
            node_down: vec![false; num_nodes as usize],
            parked: vec![Vec::new(); num_nodes as usize],
        }
    }

    /// Whether `spec` cannot move bytes under the current health state:
    /// a dead link on its route, or a down endpoint.
    pub fn is_blocked(&self, spec: &TransferSpec) -> bool {
        spec.route.iter().any(|r| self.dead[r.0 as usize])
            || self.node_down[spec.src as usize]
            || self.node_down[spec.dst as usize]
    }

    /// Apply the capacity-affecting part of a fault. Returns the touched
    /// resource for `LinkFactor` faults (the caller marks it dirty for
    /// the leveler); node transitions return `None` — their rate effects
    /// arrive through the flow re-partition that follows.
    pub fn apply(&mut self, kind: &FaultKind, base_caps: &[f64]) -> Option<usize> {
        match *kind {
            FaultKind::LinkFactor { resource, factor } => {
                let ri = resource.0 as usize;
                self.eff_caps[ri] = base_caps[ri] * factor;
                self.dead[ri] = factor == 0.0;
                Some(ri)
            }
            FaultKind::NodeDown { node } => {
                self.node_down[node as usize] = true;
                None
            }
            FaultKind::NodeUp { node } => {
                self.node_down[node as usize] = false;
                None
            }
        }
    }
}
