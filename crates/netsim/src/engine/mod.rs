//! The discrete-event simulation engine.
//!
//! Executes a [`TransferGraph`] over a capacitated resource network:
//!
//! * each transfer waits for its dependencies, then enters its source
//!   node's injection queue (one message is injected at a time per node,
//!   taking [`SimConfig::send_overhead`] of CPU time — the Messaging Unit
//!   descriptor setup);
//! * once injected, the transfer becomes a *flow*; all concurrently active
//!   flows share the network according to max-min fairness, recomputed at
//!   every flow arrival/departure (fluid model);
//! * when a flow's bytes complete, delivery occurs after the route's
//!   pipeline latency plus [`SimConfig::recv_overhead`], which is when
//!   dependent transfers may start.
//!
//! The engine is fully deterministic: identical inputs produce identical
//! event orderings and timings. The run surface is one method,
//! [`Simulator::simulate`], taking [`SimOptions`] (optional fault plan,
//! optional observer, solver mode); rate recomputation is incremental by
//! default ([`SolverMode::Incremental`]) and bit-identical to a full
//! re-level at every event — see the [`leveling`](self) submodule.

mod faults;
mod flow_state;
mod leveling;
mod queue;
mod shard;

use crate::config::SimConfig;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::graph::{TransferGraph, TransferId, TransferSpec};
use crate::obs::{FaultReLevel, HeatmapSample, ShardMerge, SimObserver};
use crate::profile::{ProfileState, SimProfile};
use faults::FaultState;
use flow_state::FlowSet;
use leveling::Leveler;
use queue::{Event, EventQueue};
use shard::{execute, partition, PartitionOutcome};

/// Bytes below which a flow is considered complete (absorbs float error).
const BYTE_EPS: f64 = 1e-3;

/// Default dirty-closure fraction above which an incremental re-level
/// falls back to a full solve.
pub const DEFAULT_FULL_FRACTION: f64 = 0.5;

/// How the engine re-levels fair-share rates at each epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverMode {
    /// Re-solve the waterfill over every active flow at every epoch
    /// (the classical engine; kept as the oracle for the incremental
    /// path).
    Full,
    /// Re-solve only the transitive closure of flows/links whose
    /// saturation set changed, falling back to a full solve when the
    /// closure exceeds `full_fraction` of the active set. Produces
    /// bit-identical reports to [`SolverMode::Full`] at any fraction.
    Incremental { full_fraction: f64 },
}

impl Default for SolverMode {
    fn default() -> SolverMode {
        SolverMode::Incremental {
            full_fraction: DEFAULT_FULL_FRACTION,
        }
    }
}

/// Options for one [`Simulator::simulate`] run: an optional fault
/// schedule, an optional passive observer, and the solver mode.
///
/// The default is a fault-free, unobserved run with the incremental
/// solver — exactly what the old `run` method did (modulo solver mode,
/// which never changes results).
#[derive(Debug, Default)]
pub struct SimOptions<'a> {
    /// Fault schedule; `None` (or an empty plan) runs fault-free.
    pub faults: Option<&'a FaultPlan>,
    /// Passive observer; never influences the event sequence.
    pub observer: Option<&'a mut SimObserver>,
    /// Rate re-leveling strategy.
    pub solver: SolverMode,
    /// Collect bottleneck attribution into [`SimReport::profile`].
    /// Profiling is passive: the report's other fields are bit-identical
    /// to an unprofiled run.
    pub profile: bool,
    /// Worker threads for executing contention shards. `0` or `1` runs
    /// every shard inline on the calling thread (the default); higher
    /// values fan shards out on a scoped pool. Reports, observers and
    /// profiles are bit-identical at every thread count — shard
    /// discovery and merge order never depend on scheduling.
    pub threads: usize,
}

impl<'a> SimOptions<'a> {
    pub fn new() -> SimOptions<'a> {
        SimOptions::default()
    }

    /// Attach a fault schedule.
    pub fn faults(mut self, plan: &'a FaultPlan) -> SimOptions<'a> {
        self.faults = Some(plan);
        self
    }

    /// Attach a passive observer.
    pub fn observer(mut self, obs: &'a mut SimObserver) -> SimOptions<'a> {
        self.observer = Some(obs);
        self
    }

    /// Select the solver mode.
    pub fn solver(mut self, mode: SolverMode) -> SimOptions<'a> {
        self.solver = mode;
        self
    }

    /// Collect per-transfer bottleneck attribution (see
    /// [`crate::profile`]).
    pub fn profiled(mut self) -> SimOptions<'a> {
        self.profile = true;
        self
    }

    /// Execute contention shards on `threads` worker threads. Results
    /// stay bit-identical to the sequential (`threads <= 1`) engine.
    pub fn sharded(mut self, threads: usize) -> SimOptions<'a> {
        self.threads = threads;
        self
    }
}

/// Final state of one transfer in a [`SimReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStatus {
    /// Delivered at the destination.
    Delivered,
    /// The flow started but a fault on its route or endpoints kept it
    /// from completing before the event queue drained.
    Stalled,
    /// Never started: its dependencies never delivered or its source
    /// node stayed down.
    NotStarted,
}

/// Result of executing a transfer graph.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Delivery time of each transfer (same indexing as the graph);
    /// `f64::INFINITY` for transfers that never delivered.
    pub delivery_time: Vec<f64>,
    /// Time each transfer's flow started moving bytes (injection
    /// complete); `f64::INFINITY` for transfers that never started.
    pub flow_start_time: Vec<f64>,
    /// Cumulative time each transfer spent stalled by faults (frozen
    /// mid-flight or born onto a blocked route). Flows still stalled
    /// when the event queue drained accrue up to `end_time`. All zeros
    /// in a fault-free run.
    pub stall_time: Vec<f64>,
    /// Final status of each transfer. Without faults every entry is
    /// [`TransferStatus::Delivered`].
    pub status: Vec<TransferStatus>,
    /// Time the last transfer was delivered; `f64::INFINITY` if any
    /// transfer never delivered.
    pub makespan: f64,
    /// Simulation clock when the event queue drained. Unlike `makespan`
    /// this stays finite under faults — it is when the run stopped making
    /// progress, the natural epoch for a re-plan.
    pub end_time: f64,
    /// Total payload bytes moved.
    pub total_bytes: u64,
    /// Bytes carried per resource (only if `collect_link_stats`).
    pub resource_bytes: Option<Vec<f64>>,
    /// Bottleneck attribution (only if [`SimOptions::profiled`]).
    pub profile: Option<SimProfile>,
}

impl SimReport {
    /// Aggregate throughput: total bytes over the makespan. Zero when any
    /// transfer never delivered (infinite makespan) — undelivered data
    /// must not be averaged into a finite rate; a warning with the
    /// undelivered count and their cumulative stall time goes to stderr
    /// so the zero is never silent.
    pub fn aggregate_throughput(&self) -> f64 {
        if self.makespan > 0.0 && self.makespan.is_finite() {
            self.total_bytes as f64 / self.makespan
        } else {
            if self.makespan.is_infinite() {
                let undelivered = self.status.len() - self.num_delivered();
                // Name the worst offender, not just the totals: the one
                // undelivered transfer with the most accrued stall is
                // where debugging a wedged exchange starts.
                let offender = match self.worst_undelivered() {
                    Some((i, stall)) => {
                        format!("; top offender: transfer #{i} stalled {stall:.3}s")
                    }
                    None => String::new(),
                };
                eprintln!(
                    "warning: aggregate_throughput is 0 — {undelivered} of {} \
                     transfers undelivered after {:.3}s cumulative stall \
                     (end_time {:.3}s){offender}",
                    self.status.len(),
                    self.total_stall_time(),
                    self.end_time,
                );
            }
            0.0
        }
    }

    /// The undelivered transfer with the most accrued stall time, if
    /// any. Stall times compare with `total_cmp` — like `queue.rs` and
    /// `waterfill.rs` — so a NaN (which orders above every finite
    /// value) deterministically surfaces as the offender instead of
    /// collapsing into a tie that silently keeps an arbitrary earlier
    /// candidate.
    fn worst_undelivered(&self) -> Option<(usize, f64)> {
        self.status
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != TransferStatus::Delivered)
            .max_by(|&(i, _), &(j, _)| self.stall_time[i].total_cmp(&self.stall_time[j]))
            .map(|(i, _)| (i, self.stall_time[i]))
    }

    /// Whether every transfer was delivered.
    pub fn all_delivered(&self) -> bool {
        self.status.iter().all(|&s| s == TransferStatus::Delivered)
    }

    /// Number of delivered transfers.
    pub fn num_delivered(&self) -> usize {
        self.status
            .iter()
            .filter(|&&s| s == TransferStatus::Delivered)
            .count()
    }

    /// Final status of one transfer.
    pub fn status_of(&self, id: TransferId) -> TransferStatus {
        self.status[id.index()]
    }

    /// Delivery time of one transfer.
    pub fn delivered_at(&self, id: TransferId) -> f64 {
        self.delivery_time[id.index()]
    }

    /// Cumulative stall time of one transfer.
    pub fn stall_time_of(&self, id: TransferId) -> f64 {
        self.stall_time[id.index()]
    }

    /// Total stall time across all transfers.
    pub fn total_stall_time(&self) -> f64 {
        self.stall_time.iter().sum()
    }

    /// Latest delivery among a set of transfers (e.g. one logical message
    /// split over several paths).
    pub fn last_delivery(&self, ids: &[TransferId]) -> f64 {
        ids.iter()
            .map(|id| self.delivery_time[id.index()])
            .fold(0.0, f64::max)
    }
}

/// A network: resource capacities plus node count, executing transfer
/// graphs under a [`SimConfig`].
#[derive(Debug, Clone)]
pub struct Simulator {
    capacities: Vec<f64>,
    num_nodes: u32,
    config: SimConfig,
}

impl Simulator {
    /// Build a simulator over `num_nodes` nodes and the given per-resource
    /// capacities (bytes/second).
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(num_nodes: u32, capacities: Vec<f64>, config: SimConfig) -> Simulator {
        config.validate();
        Simulator {
            capacities,
            num_nodes,
            config,
        }
    }

    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Execute `graph` and return per-transfer timings.
    #[deprecated(note = "use `Simulator::simulate` with `SimOptions`")]
    pub fn run(&self, graph: &TransferGraph) -> SimReport {
        self.simulate(graph, SimOptions::new())
    }

    /// Execute `graph` under a fault schedule.
    #[deprecated(note = "use `Simulator::simulate` with `SimOptions`")]
    pub fn run_with_faults(&self, graph: &TransferGraph, faults: &FaultPlan) -> SimReport {
        self.simulate(graph, SimOptions::new().faults(faults))
    }

    /// Execute `graph` under a fault schedule with passive observation.
    #[deprecated(note = "use `Simulator::simulate` with `SimOptions`")]
    pub fn run_observed(
        &self,
        graph: &TransferGraph,
        faults: &FaultPlan,
        obs: &mut SimObserver,
    ) -> SimReport {
        self.simulate(graph, SimOptions::new().faults(faults).observer(obs))
    }

    /// Execute `graph` under `opts` and return per-transfer timings.
    ///
    /// An absent (or empty) fault plan runs fault-free: no fault state is
    /// allocated and the event sequence (and every float operation) is
    /// identical to the pre-fault engine. With faults, each event applies
    /// at its timestamp — link capacities change and rates re-level at
    /// the fault epoch; flows whose route crosses a dead link or whose
    /// endpoint node is down stall (moving no bytes, consuming no
    /// bandwidth) until the fault heals. Transfers still undelivered when
    /// the event queue drains report `f64::INFINITY` times and a
    /// [`TransferStatus::Stalled`] / [`TransferStatus::NotStarted`]
    /// status instead of panicking.
    ///
    /// An attached [`SimObserver`] is strictly passive: engine events
    /// (re-levels, fault applications, stall/resume transitions,
    /// undelivered transfers) and a per-epoch [`crate::LinkHeatmap`]
    /// accumulate into it, and the returned report is bit-identical to
    /// an unobserved run on the same inputs.
    ///
    /// The [`SolverMode`] never changes results — only how much work each
    /// rate re-level performs (see [`SolverMode::Incremental`]).
    ///
    /// # Panics
    /// Panics if the graph or the plan references a node or resource
    /// outside the network.
    pub fn simulate(&self, graph: &TransferGraph, opts: SimOptions<'_>) -> SimReport {
        let SimOptions {
            faults,
            observer: mut obs,
            solver,
            profile,
            threads,
        } = opts;
        let n = graph.len();
        let specs = graph.specs();
        let fault_events: &[FaultEvent] = faults.map(|p| p.events()).unwrap_or(&[]);

        // Validate against the *global* universe before any shard
        // routing: a fault naming an unknown resource must panic even
        // though it would route to no shard.
        for (i, s) in specs.iter().enumerate() {
            assert!(
                s.src < self.num_nodes && s.dst < self.num_nodes,
                "transfer {i} references node outside the network"
            );
        }
        for ev in fault_events {
            match ev.kind {
                FaultKind::LinkFactor { resource, .. } => assert!(
                    (resource.0 as usize) < self.capacities.len(),
                    "fault references resource outside the capacity table"
                ),
                FaultKind::NodeDown { node } | FaultKind::NodeUp { node } => assert!(
                    node < self.num_nodes,
                    "fault references node outside the network"
                ),
            }
        }

        match partition(specs, fault_events, &self.capacities, self.num_nodes) {
            PartitionOutcome::Single { faults: filtered } => {
                // One contention component: run the original universe
                // directly (the remap would be the identity) under the
                // filtered fault schedule.
                let input = ComponentInput {
                    specs,
                    caps: &self.capacities,
                    num_nodes: self.num_nodes,
                    config: &self.config,
                    faults: &filtered,
                    solver,
                    profile,
                };
                let run = run_component(&input, obs.as_deref_mut());
                if let Some(o) = obs.as_deref_mut() {
                    o.shards += 1;
                    o.shard_merges.push(ShardMerge {
                        shard: 0,
                        transfers: n as u32,
                        end_time: run.end_time,
                    });
                }
                self.finish_report(
                    graph,
                    run.delivery_time,
                    run.flow_start_time,
                    run.stall_time,
                    run.end_time,
                    run.resource_bytes,
                    run.pstate,
                    1,
                    obs,
                )
            }
            PartitionOutcome::Sharded(plans) => {
                let observing = obs.is_some();
                let runs = execute(plans.len(), threads, |k| {
                    let plan = &plans[k];
                    let mut local = if observing {
                        Some(SimObserver::new())
                    } else {
                        None
                    };
                    let input = ComponentInput {
                        specs: plan.graph.specs(),
                        caps: &plan.caps,
                        num_nodes: plan.nodes.len() as u32,
                        config: &self.config,
                        faults: &plan.faults,
                        solver,
                        profile,
                    };
                    let run = run_component(&input, local.as_mut());
                    (run, local)
                });

                // Merge in canonical shard order (ascending minimum
                // transfer id): scatter per-transfer records back to
                // global indices, close stall books at the global drain,
                // and fold shard observers/profiles with ids remapped.
                let global_end = runs.iter().map(|(r, _)| r.end_time).fold(0.0, f64::max);
                let mut delivery_time = vec![f64::INFINITY; n];
                let mut flow_start_time = vec![f64::INFINITY; n];
                let mut stall_time = vec![0.0f64; n];
                let mut resource_bytes = self
                    .config
                    .collect_link_stats
                    .then(|| vec![0.0f64; self.capacities.len()]);
                let mut gstate = profile.then(|| ProfileState::new(n));
                let shards = plans.len() as u32;
                let mark = obs.as_deref().map(|o| o.mark());
                for (k, (plan, (run, local))) in plans.iter().zip(runs).enumerate() {
                    for (li, &t) in plan.tids.iter().enumerate() {
                        delivery_time[t as usize] = run.delivery_time[li];
                        flow_start_time[t as usize] = run.flow_start_time[li];
                        stall_time[t as usize] = run.stall_time[li];
                    }
                    // A flow still stalled when its shard drained keeps
                    // accruing until the *global* drain, exactly as it
                    // did when every component shared one event loop.
                    for &lt in &run.stalled_at_drain {
                        stall_time[plan.tids[lt as usize] as usize] += global_end - run.end_time;
                    }
                    if let (Some(grb), Some(lrb)) =
                        (resource_bytes.as_mut(), run.resource_bytes.as_ref())
                    {
                        for (li, &r) in plan.resources.iter().enumerate() {
                            grb[r as usize] = lrb[li];
                        }
                    }
                    if let (Some(g), Some(p)) = (gstate.as_mut(), run.pstate) {
                        g.absorb(p, &plan.tids, &plan.resources);
                    }
                    if let Some(o) = obs.as_deref_mut() {
                        o.shards += 1;
                        o.shard_merges.push(ShardMerge {
                            shard: k as u32,
                            transfers: plan.tids.len() as u32,
                            end_time: run.end_time,
                        });
                        if let Some(local) = local {
                            o.absorb_shard(local, &plan.tids, &plan.resources);
                        }
                    }
                }
                if let (Some(o), Some(mark)) = (obs.as_deref_mut(), mark) {
                    o.seal_merge(mark);
                }
                self.finish_report(
                    graph,
                    delivery_time,
                    flow_start_time,
                    stall_time,
                    global_end,
                    resource_bytes,
                    gstate,
                    shards,
                    obs,
                )
            }
        }
    }

    /// Common tail of both execution paths: derive statuses, fold the
    /// undelivered count into the observer, decode the profile, and
    /// assemble the report.
    #[allow(clippy::too_many_arguments)]
    fn finish_report(
        &self,
        graph: &TransferGraph,
        delivery_time: Vec<f64>,
        flow_start_time: Vec<f64>,
        stall_time: Vec<f64>,
        end_time: f64,
        resource_bytes: Option<Vec<f64>>,
        pstate: Option<ProfileState>,
        shards: u32,
        obs: Option<&mut SimObserver>,
    ) -> SimReport {
        let n = graph.len();
        let status: Vec<TransferStatus> = (0..n)
            .map(|i| {
                if delivery_time[i].is_finite() {
                    TransferStatus::Delivered
                } else if flow_start_time[i].is_finite() {
                    TransferStatus::Stalled
                } else {
                    TransferStatus::NotStarted
                }
            })
            .collect();
        if let Some(o) = obs {
            o.transfers_undelivered += status
                .iter()
                .filter(|&&s| s != TransferStatus::Delivered)
                .count() as u64;
        }
        let makespan = delivery_time.iter().copied().fold(0.0, f64::max);
        let profile = pstate
            .map(|ps| ps.finish(&delivery_time, &flow_start_time, &stall_time, end_time, shards));
        SimReport {
            delivery_time,
            flow_start_time,
            stall_time,
            status,
            makespan,
            end_time,
            total_bytes: graph.total_bytes(),
            resource_bytes,
            profile,
        }
    }
}

/// Everything one contention component's event loop needs, with ids in
/// the component's own (possibly remapped) universe.
struct ComponentInput<'a> {
    specs: &'a [TransferSpec],
    caps: &'a [f64],
    num_nodes: u32,
    config: &'a SimConfig,
    faults: &'a [FaultEvent],
    solver: SolverMode,
    profile: bool,
}

/// One component's raw results, in local ids, books closed at the
/// component's own drain time. The merge layer scatters these back to
/// global indices and extends still-stalled flows to the global drain.
struct ComponentRun {
    delivery_time: Vec<f64>,
    flow_start_time: Vec<f64>,
    stall_time: Vec<f64>,
    /// Local tids still stalled when this component's queue drained.
    stalled_at_drain: Vec<u32>,
    end_time: f64,
    resource_bytes: Option<Vec<f64>>,
    pstate: Option<ProfileState>,
}

/// The discrete-event loop over one contention component (the whole
/// graph when it forms a single component). Sharding changes *which*
/// transfers share a loop, never the arithmetic inside one — this body
/// performs the same float operations per component at every thread
/// count, which is where the engine's bit-determinism comes from.
fn run_component(input: &ComponentInput<'_>, mut obs: Option<&mut SimObserver>) -> ComponentRun {
    let ComponentInput {
        specs,
        caps,
        num_nodes,
        config,
        faults: fault_events,
        solver,
        profile,
    } = *input;
    let n = specs.len();
    let have_faults = !fault_events.is_empty();

    // Dependency bookkeeping.
    let mut remaining_deps: Vec<u32> = specs.iter().map(|s| s.deps.len() as u32).collect();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, s) in specs.iter().enumerate() {
        for d in &s.deps {
            children[d.index()].push(i as u32);
        }
    }

    let mut q = EventQueue::new();

    // Fault schedule first: at equal timestamps a fault applies before
    // any flow event (lower sequence numbers win ties).
    for (i, ev) in fault_events.iter().enumerate() {
        q.push(ev.time, Event::Fault(i as u32));
    }

    // Seed: transfers with no dependencies become ready at start_at +
    // extra_delay.
    for (i, s) in specs.iter().enumerate() {
        if s.deps.is_empty() {
            let t = s.start_at.max(s.extra_delay);
            q.push(t, Event::Ready(i as u32));
        }
    }

    // Fault state, allocated only when a plan is present.
    let mut fstate: Option<FaultState> = have_faults.then(|| FaultState::new(caps, num_nodes));

    // Per-node injection CPU.
    let mut cpu_queue: Vec<std::collections::VecDeque<u32>> =
        vec![std::collections::VecDeque::new(); num_nodes as usize];
    let mut cpu_busy: Vec<bool> = vec![false; num_nodes as usize];

    // Active/stalled flows and fair-share machinery.
    let mut flows = FlowSet::new(n);
    let mut leveler = Leveler::new(caps.len(), n, solver);
    let mut rates_scratch: Vec<f64> = Vec::new();
    let mut rates_dirty = false;
    let mut epoch: u64 = 0;

    let mut delivery_time = vec![f64::INFINITY; n];
    let mut flow_start_time = vec![f64::INFINITY; n];
    let mut delivered_count: usize = 0;
    // Bottleneck-attribution accumulator. Strictly passive, like the
    // observer: it reads `dt` and engine state but never feeds a
    // float back into the simulation.
    let mut pstate: Option<ProfileState> = profile.then(|| ProfileState::new(n));
    let mut resource_bytes = if config.collect_link_stats {
        Some(vec![0.0f64; caps.len()])
    } else {
        None
    };
    // Heatmap sampling scratch, reused across epochs: a dense per-
    // resource accumulator plus the list of touched indices, drained
    // into a sparse sorted sample at each boundary.
    let mut heat_scratch: Vec<f64> = if obs.is_some() {
        vec![0.0; caps.len()]
    } else {
        Vec::new()
    };
    let mut heat_touched: Vec<u32> = Vec::new();

    let mut now = 0.0f64;

    while let Some(entry) = q.pop() {
        if let Some(o) = obs.as_deref_mut() {
            o.events_processed += 1;
        }
        // Advance the fluid state to the event time.
        let dt = entry.time - now;
        debug_assert!(dt >= -1e-12, "time went backwards: {dt}");
        if dt > 0.0 {
            debug_assert!(!rates_dirty, "advancing with stale rates");
            for f in &mut flows.active {
                let moved = f.rate * dt;
                f.remaining -= moved;
                if let Some(rb) = resource_bytes.as_mut() {
                    for r in &specs[f.tid as usize].route {
                        rb[r.0 as usize] += moved;
                    }
                }
            }
            if let Some(ps) = pstate.as_mut() {
                // Every active flow spent `dt` bound by whatever
                // resource the last re-level named for it (rates are
                // never stale across an advance).
                for f in &flows.active {
                    ps.accrue(f.tid, leveler.binding_of(f.tid), dt);
                }
            }
            now = entry.time;
        }

        match entry.event {
            Event::Ready(tid) => {
                if let Some(ps) = pstate.as_mut() {
                    ps.note_ready(tid, now);
                }
                let node = specs[tid as usize].src as usize;
                if fstate.as_ref().is_some_and(|fs| fs.node_down[node]) {
                    // Source is down: park until the node recovers.
                    fstate.as_mut().unwrap().parked[node].push(tid);
                } else if cpu_busy[node] {
                    cpu_queue[node].push_back(tid);
                } else {
                    cpu_busy[node] = true;
                    q.push(now + config.send_overhead, Event::InjectionDone(tid));
                }
            }
            Event::InjectionDone(tid) => {
                let spec = &specs[tid as usize];
                let node = spec.src as usize;
                // Start the next queued injection on this node (a node
                // that went down mid-injection resumes its queue on
                // recovery instead).
                if fstate.as_ref().is_some_and(|fs| fs.node_down[node]) {
                    cpu_busy[node] = false;
                } else if let Some(next) = cpu_queue[node].pop_front() {
                    q.push(now + config.send_overhead, Event::InjectionDone(next));
                } else {
                    cpu_busy[node] = false;
                }
                flow_start_time[tid as usize] = now;
                if spec.bytes == 0 {
                    // Pure synchronization edge: deliver after latency.
                    if let Some(ps) = pstate.as_mut() {
                        ps.note_drained(tid, now);
                    }
                    let lat =
                        spec.route.len() as f64 * config.hop_latency + config.recv_overhead;
                    q.push(now + lat, Event::Delivered(tid));
                } else if fstate.as_ref().is_some_and(|fs| fs.is_blocked(spec)) {
                    // Born stalled: wait for the fault to heal.
                    if let Some(o) = obs.as_deref_mut() {
                        o.stalls.push((now, tid));
                    }
                    flows.stall_new(tid, spec.bytes as f64, now);
                } else {
                    flows.activate(tid, spec.bytes as f64);
                    leveler.note_join(tid, &spec.route);
                    rates_dirty = true;
                }
            }
            // Note: a stale FlowCheck (epoch mismatch) must fall through
            // to the recompute block below, not `continue`, or pending
            // dirty rates would never be refreshed.
            Event::FlowCheck { epoch: e } => {
                if e == epoch {
                    // Complete every flow that has drained.
                    let mut completed_any = false;
                    let mut i = 0;
                    while i < flows.active.len() {
                        if flows.active[i].remaining <= BYTE_EPS {
                            let f = flows.complete_at(i);
                            if let Some(ps) = pstate.as_mut() {
                                ps.note_drained(f.tid, now);
                            }
                            let spec = &specs[f.tid as usize];
                            leveler.note_leave(f.tid, &spec.route);
                            let lat = spec.route.len() as f64 * config.hop_latency
                                + config.recv_overhead;
                            q.push(now + lat, Event::Delivered(f.tid));
                            rates_dirty = true;
                            completed_any = true;
                        } else {
                            i += 1;
                        }
                    }
                    if !completed_any && !flows.active.is_empty() {
                        // Float noise left the nearest flow fractionally
                        // short; re-arm the check at its true ETA.
                        let next_done = flows
                            .active
                            .iter()
                            .map(|f| now + f.remaining.max(0.0) / f.rate)
                            .fold(f64::INFINITY, f64::min);
                        q.push(next_done, Event::FlowCheck { epoch });
                    }
                }
            }
            Event::Delivered(tid) => {
                delivery_time[tid as usize] = now;
                delivered_count += 1;
                for &child in &children[tid as usize] {
                    remaining_deps[child as usize] -= 1;
                    if remaining_deps[child as usize] == 0 {
                        let cs = &specs[child as usize];
                        let t = (now + cs.extra_delay).max(cs.start_at);
                        q.push(t, Event::Ready(child));
                    }
                }
            }
            Event::Fault(fi) => {
                let fs = fstate.as_mut().expect("fault event without a plan");
                let kind = &fault_events[fi as usize].kind;
                if let Some(ri) = fs.apply(kind, caps) {
                    leveler.note_caps_changed(ri);
                }
                if let FaultKind::NodeUp { node } = *kind {
                    let ni = node as usize;
                    // Re-ready injections parked while down (in
                    // arrival order: the push seq preserves it).
                    for tid in std::mem::take(&mut fs.parked[ni]) {
                        q.push(now, Event::Ready(tid));
                    }
                    // Resume an injection queue left idle when the
                    // node failed mid-injection.
                    if !cpu_busy[ni] {
                        if let Some(next) = cpu_queue[ni].pop_front() {
                            cpu_busy[ni] = true;
                            q.push(now + config.send_overhead, Event::InjectionDone(next));
                        }
                    }
                }
                if let Some(o) = obs.as_deref_mut() {
                    o.fault_events += 1;
                }
                // Start indices into the observer's stall/resume logs:
                // everything the repartition below appends belongs to
                // this fault epoch's re-level record.
                let (s0, r0) = match obs.as_deref_mut() {
                    Some(o) => (o.stalls.len(), o.resumes.len()),
                    None => (0, 0),
                };
                // Re-partition running vs. stalled flows under the new
                // health state, preserving arrival order (determinism).
                let mut i = 0;
                while i < flows.active.len() {
                    if fs.is_blocked(&specs[flows.active[i].tid as usize]) {
                        let tid = flows.stall_at(i, now);
                        leveler.note_leave(tid, &specs[tid as usize].route);
                        if let Some(o) = obs.as_deref_mut() {
                            o.stalls.push((now, tid));
                        }
                    } else {
                        i += 1;
                    }
                }
                let mut i = 0;
                while i < flows.stalled.len() {
                    if !fs.is_blocked(&specs[flows.stalled[i].tid as usize]) {
                        let tid = flows.resume_at(i, now);
                        leveler.note_join(tid, &specs[tid as usize].route);
                        if let Some(o) = obs.as_deref_mut() {
                            o.resumes.push((now, tid));
                        }
                    } else {
                        i += 1;
                    }
                }
                if let Some(o) = obs.as_deref_mut() {
                    let stalled = o.stalls[s0..].iter().map(|&(_, t)| t).collect();
                    let resumed = o.resumes[r0..].iter().map(|&(_, t)| t).collect();
                    o.fault_re_levels.push(FaultReLevel {
                        time: now,
                        stalled,
                        resumed,
                    });
                }
                rates_dirty = true;
            }
        }

        // Re-level fair shares once all events at this instant are
        // handled (cheap peek-based batching).
        if rates_dirty && q.is_boundary(now) {
            epoch += 1;
            if let Some(o) = obs.as_deref_mut() {
                // Sample the fluid state at the epoch boundary:
                // remaining bytes of active flows, spread over their
                // routes, kept sparse (sorted by resource id, zero
                // cells omitted). Observer-only work — the report's
                // floats are untouched.
                o.waterfill_runs += 1;
                for f in &flows.active {
                    for r in &specs[f.tid as usize].route {
                        heat_touched.push(r.0);
                        heat_scratch[r.0 as usize] += f.remaining.max(0.0);
                    }
                }
                heat_touched.sort_unstable();
                heat_touched.dedup();
                let bytes_in_flight = heat_touched
                    .iter()
                    .filter_map(|&r| {
                        let v = heat_scratch[r as usize];
                        heat_scratch[r as usize] = 0.0;
                        (v > 0.0).then_some((r, v))
                    })
                    .collect();
                heat_touched.clear();
                o.heatmap.samples.push(HeatmapSample {
                    time: now,
                    epoch,
                    bytes_in_flight,
                });
            }
            if !flows.active.is_empty() {
                // Stalled flows are excluded from the demand set, so no
                // route ever crosses a zero-capacity (dead) resource.
                let eff_caps: &[f64] = match fstate.as_ref() {
                    Some(fs) => &fs.eff_caps,
                    None => caps,
                };
                leveler.level(
                    &mut flows.active,
                    specs,
                    eff_caps,
                    config,
                    &mut rates_scratch,
                );
                if let Some(ps) = pstate.as_mut() {
                    for f in &flows.active {
                        ps.note_binding(f.tid, now, leveler.binding_of(f.tid));
                    }
                }
                let mut next_done = f64::INFINITY;
                for f in &flows.active {
                    let eta = now + (f.remaining.max(0.0) / f.rate);
                    if eta < next_done {
                        next_done = eta;
                    }
                }
                q.push(next_done, Event::FlowCheck { epoch });
            }
            rates_dirty = false;
        }

        // With faults the queue may hold events past the last delivery
        // (recoveries, stale checks); stop once everything arrived.
        if have_faults && delivered_count == n {
            break;
        }
    }

    if !have_faults {
        assert_eq!(
            delivered_count, n,
            "simulation ended with undelivered transfers (dependency deadlock?)"
        );
    }
    if let Some(o) = obs {
        o.waterfill_full_runs += leveler.full_runs;
        o.waterfill_incremental_runs += leveler.incremental_runs;
    }
    let (stall_time, stalled_at_drain) = flows.close(now);
    ComponentRun {
        delivery_time,
        flow_start_time,
        stall_time,
        stalled_at_drain,
        end_time: now,
        resource_bytes,
        pstate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ResourceId, TransferGraph, TransferSpec};

    /// A config with clean round numbers for hand-computed expectations.
    fn test_config() -> SimConfig {
        SimConfig {
            link_bandwidth: 100.0,
            io_link_bandwidth: 100.0,
            per_flow_cap: 100.0,
            hop_latency: 0.0,
            send_overhead: 1.0,
            recv_overhead: 0.0,
            rma_phase_overhead: 0.0,
            forward_overhead: 0.0,
            contention_penalty: 0.0,
            contention_floor: 1.0,
            collect_link_stats: true,
        }
    }

    fn sim(nodes: u32, caps: Vec<f64>) -> Simulator {
        Simulator::new(nodes, caps, test_config())
    }

    fn run(s: &Simulator, g: &TransferGraph) -> SimReport {
        s.simulate(g, SimOptions::new())
    }

    fn run_with_faults(s: &Simulator, g: &TransferGraph, plan: &FaultPlan) -> SimReport {
        s.simulate(g, SimOptions::new().faults(plan))
    }

    #[test]
    fn single_transfer_timing() {
        // 1000 bytes at 100 B/s over one link, 1 s injection overhead.
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let rep = run(&s, &g);
        assert!((rep.delivered_at(t) - 11.0).abs() < 1e-9, "{}", rep.delivered_at(t));
        assert!((rep.flow_start_time[0] - 1.0).abs() < 1e-9);
        assert_eq!(rep.total_bytes, 1000);
        assert_eq!(rep.stall_time, vec![0.0]);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        // Two 1000-byte transfers from different nodes over one shared link.
        let s = sim(3, vec![100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 2, 1000, vec![ResourceId(0)]));
        let rep = run(&s, &g);
        // Both start at t=1 (different source CPUs), share 100 B/s -> 50 each,
        // finish at 1 + 20 = 21.
        for t in &rep.delivery_time {
            assert!((t - 21.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let s = sim(4, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 3, 1000, vec![ResourceId(1)]));
        let rep = run(&s, &g);
        for t in &rep.delivery_time {
            assert!((t - 11.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn injection_serializes_on_one_node() {
        // Two sends from the same node: second flow starts o_s later.
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0)]));
        g.add(TransferSpec::new(0, 2, 100, vec![ResourceId(1)]));
        let rep = run(&s, &g);
        assert!((rep.flow_start_time[0] - 1.0).abs() < 1e-9);
        assert!((rep.flow_start_time[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_honored() {
        // b starts only after a is delivered (store-and-forward).
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let b = g.add(
            TransferSpec::new(1, 2, 1000, vec![ResourceId(1)])
                .after(vec![a])
                .with_delay(0.5),
        );
        let rep = run(&s, &g);
        let ta = rep.delivered_at(a);
        assert!((ta - 11.0).abs() < 1e-6);
        // b: ready at 11.5, injected at 12.5, 10 s transfer -> 22.5.
        assert!((rep.delivered_at(b) - 22.5).abs() < 1e-6, "{}", rep.delivered_at(b));
    }

    #[test]
    fn zero_byte_transfer_is_a_sync_edge() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 0, vec![ResourceId(0)]));
        let rep = run(&s, &g);
        // Injected at t=1, no bytes, delivered immediately (lat=0).
        assert!((rep.delivered_at(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn start_at_delays_a_transfer() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0)]).not_before(5.0));
        let rep = run(&s, &g);
        assert!((rep.delivered_at(a) - 7.0).abs() < 1e-9); // 5 + 1 + 1
    }

    #[test]
    fn rate_cap_limits_a_lone_flow() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(
            TransferSpec::new(0, 1, 100, vec![ResourceId(0)]).with_rate_cap(10.0),
        );
        let rep = run(&s, &g);
        assert!((rep.delivered_at(a) - 11.0).abs() < 1e-9); // 1 + 100/10
    }

    #[test]
    fn departing_flow_frees_bandwidth() {
        // Short and long flow share a link; after the short one leaves the
        // long one speeds up. 100 B/s shared.
        let s = sim(3, vec![100.0]);
        let mut g = TransferGraph::new();
        let short = g.add(TransferSpec::new(0, 2, 500, vec![ResourceId(0)]));
        let long = g.add(TransferSpec::new(1, 2, 2000, vec![ResourceId(0)]));
        let rep = run(&s, &g);
        // Both active at t=1 at 50 B/s. Short done at t=11 (500 bytes).
        // Long has 1500 left, now at 100 B/s -> done at 11 + 15 = 26.
        assert!((rep.delivered_at(short) - 11.0).abs() < 1e-6);
        assert!((rep.delivered_at(long) - 26.0).abs() < 1e-6, "{}", rep.delivered_at(long));
    }

    #[test]
    fn link_stats_conserve_bytes() {
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0), ResourceId(1)]));
        g.add(TransferSpec::new(1, 2, 500, vec![ResourceId(1)]));
        let rep = run(&s, &g);
        let rb = rep.resource_bytes.as_ref().unwrap();
        assert!((rb[0] - 1000.0).abs() < 1.0, "{}", rb[0]);
        assert!((rb[1] - 1500.0).abs() < 1.0, "{}", rb[1]);
    }

    #[test]
    fn hop_latency_and_recv_overhead_add_to_delivery() {
        let mut cfg = test_config();
        cfg.hop_latency = 0.25;
        cfg.recv_overhead = 0.5;
        let s = Simulator::new(2, vec![100.0, 100.0], cfg);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0), ResourceId(1)]));
        let rep = run(&s, &g);
        // 1 (inject) + 1 (transfer) + 2*0.25 (hops) + 0.5 (recv) = 3.0
        assert!((rep.delivered_at(a) - 3.0).abs() < 1e-9, "{}", rep.delivered_at(a));
    }

    #[test]
    fn makespan_and_throughput() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let rep = run(&s, &g);
        assert!((rep.makespan - 11.0).abs() < 1e-9);
        assert!((rep.aggregate_throughput() - 1000.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn empty_graph_runs() {
        let s = sim(1, vec![]);
        let rep = run(&s, &TransferGraph::new());
        assert_eq!(rep.makespan, 0.0);
        assert_eq!(rep.total_bytes, 0);
    }

    #[test]
    fn diamond_dependency_graph() {
        //    a
        //   / \
        //  b   c
        //   \ /
        //    d
        let s = sim(4, vec![100.0; 4]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0)]));
        let b = g.add(TransferSpec::new(1, 2, 100, vec![ResourceId(1)]).after(vec![a]));
        let c = g.add(TransferSpec::new(1, 3, 100, vec![ResourceId(2)]).after(vec![a]));
        let d = g.add(TransferSpec::new(2, 0, 100, vec![ResourceId(3)]).after(vec![b, c]));
        let rep = run(&s, &g);
        let t_d = rep.delivered_at(d);
        assert!(t_d > rep.delivered_at(b) && t_d > rep.delivered_at(c));
        // a: 2.0. b ready 2.0, inject 3.0, done 4.0. c queued behind b's
        // injection: inject at 4.0, done 5.0. d after max(b,c)=5: 7.0.
        assert!((t_d - 7.0).abs() < 1e-6, "{t_d}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_simulate() {
        // The old run surface is thin sugar over `simulate`; pin the
        // equivalence until the wrappers are removed.
        let s = sim(3, vec![100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 2, 700, vec![ResourceId(0)]));
        let plan = FaultPlan::new().degrade_link(3.0, ResourceId(0), 0.5);

        let a = s.run(&g);
        let b = s.simulate(&g, SimOptions::new());
        assert_eq!(a.delivery_time, b.delivery_time);

        let a = s.run_with_faults(&g, &plan);
        let b = s.simulate(&g, SimOptions::new().faults(&plan));
        assert_eq!(a.delivery_time, b.delivery_time);

        let mut o1 = SimObserver::new();
        let mut o2 = SimObserver::new();
        let a = s.run_observed(&g, &plan, &mut o1);
        let b = s.simulate(&g, SimOptions::new().faults(&plan).observer(&mut o2));
        assert_eq!(a.delivery_time, b.delivery_time);
        assert_eq!(o1, o2);
    }

    // ---- fault injection ----

    use crate::fault::FaultPlan;

    #[test]
    fn empty_fault_plan_matches_plain_run() {
        let s = sim(3, vec![100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 2, 700, vec![ResourceId(0)]));
        let a = run(&s, &g);
        let b = run_with_faults(&s, &g, &FaultPlan::new());
        assert_eq!(a.delivery_time, b.delivery_time);
        assert_eq!(a.flow_start_time, b.flow_start_time);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.status, b.status);
    }

    #[test]
    fn dead_link_stalls_the_flow() {
        // 1000 bytes at 100 B/s, injected at t=1; the link dies at t=6
        // (500 bytes moved) and never recovers.
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new().fail_link(6.0, ResourceId(0));
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(t), TransferStatus::Stalled);
        assert_eq!(rep.delivered_at(t), f64::INFINITY);
        assert_eq!(rep.makespan, f64::INFINITY);
        assert_eq!(rep.aggregate_throughput(), 0.0);
        assert!(!rep.all_delivered());
        // The queue drains at the (stale) completion check armed before
        // the fault; end_time is finite and past the fault instant.
        assert!(rep.end_time.is_finite() && rep.end_time >= 6.0, "{}", rep.end_time);
        // The flow stalls at t=6 and never resumes: stall time accrues
        // up to end_time.
        assert!((rep.stall_time_of(t) - (rep.end_time - 6.0)).abs() < 1e-9);
    }

    #[test]
    fn link_recovery_resumes_the_flow() {
        // Dies at t=6 with 500 bytes left, heals at t=16: delivery at
        // 16 + 500/100 = 21.
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new()
            .fail_link(6.0, ResourceId(0))
            .restore_link(16.0, ResourceId(0));
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(t), TransferStatus::Delivered);
        assert!((rep.delivered_at(t) - 21.0).abs() < 1e-6, "{}", rep.delivered_at(t));
        // Stalled over [6, 16].
        assert!((rep.stall_time_of(t) - 10.0).abs() < 1e-9, "{}", rep.stall_time_of(t));
        assert!((rep.total_stall_time() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_link_slows_the_flow() {
        // Halved at t=6 with 500 bytes left: 500/50 more seconds -> 16.
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new().degrade_link(6.0, ResourceId(0), 0.5);
        let rep = run_with_faults(&s, &g, &plan);
        assert!((rep.delivered_at(t) - 16.0).abs() < 1e-6, "{}", rep.delivered_at(t));
        // Degraded, not blocked: no stall time.
        assert_eq!(rep.stall_time_of(t), 0.0);
    }

    #[test]
    fn fault_on_unused_link_changes_nothing() {
        let s = sim(2, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new().fail_link(3.0, ResourceId(1));
        let rep = run_with_faults(&s, &g, &plan);
        assert!((rep.delivered_at(t) - 11.0).abs() < 1e-9);
        assert!(rep.all_delivered());
    }

    #[test]
    fn down_node_parks_injection_until_recovery() {
        // Node 0 down over [0, 5]: the transfer parks at Ready, resumes
        // at t=5, injects until 6, 10 s of bytes -> delivered at 16.
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new().fail_node(0.0, 0).restore_node(5.0, 0);
        let rep = run_with_faults(&s, &g, &plan);
        assert!((rep.delivered_at(t) - 16.0).abs() < 1e-6, "{}", rep.delivered_at(t));
        // Parked before injection is not a stall: the flow never existed.
        assert_eq!(rep.stall_time_of(t), 0.0);
    }

    #[test]
    fn down_destination_stalls_started_flow() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new().fail_node(6.0, 1);
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(t), TransferStatus::Stalled);
        assert!(rep.flow_start_time[t.index()].is_finite());
        assert!(rep.stall_time_of(t) > 0.0);
    }

    #[test]
    fn never_started_transfer_reports_not_started() {
        // b depends on a; a's link dies mid-flight, so b never readies.
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let b = g.add(TransferSpec::new(1, 2, 1000, vec![ResourceId(1)]).after(vec![a]));
        let plan = FaultPlan::new().fail_link(6.0, ResourceId(0));
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(a), TransferStatus::Stalled);
        assert_eq!(rep.status_of(b), TransferStatus::NotStarted);
        assert_eq!(rep.flow_start_time[b.index()], f64::INFINITY);
        assert_eq!(rep.num_delivered(), 0);
        assert_eq!(rep.stall_time_of(b), 0.0);
    }

    #[test]
    fn surviving_flow_proceeds_past_a_fault() {
        // Two disjoint routes; killing route 0 leaves flow 1 untouched,
        // and flow 1's completion frees nothing for the stalled flow.
        let s = sim(4, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let b = g.add(TransferSpec::new(2, 3, 1000, vec![ResourceId(1)]));
        let plan = FaultPlan::new().fail_link(2.0, ResourceId(0));
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(a), TransferStatus::Stalled);
        assert_eq!(rep.status_of(b), TransferStatus::Delivered);
        assert!((rep.delivered_at(b) - 11.0).abs() < 1e-6);
        assert_eq!(rep.num_delivered(), 1);
    }

    #[test]
    fn stalled_flow_releases_bandwidth_to_sharers() {
        // Two flows share link 0. Flow a also crosses link 1, which dies
        // at t=6: flow b then runs alone at full rate.
        // Both at 50 B/s over [1, 6] (250 moved each); b's remaining 750
        // at 100 B/s -> delivered at 6 + 7.5 = 13.5.
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0), ResourceId(1)]));
        let b = g.add(TransferSpec::new(1, 2, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new().fail_link(6.0, ResourceId(1));
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(a), TransferStatus::Stalled);
        assert!((rep.delivered_at(b) - 13.5).abs() < 1e-6, "{}", rep.delivered_at(b));
    }

    #[test]
    fn full_and_incremental_solvers_agree_bit_for_bit() {
        // A contended fan-in with a mid-run fault: the exact scenario the
        // dirty-set machinery handles, pinned against the full solver.
        let s = sim(6, vec![100.0, 100.0, 80.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 5, 1000, vec![ResourceId(0), ResourceId(2)]));
        g.add(TransferSpec::new(1, 5, 700, vec![ResourceId(0)]));
        g.add(TransferSpec::new(2, 5, 900, vec![ResourceId(1), ResourceId(2)]));
        g.add(TransferSpec::new(3, 5, 400, vec![ResourceId(1)]).after(vec![a]));
        let plan = FaultPlan::new()
            .degrade_link(4.0, ResourceId(2), 0.5)
            .restore_link(9.0, ResourceId(2));

        let full = s.simulate(&g, SimOptions::new().faults(&plan).solver(SolverMode::Full));
        let inc = s.simulate(
            &g,
            SimOptions::new()
                .faults(&plan)
                .solver(SolverMode::Incremental { full_fraction: 1.0 }),
        );
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|f| f.to_bits()).collect() };
        assert_eq!(bits(&full.delivery_time), bits(&inc.delivery_time));
        assert_eq!(bits(&full.flow_start_time), bits(&inc.flow_start_time));
        assert_eq!(bits(&full.stall_time), bits(&inc.stall_time));
        assert_eq!(full.makespan.to_bits(), inc.makespan.to_bits());
        assert_eq!(full.status, inc.status);
        assert_eq!(
            bits(full.resource_bytes.as_ref().unwrap()),
            bits(inc.resource_bytes.as_ref().unwrap())
        );
    }

    #[test]
    fn incremental_solver_skips_full_re_levels() {
        // One source node fanning out over 16 private links (a single
        // contention component via the shared injection CPU): each join
        // or completion dirties only the one flow on its own link, so
        // after the first epoch the incremental solver never needs the
        // full fallback.
        let s = Simulator::new(17, vec![100.0; 16], test_config());
        let mut g = TransferGraph::new();
        for p in 0..16u32 {
            g.add(TransferSpec::new(
                0,
                p + 1,
                1000 * (p as u64 + 1),
                vec![ResourceId(p)],
            ));
        }
        let mut o = SimObserver::new();
        let rep = s.simulate(&g, SimOptions::new().observer(&mut o));
        assert!(rep.all_delivered());
        assert!(o.waterfill_incremental_runs > o.waterfill_full_runs,
            "incremental {} vs full {}", o.waterfill_incremental_runs, o.waterfill_full_runs);
        assert!(o.events_processed > 0);
        // The shared source keeps this a single shard.
        assert_eq!(o.shards, 1);
    }

    #[test]
    fn observed_run_matches_unobserved_bit_for_bit() {
        use crate::obs::SimObserver;
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0), ResourceId(1)]));
        g.add(TransferSpec::new(1, 2, 1000, vec![ResourceId(0)]));
        let plan = FaultPlan::new()
            .fail_link(6.0, ResourceId(1))
            .restore_link(9.0, ResourceId(1));

        let plain = run_with_faults(&s, &g, &plan);
        let mut obs = SimObserver::new();
        let watched = s.simulate(&g, SimOptions::new().faults(&plan).observer(&mut obs));

        let bits = |r: &SimReport| -> Vec<u64> {
            r.delivery_time
                .iter()
                .chain(r.flow_start_time.iter())
                .chain(r.stall_time.iter())
                .chain([r.makespan, r.end_time].iter())
                .map(|f| f.to_bits())
                .collect()
        };
        assert_eq!(bits(&plain), bits(&watched));
        assert_eq!(plain.status, watched.status);

        assert!(obs.waterfill_runs > 0);
        assert_eq!(obs.fault_events, 2);
        assert_eq!(obs.stalls, vec![(6.0, a.index() as u32)]);
        assert_eq!(obs.resumes, vec![(9.0, a.index() as u32)]);
        assert_eq!(obs.transfers_undelivered, 0);
        assert!(!obs.heatmap.is_empty());
        // Link 0 carried both flows at the first epoch: 2000 bytes in flight
        // (samples are sparse `(resource, bytes)` pairs).
        assert_eq!(obs.heatmap.samples[0].bytes_in_flight[0], (0, 2000.0));
        // Both flows share link 0, so the whole graph is one component.
        assert_eq!(obs.shards, 1);
        assert_eq!(obs.shard_merges.len(), 1);
        assert_eq!(obs.shard_merges[0].transfers, 2);
        // Re-level counters partition the solver work.
        assert!(obs.waterfill_full_runs + obs.waterfill_incremental_runs > 0);
    }

    #[test]
    fn observer_counts_undelivered_transfers() {
        use crate::obs::SimObserver;
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 2, 1000, vec![ResourceId(1)]).after(vec![a]));
        let plan = FaultPlan::new().fail_link(6.0, ResourceId(0));
        let mut obs = SimObserver::new();
        let rep = s.simulate(&g, SimOptions::new().faults(&plan).observer(&mut obs));
        assert!(!rep.all_delivered());
        assert_eq!(obs.transfers_undelivered, 2); // one stalled, one never started
        assert_eq!(obs.stalls.len(), 1);
        assert!(obs.resumes.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the capacity table")]
    fn fault_on_unknown_resource_panics() {
        let s = sim(2, vec![100.0]);
        let g = TransferGraph::new();
        let plan = FaultPlan::new().fail_link(1.0, ResourceId(9));
        run_with_faults(&s, &g, &plan);
    }

    // ---- NaN ordering regression ----

    #[test]
    fn worst_offender_orders_nan_stall_deterministically() {
        // A NaN stall time must surface as the worst offender (total_cmp
        // puts NaN above every finite value). The old partial_cmp +
        // unwrap_or(Equal) comparison collapsed NaN comparisons into
        // ties, silently keeping whichever candidate the fold visited
        // last — here index 2.
        let rep = SimReport {
            delivery_time: vec![f64::INFINITY; 3],
            flow_start_time: vec![1.0; 3],
            stall_time: vec![1.0, f64::NAN, 5.0],
            status: vec![TransferStatus::Stalled; 3],
            makespan: f64::INFINITY,
            end_time: 9.0,
            total_bytes: 3000,
            resource_bytes: None,
            profile: None,
        };
        let (idx, stall) = rep.worst_undelivered().unwrap();
        assert_eq!(idx, 1);
        assert!(stall.is_nan());
        assert_eq!(rep.aggregate_throughput(), 0.0);
    }

    // ---- component sharding ----

    /// Three disjoint two-flow components plus a fault on one of them:
    /// exercises shard discovery, fault routing and merge.
    fn sharded_fixture() -> (Simulator, TransferGraph, FaultPlan) {
        let s = sim(12, vec![100.0; 6]);
        let mut g = TransferGraph::new();
        for c in 0..3u32 {
            let base = c * 4;
            let a = g.add(TransferSpec::new(
                base,
                base + 1,
                1000 + c as u64 * 300,
                vec![ResourceId(c * 2)],
            ));
            g.add(
                TransferSpec::new(
                    base + 2,
                    base + 3,
                    700,
                    vec![ResourceId(c * 2), ResourceId(c * 2 + 1)],
                )
                .after(vec![a]),
            );
        }
        let plan = FaultPlan::new()
            .fail_link(6.0, ResourceId(2))
            .restore_link(12.0, ResourceId(2));
        (s, g, plan)
    }

    #[test]
    fn disjoint_components_execute_as_shards() {
        let (s, g, _) = sharded_fixture();
        let mut o = SimObserver::new();
        let rep = s.simulate(&g, SimOptions::new().observer(&mut o));
        assert!(rep.all_delivered());
        assert_eq!(o.shards, 3);
        assert_eq!(o.shard_merges.len(), 3);
        assert_eq!(
            o.shard_merges.iter().map(|m| m.shard).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(o.shard_merges.iter().all(|m| m.transfers == 2));
        let max_shard_end = o
            .shard_merges
            .iter()
            .map(|m| m.end_time)
            .fold(0.0, f64::max);
        assert_eq!(max_shard_end.to_bits(), rep.end_time.to_bits());
    }

    #[test]
    fn sharded_run_is_bit_identical_at_every_thread_count() {
        let (s, g, plan) = sharded_fixture();
        let run_at = |threads: usize| {
            let mut o = SimObserver::new();
            let rep = s.simulate(
                &g,
                SimOptions::new()
                    .faults(&plan)
                    .observer(&mut o)
                    .profiled()
                    .sharded(threads),
            );
            (rep, o)
        };
        let (rep1, o1) = run_at(1);
        for threads in [2, 8] {
            let (rep, o) = run_at(threads);
            assert_eq!(rep, rep1, "report diverged at {threads} threads");
            assert_eq!(o, o1, "observer diverged at {threads} threads");
        }
        // The default (threads unset) takes the same inline path.
        let mut o0 = SimObserver::new();
        let rep0 = s.simulate(
            &g,
            SimOptions::new().faults(&plan).observer(&mut o0).profiled(),
        );
        assert_eq!(rep0, rep1);
        assert_eq!(o0, o1);
        assert_eq!(rep1.profile.as_ref().unwrap().shards, 3);
    }

    #[test]
    fn sharded_faults_route_to_their_component() {
        // The fault hits resource 2 — component 1 only. Component 1's
        // flows stall over [6, 12]; the other components are untouched.
        let (s, g, plan) = sharded_fixture();
        let rep = run_with_faults(&s, &g, &plan);
        assert!(rep.all_delivered());
        assert!((rep.stall_time[2] - 6.0).abs() < 1e-9, "{}", rep.stall_time[2]);
        for i in [0usize, 1, 4, 5] {
            assert_eq!(rep.stall_time[i], 0.0, "transfer {i}");
        }
    }

    #[test]
    fn shard_stall_books_close_at_the_global_drain() {
        // Two disjoint flows; one's link dies and never recovers, the
        // other finishes much later. The stalled flow must accrue stall
        // time up to the *global* drain, exactly as the old single
        // event loop reported it.
        let s = sim(4, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let b = g.add(TransferSpec::new(2, 3, 40_000, vec![ResourceId(1)]));
        let plan = FaultPlan::new().fail_link(6.0, ResourceId(0));
        let rep = run_with_faults(&s, &g, &plan);
        assert_eq!(rep.status_of(a), TransferStatus::Stalled);
        assert_eq!(rep.status_of(b), TransferStatus::Delivered);
        // b runs alone: injected at 1, 40_000 bytes at 100 B/s -> 401.
        assert!((rep.delivered_at(b) - 401.0).abs() < 1e-6);
        assert!(rep.end_time >= 401.0);
        assert!(
            (rep.stall_time_of(a) - (rep.end_time - 6.0)).abs() < 1e-9,
            "stall {} vs end {}",
            rep.stall_time_of(a),
            rep.end_time
        );
    }
}
