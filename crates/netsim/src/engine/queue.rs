//! The event queue: a `(time, seq)`-ordered priority queue with a FIFO
//! bucket fast path for events scheduled at the current instant.
//!
//! Same-instant cascades dominate sparse transfer graphs (a delivery
//! readies its dependents *now*, a recovery re-readies every parked
//! injection *now*), and routing those through the binary heap costs a
//! sift per event. The bucket holds them in push order instead: pushes
//! at exactly the current instant append to a FIFO, and `pop` merges
//! heap and bucket by the same `(time, seq)` key the heap alone used to
//! enforce — so the pop sequence is bit-for-bit the one a pure heap
//! would produce.
//!
//! Safety of the merge: events are never scheduled in the past, so once
//! an entry at time `t` has been popped (making `t` the bucket instant),
//! every entry still in the heap has time `>= t`. Heap entries at
//! exactly `t` were pushed *before* the bucket opened at `t` and thus
//! carry smaller sequence numbers than anything in the bucket; the
//! comparison in [`EventQueue::pop`] orders them first.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A simulation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Event {
    /// Dependencies satisfied: enter the source node's injection queue.
    Ready(u32),
    /// Sender CPU finished injecting: the flow goes live.
    InjectionDone(u32),
    /// Possible flow completion; valid only for the tagged rate epoch.
    FlowCheck { epoch: u64 },
    /// Transfer delivered at the destination.
    Delivered(u32),
    /// Scheduled fault (index into the run's `FaultPlan`).
    Fault(u32),
}

/// Time ordering key: total order on f64 plus a sequence number so
/// simultaneous events process in creation order (determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Entry {
    pub time: f64,
    pub seq: u64,
    pub event: Event,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    /// Events at exactly `bucket_time`, in push (= seq) order.
    bucket: VecDeque<Entry>,
    bucket_time: f64,
    seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            bucket: VecDeque::new(),
            bucket_time: 0.0,
            seq: 0,
        }
    }

    /// Schedule `event` at `time`. Sequence numbers are assigned in push
    /// order; ties in time resolve in favor of the earlier push.
    pub fn push(&mut self, time: f64, event: Event) {
        debug_assert!(time.is_finite() && time >= 0.0);
        self.seq += 1;
        let e = Entry {
            time,
            seq: self.seq,
            event,
        };
        if time == self.bucket_time {
            self.bucket.push_back(e);
        } else {
            self.heap.push(Reverse(e));
        }
    }

    /// Pop the earliest event by `(time, seq)`.
    pub fn pop(&mut self) -> Option<Entry> {
        let take_heap = match (self.heap.peek(), self.bucket.front()) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(Reverse(h)), Some(b)) => {
                h.time < b.time || (h.time == b.time && h.seq < b.seq)
            }
        };
        let e = if take_heap {
            let Reverse(e) = self.heap.pop().unwrap();
            e
        } else {
            self.bucket.pop_front().unwrap()
        };
        self.bucket_time = e.time;
        Some(e)
    }

    /// True when no pending event shares the instant `now` — the epoch
    /// boundary test that batches rate recomputation.
    pub fn is_boundary(&self, now: f64) -> bool {
        self.heap
            .peek()
            .map(|Reverse(e)| e.time > now)
            .unwrap_or(true)
            && self.bucket.front().map(|e| e.time > now).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::Ready(0));
        q.push(1.0, Event::Ready(1));
        q.push(1.0, Event::Ready(2));
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(
            order,
            vec![Event::Ready(1), Event::Ready(2), Event::Ready(0)]
        );
    }

    #[test]
    fn same_instant_pushes_are_fifo_behind_earlier_heap_entries() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Ready(0));
        q.push(1.0, Event::Ready(1));
        // Pop the first entry at t=1; the bucket instant is now 1.0 and
        // Ready(1) is still pending in the heap.
        assert_eq!(q.pop().unwrap().event, Event::Ready(0));
        // Same-instant pushes go to the bucket but must pop *after* the
        // older heap entry at the same time.
        q.push(1.0, Event::Ready(2));
        q.push(1.0, Event::Ready(3));
        assert!(!q.is_boundary(1.0));
        assert_eq!(q.pop().unwrap().event, Event::Ready(1));
        assert_eq!(q.pop().unwrap().event, Event::Ready(2));
        assert_eq!(q.pop().unwrap().event, Event::Ready(3));
        assert!(q.is_boundary(1.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn boundary_sees_bucket_and_heap() {
        let mut q = EventQueue::new();
        q.push(0.0, Event::Ready(0)); // bucket (bucket_time starts at 0)
        q.push(5.0, Event::Ready(1)); // heap
        assert!(!q.is_boundary(0.0));
        let e = q.pop();
        assert_eq!(e.unwrap().time, 0.0);
        assert!(q.is_boundary(0.0));
        assert!(!q.is_boundary(5.0));
    }
}
