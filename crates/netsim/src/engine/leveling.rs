//! Rate leveling: incremental max-min re-levels over the dirty closure.
//!
//! The max-min fair allocation decomposes over connected components of
//! the bipartite flow↔resource contention graph: a flow's rate depends
//! only on the flows it (transitively) shares a resource with. Sparse
//! transfer patterns keep those components small, so most events — one
//! flow arriving, one finishing, one link changing capacity — perturb a
//! tiny neighborhood while the classical engine re-leveled *every*
//! active flow.
//!
//! The [`Leveler`] maintains per-resource membership lists (which active
//! flows cross each resource) and a dirty set seeded by the events since
//! the last re-level: joined flows, the routes of joined/departed flows,
//! and fault-touched resources. At the epoch boundary it closes the
//! seeds transitively (any flow on a dirty resource is dirty; any
//! resource on a dirty flow's route is dirty) and re-solves the
//! waterfill over just the dirty flows. Because the closure is exactly a
//! union of contention components — and [`crate::Waterfill`] is a pure
//! function of its demand set, including share-tie resolution — the
//! sub-solve returns rates bit-identical to the same flows' rates in a
//! full solve. Untouched flows keep their previous (equally identical)
//! rates.
//!
//! When the dirty closure exceeds `full_fraction` of the active set the
//! leveler falls back to a full solve: the BFS plus sub-demand
//! bookkeeping would cost more than it saves, and the fallback keeps the
//! worst case at the classical engine's cost. The threshold is a pure
//! performance knob — results are identical at any value, which
//! `tests/incremental.rs` pins.

use crate::config::SimConfig;
use crate::graph::TransferSpec;
use crate::waterfill::{FlowDemand, Waterfill};

use super::flow_state::ActiveFlow;
use super::SolverMode;

#[derive(Debug)]
pub(crate) struct Leveler {
    wf: Waterfill,
    /// Always run full solves (SolverMode::Full).
    full_only: bool,
    /// Dirty-closure size (as a fraction of the active set) above which
    /// an incremental re-level falls back to a full solve.
    full_fraction: f64,
    /// Per-resource membership: the active transfer ids crossing each
    /// resource (with multiplicity, mirroring route multiplicity).
    res_flows: Vec<Vec<u32>>,
    res_dirty: Vec<bool>,
    dirty_res: Vec<u32>,
    /// Per-transfer dirty marks (indexed by transfer id).
    flow_dirty: Vec<bool>,
    dirty_flows: Vec<u32>,
    /// Active-list indices of dirty flows, rebuilt each re-level.
    sub_idx: Vec<u32>,
    /// Per-transfer binding resource (the waterfill resource whose
    /// residual fixed the flow's rate; `CAP_BINDING` = its own cap) from
    /// the most recent solve that included the flow. Untouched flows
    /// keep their previous binding for the same reason they keep their
    /// previous rate: their contention component did not change.
    binding: Vec<u32>,
    /// Full re-levels performed (entire active set).
    pub full_runs: u64,
    /// Incremental re-levels performed (dirty closure only).
    pub incremental_runs: u64,
}

impl Leveler {
    pub fn new(num_resources: usize, num_transfers: usize, mode: SolverMode) -> Leveler {
        let (full_only, full_fraction) = match mode {
            SolverMode::Full => (true, 0.0),
            SolverMode::Incremental { full_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&full_fraction),
                    "full_fraction must be in [0, 1]"
                );
                (false, full_fraction)
            }
        };
        Leveler {
            wf: Waterfill::new(num_resources),
            full_only,
            full_fraction,
            res_flows: (0..num_resources).map(|_| Vec::new()).collect(),
            res_dirty: vec![false; num_resources],
            dirty_res: Vec::new(),
            flow_dirty: vec![false; num_transfers],
            dirty_flows: Vec::new(),
            sub_idx: Vec::new(),
            binding: vec![crate::waterfill::CAP_BINDING; num_transfers],
            full_runs: 0,
            incremental_runs: 0,
        }
    }

    fn mark_res(&mut self, ri: usize) {
        if !self.res_dirty[ri] {
            self.res_dirty[ri] = true;
            self.dirty_res.push(ri as u32);
        }
    }

    fn mark_flow(&mut self, tid: u32) {
        if !self.flow_dirty[tid as usize] {
            self.flow_dirty[tid as usize] = true;
            self.dirty_flows.push(tid);
        }
    }

    /// A flow entered the active set: index its route and seed the dirty
    /// set with the flow and every resource it crosses.
    pub fn note_join(&mut self, tid: u32, route: &[crate::graph::ResourceId]) {
        self.mark_flow(tid);
        for r in route {
            let ri = r.0 as usize;
            self.res_flows[ri].push(tid);
            self.mark_res(ri);
        }
    }

    /// A flow left the active set (completed or stalled): unindex it and
    /// mark its route — the bandwidth it held is up for redistribution.
    pub fn note_leave(&mut self, tid: u32, route: &[crate::graph::ResourceId]) {
        for r in route {
            let ri = r.0 as usize;
            if let Some(p) = self.res_flows[ri].iter().position(|&t| t == tid) {
                self.res_flows[ri].swap_remove(p);
            }
            self.mark_res(ri);
        }
    }

    /// A fault changed a resource's effective capacity.
    pub fn note_caps_changed(&mut self, ri: usize) {
        self.mark_res(ri);
    }

    /// The binding resource of transfer `tid` as of the last re-level
    /// that included it (`CAP_BINDING` = bound by its own rate cap).
    pub fn binding_of(&self, tid: u32) -> u32 {
        self.binding[tid as usize]
    }

    /// Re-level `active` at an epoch boundary: close the dirty set, pick
    /// incremental vs full, solve, and write the new rates into the
    /// flows. `rates` is the caller's reusable scratch vector.
    pub fn level(
        &mut self,
        active: &mut [ActiveFlow],
        specs: &[TransferSpec],
        caps: &[f64],
        config: &SimConfig,
        rates: &mut Vec<f64>,
    ) {
        if self.full_only {
            self.clear_dirty();
            self.solve_full(active, specs, caps, config, rates);
            return;
        }

        // Transitive closure: dirty resource -> its flows dirty -> their
        // routes dirty. `dirty_res` doubles as the BFS worklist (the
        // scan index only moves forward over appended entries).
        let mut qi = 0;
        while qi < self.dirty_res.len() {
            let ri = self.dirty_res[qi] as usize;
            qi += 1;
            for k in 0..self.res_flows[ri].len() {
                let tid = self.res_flows[ri][k];
                if !self.flow_dirty[tid as usize] {
                    self.flow_dirty[tid as usize] = true;
                    self.dirty_flows.push(tid);
                    for r in &specs[tid as usize].route {
                        let rr = r.0 as usize;
                        if !self.res_dirty[rr] {
                            self.res_dirty[rr] = true;
                            self.dirty_res.push(rr as u32);
                        }
                    }
                }
            }
        }

        // Dirty flows in active-list order: the demand order a full
        // solve would present them in.
        self.sub_idx.clear();
        for (i, f) in active.iter().enumerate() {
            if self.flow_dirty[f.tid as usize] {
                self.sub_idx.push(i as u32);
            }
        }
        let fallback =
            self.sub_idx.len() as f64 > self.full_fraction * active.len() as f64;
        self.clear_dirty();

        if fallback {
            self.solve_full(active, specs, caps, config, rates);
        } else {
            self.incremental_runs += 1;
            if !self.sub_idx.is_empty() {
                let demands: Vec<FlowDemand> = self
                    .sub_idx
                    .iter()
                    .map(|&i| {
                        let spec = &specs[active[i as usize].tid as usize];
                        FlowDemand {
                            route: &spec.route,
                            cap: spec.rate_cap.unwrap_or(config.per_flow_cap),
                        }
                    })
                    .collect();
                self.wf.compute_with_penalty(
                    &demands,
                    caps,
                    config.contention_penalty,
                    config.contention_floor,
                    rates,
                );
                let Leveler { wf, binding, sub_idx, .. } = self;
                let bindings = wf.bindings();
                for (k, &i) in sub_idx.iter().enumerate() {
                    let f = &mut active[i as usize];
                    f.rate = rates[k];
                    binding[f.tid as usize] = bindings[k];
                }
            }
        }
    }

    fn solve_full(
        &mut self,
        active: &mut [ActiveFlow],
        specs: &[TransferSpec],
        caps: &[f64],
        config: &SimConfig,
        rates: &mut Vec<f64>,
    ) {
        self.full_runs += 1;
        let demands: Vec<FlowDemand> = active
            .iter()
            .map(|f| {
                let spec = &specs[f.tid as usize];
                FlowDemand {
                    route: &spec.route,
                    cap: spec.rate_cap.unwrap_or(config.per_flow_cap),
                }
            })
            .collect();
        self.wf.compute_with_penalty(
            &demands,
            caps,
            config.contention_penalty,
            config.contention_floor,
            rates,
        );
        let Leveler { wf, binding, .. } = self;
        let bindings = wf.bindings();
        for ((f, &r), &b) in active.iter_mut().zip(rates.iter()).zip(bindings) {
            f.rate = r;
            binding[f.tid as usize] = b;
        }
    }

    fn clear_dirty(&mut self) {
        for &ri in &self.dirty_res {
            self.res_dirty[ri as usize] = false;
        }
        self.dirty_res.clear();
        for &tid in &self.dirty_flows {
            self.flow_dirty[tid as usize] = false;
        }
        self.dirty_flows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ResourceId;

    fn cfg() -> SimConfig {
        SimConfig {
            link_bandwidth: 100.0,
            io_link_bandwidth: 100.0,
            per_flow_cap: 100.0,
            hop_latency: 0.0,
            send_overhead: 1.0,
            recv_overhead: 0.0,
            rma_phase_overhead: 0.0,
            forward_overhead: 0.0,
            contention_penalty: 0.0,
            contention_floor: 1.0,
            collect_link_stats: false,
        }
    }

    fn spec(route: &[u32]) -> TransferSpec {
        TransferSpec::new(0, 1, 100, route.iter().map(|&r| ResourceId(r)).collect())
    }

    fn flow(tid: u32) -> ActiveFlow {
        ActiveFlow {
            tid,
            remaining: 100.0,
            rate: 0.0,
        }
    }

    #[test]
    fn incremental_leaves_untouched_component_alone() {
        // Flows 0,1 share link 0; flow 2 rides link 1 alone. Leveling
        // all three, then re-leveling after only flow 2's departure,
        // must not touch flows 0 and 1.
        let specs = vec![spec(&[0]), spec(&[0]), spec(&[1])];
        let caps = [100.0, 100.0];
        let mut lev = Leveler::new(
            2,
            3,
            SolverMode::Incremental { full_fraction: 1.0 },
        );
        let mut active = vec![flow(0), flow(1), flow(2)];
        let mut rates = Vec::new();
        for (tid, s) in specs.iter().enumerate() {
            lev.note_join(tid as u32, &s.route);
        }
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(active[0].rate, 50.0);
        assert_eq!(active[2].rate, 100.0);

        // Flow 2 leaves; poison the disjoint component's rates to prove
        // the sub-solve never visits them.
        lev.note_leave(2, &specs[2].route);
        active.pop();
        active[0].rate = -1.0;
        active[1].rate = -1.0;
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(active[0].rate, -1.0);
        assert_eq!(active[1].rate, -1.0);
        assert_eq!(lev.incremental_runs, 2);
        assert_eq!(lev.full_runs, 0);
    }

    #[test]
    fn closure_pulls_in_transitive_sharers() {
        // Chain: flow 0 on {0}, flow 1 on {0,1}, flow 2 on {1}. A join
        // on link 0 must re-level flow 2 too (via flow 1).
        let specs = vec![spec(&[0]), spec(&[0, 1]), spec(&[1])];
        let caps = [100.0, 100.0];
        let mut lev = Leveler::new(
            2,
            3,
            SolverMode::Incremental { full_fraction: 1.0 },
        );
        let mut active = vec![flow(1), flow(2)];
        let mut rates = Vec::new();
        lev.note_join(1, &specs[1].route);
        lev.note_join(2, &specs[2].route);
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(active[0].rate, 50.0);
        assert_eq!(active[1].rate, 50.0);

        lev.note_join(0, &specs[0].route);
        active.insert(0, flow(0));
        active[2].rate = -1.0; // flow 2: must be re-leveled via closure
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        // Max-min: link 0 splits 50/50 between flows 0 and 1; flow 2
        // then gets link 1's slack.
        assert_eq!(active[0].rate, 50.0);
        assert_eq!(active[1].rate, 50.0);
        assert_eq!(active[2].rate, 50.0);
    }

    #[test]
    fn bindings_survive_untouched_re_levels() {
        // Flows 0,1 contend on link 0 (binding 0); flow 2 rides link 1
        // alone at the shared-equals-cap tie, where the real link wins
        // (lower resource index). After flow 2 leaves, the untouched
        // component's bindings must persist unchanged.
        let specs = vec![spec(&[0]), spec(&[0]), spec(&[1])];
        let caps = [100.0, 100.0];
        let mut lev = Leveler::new(
            2,
            3,
            SolverMode::Incremental { full_fraction: 1.0 },
        );
        let mut active = vec![flow(0), flow(1), flow(2)];
        let mut rates = Vec::new();
        for (tid, s) in specs.iter().enumerate() {
            lev.note_join(tid as u32, &s.route);
        }
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(lev.binding_of(0), 0);
        assert_eq!(lev.binding_of(1), 0);
        assert_eq!(lev.binding_of(2), 1);

        lev.note_leave(2, &specs[2].route);
        active.pop();
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(lev.binding_of(0), 0, "untouched binding must persist");
        assert_eq!(lev.binding_of(1), 0);
    }

    #[test]
    fn threshold_forces_full_fallback() {
        let specs = vec![spec(&[0]), spec(&[1])];
        let caps = [100.0, 100.0];
        let mut lev = Leveler::new(
            2,
            2,
            SolverMode::Incremental { full_fraction: 0.0 },
        );
        let mut active = vec![flow(0), flow(1)];
        let mut rates = Vec::new();
        lev.note_join(0, &specs[0].route);
        lev.note_join(1, &specs[1].route);
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(lev.full_runs, 1);
        assert_eq!(lev.incremental_runs, 0);
        assert_eq!(active[0].rate, 100.0);
    }

    #[test]
    fn empty_dirty_set_is_a_free_re_level() {
        let specs = vec![spec(&[0])];
        let caps = [100.0];
        let mut lev = Leveler::new(
            1,
            1,
            SolverMode::Incremental { full_fraction: 0.5 },
        );
        let mut active = vec![flow(0)];
        let mut rates = Vec::new();
        lev.note_join(0, &specs[0].route);
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        // Nothing changed since: the re-level touches no flow.
        active[0].rate = -1.0;
        lev.level(&mut active, &specs, &caps, &cfg(), &mut rates);
        assert_eq!(active[0].rate, -1.0);
        assert_eq!(lev.incremental_runs, 1);
        assert_eq!(lev.full_runs, 1);
    }
}
