//! Active / stalled flow bookkeeping.
//!
//! Transition order is part of the engine's determinism contract:
//! completion scans use `swap_remove` (and re-examine the swapped-in
//! slot), fault re-partitions use order-preserving `remove`, and resumed
//! flows re-enter at the back of the active list. These exact semantics
//! decide the order flows appear in the waterfill demand set and must
//! not change.
//!
//! The set also owns per-transfer stall accounting: a flow accrues stall
//! time from the instant a fault freezes it (or it is born stalled)
//! until it resumes, or until the event queue drains if it never does.

/// One in-flight transfer: remaining payload and its current fair rate.
#[derive(Debug)]
pub(crate) struct ActiveFlow {
    pub tid: u32,
    pub remaining: f64,
    pub rate: f64,
}

#[derive(Debug)]
pub(crate) struct FlowSet {
    /// Flows currently moving bytes, in arrival order.
    pub active: Vec<ActiveFlow>,
    /// Flows frozen by a dead link / down endpoint, in stall order.
    pub stalled: Vec<ActiveFlow>,
    /// Instant each transfer last stalled; `INFINITY` when not stalled.
    stalled_since: Vec<f64>,
    /// Cumulative stall time per transfer.
    stall_time: Vec<f64>,
}

impl FlowSet {
    pub fn new(num_transfers: usize) -> FlowSet {
        FlowSet {
            active: Vec::new(),
            stalled: Vec::new(),
            stalled_since: vec![f64::INFINITY; num_transfers],
            stall_time: vec![0.0; num_transfers],
        }
    }

    /// A transfer's injection finished on a healthy route: it goes live.
    pub fn activate(&mut self, tid: u32, bytes: f64) {
        self.active.push(ActiveFlow {
            tid,
            remaining: bytes,
            rate: 0.0,
        });
    }

    /// A transfer's injection finished but its route is blocked: it is
    /// born stalled.
    pub fn stall_new(&mut self, tid: u32, bytes: f64, now: f64) {
        self.stalled_since[tid as usize] = now;
        self.stalled.push(ActiveFlow {
            tid,
            remaining: bytes,
            rate: 0.0,
        });
    }

    /// Freeze the active flow at index `i` (order-preserving removal).
    /// Returns its transfer id.
    pub fn stall_at(&mut self, i: usize, now: f64) -> u32 {
        let mut f = self.active.remove(i);
        f.rate = 0.0;
        self.stalled_since[f.tid as usize] = now;
        let tid = f.tid;
        self.stalled.push(f);
        tid
    }

    /// Resume the stalled flow at index `i` (order-preserving removal);
    /// it re-enters at the back of the active list. Returns its id.
    pub fn resume_at(&mut self, i: usize, now: f64) -> u32 {
        let f = self.stalled.remove(i);
        let tid = f.tid;
        let since = &mut self.stalled_since[tid as usize];
        self.stall_time[tid as usize] += now - *since;
        *since = f64::INFINITY;
        self.active.push(f);
        tid
    }

    /// Complete the active flow at index `i` (`swap_remove`: the caller's
    /// scan must re-examine slot `i`).
    pub fn complete_at(&mut self, i: usize) -> ActiveFlow {
        self.active.swap_remove(i)
    }

    /// Close the books at end of run: flows still stalled accrue stall
    /// time up to `end`, and the per-transfer totals are returned along
    /// with the ids of the flows that were still stalled at the drain
    /// (in stall order) — the merge layer extends those to the global
    /// drain when this component finished before its siblings.
    pub fn close(mut self, end: f64) -> (Vec<f64>, Vec<u32>) {
        let mut at_drain = Vec::new();
        for f in &self.stalled {
            let since = self.stalled_since[f.tid as usize];
            if since.is_finite() {
                self.stall_time[f.tid as usize] += end - since;
                at_drain.push(f.tid);
            }
        }
        (self.stall_time, at_drain)
    }

    /// [`close`](Self::close), keeping only the per-transfer totals.
    #[cfg(test)]
    pub fn into_stall_time(self, end: f64) -> Vec<f64> {
        self.close(end).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_and_resume_accrue_time() {
        let mut fs = FlowSet::new(2);
        fs.activate(0, 100.0);
        fs.activate(1, 100.0);
        assert_eq!(fs.stall_at(0, 2.0), 0);
        assert_eq!(fs.active.len(), 1);
        assert_eq!(fs.resume_at(0, 5.0), 0);
        // Resumed flow re-enters at the back.
        assert_eq!(fs.active[1].tid, 0);
        let st = fs.into_stall_time(10.0);
        assert_eq!(st, vec![3.0, 0.0]);
    }

    #[test]
    fn unresumed_stall_accrues_to_end_of_run() {
        let mut fs = FlowSet::new(2);
        fs.stall_new(1, 50.0, 4.0);
        let st = fs.into_stall_time(9.0);
        assert_eq!(st, vec![0.0, 5.0]);
    }
}
