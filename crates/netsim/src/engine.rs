//! The discrete-event simulation engine.
//!
//! Executes a [`TransferGraph`] over a capacitated resource network:
//!
//! * each transfer waits for its dependencies, then enters its source
//!   node's injection queue (one message is injected at a time per node,
//!   taking [`SimConfig::send_overhead`] of CPU time — the Messaging Unit
//!   descriptor setup);
//! * once injected, the transfer becomes a *flow*; all concurrently active
//!   flows share the network according to max-min fairness, recomputed at
//!   every flow arrival/departure (fluid model);
//! * when a flow's bytes complete, delivery occurs after the route's
//!   pipeline latency plus [`SimConfig::recv_overhead`], which is when
//!   dependent transfers may start.
//!
//! The engine is fully deterministic: identical inputs produce identical
//! event orderings and timings.

use crate::config::SimConfig;
use crate::graph::{TransferGraph, TransferId};
use crate::waterfill::{FlowDemand, Waterfill};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Bytes below which a flow is considered complete (absorbs float error).
const BYTE_EPS: f64 = 1e-3;

/// Result of executing a transfer graph.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Delivery time of each transfer (same indexing as the graph).
    pub delivery_time: Vec<f64>,
    /// Time each transfer's flow started moving bytes (injection complete).
    pub flow_start_time: Vec<f64>,
    /// Time the last transfer was delivered.
    pub makespan: f64,
    /// Total payload bytes moved.
    pub total_bytes: u64,
    /// Bytes carried per resource (only if `collect_link_stats`).
    pub resource_bytes: Option<Vec<f64>>,
}

impl SimReport {
    /// Aggregate throughput: total bytes over the makespan.
    pub fn aggregate_throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.total_bytes as f64 / self.makespan
        } else {
            0.0
        }
    }

    /// Delivery time of one transfer.
    pub fn delivered_at(&self, id: TransferId) -> f64 {
        self.delivery_time[id.index()]
    }

    /// Latest delivery among a set of transfers (e.g. one logical message
    /// split over several paths).
    pub fn last_delivery(&self, ids: &[TransferId]) -> f64 {
        ids.iter()
            .map(|id| self.delivery_time[id.index()])
            .fold(0.0, f64::max)
    }
}

/// A network: resource capacities plus node count, executing transfer
/// graphs under a [`SimConfig`].
#[derive(Debug, Clone)]
pub struct Simulator {
    capacities: Vec<f64>,
    num_nodes: u32,
    config: SimConfig,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Dependencies satisfied: enter the source node's injection queue.
    Ready(u32),
    /// Sender CPU finished injecting: the flow goes live.
    InjectionDone(u32),
    /// Possible flow completion; valid only for the tagged rate epoch.
    FlowCheck { epoch: u64 },
    /// Transfer delivered at the destination.
    Delivered(u32),
}

/// Time ordering key: total order on f64 plus a sequence number so
/// simultaneous events process in creation order (determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct ActiveFlow {
    tid: u32,
    remaining: f64,
    rate: f64,
}

impl Simulator {
    /// Build a simulator over `num_nodes` nodes and the given per-resource
    /// capacities (bytes/second).
    ///
    /// # Panics
    /// Panics if the config is invalid.
    pub fn new(num_nodes: u32, capacities: Vec<f64>, config: SimConfig) -> Simulator {
        config.validate();
        Simulator {
            capacities,
            num_nodes,
            config,
        }
    }

    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Execute `graph` and return per-transfer timings.
    ///
    /// # Panics
    /// Panics if a transfer references a node `>= num_nodes` or a resource
    /// outside the capacity table.
    pub fn run(&self, graph: &TransferGraph) -> SimReport {
        let n = graph.len();
        let specs = graph.specs();

        // Dependency bookkeeping.
        let mut remaining_deps: Vec<u32> = specs.iter().map(|s| s.deps.len() as u32).collect();
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, s) in specs.iter().enumerate() {
            assert!(
                s.src < self.num_nodes && s.dst < self.num_nodes,
                "transfer {i} references node outside the network"
            );
            for d in &s.deps {
                children[d.index()].push(i as u32);
            }
        }

        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push = |heap: &mut BinaryHeap<Reverse<Entry>>, seq: &mut u64, time: f64, event: Event| {
            debug_assert!(time.is_finite() && time >= 0.0);
            *seq += 1;
            heap.push(Reverse(Entry {
                time,
                seq: *seq,
                event,
            }));
        };

        // Seed: transfers with no dependencies become ready at start_at +
        // extra_delay.
        for (i, s) in specs.iter().enumerate() {
            if s.deps.is_empty() {
                let t = s.start_at.max(s.extra_delay);
                push(&mut heap, &mut seq, t, Event::Ready(i as u32));
            }
        }

        // Per-node injection CPU.
        let mut cpu_queue: Vec<VecDeque<u32>> = vec![VecDeque::new(); self.num_nodes as usize];
        let mut cpu_busy: Vec<bool> = vec![false; self.num_nodes as usize];

        // Active flows and fair-share machinery.
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut waterfill = Waterfill::new(self.capacities.len());
        let mut rates_scratch: Vec<f64> = Vec::new();
        let mut rates_dirty = false;
        let mut epoch: u64 = 0;

        let mut delivery_time = vec![f64::NAN; n];
        let mut flow_start_time = vec![f64::NAN; n];
        let mut delivered_count: usize = 0;
        let mut resource_bytes = if self.config.collect_link_stats {
            Some(vec![0.0f64; self.capacities.len()])
        } else {
            None
        };

        let mut now = 0.0f64;

        while let Some(Reverse(entry)) = heap.pop() {
            // Advance the fluid state to the event time.
            let dt = entry.time - now;
            debug_assert!(dt >= -1e-12, "time went backwards: {dt}");
            if dt > 0.0 {
                debug_assert!(!rates_dirty, "advancing with stale rates");
                for f in &mut active {
                    let moved = f.rate * dt;
                    f.remaining -= moved;
                    if let Some(rb) = resource_bytes.as_mut() {
                        for r in &specs[f.tid as usize].route {
                            rb[r.0 as usize] += moved;
                        }
                    }
                }
                now = entry.time;
            }

            match entry.event {
                Event::Ready(tid) => {
                    let node = specs[tid as usize].src as usize;
                    if cpu_busy[node] {
                        cpu_queue[node].push_back(tid);
                    } else {
                        cpu_busy[node] = true;
                        push(
                            &mut heap,
                            &mut seq,
                            now + self.config.send_overhead,
                            Event::InjectionDone(tid),
                        );
                    }
                }
                Event::InjectionDone(tid) => {
                    let spec = &specs[tid as usize];
                    let node = spec.src as usize;
                    // Start the next queued injection on this node.
                    if let Some(next) = cpu_queue[node].pop_front() {
                        push(
                            &mut heap,
                            &mut seq,
                            now + self.config.send_overhead,
                            Event::InjectionDone(next),
                        );
                    } else {
                        cpu_busy[node] = false;
                    }
                    flow_start_time[tid as usize] = now;
                    if spec.bytes == 0 {
                        // Pure synchronization edge: deliver after latency.
                        let lat = spec.route.len() as f64 * self.config.hop_latency
                            + self.config.recv_overhead;
                        push(&mut heap, &mut seq, now + lat, Event::Delivered(tid));
                    } else {
                        active.push(ActiveFlow {
                            tid,
                            remaining: spec.bytes as f64,
                            rate: 0.0,
                        });
                        rates_dirty = true;
                    }
                }
                // Note: a stale FlowCheck (epoch mismatch) must fall through
                // to the recompute block below, not `continue`, or pending
                // dirty rates would never be refreshed.
                Event::FlowCheck { epoch: e } => {
                    if e == epoch {
                        // Complete every flow that has drained.
                        let mut completed_any = false;
                        let mut i = 0;
                        while i < active.len() {
                            if active[i].remaining <= BYTE_EPS {
                                let f = active.swap_remove(i);
                                let spec = &specs[f.tid as usize];
                                let lat = spec.route.len() as f64 * self.config.hop_latency
                                    + self.config.recv_overhead;
                                push(&mut heap, &mut seq, now + lat, Event::Delivered(f.tid));
                                rates_dirty = true;
                                completed_any = true;
                            } else {
                                i += 1;
                            }
                        }
                        if !completed_any && !active.is_empty() {
                            // Float noise left the nearest flow fractionally
                            // short; re-arm the check at its true ETA.
                            let next_done = active
                                .iter()
                                .map(|f| now + f.remaining.max(0.0) / f.rate)
                                .fold(f64::INFINITY, f64::min);
                            push(&mut heap, &mut seq, next_done, Event::FlowCheck { epoch });
                        }
                    }
                }
                Event::Delivered(tid) => {
                    delivery_time[tid as usize] = now;
                    delivered_count += 1;
                    for &child in &children[tid as usize] {
                        remaining_deps[child as usize] -= 1;
                        if remaining_deps[child as usize] == 0 {
                            let cs = &specs[child as usize];
                            let t = (now + cs.extra_delay).max(cs.start_at);
                            push(&mut heap, &mut seq, t, Event::Ready(child));
                        }
                    }
                }
            }

            // Recompute fair shares once all events at this instant are
            // handled (cheap peek-based batching).
            let boundary = heap
                .peek()
                .map(|Reverse(e)| e.time > now)
                .unwrap_or(true);
            if rates_dirty && boundary {
                epoch += 1;
                if !active.is_empty() {
                    let demands: Vec<FlowDemand> = active
                        .iter()
                        .map(|f| {
                            let spec = &specs[f.tid as usize];
                            FlowDemand {
                                route: &spec.route,
                                cap: spec.rate_cap.unwrap_or(self.config.per_flow_cap),
                            }
                        })
                        .collect();
                    waterfill.compute_with_penalty(
                        &demands,
                        &self.capacities,
                        self.config.contention_penalty,
                        self.config.contention_floor,
                        &mut rates_scratch,
                    );
                    let mut next_done = f64::INFINITY;
                    for (f, &r) in active.iter_mut().zip(rates_scratch.iter()) {
                        f.rate = r;
                        let eta = now + (f.remaining.max(0.0) / r);
                        if eta < next_done {
                            next_done = eta;
                        }
                    }
                    push(&mut heap, &mut seq, next_done, Event::FlowCheck { epoch });
                }
                rates_dirty = false;
            }
        }

        assert_eq!(
            delivered_count, n,
            "simulation ended with undelivered transfers (dependency deadlock?)"
        );
        let makespan = delivery_time.iter().copied().fold(0.0, f64::max);
        SimReport {
            delivery_time,
            flow_start_time,
            makespan,
            total_bytes: graph.total_bytes(),
            resource_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ResourceId, TransferSpec};

    /// A config with clean round numbers for hand-computed expectations.
    fn test_config() -> SimConfig {
        SimConfig {
            link_bandwidth: 100.0,
            io_link_bandwidth: 100.0,
            per_flow_cap: 100.0,
            hop_latency: 0.0,
            send_overhead: 1.0,
            recv_overhead: 0.0,
            rma_phase_overhead: 0.0,
            forward_overhead: 0.0,
            contention_penalty: 0.0,
            contention_floor: 1.0,
            collect_link_stats: true,
        }
    }

    fn sim(nodes: u32, caps: Vec<f64>) -> Simulator {
        Simulator::new(nodes, caps, test_config())
    }

    #[test]
    fn single_transfer_timing() {
        // 1000 bytes at 100 B/s over one link, 1 s injection overhead.
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let t = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let rep = s.run(&g);
        assert!((rep.delivered_at(t) - 11.0).abs() < 1e-9, "{}", rep.delivered_at(t));
        assert!((rep.flow_start_time[0] - 1.0).abs() < 1e-9);
        assert_eq!(rep.total_bytes, 1000);
    }

    #[test]
    fn two_flows_share_a_link_fairly() {
        // Two 1000-byte transfers from different nodes over one shared link.
        let s = sim(3, vec![100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 2, 1000, vec![ResourceId(0)]));
        let rep = s.run(&g);
        // Both start at t=1 (different source CPUs), share 100 B/s -> 50 each,
        // finish at 1 + 20 = 21.
        for t in &rep.delivery_time {
            assert!((t - 21.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let s = sim(4, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 3, 1000, vec![ResourceId(1)]));
        let rep = s.run(&g);
        for t in &rep.delivery_time {
            assert!((t - 11.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn injection_serializes_on_one_node() {
        // Two sends from the same node: second flow starts o_s later.
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0)]));
        g.add(TransferSpec::new(0, 2, 100, vec![ResourceId(1)]));
        let rep = s.run(&g);
        assert!((rep.flow_start_time[0] - 1.0).abs() < 1e-9);
        assert!((rep.flow_start_time[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_honored() {
        // b starts only after a is delivered (store-and-forward).
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let b = g.add(
            TransferSpec::new(1, 2, 1000, vec![ResourceId(1)])
                .after(vec![a])
                .with_delay(0.5),
        );
        let rep = s.run(&g);
        let ta = rep.delivered_at(a);
        assert!((ta - 11.0).abs() < 1e-6);
        // b: ready at 11.5, injected at 12.5, 10 s transfer -> 22.5.
        assert!((rep.delivered_at(b) - 22.5).abs() < 1e-6, "{}", rep.delivered_at(b));
    }

    #[test]
    fn zero_byte_transfer_is_a_sync_edge() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 0, vec![ResourceId(0)]));
        let rep = s.run(&g);
        // Injected at t=1, no bytes, delivered immediately (lat=0).
        assert!((rep.delivered_at(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn start_at_delays_a_transfer() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0)]).not_before(5.0));
        let rep = s.run(&g);
        assert!((rep.delivered_at(a) - 7.0).abs() < 1e-9); // 5 + 1 + 1
    }

    #[test]
    fn rate_cap_limits_a_lone_flow() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        let a = g.add(
            TransferSpec::new(0, 1, 100, vec![ResourceId(0)]).with_rate_cap(10.0),
        );
        let rep = s.run(&g);
        assert!((rep.delivered_at(a) - 11.0).abs() < 1e-9); // 1 + 100/10
    }

    #[test]
    fn departing_flow_frees_bandwidth() {
        // Short and long flow share a link; after the short one leaves the
        // long one speeds up. 100 B/s shared.
        let s = sim(3, vec![100.0]);
        let mut g = TransferGraph::new();
        let short = g.add(TransferSpec::new(0, 2, 500, vec![ResourceId(0)]));
        let long = g.add(TransferSpec::new(1, 2, 2000, vec![ResourceId(0)]));
        let rep = s.run(&g);
        // Both active at t=1 at 50 B/s. Short done at t=11 (500 bytes).
        // Long has 1500 left, now at 100 B/s -> done at 11 + 15 = 26.
        assert!((rep.delivered_at(short) - 11.0).abs() < 1e-6);
        assert!((rep.delivered_at(long) - 26.0).abs() < 1e-6, "{}", rep.delivered_at(long));
    }

    #[test]
    fn link_stats_conserve_bytes() {
        let s = sim(3, vec![100.0, 100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 2, 1000, vec![ResourceId(0), ResourceId(1)]));
        g.add(TransferSpec::new(1, 2, 500, vec![ResourceId(1)]));
        let rep = s.run(&g);
        let rb = rep.resource_bytes.as_ref().unwrap();
        assert!((rb[0] - 1000.0).abs() < 1.0, "{}", rb[0]);
        assert!((rb[1] - 1500.0).abs() < 1.0, "{}", rb[1]);
    }

    #[test]
    fn hop_latency_and_recv_overhead_add_to_delivery() {
        let mut cfg = test_config();
        cfg.hop_latency = 0.25;
        cfg.recv_overhead = 0.5;
        let s = Simulator::new(2, vec![100.0, 100.0], cfg);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0), ResourceId(1)]));
        let rep = s.run(&g);
        // 1 (inject) + 1 (transfer) + 2*0.25 (hops) + 0.5 (recv) = 3.0
        assert!((rep.delivered_at(a) - 3.0).abs() < 1e-9, "{}", rep.delivered_at(a));
    }

    #[test]
    fn makespan_and_throughput() {
        let s = sim(2, vec![100.0]);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        let rep = s.run(&g);
        assert!((rep.makespan - 11.0).abs() < 1e-9);
        assert!((rep.aggregate_throughput() - 1000.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn empty_graph_runs() {
        let s = sim(1, vec![]);
        let rep = s.run(&TransferGraph::new());
        assert_eq!(rep.makespan, 0.0);
        assert_eq!(rep.total_bytes, 0);
    }

    #[test]
    fn diamond_dependency_graph() {
        //    a
        //   / \
        //  b   c
        //   \ /
        //    d
        let s = sim(4, vec![100.0; 4]);
        let mut g = TransferGraph::new();
        let a = g.add(TransferSpec::new(0, 1, 100, vec![ResourceId(0)]));
        let b = g.add(TransferSpec::new(1, 2, 100, vec![ResourceId(1)]).after(vec![a]));
        let c = g.add(TransferSpec::new(1, 3, 100, vec![ResourceId(2)]).after(vec![a]));
        let d = g.add(TransferSpec::new(2, 0, 100, vec![ResourceId(3)]).after(vec![b, c]));
        let rep = s.run(&g);
        let t_d = rep.delivered_at(d);
        assert!(t_d > rep.delivered_at(b) && t_d > rep.delivered_at(c));
        // a: 2.0. b ready 2.0, inject 3.0, done 4.0. c queued behind b's
        // injection: inject at 4.0, done 5.0. d after max(b,c)=5: 7.0.
        assert!((t_d - 7.0).abs() < 1e-6, "{t_d}");
    }
}
