//! Transfer graphs: the unit of work the simulator executes.
//!
//! A [`TransferGraph`] is a DAG of point-to-point transfers. Each transfer
//! names a source and destination node, a byte count, the sequence of
//! network resources (directed links) it traverses, and the set of
//! transfers that must be *delivered* before it may start. Dependencies are
//! how higher layers express store-and-forward proxying, aggregation
//! pipelines, and synchronization epochs.

use std::fmt;

/// Dense identifier of a network resource (a directed torus link or an I/O
/// link). The mapping from topology links to resource indices is owned by
/// the communication layer; the simulator only needs capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

/// Identifier of a transfer within one [`TransferGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u32);

impl TransferId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One point-to-point transfer.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    /// Source node (dense node index; used for sender CPU serialization).
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Payload size. Zero-byte transfers act as pure synchronization edges.
    pub bytes: u64,
    /// Resources traversed, in order. May be empty (e.g. on-node copies).
    pub route: Vec<ResourceId>,
    /// Transfers that must be delivered before this one starts.
    pub deps: Vec<TransferId>,
    /// Additional delay after the last dependency is delivered before this
    /// transfer enters the sender's injection queue (e.g. forwarding or
    /// synchronization overhead).
    pub extra_delay: f64,
    /// Earliest absolute start time (independent of dependencies).
    pub start_at: f64,
    /// Optional per-flow rate cap overriding the config default.
    pub rate_cap: Option<f64>,
    /// Opaque tag for the caller to correlate results.
    pub tag: u64,
}

impl TransferSpec {
    /// A plain transfer with no dependencies.
    pub fn new(src: u32, dst: u32, bytes: u64, route: Vec<ResourceId>) -> TransferSpec {
        TransferSpec {
            src,
            dst,
            bytes,
            route,
            deps: Vec::new(),
            extra_delay: 0.0,
            start_at: 0.0,
            rate_cap: None,
            tag: 0,
        }
    }

    /// Set dependencies (builder style).
    pub fn after(mut self, deps: Vec<TransferId>) -> TransferSpec {
        self.deps = deps;
        self
    }

    /// Set the extra post-dependency delay (builder style).
    pub fn with_delay(mut self, d: f64) -> TransferSpec {
        self.extra_delay = d;
        self
    }

    /// Set the earliest start time (builder style).
    pub fn not_before(mut self, t: f64) -> TransferSpec {
        self.start_at = t;
        self
    }

    /// Set the tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> TransferSpec {
        self.tag = tag;
        self
    }

    /// Set a per-flow rate cap (builder style).
    pub fn with_rate_cap(mut self, cap: f64) -> TransferSpec {
        self.rate_cap = Some(cap);
        self
    }
}

/// A DAG of transfers.
#[derive(Debug, Clone, Default)]
pub struct TransferGraph {
    specs: Vec<TransferSpec>,
}

impl TransferGraph {
    pub fn new() -> TransferGraph {
        TransferGraph::default()
    }

    /// Add a transfer; returns its id. Dependencies must refer to transfers
    /// already added (ids are handed out in insertion order), which makes
    /// cycles unrepresentable.
    ///
    /// # Panics
    /// Panics if a dependency id is not yet in the graph, or if
    /// `extra_delay`/`start_at` are negative or non-finite.
    pub fn add(&mut self, spec: TransferSpec) -> TransferId {
        let id = TransferId(self.specs.len() as u32);
        for d in &spec.deps {
            assert!(
                d.0 < id.0,
                "dependency {d} of {id} must be added before it (forward references would allow cycles)"
            );
        }
        assert!(
            spec.extra_delay.is_finite() && spec.extra_delay >= 0.0,
            "extra_delay must be finite and non-negative"
        );
        assert!(
            spec.start_at.is_finite() && spec.start_at >= 0.0,
            "start_at must be finite and non-negative"
        );
        if let Some(cap) = spec.rate_cap {
            assert!(cap > 0.0, "rate cap must be positive");
        }
        self.specs.push(spec);
        id
    }

    /// Number of transfers in the graph.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The transfers, indexable by [`TransferId::index`].
    pub fn specs(&self) -> &[TransferSpec] {
        &self.specs
    }

    /// Total payload bytes over all transfers.
    pub fn total_bytes(&self) -> u64 {
        self.specs.iter().map(|s| s.bytes).sum()
    }

    /// Merge another graph into this one, remapping its ids.
    /// Returns the id offset that was applied.
    pub fn append(&mut self, other: TransferGraph) -> u32 {
        let offset = self.specs.len() as u32;
        for mut spec in other.specs {
            for d in &mut spec.deps {
                d.0 += offset;
            }
            self.specs.push(spec);
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: u32, dst: u32) -> TransferSpec {
        TransferSpec::new(src, dst, 1024, vec![ResourceId(0)])
    }

    #[test]
    fn ids_are_insertion_ordered() {
        let mut g = TransferGraph::new();
        assert_eq!(g.add(spec(0, 1)), TransferId(0));
        assert_eq!(g.add(spec(1, 2)), TransferId(1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.total_bytes(), 2048);
    }

    #[test]
    fn dependencies_must_exist() {
        let mut g = TransferGraph::new();
        let a = g.add(spec(0, 1));
        let b = g.add(spec(1, 2).after(vec![a]));
        assert_eq!(g.specs()[b.index()].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn forward_dependency_panics() {
        let mut g = TransferGraph::new();
        g.add(spec(0, 1).after(vec![TransferId(5)]));
    }

    #[test]
    #[should_panic(expected = "extra_delay")]
    fn negative_delay_panics() {
        let mut g = TransferGraph::new();
        g.add(spec(0, 1).with_delay(-1.0));
    }

    #[test]
    fn append_remaps_dependencies() {
        let mut g1 = TransferGraph::new();
        g1.add(spec(0, 1));

        let mut g2 = TransferGraph::new();
        let a = g2.add(spec(2, 3));
        g2.add(spec(3, 4).after(vec![a]));

        let offset = g1.append(g2);
        assert_eq!(offset, 1);
        assert_eq!(g1.len(), 3);
        assert_eq!(g1.specs()[2].deps, vec![TransferId(1)]);
    }

    #[test]
    fn builder_setters() {
        let s = spec(0, 1)
            .with_delay(0.5)
            .not_before(1.0)
            .with_tag(42)
            .with_rate_cap(1e9);
        assert_eq!(s.extra_delay, 0.5);
        assert_eq!(s.start_at, 1.0);
        assert_eq!(s.tag, 42);
        assert_eq!(s.rate_cap, Some(1e9));
    }
}
