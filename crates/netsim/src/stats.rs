//! Post-run analysis of simulation reports: utilization, bottlenecks,
//! per-node traffic and timeline summaries.
//!
//! The raw [`SimReport`](crate::SimReport) carries per-transfer timings and
//! (optionally) per-resource byte counters; this module turns them into
//! the quantities the paper reasons about — link utilization ("one path is
//! used, other paths are idle", Fig. 2), bottleneck resources, and
//! effective per-endpoint throughput.

use crate::engine::SimReport;
use crate::graph::{TransferGraph, TransferId};

/// Utilization summary over a set of resources.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Resources that carried at least one byte.
    pub active_resources: usize,
    /// Resources with zero traffic.
    pub idle_resources: usize,
    /// Mean utilization of *active* resources (bytes / capacity / makespan).
    pub mean_active_utilization: f64,
    /// Highest utilization over all resources.
    pub peak_utilization: f64,
    /// Resource with the highest utilization.
    pub busiest: Option<u32>,
}

/// Why a stats computation could not run on a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The report was produced without `collect_link_stats`.
    MissingLinkStats,
    /// The report's per-resource counters and the capacity table disagree
    /// on length (report from a different network).
    CapacityMismatch { resources: usize, capacities: usize },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::MissingLinkStats => {
                write!(f, "report lacks link stats; enable collect_link_stats")
            }
            StatsError::CapacityMismatch {
                resources,
                capacities,
            } => write!(
                f,
                "report has {resources} resources but {capacities} capacities were given"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

/// Compute utilization over `capacities` from a report with link stats.
///
/// # Panics
/// Panics if the report was produced without `collect_link_stats` or the
/// capacity table does not match; use [`try_utilization`] to handle those
/// as values.
pub fn utilization(report: &SimReport, capacities: &[f64]) -> Utilization {
    try_utilization(report, capacities).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`utilization`], matching the workspace's `try_*`
/// convention for conditions a caller can meaningfully handle.
pub fn try_utilization(
    report: &SimReport,
    capacities: &[f64],
) -> Result<Utilization, StatsError> {
    let bytes = report
        .resource_bytes
        .as_ref()
        .ok_or(StatsError::MissingLinkStats)?;
    if bytes.len() != capacities.len() {
        return Err(StatsError::CapacityMismatch {
            resources: bytes.len(),
            capacities: capacities.len(),
        });
    }
    let span = report.makespan.max(f64::MIN_POSITIVE);

    let mut active = 0usize;
    let mut sum_active = 0.0f64;
    let mut peak = 0.0f64;
    let mut busiest = None;
    for (i, (&b, &c)) in bytes.iter().zip(capacities).enumerate() {
        if b > 0.0 {
            active += 1;
            let u = b / (c * span);
            sum_active += u;
            if u > peak {
                peak = u;
                busiest = Some(i as u32);
            }
        }
    }
    Ok(Utilization {
        active_resources: active,
        idle_resources: bytes.len() - active,
        mean_active_utilization: if active > 0 { sum_active / active as f64 } else { 0.0 },
        peak_utilization: peak,
        busiest,
    })
}

/// Fraction of resources that carried any traffic — the paper's notion of
/// resource utilization for sparse patterns ("only specific regions of the
/// system are involved", §IV.A).
///
/// # Panics
/// Panics without `collect_link_stats`; see [`try_active_fraction`].
pub fn active_fraction(report: &SimReport) -> f64 {
    try_active_fraction(report).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`active_fraction`].
pub fn try_active_fraction(report: &SimReport) -> Result<f64, StatsError> {
    let bytes = report
        .resource_bytes
        .as_ref()
        .ok_or(StatsError::MissingLinkStats)?;
    if bytes.is_empty() {
        return Ok(0.0);
    }
    Ok(bytes.iter().filter(|&&b| b > 0.0).count() as f64 / bytes.len() as f64)
}

/// Per-node byte totals (sent, received) for a run.
pub fn node_traffic(graph: &TransferGraph, num_nodes: u32) -> (Vec<u64>, Vec<u64>) {
    let mut sent = vec![0u64; num_nodes as usize];
    let mut received = vec![0u64; num_nodes as usize];
    for s in graph.specs() {
        sent[s.src as usize] += s.bytes;
        received[s.dst as usize] += s.bytes;
    }
    (sent, received)
}

/// The transfers that finished last (the stragglers that set the
/// makespan), up to `k` of them, latest first.
pub fn stragglers(report: &SimReport, k: usize) -> Vec<(TransferId, f64)> {
    let mut v: Vec<(TransferId, f64)> = report
        .delivery_time
        .iter()
        .enumerate()
        .map(|(i, &t)| (TransferId(i as u32), t))
        .collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1));
    v.truncate(k);
    v
}

/// Effective throughput of one logical operation spanning `ids`:
/// `bytes / (last delivery - first flow start)`.
pub fn windowed_throughput(report: &SimReport, graph: &TransferGraph, ids: &[TransferId]) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    let bytes: u64 = ids.iter().map(|id| graph.specs()[id.index()].bytes).sum();
    let start = ids
        .iter()
        .map(|id| report.flow_start_time[id.index()])
        .fold(f64::INFINITY, f64::min);
    let end = report.last_delivery(ids);
    if end > start {
        bytes as f64 / (end - start)
    } else {
        0.0
    }
}

/// Approximate network activity over time: the makespan is divided into
/// `windows` equal buckets and each transfer's bytes are spread uniformly
/// over its flow interval (`flow_start..delivered`). Returns, per bucket,
/// the aggregate bytes/second in flight — a utilization timeline suitable
/// for spotting phases and stragglers without per-event link accounting.
pub fn activity_timeline(
    graph: &TransferGraph,
    report: &SimReport,
    windows: usize,
) -> Vec<f64> {
    assert!(windows > 0, "need at least one window");
    let span = report.makespan;
    let mut buckets = vec![0.0f64; windows];
    if span <= 0.0 {
        return buckets;
    }
    let wlen = span / windows as f64;
    for (i, s) in graph.specs().iter().enumerate() {
        if s.bytes == 0 {
            continue;
        }
        let start = report.flow_start_time[i];
        let end = report.delivery_time[i];
        if !(start.is_finite() && end.is_finite()) || end <= start {
            continue;
        }
        let rate = s.bytes as f64 / (end - start);
        let first = ((start / wlen) as usize).min(windows - 1);
        let last = ((end / wlen) as usize).min(windows - 1);
        for (w, bucket) in buckets.iter_mut().enumerate().take(last + 1).skip(first) {
            let wstart = w as f64 * wlen;
            let wend = wstart + wlen;
            let overlap = (end.min(wend) - start.max(wstart)).max(0.0);
            *bucket += rate * overlap / wlen;
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulator;
    use crate::graph::{ResourceId, TransferSpec};

    fn cfg() -> SimConfig {
        SimConfig {
            link_bandwidth: 100.0,
            io_link_bandwidth: 100.0,
            per_flow_cap: 100.0,
            hop_latency: 0.0,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            rma_phase_overhead: 0.0,
            forward_overhead: 0.0,
            contention_penalty: 0.0,
            contention_floor: 1.0,
            collect_link_stats: true,
        }
    }

    fn run_two_flows() -> (SimReport, TransferGraph, Vec<f64>) {
        let caps = vec![100.0, 100.0, 100.0];
        let sim = Simulator::new(3, caps.clone(), cfg());
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 1000, vec![ResourceId(0)]));
        g.add(TransferSpec::new(1, 2, 500, vec![ResourceId(1)]));
        let rep = sim.simulate(&g, crate::SimOptions::new());
        (rep, g, caps)
    }

    #[test]
    fn utilization_identifies_idle_and_busy() {
        let (rep, _g, caps) = run_two_flows();
        let u = utilization(&rep, &caps);
        assert_eq!(u.active_resources, 2);
        assert_eq!(u.idle_resources, 1);
        assert_eq!(u.busiest, Some(0), "the 1000-byte flow's link is busiest");
        assert!(u.peak_utilization <= 1.0 + 1e-9);
        assert!(u.mean_active_utilization > 0.0);
    }

    #[test]
    fn active_fraction_matches() {
        let (rep, _, _) = run_two_flows();
        assert!((active_fraction(&rep) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn node_traffic_sums_per_endpoint() {
        let (_, g, _) = run_two_flows();
        let (sent, recv) = node_traffic(&g, 3);
        assert_eq!(sent, vec![1000, 500, 0]);
        assert_eq!(recv, vec![0, 1000, 500]);
    }

    #[test]
    fn stragglers_are_sorted_latest_first() {
        let (rep, _, _) = run_two_flows();
        let s = stragglers(&rep, 2);
        assert_eq!(s.len(), 2);
        assert!(s[0].1 >= s[1].1);
        assert_eq!(s[0].0, TransferId(0), "the big flow finishes last");
    }

    #[test]
    fn windowed_throughput_excludes_queueing() {
        let (rep, g, _) = run_two_flows();
        let thr = windowed_throughput(&rep, &g, &[TransferId(0)]);
        // 1000 bytes at 100 B/s from flow start to delivery.
        assert!((thr - 100.0).abs() < 1e-6, "{thr}");
        assert_eq!(windowed_throughput(&rep, &g, &[]), 0.0);
    }

    #[test]
    fn activity_timeline_spreads_flow_rates() {
        let (rep, g, _) = run_two_flows();
        let buckets = activity_timeline(&g, &rep, 4);
        assert_eq!(buckets.len(), 4);
        // Flow 0: 1000 B over [0,10] at 100 B/s; flow 1: 500 B over [0,5]
        // at 100 B/s. Makespan 10, windows of 2.5 s:
        // w0,w1: both flows -> 200 B/s; w2,w3: only flow 0 -> 100 B/s.
        assert!((buckets[0] - 200.0).abs() < 1e-6, "{buckets:?}");
        assert!((buckets[1] - 200.0).abs() < 1e-6);
        assert!((buckets[2] - 100.0).abs() < 1e-6);
        assert!((buckets[3] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn activity_timeline_empty_graph() {
        let sim = Simulator::new(1, vec![], cfg());
        let g = TransferGraph::new();
        let rep = sim.simulate(&g, crate::SimOptions::new());
        assert_eq!(activity_timeline(&g, &rep, 3), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        let (rep, g, _) = run_two_flows();
        activity_timeline(&g, &rep, 0);
    }

    #[test]
    fn try_utilization_reports_errors_as_values() {
        let (rep, _g, caps) = run_two_flows();
        // Matching inputs: same answer as the panicking wrapper.
        assert_eq!(try_utilization(&rep, &caps), Ok(utilization(&rep, &caps)));
        // Capacity table from a different network.
        let err = try_utilization(&rep, &[100.0]).unwrap_err();
        assert_eq!(
            err,
            StatsError::CapacityMismatch { resources: 3, capacities: 1 }
        );
        // No link stats collected.
        let mut c = cfg();
        c.collect_link_stats = false;
        let sim = Simulator::new(2, vec![100.0], c);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 10, vec![ResourceId(0)]));
        let bare = sim.simulate(&g, crate::SimOptions::new());
        assert_eq!(
            try_utilization(&bare, &[100.0]).unwrap_err(),
            StatsError::MissingLinkStats
        );
        assert_eq!(try_active_fraction(&bare), Err(StatsError::MissingLinkStats));
        assert!(err.to_string().contains("3 resources"));
    }

    #[test]
    #[should_panic(expected = "lacks link stats")]
    fn utilization_requires_stats() {
        let mut c = cfg();
        c.collect_link_stats = false;
        let sim = Simulator::new(2, vec![100.0], c);
        let mut g = TransferGraph::new();
        g.add(TransferSpec::new(0, 1, 10, vec![ResourceId(0)]));
        let rep = sim.simulate(&g, crate::SimOptions::new());
        utilization(&rep, &[100.0]);
    }
}
