//! Engine-side observation: a [`SimObserver`] the engine fills in when
//! attached through [`SimOptions::observer`], and the [`LinkHeatmap`]
//! time series it carries.
//!
//! Observation is strictly *passive*: the engine records into the
//! observer but never branches on it, and the observed code path
//! performs exactly the same float operations as the unobserved one —
//! so an observed run produces a bit-identical [`SimReport`] to an
//! unobserved [`Simulator::simulate`] on the same inputs. Every recorded
//! quantity is keyed on simulated time and is therefore reproducible
//! run-over-run and across any thread fan-out above the engine.
//!
//! [`Simulator::simulate`]: crate::Simulator::simulate
//! [`SimOptions::observer`]: crate::SimOptions::observer
//! [`SimReport`]: crate::SimReport

/// One heatmap sample: the fluid state at a waterfill epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSample {
    /// Simulated time of the rate recomputation.
    pub time: f64,
    /// The engine's rate-epoch counter after the recomputation.
    pub epoch: u64,
    /// Per-resource bytes in flight: the sum of remaining bytes of every
    /// *active* flow whose route crosses the resource. Stalled flows are
    /// excluded, mirroring the waterfill's demand set.
    pub bytes_in_flight: Vec<f64>,
}

/// Time series of per-resource bytes-in-flight, sampled at every
/// waterfill epoch (flow arrivals, departures and fault events — exactly
/// the instants where rates change).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkHeatmap {
    pub samples: Vec<HeatmapSample>,
}

impl LinkHeatmap {
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// CSV rows `epoch,time,resource,bytes_in_flight`, zero entries
    /// skipped (sparse patterns touch a tiny fraction of the links; a
    /// dense dump would be almost all zeros).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,time,resource,bytes_in_flight\n");
        for s in &self.samples {
            for (r, &b) in s.bytes_in_flight.iter().enumerate() {
                if b > 0.0 {
                    out.push_str(&format!("{},{:?},{r},{b:?}\n", s.epoch, s.time));
                }
            }
        }
        out
    }

    /// The peak bytes-in-flight seen on `resource` across all samples.
    pub fn peak(&self, resource: usize) -> f64 {
        self.samples
            .iter()
            .filter_map(|s| s.bytes_in_flight.get(resource))
            .fold(0.0, |a, &b| a.max(b))
    }
}

/// One fault-epoch re-level: a fault event applied and the transfers it
/// froze or thawed, keyed on simulated time so traces and profiles can
/// cross-reference the exact epoch. Faults that only changed capacity
/// (degrades) produce an entry with empty id lists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReLevel {
    /// Simulated time the fault event applied.
    pub time: f64,
    /// Transfers frozen by this event's re-partition.
    pub stalled: Vec<u32>,
    /// Transfers resumed by this event's re-partition.
    pub resumed: Vec<u32>,
}

/// Collected engine events for one observed run. Counters accumulate, so
/// one observer can be threaded through several runs (e.g. the attempts
/// of a resilient retry loop).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimObserver {
    /// Rate recomputations performed (waterfill re-runs).
    pub waterfill_runs: u64,
    /// Re-levels solved over the *entire* active set — either because
    /// [`crate::SolverMode::Full`] was selected or because the dirty
    /// closure exceeded the incremental solver's fallback threshold.
    pub waterfill_full_runs: u64,
    /// Re-levels confined to the dirty flow/link closure
    /// ([`crate::SolverMode::Incremental`]); rates outside the closure
    /// were reused unchanged.
    pub waterfill_incremental_runs: u64,
    /// Events popped from the engine's queue (the denominator for
    /// events/sec in scaling sweeps).
    pub events_processed: u64,
    /// Fault events applied from the plan.
    pub fault_events: u64,
    /// Per-fault-event re-level records with the transfer ids each event
    /// stalled/resumed (one entry per applied fault event, in order).
    pub fault_re_levels: Vec<FaultReLevel>,
    /// `(time, transfer)` pairs for flows frozen by a fault — either
    /// caught mid-flight by a re-partition or born stalled.
    pub stalls: Vec<(f64, u32)>,
    /// `(time, transfer)` pairs for flows resumed by a recovery.
    pub resumes: Vec<(f64, u32)>,
    /// Transfers that did not reach `Delivered` by the end of a run
    /// (stalled or never started) — the silent remainder that
    /// `aggregate_throughput` guards against.
    pub transfers_undelivered: u64,
    /// Per-resource bytes-in-flight at every waterfill epoch.
    pub heatmap: LinkHeatmap,
}

impl SimObserver {
    pub fn new() -> SimObserver {
        SimObserver::default()
    }

    /// Export the observer's counters as named scalars under `prefix`
    /// (e.g. `"multipath."`), sorted by name — the extraction hook the
    /// run-ledger uses to fold engine-side counts (waterfill solve
    /// split, stall/resume totals, undelivered remainder) into a
    /// [`bgq_obs::ScenarioManifest`] without reaching into fields.
    /// Every value is an integer count cast to `f64`, so the scalars
    /// inherit the engine's bit-determinism.
    ///
    /// [`bgq_obs::ScenarioManifest`]: https://docs.rs/bgq-obs
    pub fn scalars(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = vec![
            ("events_processed".to_string(), self.events_processed as f64),
            ("fault_events".to_string(), self.fault_events as f64),
            ("heatmap_epochs".to_string(), self.heatmap.len() as f64),
            ("resumes".to_string(), self.resumes.len() as f64),
            ("stalls".to_string(), self.stalls.len() as f64),
            (
                "transfers_undelivered".to_string(),
                self.transfers_undelivered as f64,
            ),
            (
                "waterfill_full_runs".to_string(),
                self.waterfill_full_runs as f64,
            ),
            (
                "waterfill_incremental_runs".to_string(),
                self.waterfill_incremental_runs as f64,
            ),
            ("waterfill_runs".to_string(), self.waterfill_runs as f64),
        ];
        for (name, _) in &mut out {
            *name = format!("{prefix}{name}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_export_is_sorted_and_prefixed() {
        let mut obs = SimObserver::new();
        obs.waterfill_runs = 10;
        obs.waterfill_full_runs = 3;
        obs.waterfill_incremental_runs = 7;
        obs.stalls.push((1.0, 4));
        let s = obs.scalars("sim.");
        assert!(s.iter().all(|(k, _)| k.starts_with("sim.")));
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0), "sorted: {s:?}");
        let get = |name: &str| s.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        assert_eq!(get("sim.waterfill_runs"), Some(10.0));
        assert_eq!(get("sim.waterfill_full_runs"), Some(3.0));
        assert_eq!(get("sim.waterfill_incremental_runs"), Some(7.0));
        assert_eq!(get("sim.stalls"), Some(1.0));
        assert_eq!(get("sim.transfers_undelivered"), Some(0.0));
    }

    #[test]
    fn heatmap_csv_skips_zero_cells() {
        let hm = LinkHeatmap {
            samples: vec![HeatmapSample {
                time: 1.0,
                epoch: 1,
                bytes_in_flight: vec![0.0, 500.0],
            }],
        };
        let csv = hm.to_csv();
        assert_eq!(csv, "epoch,time,resource,bytes_in_flight\n1,1.0,1,500.0\n");
        assert_eq!(hm.peak(1), 500.0);
        assert_eq!(hm.peak(0), 0.0);
        assert_eq!(hm.len(), 1);
    }
}
