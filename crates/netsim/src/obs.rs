//! Engine-side observation: a [`SimObserver`] the engine fills in when
//! attached through [`SimOptions::observer`], and the [`LinkHeatmap`]
//! time series it carries.
//!
//! Observation is strictly *passive*: the engine records into the
//! observer but never branches on it, and the observed code path
//! performs exactly the same float operations as the unobserved one —
//! so an observed run produces a bit-identical [`SimReport`] to an
//! unobserved [`Simulator::simulate`] on the same inputs. Every recorded
//! quantity is keyed on simulated time and is therefore reproducible
//! run-over-run and across any thread fan-out above the engine.
//!
//! [`Simulator::simulate`]: crate::Simulator::simulate
//! [`SimOptions::observer`]: crate::SimOptions::observer
//! [`SimReport`]: crate::SimReport

/// One heatmap sample: the fluid state at a waterfill epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSample {
    /// Simulated time of the rate recomputation.
    pub time: f64,
    /// The engine's rate-epoch counter after the recomputation.
    pub epoch: u64,
    /// Sparse per-resource bytes in flight, sorted by resource id with
    /// zero cells omitted: the sum of remaining bytes of every *active*
    /// flow whose route crosses the resource. Stalled flows are
    /// excluded, mirroring the waterfill's demand set. (Sparse because
    /// sparse patterns touch a tiny fraction of the links — a dense row
    /// per epoch held ~1 GB of zeros at the 8k-node scale point.)
    pub bytes_in_flight: Vec<(u32, f64)>,
}

/// Time series of per-resource bytes-in-flight, sampled at every
/// waterfill epoch (flow arrivals, departures and fault events — exactly
/// the instants where rates change).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkHeatmap {
    pub samples: Vec<HeatmapSample>,
}

impl LinkHeatmap {
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// CSV rows `epoch,time,resource,bytes_in_flight`. The samples are
    /// already sparse (zero cells never stored), so this is a plain
    /// dump; the output is byte-identical to what the old dense samples
    /// produced, since those skipped zero entries on the way out.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,time,resource,bytes_in_flight\n");
        for s in &self.samples {
            for &(r, b) in &s.bytes_in_flight {
                if b > 0.0 {
                    out.push_str(&format!("{},{:?},{r},{b:?}\n", s.epoch, s.time));
                }
            }
        }
        out
    }

    /// The peak bytes-in-flight seen on `resource` across all samples.
    pub fn peak(&self, resource: usize) -> f64 {
        let rid = resource as u32;
        self.samples
            .iter()
            .filter_map(|s| {
                s.bytes_in_flight
                    .binary_search_by_key(&rid, |&(r, _)| r)
                    .ok()
                    .map(|i| s.bytes_in_flight[i].1)
            })
            .fold(0.0, f64::max)
    }
}

/// One fault-epoch re-level: a fault event applied and the transfers it
/// froze or thawed, keyed on simulated time so traces and profiles can
/// cross-reference the exact epoch. Faults that only changed capacity
/// (degrades) produce an entry with empty id lists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReLevel {
    /// Simulated time the fault event applied.
    pub time: f64,
    /// Transfers frozen by this event's re-partition.
    pub stalled: Vec<u32>,
    /// Transfers resumed by this event's re-partition.
    pub resumed: Vec<u32>,
}

/// One contention shard folded into a run's merged result: which shard
/// (canonical order: ascending minimum transfer id), how many transfers
/// it carried, and when its own event queue drained. A single-component
/// run records exactly one entry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardMerge {
    /// Canonical shard index within the run.
    pub shard: u32,
    /// Transfers executed by this shard.
    pub transfers: u32,
    /// Simulation clock when this shard's queue drained (the run's
    /// `end_time` is the max over shards).
    pub end_time: f64,
}

/// Collected engine events for one observed run. Counters accumulate, so
/// one observer can be threaded through several runs (e.g. the attempts
/// of a resilient retry loop).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimObserver {
    /// Rate recomputations performed (waterfill re-runs).
    pub waterfill_runs: u64,
    /// Re-levels solved over the *entire* active set — either because
    /// [`crate::SolverMode::Full`] was selected or because the dirty
    /// closure exceeded the incremental solver's fallback threshold.
    pub waterfill_full_runs: u64,
    /// Re-levels confined to the dirty flow/link closure
    /// ([`crate::SolverMode::Incremental`]); rates outside the closure
    /// were reused unchanged.
    pub waterfill_incremental_runs: u64,
    /// Events popped from the engine's queue (the denominator for
    /// events/sec in scaling sweeps).
    pub events_processed: u64,
    /// Fault events applied from the plan.
    pub fault_events: u64,
    /// Per-fault-event re-level records with the transfer ids each event
    /// stalled/resumed (one entry per applied fault event, in order).
    pub fault_re_levels: Vec<FaultReLevel>,
    /// `(time, transfer)` pairs for flows frozen by a fault — either
    /// caught mid-flight by a re-partition or born stalled.
    pub stalls: Vec<(f64, u32)>,
    /// `(time, transfer)` pairs for flows resumed by a recovery.
    pub resumes: Vec<(f64, u32)>,
    /// Transfers that did not reach `Delivered` by the end of a run
    /// (stalled or never started) — the silent remainder that
    /// `aggregate_throughput` guards against.
    pub transfers_undelivered: u64,
    /// Contention shards executed (one per connected component of the
    /// transfer graph's shared-link/shared-source/dependency relation).
    pub shards: u64,
    /// One record per shard folded into a merged result, in canonical
    /// shard order per run.
    pub shard_merges: Vec<ShardMerge>,
    /// Per-resource bytes-in-flight at every waterfill epoch.
    pub heatmap: LinkHeatmap,
}

impl SimObserver {
    pub fn new() -> SimObserver {
        SimObserver::default()
    }

    /// Export the observer's counters as named scalars under `prefix`
    /// (e.g. `"multipath."`), sorted by name — the extraction hook the
    /// run-ledger uses to fold engine-side counts (waterfill solve
    /// split, stall/resume totals, undelivered remainder) into a
    /// [`bgq_obs::ScenarioManifest`] without reaching into fields.
    /// Every value is an integer count cast to `f64`, so the scalars
    /// inherit the engine's bit-determinism.
    ///
    /// [`bgq_obs::ScenarioManifest`]: https://docs.rs/bgq-obs
    pub fn scalars(&self, prefix: &str) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = vec![
            ("events_processed".to_string(), self.events_processed as f64),
            ("fault_events".to_string(), self.fault_events as f64),
            ("heatmap_epochs".to_string(), self.heatmap.len() as f64),
            ("resumes".to_string(), self.resumes.len() as f64),
            ("shard_merges".to_string(), self.shard_merges.len() as f64),
            ("shards".to_string(), self.shards as f64),
            ("stalls".to_string(), self.stalls.len() as f64),
            (
                "transfers_undelivered".to_string(),
                self.transfers_undelivered as f64,
            ),
            (
                "waterfill_full_runs".to_string(),
                self.waterfill_full_runs as f64,
            ),
            (
                "waterfill_incremental_runs".to_string(),
                self.waterfill_incremental_runs as f64,
            ),
            ("waterfill_runs".to_string(), self.waterfill_runs as f64),
        ];
        for (name, _) in &mut out {
            *name = format!("{prefix}{name}");
        }
        out
    }

    /// Lengths of the event streams before a shard merge begins; the
    /// region past the mark is what [`seal_merge`](Self::seal_merge)
    /// re-orders. Regions from earlier runs threaded through the same
    /// observer are never touched.
    pub(crate) fn mark(&self) -> ObsMark {
        ObsMark {
            stalls: self.stalls.len(),
            resumes: self.resumes.len(),
            re_levels: self.fault_re_levels.len(),
            samples: self.heatmap.samples.len(),
        }
    }

    /// Fold one shard's observer into this one, remapping its local
    /// transfer ids through `tids` and its local resource ids through
    /// `resources` (both sorted ascending, so remapped streams keep
    /// their relative order). Streams are appended in call (canonical
    /// shard) order; [`seal_merge`](Self::seal_merge) restores global
    /// time order afterwards. `transfers_undelivered`, `shards` and
    /// `shard_merges` are owned by the merge layer, not summed here.
    pub(crate) fn absorb_shard(&mut self, local: SimObserver, tids: &[u32], resources: &[u32]) {
        self.waterfill_runs += local.waterfill_runs;
        self.waterfill_full_runs += local.waterfill_full_runs;
        self.waterfill_incremental_runs += local.waterfill_incremental_runs;
        self.events_processed += local.events_processed;
        self.fault_events += local.fault_events;
        self.fault_re_levels
            .extend(local.fault_re_levels.into_iter().map(|f| FaultReLevel {
                time: f.time,
                stalled: f.stalled.iter().map(|&t| tids[t as usize]).collect(),
                resumed: f.resumed.iter().map(|&t| tids[t as usize]).collect(),
            }));
        self.stalls
            .extend(local.stalls.into_iter().map(|(t, id)| (t, tids[id as usize])));
        self.resumes
            .extend(local.resumes.into_iter().map(|(t, id)| (t, tids[id as usize])));
        self.heatmap
            .samples
            .extend(local.heatmap.samples.into_iter().map(|s| HeatmapSample {
                time: s.time,
                epoch: s.epoch,
                bytes_in_flight: s
                    .bytes_in_flight
                    .into_iter()
                    .map(|(r, v)| (resources[r as usize], v))
                    .collect(),
            }));
    }

    /// Restore global time order over the streams appended since `mark`
    /// (stable sort: entries at equal times keep canonical shard
    /// order), and renumber the new heatmap samples' epochs 1.. — the
    /// same numbering a single event loop over the whole run produces.
    pub(crate) fn seal_merge(&mut self, mark: ObsMark) {
        self.stalls[mark.stalls..].sort_by(|a, b| a.0.total_cmp(&b.0));
        self.resumes[mark.resumes..].sort_by(|a, b| a.0.total_cmp(&b.0));
        self.fault_re_levels[mark.re_levels..].sort_by(|a, b| a.time.total_cmp(&b.time));
        let region = &mut self.heatmap.samples[mark.samples..];
        region.sort_by(|a, b| a.time.total_cmp(&b.time));
        for (i, s) in region.iter_mut().enumerate() {
            s.epoch = i as u64 + 1;
        }
    }
}

/// Stream lengths captured by [`SimObserver::mark`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ObsMark {
    stalls: usize,
    resumes: usize,
    re_levels: usize,
    samples: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_export_is_sorted_and_prefixed() {
        let mut obs = SimObserver::new();
        obs.waterfill_runs = 10;
        obs.waterfill_full_runs = 3;
        obs.waterfill_incremental_runs = 7;
        obs.stalls.push((1.0, 4));
        let s = obs.scalars("sim.");
        assert!(s.iter().all(|(k, _)| k.starts_with("sim.")));
        assert!(s.windows(2).all(|w| w[0].0 < w[1].0), "sorted: {s:?}");
        let get = |name: &str| s.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        assert_eq!(get("sim.waterfill_runs"), Some(10.0));
        assert_eq!(get("sim.waterfill_full_runs"), Some(3.0));
        assert_eq!(get("sim.waterfill_incremental_runs"), Some(7.0));
        assert_eq!(get("sim.stalls"), Some(1.0));
        assert_eq!(get("sim.transfers_undelivered"), Some(0.0));
    }

    #[test]
    fn heatmap_csv_skips_zero_cells() {
        let hm = LinkHeatmap {
            samples: vec![HeatmapSample {
                time: 1.0,
                epoch: 1,
                bytes_in_flight: vec![(1, 500.0)],
            }],
        };
        let csv = hm.to_csv();
        assert_eq!(csv, "epoch,time,resource,bytes_in_flight\n1,1.0,1,500.0\n");
        assert_eq!(hm.peak(1), 500.0);
        assert_eq!(hm.peak(0), 0.0);
        assert_eq!(hm.len(), 1);
    }

    #[test]
    fn absorb_and_seal_restore_time_order_and_remap_ids() {
        // Shard A (global tids [0, 2], resources [4, 7]) and shard B
        // (global tids [1], resources [5]) merge in canonical order;
        // sealing interleaves their streams back into time order and
        // renumbers the heatmap epochs like one sequential loop.
        let mut a = SimObserver::new();
        a.events_processed = 3;
        a.stalls.push((2.0, 1)); // local tid 1 -> global 2
        a.heatmap.samples.push(HeatmapSample {
            time: 1.0,
            epoch: 1,
            bytes_in_flight: vec![(0, 10.0), (1, 20.0)],
        });
        a.heatmap.samples.push(HeatmapSample {
            time: 3.0,
            epoch: 2,
            bytes_in_flight: vec![(1, 5.0)],
        });
        let mut b = SimObserver::new();
        b.events_processed = 2;
        b.stalls.push((1.0, 0)); // local tid 0 -> global 1
        b.heatmap.samples.push(HeatmapSample {
            time: 2.0,
            epoch: 1,
            bytes_in_flight: vec![(0, 7.0)],
        });

        let mut merged = SimObserver::new();
        let mark = merged.mark();
        merged.absorb_shard(a, &[0, 2], &[4, 7]);
        merged.absorb_shard(b, &[1], &[5]);
        merged.seal_merge(mark);

        assert_eq!(merged.events_processed, 5);
        assert_eq!(merged.stalls, vec![(1.0, 1), (2.0, 2)]);
        let rows: Vec<(u64, f64)> = merged
            .heatmap
            .samples
            .iter()
            .map(|s| (s.epoch, s.time))
            .collect();
        assert_eq!(rows, vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
        let flights: Vec<&[(u32, f64)]> = merged
            .heatmap
            .samples
            .iter()
            .map(|s| s.bytes_in_flight.as_slice())
            .collect();
        assert_eq!(
            flights,
            vec![
                &[(4, 10.0), (7, 20.0)][..],
                &[(5, 7.0)][..],
                &[(7, 5.0)][..],
            ]
        );
    }
}
