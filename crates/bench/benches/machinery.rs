//! Criterion benches for the machinery itself: routing, proxy search,
//! aggregator selection, fair-share computation and end-to-end
//! simulation. These guard the costs the paper argues are negligible
//! ("the overhead for searching for proxies is negligible", §IV.C;
//! aggregator placement "computed once at the beginning", §IV.D).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bgq_comm::{Machine, Program};
use bgq_netsim::{FlowDemand, ResourceId, SimConfig, Waterfill};
use bgq_torus::{route, standard_shape, IoLayout, NodeId, Zone};
use sdm_core::{
    assign_data, find_proxies, find_proxy_groups, plan_direct, plan_via_proxies,
    AggregatorTable, AssignPolicy, MultipathOptions, ProxySearchConfig,
};
use std::collections::HashSet;

fn bench_routing(c: &mut Criterion) {
    let shape = standard_shape(8192).unwrap();
    c.bench_function("route/8192-node partition, corner to corner", |b| {
        b.iter(|| {
            route(
                &shape,
                black_box(NodeId(0)),
                black_box(NodeId(shape.num_nodes() - 1)),
                Zone::Z2,
            )
        })
    });
}

fn bench_proxy_search(c: &mut Criterion) {
    let shape = standard_shape(512).unwrap();
    let cfg = ProxySearchConfig::default();
    c.bench_function("proxy_search/pair in 512 nodes", |b| {
        b.iter(|| {
            find_proxies(
                &shape,
                Zone::Z2,
                black_box(NodeId(0)),
                black_box(NodeId(511)),
                &HashSet::new(),
                &cfg,
            )
        })
    });

    let sources: Vec<NodeId> = (0..32).map(NodeId).collect();
    let dests: Vec<NodeId> = (480..512).map(NodeId).collect();
    c.bench_function("proxy_search/groups of 32 in 512 nodes", |b| {
        b.iter(|| find_proxy_groups(&shape, Zone::Z2, &sources, &dests, &cfg))
    });
}

fn bench_aggregators(c: &mut Criterion) {
    let layout = IoLayout::new(standard_shape(8192).unwrap());
    c.bench_function("aggregator_table/precompute 8192 nodes", |b| {
        b.iter(|| AggregatorTable::precompute(black_box(&layout)))
    });

    let table = AggregatorTable::precompute(&layout);
    let aggs = table.aggregators(16);
    let data: Vec<(NodeId, u64)> = (0..8192).map(|i| (NodeId(i), (i as u64 % 64) << 20)).collect();
    c.bench_function("assign_data/balanced greedy, 8192 nodes", |b| {
        b.iter(|| {
            assign_data(
                black_box(&data),
                aggs,
                &layout,
                64 << 20,
                AssignPolicy::BalancedGreedy,
            )
        })
    });
}

fn bench_waterfill(c: &mut Criterion) {
    // 1,000 flows over 2,000 resources, routes of 8, heavy sharing.
    let nres = 2000usize;
    let routes: Vec<Vec<ResourceId>> = (0..1000)
        .map(|i| {
            (0..8)
                .map(|h| ResourceId(((i * 37 + h * 211) % nres) as u32))
                .collect()
        })
        .collect();
    let demands: Vec<FlowDemand> = routes
        .iter()
        .map(|r| FlowDemand {
            route: r,
            cap: 1.6e9,
        })
        .collect();
    let caps = vec![1.8e9; nres];
    c.bench_function("waterfill/1000 flows, 2000 links", |b| {
        let mut wf = Waterfill::new(nres);
        let mut rates = Vec::new();
        b.iter(|| {
            wf.compute(black_box(&demands), &caps, &mut rates);
            rates.len()
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let proxies = find_proxies(
        machine.shape(),
        Zone::Z2,
        NodeId(0),
        NodeId(127),
        &HashSet::new(),
        &ProxySearchConfig::default(),
    )
    .proxies();

    c.bench_function("sim/direct put 8MB (128-node partition)", |b| {
        b.iter(|| {
            let mut p = Program::new(&machine);
            let h = plan_direct(&mut p, NodeId(0), NodeId(127), 8 << 20);
            h.completed_at(&p.run())
        })
    });

    c.bench_function("sim/4-proxy multipath put 8MB", |b| {
        b.iter(|| {
            let mut p = Program::new(&machine);
            let h = plan_via_proxies(
                &mut p,
                NodeId(0),
                NodeId(127),
                8 << 20,
                &proxies,
                &MultipathOptions::default(),
            );
            h.completed_at(&p.run())
        })
    });
}

criterion_group!(
    benches,
    bench_routing,
    bench_proxy_search,
    bench_aggregators,
    bench_waterfill,
    bench_end_to_end
);
criterion_main!(benches);
