//! Ablation benches for the design choices DESIGN.md calls out:
//! store-and-forward vs. pipelined forwarding, proxy count, aggregator
//! assignment policy, and routing zone. Each bench runs the full plan +
//! simulation so the cost of richer plans (more transfers, more events)
//! is visible; the *simulated* outcomes of the same ablations are printed
//! by the `fig7`/`fig10` binaries and the `ablation_policy_point` helper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bgq_bench::{ablation_policy_point, Pattern};
use bgq_comm::{Machine, Program};
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, NodeId, Zone};
use sdm_core::{find_proxies, plan_via_proxies, MultipathOptions, ProxySearchConfig};
use std::collections::HashSet;

fn proxies(machine: &Machine, k: usize) -> Vec<NodeId> {
    find_proxies(
        machine.shape(),
        machine.zone(),
        NodeId(0),
        NodeId(127),
        &HashSet::new(),
        &ProxySearchConfig {
            min_proxies: 1,
            max_proxies: k,
            ..Default::default()
        },
    )
    .proxies()
}

fn ablation_proxy_count(c: &mut Criterion) {
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let mut g = c.benchmark_group("proxy_count");
    for k in [1usize, 2, 3, 4] {
        let px = proxies(&machine, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &px, |b, px| {
            b.iter(|| {
                let mut p = Program::new(&machine);
                let h = plan_via_proxies(
                    &mut p,
                    NodeId(0),
                    NodeId(127),
                    8 << 20,
                    px,
                    &MultipathOptions::default(),
                );
                h.completed_at(&p.run())
            })
        });
    }
    g.finish();
}

fn ablation_pipelining(c: &mut Criterion) {
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let px = proxies(&machine, 4);
    let mut g = c.benchmark_group("forwarding");
    for (label, opts) in [
        ("store_and_forward", MultipathOptions::default()),
        (
            "pipelined_1MB",
            MultipathOptions {
                pipeline_chunk: Some(1 << 20),
                ..Default::default()
            },
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut p = Program::new(&machine);
                let h =
                    plan_via_proxies(&mut p, NodeId(0), NodeId(127), 16 << 20, &px, &opts);
                h.completed_at(&p.run())
            })
        });
    }
    g.finish();
}

fn ablation_zone(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_zone");
    for zone in [Zone::Z2, Zone::Z3] {
        let machine =
            Machine::new(standard_shape(128).unwrap(), SimConfig::default()).with_zone(zone);
        g.bench_function(format!("{zone:?}"), |b| {
            b.iter(|| {
                let mut p = Program::new(&machine);
                let h = sdm_core::plan_direct(&mut p, NodeId(0), NodeId(127), 8 << 20);
                h.completed_at(&p.run())
            })
        });
    }
    g.finish();
}

fn ablation_assignment_policy(c: &mut Criterion) {
    // Full pattern-2 aggregation at the smallest paper scale under both
    // assignment policies (plan + simulate).
    let mut g = c.benchmark_group("aggregation_policy");
    g.sample_size(10);
    g.bench_function("balanced_vs_local_2048_cores", |b| {
        b.iter(|| ablation_policy_point(2048, Pattern::Pareto, 7))
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_proxy_count,
    ablation_pipelining,
    ablation_zone,
    ablation_assignment_policy
);
criterion_main!(benches);
