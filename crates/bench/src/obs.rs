//! Trace builders and artifact writers for the observability layer.
//!
//! Each figure harness can emit two deterministic artifacts after its
//! run (see [`BenchArgs`](crate::BenchArgs)):
//!
//! * `--metrics-out PATH` — the session registry's snapshot as sorted
//!   CSV (`MetricsSnapshot::to_csv`), byte-identical for any thread
//!   count because every golden metric is a simulated-time or integer
//!   quantity;
//! * `--trace-out PATH` — a Chrome-trace JSON of one *representative
//!   run* of the figure ([`trace_for`]), loadable in Perfetto. Spans
//!   are transfers on their first-hop link-axis track, counter series
//!   are waterfill bytes-in-flight per axis, instants are stall /
//!   resume / fault edges.
//!
//! Everything here is keyed on simulated time, so both artifacts are
//! reproducible byte-for-byte regardless of worker threads or host.

use crate::resilience::{fault_plan_for, Scenario};
use crate::runner::PlanCache;
use bgq_comm::{Machine, Program};
use bgq_netsim::{FaultPlan, ResourceId, SimConfig, SimObserver, SimReport};
use bgq_obs::Recorder;
use bgq_torus::{shape_for_cores, standard_shape, NodeId, RankMap, Zone, CORES_PER_NODE};
use sdm_core::{
    plan_direct, plan_group_direct, plan_group_via, plan_via_proxies, IoMoveOptions,
    MultipathOptions, ProxySearchConfig,
};
use std::collections::{BTreeMap, HashSet};
use std::path::Path;

/// Message size for representative traces: large enough that multipath
/// beats direct on the fig5 pair, small enough that the trace stays a
/// few kilobytes.
pub const TRACE_BYTES: u64 = 32 << 20;

/// The Perfetto track a simulated resource belongs to: torus links are
/// grouped per direction (`axis +B`, ...), everything else (eleventh
/// link, ION→fs stages) lands on the `io` track.
fn resource_track(machine: &Machine, r: ResourceId) -> String {
    match machine.torus_link(r) {
        Some(link) => format!("axis {}", link.direction()),
        None => "io".to_string(),
    }
}

/// Record one executed program into `rec`:
///
/// * a span per transfer on its first-hop axis track (undelivered
///   transfers span to the end of the run and say so in their name);
/// * a `bytes_in_flight` counter series per axis from the waterfill
///   heatmap samples;
/// * instants for every stall, resume and never-started transfer.
pub fn record_run(
    rec: &Recorder,
    machine: &Machine,
    prog: &Program,
    report: &SimReport,
    obs: &SimObserver,
) {
    for (i, spec) in prog.graph().specs().iter().enumerate() {
        let track = spec
            .route
            .first()
            .map(|&r| resource_track(machine, r))
            .unwrap_or_else(|| "local".to_string());
        let start = report.flow_start_time[i];
        if !start.is_finite() {
            rec.instant("faults", &format!("t{i} never started"), report.end_time);
            continue;
        }
        let delivered = report.delivery_time[i].is_finite();
        let end = if delivered {
            report.delivery_time[i]
        } else {
            report.end_time
        };
        let name = if delivered {
            format!("t{i} n{}->n{}", spec.src, spec.dst)
        } else {
            format!("t{i} n{}->n{} (undelivered)", spec.src, spec.dst)
        };
        rec.span(&track, &name, start, end, &[("bytes", spec.bytes.to_string())]);
    }

    // Axis-aggregated bytes-in-flight counters. Only axes that ever
    // carry traffic get a series, but those get a sample per epoch
    // (zeros included) so the Perfetto area chart drops back to zero.
    let tracks: Vec<String> = (0..machine.num_resources())
        .map(|r| resource_track(machine, ResourceId(r)))
        .collect();
    let mut active: BTreeMap<&str, ()> = BTreeMap::new();
    for s in &obs.heatmap.samples {
        for &(r, v) in &s.bytes_in_flight {
            if v > 0.0 {
                active.insert(tracks[r as usize].as_str(), ());
            }
        }
    }
    for s in &obs.heatmap.samples {
        let mut sums: BTreeMap<&str, f64> = active.keys().map(|&t| (t, 0.0)).collect();
        for &(r, v) in &s.bytes_in_flight {
            if v > 0.0 {
                *sums.get_mut(tracks[r as usize].as_str()).unwrap() += v;
            }
        }
        for (track, sum) in sums {
            rec.counter(track, "bytes_in_flight", s.time, sum);
        }
    }

    for &(t, tid) in &obs.stalls {
        rec.instant("faults", &format!("stall t{tid}"), t);
    }
    for &(t, tid) in &obs.resumes {
        rec.instant("faults", &format!("resume t{tid}"), t);
    }
}

/// Run `prog` under `faults` with an observer attached and record the
/// execution into `rec`. Returns the simulation report (bit-identical
/// to an unobserved run).
pub fn run_traced(rec: &Recorder, prog: &Program, faults: &FaultPlan) -> SimReport {
    let mut obs = SimObserver::new();
    let report = prog.run_observed(faults, &mut obs);
    record_run(rec, prog.machine(), prog, &report, &obs);
    report
}

/// Direct-vs-multipath pair trace on an `nodes`-node partition: the
/// corner pair, one direct timeline and one 4-proxy multipath timeline
/// merged under `direct/` and `multipath/` prefixes.
pub fn pair_trace(cache: &PlanCache, nodes: u32, bytes: u64) -> Recorder {
    let machine = cache.machine(standard_shape(nodes).unwrap(), &SimConfig::default());
    let (src, dst) = (NodeId(0), NodeId(machine.num_nodes() - 1));
    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let proxies = cache
        .proxies(machine.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg)
        .proxies();

    let all = Recorder::new();
    let direct = Recorder::new();
    let mut pd = Program::new(&machine);
    plan_direct(&mut pd, src, dst, bytes);
    run_traced(&direct, &pd, &FaultPlan::new());
    all.merge_prefixed(&direct, "direct/");

    let multi = Recorder::new();
    let mut pm = Program::new(&machine);
    plan_via_proxies(&mut pm, src, dst, bytes, &proxies, &MultipathOptions::default());
    run_traced(&multi, &pm, &FaultPlan::new());
    all.merge_prefixed(&multi, "multipath/");
    all
}

/// The fig5 representative trace: the 128-node corner pair.
pub fn fig5_trace(cache: &PlanCache, bytes: u64) -> Recorder {
    pair_trace(cache, 128, bytes)
}

/// Group-coupling trace (fig6's first plane): 128 aligned pairs between
/// opposed slabs of the 2048-node partition, direct vs. proxy groups.
pub fn fig6_trace(cache: &PlanCache, bytes: u64) -> Recorder {
    let machine = cache.machine(standard_shape(2048).unwrap(), &SimConfig::default());
    let n = machine.shape().num_nodes();
    let sources: Vec<NodeId> = (0..128).map(NodeId).collect();
    let dests: Vec<NodeId> = (3 * n / 4..3 * n / 4 + 128).map(NodeId).collect();
    let cfg = ProxySearchConfig::default();
    let groups = cache.proxy_groups(machine.shape(), Zone::Z2, &sources, &dests, &cfg);

    let all = Recorder::new();
    let direct = Recorder::new();
    let mut pd = Program::new(&machine);
    plan_group_direct(&mut pd, &sources, &dests, bytes);
    run_traced(&direct, &pd, &FaultPlan::new());
    all.merge_prefixed(&direct, "direct/");

    let multi = Recorder::new();
    let mut pm = Program::new(&machine);
    plan_group_via(
        &mut pm,
        &sources,
        &dests,
        bytes,
        &groups,
        false,
        &MultipathOptions::default(),
    );
    run_traced(&multi, &pm, &FaultPlan::new());
    all.merge_prefixed(&multi, "multipath/");
    all
}

/// Sparse collective-write trace for the weak-scaling figures: the
/// topology-aware aggregation plan (nodes → aggregators → bridges →
/// IONs) at `cores`, uniform 1 MB ranks.
pub fn io_trace(cache: &PlanCache, cores: u32) -> Recorder {
    let shape = shape_for_cores(cores).expect("standard partition");
    let machine = cache.machine(shape, &SimConfig::default());
    let map = RankMap::default_map(shape, CORES_PER_NODE);
    let rank_sizes = vec![1u64 << 20; cores as usize];
    let data = bgq_workloads::coalesce_to_nodes(&map, &rank_sizes);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();
    let chunk = crate::io::sim_chunk_bytes(total, shape.num_nodes());

    let mover = cache.mover(&machine);
    let mut prog = Program::new(&machine);
    mover.plan_sparse_write(
        &mut prog,
        &data,
        &IoMoveOptions {
            max_chunk: chunk,
            ..Default::default()
        },
    );
    let rec = Recorder::new();
    run_traced(&rec, &prog, &FaultPlan::new());
    rec
}

/// Fault-injection trace: the fig5 pair under the direct-route cut. The
/// `direct/` timeline shows the stall instant and the undelivered span;
/// the `multipath/` timeline routes over link-disjoint proxies and
/// delivers.
pub fn resilience_trace(cache: &PlanCache, bytes: u64) -> Recorder {
    let machine = cache.machine(standard_shape(128).unwrap(), &SimConfig::default());
    let (src, dst) = (NodeId(0), NodeId(127));
    let mut pd = Program::new(&machine);
    let hd = plan_direct(&mut pd, src, dst, bytes);
    let t0 = hd.completed_at(&pd.run());
    let plan = fault_plan_for(&machine, &Scenario::DirectCut, t0);

    let all = Recorder::new();
    let direct = Recorder::new();
    run_traced(&direct, &pd, &plan);
    all.merge_prefixed(&direct, "direct/");

    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let proxies = cache
        .proxies(machine.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg)
        .proxies();
    let multi = Recorder::new();
    let mut pm = Program::new(&machine);
    plan_via_proxies(&mut pm, src, dst, bytes, &proxies, &MultipathOptions::default());
    run_traced(&multi, &pm, &plan);
    all.merge_prefixed(&multi, "multipath/");
    all
}

/// The representative trace for a figure by name, or `None` for figures
/// without one (the histogram figure has no simulated execution).
pub fn trace_for(figure: &str, cache: &PlanCache) -> Option<Recorder> {
    match figure {
        "fig5" => Some(fig5_trace(cache, TRACE_BYTES)),
        "fig6" => Some(fig6_trace(cache, TRACE_BYTES)),
        "fig7" => Some(pair_trace(cache, 512, TRACE_BYTES)),
        "fig10" | "fig11" => Some(io_trace(cache, 2048)),
        "resilience" => Some(resilience_trace(cache, TRACE_BYTES)),
        _ => None,
    }
}

/// Write `contents` to `path`, creating parent directories.
pub fn write_artifact(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

/// Emit the artifacts a figure binary was asked for: the session's
/// metrics snapshot (`--metrics-out`), the figure's representative
/// trace (`--trace-out`), its bottleneck-attribution profile
/// (`--profile-out`) and its run-ledger manifest (`--manifest-out`).
/// Call once, after the run.
pub fn emit_artifacts(args: &crate::BenchArgs, session: &crate::ExperimentSession, figure: &str) {
    if let Some(path) = &args.metrics_out {
        let snap = session
            .metrics()
            .expect("output paths imply observation")
            .snapshot();
        write_artifact(path, &snap.to_csv()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.trace_out {
        match trace_for(figure, session.cache()) {
            Some(rec) => {
                write_artifact(path, &rec.to_chrome_json())
                    .unwrap_or_else(|e| panic!("write {path}: {e}"));
                eprintln!("wrote {path}");
            }
            None => eprintln!("no representative trace for {figure}; skipping {path}"),
        }
    }
    if let Some(path) = &args.profile_out {
        match crate::profile::profile_for(figure, session.cache()) {
            Some(art) => {
                art.validate()
                    .unwrap_or_else(|e| panic!("profile accounting broken: {e}"));
                write_artifact(path, &art.to_json())
                    .unwrap_or_else(|e| panic!("write {path}: {e}"));
                eprintln!("wrote {path}");
            }
            None => eprintln!("no representative profile for {figure}; skipping {path}"),
        }
    }
    if let Some(path) = &args.manifest_out {
        match crate::sentinel::manifest_for(figure, session.cache()) {
            Some(manifest) => {
                manifest
                    .validate()
                    .unwrap_or_else(|e| panic!("manifest broken: {e}"));
                write_artifact(path, &manifest.to_json())
                    .unwrap_or_else(|e| panic!("write {path}: {e}"));
                eprintln!("wrote {path}");
            }
            None => eprintln!("no representative manifest for {figure}; skipping {path}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_trace_is_valid_and_shows_both_strategies() {
        let cache = PlanCache::new();
        let rec = fig5_trace(&cache, 4 << 20);
        let json = rec.to_chrome_json();
        bgq_obs::json::validate(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("direct/axis"), "direct timeline present");
        assert!(json.contains("multipath/axis"), "multipath timeline present");
        assert!(json.contains("bytes_in_flight"), "heatmap counters present");
    }

    #[test]
    fn trace_export_is_identical_across_recordings() {
        let cache = PlanCache::new();
        let a = fig5_trace(&cache, 1 << 20).to_chrome_json();
        let b = fig5_trace(&cache, 1 << 20).to_chrome_json();
        assert_eq!(a, b, "same inputs must serialize to the same bytes");
    }

    #[test]
    fn resilience_trace_is_loud_about_the_stall() {
        let cache = PlanCache::new();
        let json = resilience_trace(&cache, 4 << 20).to_chrome_json();
        bgq_obs::json::validate(&json).unwrap();
        assert!(json.contains("stall t"), "direct stall instant recorded");
        assert!(json.contains("(undelivered)"), "cut route never delivers");
    }

    #[test]
    fn every_figure_with_a_trace_produces_valid_json() {
        // fig6/fig10 build big machines; keep this to the cheap ones and
        // the unknown-figure fallthrough.
        let cache = PlanCache::new();
        assert!(trace_for("fig8_9", &cache).is_none());
        let rec = trace_for("fig5", &cache).unwrap();
        bgq_obs::json::validate(&rec.to_chrome_json()).unwrap();
    }
}
