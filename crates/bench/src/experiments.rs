//! Every figure harness of this crate, expressed as an
//! [`Experiment`]: a list of independent points plus a pure
//! `run_point`. The binaries in `src/bin/` are thin drivers that hand
//! these to an [`ExperimentSession`](crate::runner::ExperimentSession);
//! `reproduce` loops over them to regenerate the whole paper.

use std::collections::HashSet;

use bgq_comm::{FsParams, Machine, Program};
use bgq_iosys::{continue_to_storage, plan_collective_write, CollectiveIoConfig, IonChunk};
use bgq_netsim::{active_fraction, utilization, SimConfig, TransferId};
use bgq_torus::{standard_shape, IonId, NodeId, RankMap, Zone};
use bgq_workloads::{
    coalesce_to_nodes, pareto_sizes, uniform_sizes, Histogram, ParetoParams, DEFAULT_MAX_BYTES,
};
use sdm_core::{
    diversity_report, plan_direct, plan_via_proxies, AssignPolicy, CostModel, IoMoveOptions,
    MultipathOptions, ProxySearchConfig, SparseMover,
};

use crate::io::{fig10_point_with, fig11_point_with, policy_point_with, Pattern};
use crate::micro::{fig5_point, fig6_point, fig7_point, fig7_series_labels, SweepPoint};
use crate::runner::{Experiment, PlanCache, Row};
use crate::table::{fmt_bytes, fmt_gbs};

fn sweep_row(p: &SweepPoint) -> Row {
    Row::new(
        vec![
            fmt_bytes(p.bytes),
            fmt_gbs(p.direct),
            fmt_gbs(p.multipath),
            format!("{:.2}", p.multipath / p.direct),
        ],
        vec![p.bytes as f64, p.direct, p.multipath],
    )
}

/// Crossover of a direct-vs-multipath sweep from collected rows
/// (metrics `[bytes, direct, multipath]`).
fn rows_crossover(rows: &[Row]) -> Option<(u64, f64)> {
    rows.iter()
        .find(|r| r.metrics[2] >= r.metrics[1])
        .map(|r| (r.metrics[0] as u64, r.metrics[1]))
}

/// Figure 5: point-to-point PUT with and without 4 proxies (128 nodes).
pub struct Fig5 {
    pub sizes: Vec<u64>,
}

impl Experiment for Fig5 {
    type Point = u64;

    fn name(&self) -> &'static str {
        "fig5"
    }

    fn columns(&self) -> Vec<String> {
        ["size", "direct GB/s", "4 proxies GB/s", "speedup"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<u64> {
        self.sizes.clone()
    }

    fn run_point(&self, cache: &PlanCache, bytes: &u64) -> Row {
        sweep_row(&fig5_point(cache, *bytes))
    }

    fn footer(&self, rows: &[Row]) -> Option<String> {
        let mut out = String::new();
        if let Some((bytes, thr)) = rows_crossover(rows) {
            out.push_str(&format!(
                "\ncrossover: ({}, {} GB/s)   [paper: (256K, 1.4 GB/s)]\n",
                fmt_bytes(bytes),
                fmt_gbs(thr)
            ));
        }
        let last = rows.last()?;
        out.push_str(&format!(
            "plateau: direct {} GB/s [paper ~1.6], proxies {} GB/s [paper ~3.2]",
            fmt_gbs(last.metrics[1]),
            fmt_gbs(last.metrics[2])
        ));
        Some(out)
    }
}

/// Figure 6: two 256-node groups with and without proxy groups (2K nodes).
pub struct Fig6 {
    pub sizes: Vec<u64>,
}

impl Experiment for Fig6 {
    type Point = u64;

    fn name(&self) -> &'static str {
        "fig6"
    }

    fn columns(&self) -> Vec<String> {
        ["size", "direct GB/s", "3 proxy groups GB/s", "speedup"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<u64> {
        self.sizes.clone()
    }

    fn run_point(&self, cache: &PlanCache, bytes: &u64) -> Row {
        sweep_row(&fig6_point(cache, *bytes))
    }

    fn footer(&self, rows: &[Row]) -> Option<String> {
        let mut out = String::new();
        if let Some((bytes, thr)) = rows_crossover(rows) {
            out.push_str(&format!(
                "\ncrossover: ({}, {} GB/s)   [paper: (512K, 1.58 GB/s)]\n",
                fmt_bytes(bytes),
                fmt_gbs(thr)
            ));
        }
        let last = rows.last()?;
        out.push_str(&format!(
            "plateau: direct {} GB/s [paper ~1.6], proxy groups {} GB/s [paper ~2.4]",
            fmt_gbs(last.metrics[1]),
            fmt_gbs(last.metrics[2])
        ));
        Some(out)
    }
}

/// Figure 7: throughput vs. number of proxy groups (512 nodes).
pub struct Fig7 {
    pub sizes: Vec<u64>,
}

impl Experiment for Fig7 {
    type Point = u64;

    fn name(&self) -> &'static str {
        "fig7"
    }

    fn columns(&self) -> Vec<String> {
        let mut header = vec!["size".to_string(), "no proxies".to_string()];
        header.extend(fig7_series_labels().into_iter().map(|(label, _, _)| label));
        header
    }

    fn points(&self) -> Vec<u64> {
        self.sizes.clone()
    }

    fn run_point(&self, cache: &PlanCache, bytes: &u64) -> Row {
        let (baseline, series) = fig7_point(cache, *bytes);
        let mut cells = vec![fmt_bytes(*bytes), fmt_gbs(baseline)];
        cells.extend(series.iter().map(|&t| fmt_gbs(t)));
        let mut metrics = vec![*bytes as f64, baseline];
        metrics.extend(&series);
        Row::new(cells, metrics)
    }

    fn footer(&self, rows: &[Row]) -> Option<String> {
        let last = rows.last()?;
        let baseline = last.metrics[1];
        let mut out = String::from("\nlarge-message speedups over no-proxy baseline:\n");
        for (i, (label, _, _)) in fig7_series_labels().into_iter().enumerate() {
            out.push_str(&format!(
                "  {:<22} {:.2}x\n",
                label,
                last.metrics[2 + i] / baseline
            ));
        }
        out.push_str("  [paper: 2 groups ~1x, 3 groups ~1.5x, 4 groups ~2x, 5 groups degrade]");
        Some(out)
    }
}

/// Figures 8/9: histogram of one sparse pattern's per-rank sizes.
/// The histogram is computed up front; each point is one (pre-binned)
/// row, so this experiment exercises only the formatting path.
pub struct PatternHistogram {
    name: &'static str,
    sizes: Vec<u64>,
}

impl PatternHistogram {
    const RANKS: u32 = 1024;

    /// Figure 8: Pattern 1 (uniform sizes, flat histogram).
    pub fn fig8() -> PatternHistogram {
        PatternHistogram {
            name: "fig8",
            sizes: uniform_sizes(Self::RANKS, DEFAULT_MAX_BYTES, 20140901),
        }
    }

    /// Figure 9: Pattern 2 (Pareto sizes, mass near zero + cap spike).
    pub fn fig9() -> PatternHistogram {
        PatternHistogram {
            name: "fig9",
            sizes: pareto_sizes(Self::RANKS, &ParetoParams::default(), 20140902),
        }
    }
}

impl Experiment for PatternHistogram {
    type Point = (u64, u64, u64);

    fn name(&self) -> &'static str {
        self.name
    }

    fn columns(&self) -> Vec<String> {
        ["bin (MB)", "ranks", "bar"].map(String::from).to_vec()
    }

    fn points(&self) -> Vec<(u64, u64, u64)> {
        Histogram::build(&self.sizes, 1 << 20).rows().collect()
    }

    fn run_point(&self, _cache: &PlanCache, &(start, end, count): &(u64, u64, u64)) -> Row {
        Row::new(
            vec![
                format!("{}-{}", start >> 20, end >> 20),
                count.to_string(),
                "#".repeat((count as usize) / 8),
            ],
            vec![count as f64],
        )
    }

    fn footer(&self, _rows: &[Row]) -> Option<String> {
        let total: u64 = self.sizes.iter().sum();
        Some(format!(
            "total data: {:.2} GB ({:.0}% of dense)\n",
            total as f64 / 1e9,
            100.0 * bgq_workloads::sparsity_fraction(&self.sizes, DEFAULT_MAX_BYTES)
        ))
    }
}

/// The seed used for a Figure-10 point at `cores` (shared with the
/// `fig10_point` binary so rows compose into the same tables).
pub fn fig10_seed(cores: u32) -> u64 {
    20140900 + cores as u64
}

/// Figure 10: weak-scaling aggregation throughput for both sparse
/// patterns vs. default MPI collective I/O.
pub struct Fig10 {
    pub scales: Vec<u32>,
}

impl Experiment for Fig10 {
    type Point = (Pattern, u32);

    fn name(&self) -> &'static str {
        "fig10"
    }

    fn columns(&self) -> Vec<String> {
        [
            "cores",
            "pattern",
            "data GB",
            "ours GB/s",
            "MPI coll. I/O GB/s",
            "improvement",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<(Pattern, u32)> {
        [Pattern::Uniform, Pattern::Pareto]
            .into_iter()
            .flat_map(|pat| self.scales.iter().map(move |&c| (pat, c)))
            .collect()
    }

    fn run_point(&self, cache: &PlanCache, &(pattern, cores): &(Pattern, u32)) -> Row {
        let p = fig10_point_with(cache, cores, pattern, fig10_seed(cores));
        // Stream progress as points complete (large points take minutes).
        eprintln!("done: {} {}", pattern.label(), cores);
        Row::new(
            vec![
                cores.to_string(),
                pattern.label().to_string(),
                format!("{:.1}", p.total_bytes as f64 / 1e9),
                fmt_gbs(p.ours),
                fmt_gbs(p.baseline),
                format!("{:.2}x", p.ours / p.baseline),
            ],
            vec![cores as f64, p.ours, p.baseline],
        )
    }

    fn footer(&self, _rows: &[Row]) -> Option<String> {
        Some(
            "\n[paper: pattern 1 improvement 2x -> 3x with scale; pattern 2 improvement 1.5x -> 2x]"
                .into(),
        )
    }
}

/// Figure 11: HACC I/O write throughput vs. default MPI collective I/O.
pub struct Fig11 {
    pub scales: Vec<u32>,
}

impl Experiment for Fig11 {
    type Point = u32;

    fn name(&self) -> &'static str {
        "fig11"
    }

    fn columns(&self) -> Vec<String> {
        [
            "cores",
            "data GB",
            "custom aggregators GB/s",
            "default MPI coll. I/O GB/s",
            "improvement",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<u32> {
        self.scales.clone()
    }

    fn run_point(&self, cache: &PlanCache, &cores: &u32) -> Row {
        let p = fig11_point_with(cache, cores);
        eprintln!("done: {cores}");
        Row::new(
            vec![
                cores.to_string(),
                format!("{:.1}", p.total_bytes as f64 / 1e9),
                fmt_gbs(p.ours),
                fmt_gbs(p.baseline),
                format!("{:.2}x", p.ours / p.baseline),
            ],
            vec![cores as f64, p.ours, p.baseline],
        )
    }

    fn footer(&self, _rows: &[Row]) -> Option<String> {
        Some("\n[paper: up to ~1.5x improvement from dynamic aggregator selection]".into())
    }
}

fn fig5_machine(cache: &PlanCache) -> std::sync::Arc<Machine> {
    cache.machine(standard_shape(128).unwrap(), &SimConfig::default())
}

/// §IV.B: the analytical model's per-proxy-count thresholds (Eqs. 1–5).
pub struct ModelThresholds;

impl Experiment for ModelThresholds {
    type Point = u32;

    fn name(&self) -> &'static str {
        "thresholds"
    }

    fn columns(&self) -> Vec<String> {
        [
            "k proxies",
            "threshold (model)",
            "asymptotic speedup (k/2)",
            "speedup @128MB (model)",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<u32> {
        (1..=8).collect()
    }

    fn run_point(&self, cache: &PlanCache, &k: &u32) -> Row {
        let machine = fig5_machine(cache);
        let model = CostModel::from_sim_config(machine.config(), machine.mean_hops());
        Row::text(vec![
            k.to_string(),
            model
                .threshold_bytes(k)
                .map(fmt_bytes)
                .unwrap_or_else(|| "never wins".into()),
            format!("{:.1}", CostModel::asymptotic_speedup(k)),
            format!("{:.2}", model.speedup(128 << 20, k)),
        ])
    }

    fn footer(&self, _rows: &[Row]) -> Option<String> {
        let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        let model = CostModel::from_sim_config(machine.config(), machine.mean_hops());
        Some(format!(
            "\nminimum beneficial proxies: {}   [paper: k >= 3]",
            model.min_beneficial_proxies()
        ))
    }
}

/// §IV.B validation: model predictions vs. simulator measurements on the
/// Fig. 5 configuration with 4 proxies.
pub struct ModelVsSim;

impl Experiment for ModelVsSim {
    type Point = u64;

    fn name(&self) -> &'static str {
        "model_vs_sim"
    }

    fn columns(&self) -> Vec<String> {
        [
            "size",
            "model direct (ms)",
            "sim direct (ms)",
            "model proxies (ms)",
            "sim proxies (ms)",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<u64> {
        vec![64 << 10, 256 << 10, 1 << 20, 8 << 20, 64 << 20]
    }

    fn run_point(&self, cache: &PlanCache, &bytes: &u64) -> Row {
        let machine = fig5_machine(cache);
        let model = CostModel::from_sim_config(machine.config(), machine.mean_hops());
        let (src, dst) = (NodeId(0), NodeId(127));
        let proxies = cache
            .proxies(
                machine.shape(),
                Zone::Z2,
                src,
                dst,
                &HashSet::new(),
                &ProxySearchConfig {
                    max_proxies: 4,
                    ..Default::default()
                },
            )
            .proxies();

        let mut pd = Program::new(&machine);
        let hd = plan_direct(&mut pd, src, dst, bytes);
        let sim_direct = hd.completed_at(&pd.run());

        let mut pm = Program::new(&machine);
        let hm = plan_via_proxies(&mut pm, src, dst, bytes, &proxies, &MultipathOptions::default());
        let sim_proxy = hm.completed_at(&pm.run());

        Row::text(vec![
            fmt_bytes(bytes),
            format!("{:.3}", model.direct_time(bytes) * 1e3),
            format!("{:.3}", sim_direct * 1e3),
            format!("{:.3}", model.proxy_time(bytes, 4) * 1e3),
            format!("{:.3}", sim_proxy * 1e3),
        ])
    }
}

/// The four Figure-2 scenarios measured by the `utilization` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilScenario {
    DirectPair,
    ProxiedPair,
    CollectiveWrite,
    DynamicAggregators,
}

impl UtilScenario {
    pub fn label(self) -> &'static str {
        match self {
            UtilScenario::DirectPair => "point-to-point, direct (Fig 2a)",
            UtilScenario::ProxiedPair => "point-to-point, 4 proxies (Fig 2c)",
            UtilScenario::CollectiveWrite => "sparse write, MPI collective I/O (Fig 2b)",
            UtilScenario::DynamicAggregators => "sparse write, dynamic aggregators (Fig 2d)",
        }
    }
}

fn measure(
    machine: &Machine,
    build: impl FnOnce(&mut Program<'_>) -> (u64, Vec<TransferId>),
) -> (f64, f64, f64, f64) {
    let mut prog = Program::new(machine);
    let (bytes, tokens) = build(&mut prog);
    let rep = prog.run();
    let u = utilization(&rep, &machine.capacities());
    let t = rep.last_delivery(&tokens);
    (
        active_fraction(&rep),
        u.mean_active_utilization,
        u.peak_utilization,
        bytes as f64 / t,
    )
}

/// Figure 2, quantified: link utilization of sparse movement with and
/// without proxies/aggregators on the 128-node partition.
pub struct Utilization;

impl Experiment for Utilization {
    type Point = UtilScenario;

    fn name(&self) -> &'static str {
        "utilization"
    }

    fn columns(&self) -> Vec<String> {
        ["scenario", "active links %", "mean util %", "peak util %", "GB/s"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<UtilScenario> {
        vec![
            UtilScenario::DirectPair,
            UtilScenario::ProxiedPair,
            UtilScenario::CollectiveWrite,
            UtilScenario::DynamicAggregators,
        ]
    }

    fn run_point(&self, cache: &PlanCache, &scenario: &UtilScenario) -> Row {
        let machine = cache.machine(
            standard_shape(128).unwrap(),
            &SimConfig::default().with_link_stats(),
        );
        let (src, dst) = (NodeId(0), NodeId(127));
        let bytes = 64u64 << 20;

        let (af, mu, pu, gbs) = match scenario {
            UtilScenario::DirectPair => measure(&machine, |p| {
                let h = plan_direct(p, src, dst, bytes);
                (h.bytes, h.tokens)
            }),
            UtilScenario::ProxiedPair => {
                let proxies = cache
                    .proxies(
                        machine.shape(),
                        Zone::Z2,
                        src,
                        dst,
                        &HashSet::new(),
                        &ProxySearchConfig {
                            max_proxies: 4,
                            ..Default::default()
                        },
                    )
                    .proxies();
                measure(&machine, |p| {
                    let h =
                        plan_via_proxies(p, src, dst, bytes, &proxies, &MultipathOptions::default());
                    (h.bytes, h.tokens)
                })
            }
            UtilScenario::CollectiveWrite => {
                let data = utilization_data(&machine);
                measure(&machine, |p| {
                    let h = plan_collective_write(p, &data, &CollectiveIoConfig::default());
                    (h.bytes, h.tokens)
                })
            }
            UtilScenario::DynamicAggregators => {
                let data = utilization_data(&machine);
                let mover = cache.mover(&machine);
                measure(&machine, |p| {
                    let plan = mover.plan_sparse_write(p, &data, &IoMoveOptions::default());
                    (plan.handle.bytes, plan.handle.tokens)
                })
            }
        };

        Row::new(
            vec![
                scenario.label().to_string(),
                format!("{:.1}", af * 100.0),
                format!("{:.1}", mu * 100.0),
                format!("{:.1}", pu * 100.0),
                format!("{:.3}", gbs / 1e9),
            ],
            vec![af, mu, pu, gbs],
        )
    }

    fn footer(&self, _rows: &[Row]) -> Option<String> {
        Some(
            "\n[paper Fig. 2: default mechanisms leave links/IO nodes idle; proxies and\n \
             uniformly distributed aggregators engage more of them]"
                .into(),
        )
    }
}

/// Sparse per-node write sizes shared by the two I/O scenarios.
fn utilization_data(machine: &Machine) -> Vec<(NodeId, u64)> {
    let map = RankMap::default_map(*machine.shape(), 16);
    coalesce_to_nodes(
        &map,
        &pareto_sizes(map.num_ranks(), &ParetoParams::default(), 77),
    )
}

/// Path-diversity analysis across partition sizes (explains the proxy
/// count limits behind Figures 5–7).
pub struct Diversity {
    pub partitions: Vec<u32>,
}

impl Default for Diversity {
    fn default() -> Diversity {
        Diversity {
            partitions: vec![128, 256, 512, 1024, 2048],
        }
    }
}

impl Experiment for Diversity {
    type Point = u32;

    fn name(&self) -> &'static str {
        "diversity"
    }

    fn columns(&self) -> Vec<String> {
        [
            "partition",
            "shape",
            "heuristic proxies",
            "exhaustive disjoint",
            "ceiling (2L)",
            "mean detour hops",
            "k/2 potential",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<u32> {
        self.partitions.clone()
    }

    fn run_point(&self, cache: &PlanCache, &nodes: &u32) -> Row {
        let shape = standard_shape(nodes).unwrap();
        let (src, dst) = (NodeId(0), NodeId(shape.num_nodes() - 1));
        let heuristic = cache
            .proxies(
                &shape,
                Zone::Z2,
                src,
                dst,
                &HashSet::new(),
                &ProxySearchConfig::default(),
            )
            .len();
        let r = diversity_report(&shape, Zone::Z2, src, dst);
        Row::text(vec![
            nodes.to_string(),
            shape.to_string(),
            heuristic.to_string(),
            r.disjoint_paths.to_string(),
            r.upper_bound.to_string(),
            format!("{:.1}", r.mean_detour_hops),
            format!("{:.1}x", CostModel::asymptotic_speedup(r.disjoint_paths as u32)),
        ])
    }

    fn footer(&self, _rows: &[Row]) -> Option<String> {
        let model = CostModel::bgq_defaults();
        Some(format!(
            "\nmodel: k proxies -> k/2 speedup above the threshold (Eq. 5); \
             4-proxy threshold = {} KB",
            model.threshold_bytes(4).unwrap() >> 10
        ))
    }
}

const PAIR_BYTES: u64 = 64 << 20;

/// Direct and k-proxy completion times for the Fig. 5 pair on `machine`.
fn pair_times(
    cache: &PlanCache,
    machine: &Machine,
    k: usize,
    opts: &MultipathOptions,
) -> (f64, f64) {
    let (src, dst) = (NodeId(0), NodeId(127));
    let mut pd = Program::new(machine);
    let t_direct = plan_direct(&mut pd, src, dst, PAIR_BYTES).completed_at(&pd.run());
    let px = cache
        .proxies(
            machine.shape(),
            Zone::Z2,
            src,
            dst,
            &HashSet::new(),
            &ProxySearchConfig {
                min_proxies: 1,
                max_proxies: k,
                ..Default::default()
            },
        )
        .proxies();
    let mut pm = Program::new(machine);
    let t_multi = plan_via_proxies(&mut pm, src, dst, PAIR_BYTES, &px, opts).completed_at(&pm.run());
    (t_direct, t_multi)
}

/// Ablation: the k/2 law in action (proxy count 1–4, 64 MB pair).
pub struct AblationProxyCount;

impl Experiment for AblationProxyCount {
    type Point = usize;

    fn name(&self) -> &'static str {
        "ablation_proxy_count"
    }

    fn columns(&self) -> Vec<String> {
        ["k", "speedup over direct", "k/2 prediction"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<usize> {
        (1..=4).collect()
    }

    fn run_point(&self, cache: &PlanCache, &k: &usize) -> Row {
        let machine = fig5_machine(cache);
        let (d, m) = pair_times(cache, &machine, k, &MultipathOptions::default());
        Row::new(
            vec![
                k.to_string(),
                format!("{:.2}x", d / m),
                format!("{:.1}x", k as f64 / 2.0),
            ],
            vec![d / m],
        )
    }
}

/// Ablation: store-and-forward vs. pipelined forwarding (§VII).
pub struct AblationForwarding;

impl AblationForwarding {
    fn strategies() -> Vec<(&'static str, MultipathOptions)> {
        vec![
            ("store-and-forward (paper)", MultipathOptions::default()),
            (
                "pipelined 1 MB sub-chunks (paper §VII)",
                MultipathOptions {
                    pipeline_chunk: Some(1 << 20),
                    ..Default::default()
                },
            ),
        ]
    }
}

impl Experiment for AblationForwarding {
    type Point = (&'static str, MultipathOptions);

    fn name(&self) -> &'static str {
        "ablation_forwarding"
    }

    fn columns(&self) -> Vec<String> {
        ["strategy", "time (ms)", "speedup over direct"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<(&'static str, MultipathOptions)> {
        Self::strategies()
    }

    fn run_point(&self, cache: &PlanCache, (label, opts): &(&'static str, MultipathOptions)) -> Row {
        let machine = fig5_machine(cache);
        let (d, m) = pair_times(cache, &machine, 4, opts);
        Row::new(
            vec![
                label.to_string(),
                format!("{:.2}", m * 1e3),
                format!("{:.2}x", d / m),
            ],
            vec![m, d / m],
        )
    }
}

/// Ablation: aggregator assignment policy (pattern 2, 2,048 cores), one
/// point per policy. Both points hit the same cached machine and
/// aggregator table.
pub struct AblationPolicy;

impl Experiment for AblationPolicy {
    type Point = AssignPolicy;

    fn name(&self) -> &'static str {
        "ablation_policy"
    }

    fn columns(&self) -> Vec<String> {
        ["policy", "GB/s"].map(String::from).to_vec()
    }

    fn points(&self) -> Vec<AssignPolicy> {
        vec![AssignPolicy::BalancedGreedy, AssignPolicy::PsetLocal]
    }

    fn run_point(&self, cache: &PlanCache, &policy: &AssignPolicy) -> Row {
        let gbs = policy_point_with(cache, 2048, Pattern::Pareto, 7, policy);
        let label = match policy {
            AssignPolicy::BalancedGreedy => "balanced over all IONs (paper)",
            AssignPolicy::PsetLocal => "pset-local",
        };
        Row::new(
            vec![label.into(), format!("{:.3}", gbs / 1e9)],
            vec![gbs],
        )
    }
}

/// Sensitivity: the contention penalty γ on the headline pair speedup.
pub struct GammaSensitivity;

impl Experiment for GammaSensitivity {
    type Point = f64;

    fn name(&self) -> &'static str {
        "gamma_sensitivity"
    }

    fn columns(&self) -> Vec<String> {
        ["γ (floor 0.7)", "direct GB/s", "4-proxy GB/s", "speedup"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<f64> {
        vec![0.0, 0.05, 0.1, 0.2]
    }

    fn run_point(&self, cache: &PlanCache, &gamma: &f64) -> Row {
        let cfg = SimConfig {
            contention_penalty: gamma,
            ..SimConfig::default()
        };
        let machine = cache.machine(standard_shape(128).unwrap(), &cfg);
        let (d, m) = pair_times(cache, &machine, 4, &MultipathOptions::default());
        Row::new(
            vec![
                format!("{gamma:.2}"),
                format!("{:.3}", PAIR_BYTES as f64 / d / 1e9),
                format!("{:.3}", PAIR_BYTES as f64 / m / 1e9),
                format!("{:.2}x", d / m),
            ],
            vec![d / m],
        )
    }
}

/// The storage backends compared by the `storage` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageTarget {
    DevNull,
    ScaledGpfs,
    SaturatedFs,
}

impl StorageTarget {
    pub fn label(self) -> &'static str {
        match self {
            StorageTarget::DevNull => "/dev/null (paper)",
            StorageTarget::ScaledGpfs => "GPFS share (4 IONs)",
            StorageTarget::SaturatedFs => "saturated fs (1 GB/s)",
        }
    }

    fn fs(self) -> Option<FsParams> {
        match self {
            StorageTarget::DevNull => None,
            // Aggregate fs ingest scaled to the partition (4/384 of
            // Mira's IONs).
            StorageTarget::ScaledGpfs => Some(FsParams {
                per_ion_bandwidth: 3.2e9,
                aggregate_bandwidth: 240e9 * 4.0 / 384.0,
            }),
            StorageTarget::SaturatedFs => Some(FsParams {
                per_ion_bandwidth: 3.2e9,
                aggregate_bandwidth: 1.0e9,
            }),
        }
    }
}

/// Beyond `/dev/null`: sparse writes through the file-server backend
/// (512 nodes, pattern 2).
pub struct Storage;

impl Experiment for Storage {
    type Point = StorageTarget;

    fn name(&self) -> &'static str {
        "storage"
    }

    fn columns(&self) -> Vec<String> {
        ["target", "ours GB/s", "MPI coll. I/O GB/s", "improvement"]
            .map(String::from)
            .to_vec()
    }

    fn points(&self) -> Vec<StorageTarget> {
        vec![
            StorageTarget::DevNull,
            StorageTarget::ScaledGpfs,
            StorageTarget::SaturatedFs,
        ]
    }

    fn run_point(&self, cache: &PlanCache, &target: &StorageTarget) -> Row {
        let shape = standard_shape(512).unwrap();
        let map = RankMap::default_map(shape, 16);
        let sizes = pareto_sizes(map.num_ranks(), &ParetoParams::default(), 4242);
        let fs = target.fs();

        // Machines with a filesystem attached are point-specific (the
        // cache keys machines by shape+SimConfig only), but the
        // aggregator table depends on the shape alone, so it still comes
        // from the shared cache.
        let mut machine = Machine::new(shape, SimConfig::default());
        if let Some(fs) = fs.clone() {
            machine = machine.with_filesystem(fs);
        }
        let data = coalesce_to_nodes(&map, &sizes);
        let layout = machine.io_layout().clone();

        // Ours.
        let mover = SparseMover::with_aggregator_table(&machine, cache.aggregator_table(&machine));
        let mut prog = Program::new(&machine);
        let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
        let ours = if fs.is_some() {
            let chunks: Vec<IonChunk> = plan
                .assignments
                .iter()
                .zip(&plan.handle.tokens)
                .map(|(a, &tok)| IonChunk {
                    ion: layout.ion_of_pset(layout.pset_of(a.to)),
                    bytes: a.bytes,
                    delivered: tok,
                })
                .collect();
            let h = continue_to_storage(&mut prog, &chunks);
            h.throughput(&prog.run())
        } else {
            plan.handle.throughput(&prog.run())
        };

        // Baseline. (The collective plan's ION chunks are not exposed, so
        // for the storage variants we conservatively append one fs write
        // per pset carrying that pset's total, gated on the plan's
        // completion — a best case for the baseline.)
        let mut prog = Program::new(&machine);
        let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
        let baseline = if fs.is_some() {
            let total: u64 = data.iter().map(|&(_, b)| b).sum();
            let per_pset = total / layout.num_psets() as u64;
            let gate = prog.modeled_sync(NodeId(0), 0.0, handle.tokens.clone());
            let chunks: Vec<IonChunk> = (0..layout.num_psets())
                .map(|p| IonChunk {
                    ion: IonId(p),
                    bytes: per_pset,
                    delivered: gate,
                })
                .collect();
            let h = continue_to_storage(&mut prog, &chunks);
            let rep = prog.run();
            handle.bytes as f64 / h.completed_at(&rep)
        } else {
            handle.throughput(&prog.run())
        };

        Row::new(
            vec![
                target.label().to_string(),
                format!("{:.3}", ours / 1e9),
                format!("{:.3}", baseline / 1e9),
                format!("{:.2}x", ours / baseline),
            ],
            vec![ours, baseline],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentSession;

    #[test]
    fn fig5_experiment_matches_sweep() {
        let sizes = vec![64 << 10, 128 << 20];
        let session = ExperimentSession::new(1);
        let run = session.run(&Fig5 { sizes: sizes.clone() });
        let sweep = crate::micro::fig5_sweep(&sizes);
        assert_eq!(run.rows.len(), 2);
        assert_eq!(run.rows[0].metrics[1], sweep[0].direct);
        assert_eq!(run.rows[1].metrics[2], sweep[1].multipath);
        // The second size reuses the cached machine and proxy selection.
        assert!(session.cache().stats().hits >= 2);
    }

    #[test]
    fn histogram_experiment_bins_everything() {
        let session = ExperimentSession::new(2);
        let run = session.run(&PatternHistogram::fig8());
        let binned: f64 = run.rows.iter().map(|r| r.metrics[0]).sum();
        assert_eq!(binned as u64, 1024);
        assert!(run.rows.len() >= 8, "0–8MB in 1MB bins");
    }

    #[test]
    fn fig10_points_cover_both_patterns_in_order() {
        let exp = Fig10 { scales: vec![2048, 4096] };
        assert_eq!(
            exp.points(),
            vec![
                (Pattern::Uniform, 2048),
                (Pattern::Uniform, 4096),
                (Pattern::Pareto, 2048),
                (Pattern::Pareto, 4096),
            ]
        );
    }
}
