//! Shared command-line handling for the figure harnesses.
//!
//! Every binary accepts the same flags, parsed fallibly into a
//! [`BenchArgs`]:
//!
//! * `--csv` — machine-readable output instead of aligned tables;
//! * `--max-cores N` — cap for the weak-scaling sweeps (fig10/fig11);
//! * `--coarse` — keep ~8 sizes of the 18-point message-size sweep;
//! * `--threads N` — worker threads for the parallel fan-out (default:
//!   the machine's available parallelism);
//! * `--timing` — print per-point timings and plan-cache counters;
//! * `--seed N` — seed for the randomized fault scenarios (`resilience`);
//! * `--observe` — attach a metrics registry and trace recorder to the
//!   session (implied by the two output flags below);
//! * `--metrics-out PATH` — write the session's metrics snapshot as
//!   deterministic CSV after the run;
//! * `--trace-out PATH` — write a Perfetto-loadable Chrome trace of a
//!   representative run of the figure;
//! * `--profile-out PATH` — write a bottleneck-attribution profile
//!   (deterministic JSON, see [`bgq_obs::profile`]) of the same
//!   representative run;
//! * `--manifest-out PATH` — write a single-scenario run-ledger
//!   manifest (deterministic JSON, see [`bgq_obs::ledger`]) of the same
//!   representative scenario, for sentinel comparison.
//!
//! Arguments that don't start with `--` are collected into
//! [`BenchArgs::positional`] for binaries that take operands
//! (`fig10_point`, `sdm`).

use crate::runner::ExperimentSession;
use crate::table::{paper_size_sweep, Table};

/// Why the command line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag this harness does not know.
    UnknownFlag(String),
    /// A flag that needs a value was last on the line.
    MissingValue(&'static str),
    /// A flag value that did not parse.
    BadValue {
        flag: &'static str,
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(
                f,
                "unknown flag {flag} (supported: --csv, --max-cores N, --coarse, --threads N, --timing, --seed N, --observe, --metrics-out PATH, --trace-out PATH, --profile-out PATH, --manifest-out PATH)"
            ),
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "{flag} needs a number, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed harness options. Construct with [`BenchArgs::parse`] (exits on
/// bad input, like any CLI) or [`BenchArgs::try_parse`] (reports
/// [`ArgError`] as a value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    pub csv: bool,
    pub max_cores: u32,
    /// Cap on the number of sweep sizes (coarser, faster runs).
    pub max_sizes: usize,
    /// Worker threads for [`ExperimentSession`].
    pub threads: usize,
    /// Print the per-point timing footer.
    pub timing: bool,
    /// Seed for the randomized fault scenarios (`resilience`).
    pub seed: u64,
    /// Attach the observability layer even without output paths.
    pub observe: bool,
    /// Write the metrics snapshot (deterministic CSV) here after the run.
    pub metrics_out: Option<String>,
    /// Write a Chrome trace of a representative run here after the run.
    pub trace_out: Option<String>,
    /// Write a bottleneck-attribution profile (JSON) here after the run.
    pub profile_out: Option<String>,
    /// Write a run-ledger manifest (JSON) here after the run.
    pub manifest_out: Option<String>,
    /// Non-flag operands, in order.
    pub positional: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> BenchArgs {
        BenchArgs {
            csv: false,
            max_cores: 131_072,
            max_sizes: usize::MAX,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            timing: false,
            seed: crate::resilience::DEFAULT_SEED,
            observe: false,
            metrics_out: None,
            trace_out: None,
            profile_out: None,
            manifest_out: None,
            positional: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parse the process arguments, printing the error and exiting with
    /// status 2 on bad input.
    pub fn parse() -> BenchArgs {
        match BenchArgs::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Parse an explicit argument list (no program name).
    pub fn try_parse<I>(args: I) -> Result<BenchArgs, ArgError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--csv" => out.csv = true,
                "--coarse" => out.max_sizes = 8,
                "--timing" => out.timing = true,
                "--max-cores" => {
                    out.max_cores = parse_value("--max-cores", it.next())?;
                }
                "--threads" => {
                    out.threads = parse_value("--threads", it.next())?;
                    out.threads = out.threads.max(1);
                }
                "--seed" => {
                    out.seed = parse_value("--seed", it.next())?;
                }
                "--observe" => out.observe = true,
                "--metrics-out" => {
                    out.metrics_out = Some(it.next().ok_or(ArgError::MissingValue("--metrics-out"))?);
                }
                "--trace-out" => {
                    out.trace_out = Some(it.next().ok_or(ArgError::MissingValue("--trace-out"))?);
                }
                "--profile-out" => {
                    out.profile_out =
                        Some(it.next().ok_or(ArgError::MissingValue("--profile-out"))?);
                }
                "--manifest-out" => {
                    out.manifest_out =
                        Some(it.next().ok_or(ArgError::MissingValue("--manifest-out"))?);
                }
                other if other.starts_with("--") => {
                    return Err(ArgError::UnknownFlag(other.to_string()));
                }
                _ => out.positional.push(arg),
            }
        }
        Ok(out)
    }

    /// The paper's size sweep, optionally coarsened (endpoints kept).
    pub fn sizes(&self) -> Vec<u64> {
        let all = paper_size_sweep();
        if all.len() <= self.max_sizes {
            return all;
        }
        let step = all.len().div_ceil(self.max_sizes);
        let mut v: Vec<u64> = all.iter().copied().step_by(step).collect();
        if v.last() != all.last() {
            v.push(*all.last().unwrap());
        }
        v
    }

    /// Whether the observability layer should be attached: `--observe`,
    /// or either output path implies it.
    pub fn observe_enabled(&self) -> bool {
        self.observe || self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// An [`ExperimentSession`] configured from these flags. With
    /// observation enabled the session carries a metrics registry that
    /// the plan cache and planners record into.
    pub fn session(&self) -> ExperimentSession {
        let session = ExperimentSession::new(self.threads).with_timing(self.timing);
        if self.observe_enabled() {
            session.with_metrics(std::sync::Arc::new(bgq_obs::MetricsRegistry::new()))
        } else {
            session
        }
    }

    /// Print a table in the configured format.
    pub fn emit(&self, t: &Table) {
        if self.csv {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.render());
        }
    }
}

fn parse_value<T: std::str::FromStr>(
    flag: &'static str,
    value: Option<String>,
) -> Result<T, ArgError> {
    let value = value.ok_or(ArgError::MissingValue(flag))?;
    value
        .parse()
        .map_err(|_| ArgError::BadValue { flag, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, ArgError> {
        BenchArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    fn with_sizes(max_sizes: usize) -> BenchArgs {
        BenchArgs {
            max_sizes,
            ..BenchArgs::default()
        }
    }

    #[test]
    fn full_sweep_by_default() {
        assert_eq!(with_sizes(usize::MAX).sizes(), paper_size_sweep());
    }

    #[test]
    fn coarse_sweep_keeps_endpoints() {
        let s = with_sizes(8).sizes();
        assert!(s.len() <= 9);
        assert_eq!(*s.first().unwrap(), 1 << 10);
        assert_eq!(*s.last().unwrap(), 128 << 20);
        // Still strictly increasing.
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--csv", "--coarse", "--threads", "3", "--timing", "--seed", "7"]).unwrap();
        assert!(a.csv && a.timing);
        assert_eq!(a.max_sizes, 8);
        assert_eq!(a.threads, 3);
        assert_eq!(a.seed, 7);
        assert_eq!(
            parse(&[]).unwrap().seed,
            crate::resilience::DEFAULT_SEED,
            "seed defaults to the experiment's date stamp"
        );
        let a = parse(&["--max-cores", "8192", "pareto", "2048"]).unwrap();
        assert_eq!(a.max_cores, 8192);
        assert_eq!(a.positional, vec!["pareto", "2048"]);
    }

    #[test]
    fn observe_flags_parse_and_imply_observation() {
        let plain = parse(&[]).unwrap();
        assert!(!plain.observe_enabled());
        assert!(plain.session().metrics().is_none());

        let a = parse(&["--observe"]).unwrap();
        assert!(a.observe_enabled() && a.metrics_out.is_none());
        assert!(a.session().metrics().is_some());

        let b = parse(&["--metrics-out", "m.csv", "--trace-out", "t.json"]).unwrap();
        assert!(b.observe_enabled(), "output paths imply observation");
        assert_eq!(b.metrics_out.as_deref(), Some("m.csv"));
        assert_eq!(b.trace_out.as_deref(), Some("t.json"));

        let c = parse(&["--profile-out", "p.json"]).unwrap();
        assert_eq!(c.profile_out.as_deref(), Some("p.json"));
        assert!(
            !c.observe_enabled(),
            "profiles run their own scenario; no session registry needed"
        );

        let d = parse(&["--manifest-out", "m.json"]).unwrap();
        assert_eq!(d.manifest_out.as_deref(), Some("m.json"));
        assert!(
            !d.observe_enabled(),
            "manifests run their own scenario; no session registry needed"
        );
        assert_eq!(
            parse(&["--manifest-out"]),
            Err(ArgError::MissingValue("--manifest-out"))
        );

        assert_eq!(
            parse(&["--metrics-out"]),
            Err(ArgError::MissingValue("--metrics-out"))
        );
        assert_eq!(
            parse(&["--trace-out"]),
            Err(ArgError::MissingValue("--trace-out"))
        );
        assert_eq!(
            parse(&["--profile-out"]),
            Err(ArgError::MissingValue("--profile-out"))
        );
    }

    #[test]
    fn errors_are_values_not_panics() {
        assert_eq!(
            parse(&["--bogus"]),
            Err(ArgError::UnknownFlag("--bogus".into()))
        );
        assert_eq!(
            parse(&["--threads"]),
            Err(ArgError::MissingValue("--threads"))
        );
        assert!(matches!(
            parse(&["--max-cores", "lots"]),
            Err(ArgError::BadValue { flag: "--max-cores", .. })
        ));
        // Errors render a usable message.
        let msg = parse(&["--bogus"]).unwrap_err().to_string();
        assert!(msg.contains("--threads"), "usage lists the flags: {msg}");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(parse(&["--threads", "0"]).unwrap().threads, 1);
    }
}
