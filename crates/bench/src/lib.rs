//! # bgq-bench
//!
//! Harness library that regenerates every figure of Bui et al. (ICPP
//! 2014) on the simulated BG/Q substrate. Each `fig*` binary in
//! `src/bin/` prints the same rows/series the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig5` | 2-node put with/without 4 proxies, 1 KB–128 MB |
//! | `fig6` | 256-node group coupling with/without proxy groups |
//! | `fig7` | throughput vs. number of proxy groups (2/3/4/4+direct) |
//! | `fig8_9` | histograms of the two sparse data patterns |
//! | `fig10` | weak-scaling aggregation throughput vs. MPI collective I/O |
//! | `fig11` | HACC I/O write throughput vs. default MPI collective I/O |
//! | `thresholds` | §IV.B cost-model thresholds and speedups |
//!
//! All binaries share one flag set (see [`BenchArgs`]): `--csv`,
//! `--max-cores N`, `--coarse`, `--threads N` and `--timing`. Sweeps run
//! through an [`runner::ExperimentSession`], which fans independent
//! points across worker threads over a shared [`runner::PlanCache`];
//! output is bit-identical for any thread count.

pub mod args;
pub mod exchange;
pub mod experiments;
pub mod io;
pub mod micro;
pub mod obs;
pub mod profile;
pub mod resilience;
pub mod runner;
pub mod scale;
pub mod sentinel;
pub mod table;

pub use args::{ArgError, BenchArgs};
pub use exchange::{
    exchange_json, exchange_nodes, exchange_patterns, exchange_point, exchange_point_with,
    AlgoResult, ExchangePattern, ExchangePoint, ExchangeSweep, EXCHANGE_SEED,
};
pub use io::{
    ablation_policy_point, ablation_policy_point_with, fig10_point, fig10_point_with,
    fig10_scales, fig11_point, fig11_point_with, fig11_scales, policy_point_with, run_io_point,
    run_io_point_with, sim_chunk_bytes, IoPoint, Pattern,
};
pub use micro::{
    corner_groups, crossover, fig5_point, fig5_sweep, fig6_point, fig6_sweep, fig7_point,
    fig7_series_labels, fig7_sweep, SweepPoint,
};
pub use obs::{
    emit_artifacts, fig5_trace, fig6_trace, io_trace, pair_trace, resilience_trace, trace_for,
    write_artifact, TRACE_BYTES,
};
pub use profile::{
    binding_trace, coupling_profile, coupling_profile_with, exchange_profile,
    exchange_profile_with, fig6_profile, io_profile, io_profile_with, pair_profile,
    pair_profile_with, profile_for, profile_for_with_trace, render_report, resilience_profile,
    resilience_profile_with, resource_label, run_profile, run_profiled,
};
pub use resilience::{
    default_scenarios, fault_plan_for, resilience_point, Resilience, ResiliencePoint, Scenario,
};
pub use runner::{CacheStats, Experiment, ExperimentRun, ExperimentSession, PlanCache, Row};
pub use scale::{scale_json, scale_point, scale_point_with, scale_sizes, ScalePoint, SolverSide};
pub use sentinel::{history_line, manifest_for, run_ledger, LedgerOptions};
pub use table::{fmt_bytes, fmt_gbs, paper_size_sweep, Table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_pattern_labels() {
        assert_eq!(Pattern::Uniform.label(), "Pattern 1");
        assert_eq!(Pattern::Pareto.label(), "Pattern 2");
    }
}
