//! # bgq-bench
//!
//! Harness library that regenerates every figure of Bui et al. (ICPP
//! 2014) on the simulated BG/Q substrate. Each `fig*` binary in
//! `src/bin/` prints the same rows/series the paper reports:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig5` | 2-node put with/without 4 proxies, 1 KB–128 MB |
//! | `fig6` | 256-node group coupling with/without proxy groups |
//! | `fig7` | throughput vs. number of proxy groups (2/3/4/4+direct) |
//! | `fig8_9` | histograms of the two sparse data patterns |
//! | `fig10` | weak-scaling aggregation throughput vs. MPI collective I/O |
//! | `fig11` | HACC I/O write throughput vs. default MPI collective I/O |
//! | `thresholds` | §IV.B cost-model thresholds and speedups |
//!
//! The binaries accept an optional `--max-cores N` (for the weak-scaling
//! figures) and `--csv` to emit machine-readable output.

pub mod io;
pub mod micro;
pub mod table;

pub use io::{
    ablation_policy_point, fig10_point, fig10_scales, fig11_point, fig11_scales, run_io_point,
    sim_chunk_bytes, IoPoint, Pattern,
};
pub use micro::{corner_groups, crossover, fig5_sweep, fig6_sweep, fig7_sweep, SweepPoint};
pub use table::{fmt_bytes, fmt_gbs, paper_size_sweep, Table};

/// Shared tiny CLI: parse `--csv` and `--max-cores N` / `--sizes N` flags.
#[derive(Debug, Clone)]
pub struct Cli {
    pub csv: bool,
    pub max_cores: u32,
    /// Optional cap on the number of sweep sizes (coarser, faster runs).
    pub max_sizes: usize,
}

impl Cli {
    pub fn parse() -> Cli {
        let mut cli = Cli {
            csv: false,
            max_cores: 131_072,
            max_sizes: usize::MAX,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--csv" => cli.csv = true,
                "--max-cores" => {
                    i += 1;
                    cli.max_cores = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--max-cores needs a number");
                }
                "--coarse" => cli.max_sizes = 8,
                other => panic!("unknown flag {other} (supported: --csv, --max-cores N, --coarse)"),
            }
            i += 1;
        }
        cli
    }

    /// The paper's size sweep, optionally coarsened to every k-th size.
    pub fn sizes(&self) -> Vec<u64> {
        let all = paper_size_sweep();
        if all.len() <= self.max_sizes {
            return all;
        }
        let step = all.len().div_ceil(self.max_sizes);
        let mut v: Vec<u64> = all.iter().copied().step_by(step).collect();
        if v.last() != all.last() {
            v.push(*all.last().unwrap());
        }
        v
    }

    /// Print a table in the configured format.
    pub fn emit(&self, t: &Table) {
        if self.csv {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(max_sizes: usize) -> Cli {
        Cli {
            csv: false,
            max_cores: 131_072,
            max_sizes,
        }
    }

    #[test]
    fn full_sweep_by_default() {
        assert_eq!(cli(usize::MAX).sizes(), paper_size_sweep());
    }

    #[test]
    fn coarse_sweep_keeps_endpoints() {
        let s = cli(8).sizes();
        assert!(s.len() <= 9);
        assert_eq!(*s.first().unwrap(), 1 << 10);
        assert_eq!(*s.last().unwrap(), 128 << 20);
        // Still strictly increasing.
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn io_pattern_labels() {
        assert_eq!(Pattern::Uniform.label(), "Pattern 1");
        assert_eq!(Pattern::Pareto.label(), "Pattern 2");
    }
}
