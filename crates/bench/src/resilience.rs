//! The resilience experiment: completion time and delivery success of
//! direct vs. fault-aware multipath transfers under time-varying link
//! faults, on the Fig. 5 pair (first and last node of the 128-node
//! partition).
//!
//! Three fault scenarios per message size:
//!
//! * *fault-free* — sanity row; both strategies deliver on attempt 1 and
//!   the multipath time becomes the slowdown baseline;
//! * *direct-route cut* — the first link of the deterministic direct
//!   route dies mid-transfer (at half the direct completion time) and
//!   never recovers. The stubborn direct strategy re-plans the same dead
//!   route every attempt and exhausts its retries; the health-aware
//!   planner routes around the cut and completes;
//! * *random* — Poisson link failures with exponential outages drawn from
//!   a seeded [`FaultPlan`] generator, scaled to the transfer (the rate is
//!   expressed in expected faults per direct-transfer-time, so every
//!   message size faces comparable adversity).
//!
//! Both strategies run through [`bgq_comm::run_resilient`]: a bounded
//! retry loop
//! that replays the same absolute-time fault plan each attempt and gates
//! re-planned transfers behind an exponential backoff in simulated time.
//! Everything is a pure function of `(bytes, scenario)`, so the sweep is
//! thread-count- and seed-reproducible.

use crate::runner::{Experiment, PlanCache, Row};
use crate::table::fmt_bytes;
use bgq_comm::{run_resilient_observed, Machine, Program, ResilientOutcome, RetryPolicy};
use bgq_netsim::{FaultPlan, ResourceId, SimConfig};
use bgq_torus::{num_links, route, standard_shape, NodeId};
use sdm_core::{plan_direct, MultipathOptions, PlanPolicy, PlanRequest, SparseMover};

/// Default seed for the random scenarios (the experiment's date stamp).
pub const DEFAULT_SEED: u64 = 20140914;

/// Message sizes swept by default. 64K sits below the multipath
/// threshold (~248K for 4 proxies), so its first attempt goes direct and
/// the direct-route-cut scenario exercises the full stall -> backoff ->
/// forced-multipath re-plan path; the larger sizes go multipath
/// immediately.
pub fn default_sizes() -> Vec<u64> {
    vec![64 << 10, 1 << 20, 16 << 20, 128 << 20]
}

/// One fault scenario of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// No faults; baseline row.
    FaultFree,
    /// The direct route's first link dies at `0.5 * t_direct`, forever.
    DirectCut,
    /// Seeded random link failures at `rate_per_t0` expected faults per
    /// direct-transfer-time *across the whole partition* (1,280 links on
    /// 128 nodes — a route of ~7 links sees `rate_per_t0 * 7 / 1280`
    /// expected hits per transfer), with mean outage equal to one
    /// direct-transfer-time.
    Random { rate_per_t0: f64, seed: u64 },
}

impl Scenario {
    pub fn label(&self) -> String {
        match self {
            Scenario::FaultFree => "fault-free".into(),
            Scenario::DirectCut => "direct-route cut".into(),
            Scenario::Random { rate_per_t0, seed } => {
                format!("random x{rate_per_t0:.0} (seed {seed})")
            }
        }
    }
}

/// The default scenario column: one benign, one adversarial, two random
/// intensities (seeds derived from `seed` so reruns with another seed
/// shift every random row together).
pub fn default_scenarios(seed: u64) -> Vec<Scenario> {
    vec![
        Scenario::FaultFree,
        Scenario::DirectCut,
        Scenario::Random {
            rate_per_t0: 16.0,
            seed,
        },
        Scenario::Random {
            rate_per_t0: 256.0,
            seed: seed.wrapping_add(1),
        },
    ]
}

/// The pair under test (shared with fig5).
const SRC: NodeId = NodeId(0);
const DST: NodeId = NodeId(127);

fn resilience_machine(cache: &PlanCache) -> std::sync::Arc<Machine> {
    cache.machine(standard_shape(128).unwrap(), &SimConfig::default())
}

/// Fault-free direct completion time — the time scale every scenario is
/// expressed in.
fn direct_t0(machine: &Machine, bytes: u64) -> f64 {
    let mut p = Program::new(machine);
    let h = plan_direct(&mut p, SRC, DST, bytes);
    h.completed_at(&p.run())
}

/// Materialize a scenario into an absolute-time [`FaultPlan`] for a
/// transfer whose fault-free direct time is `t0`.
pub fn fault_plan_for(machine: &Machine, scenario: &Scenario, t0: f64) -> FaultPlan {
    match scenario {
        Scenario::FaultFree => FaultPlan::new(),
        Scenario::DirectCut => {
            let first = route(machine.shape(), SRC, DST, machine.zone()).links[0];
            FaultPlan::new().fail_link(0.5 * t0, ResourceId(first.0))
        }
        Scenario::Random { rate_per_t0, seed } => {
            // Rate and outage scale with the transfer so each size faces
            // comparable adversity; horizon leaves room for retries.
            let horizon = 20.0 * t0;
            FaultPlan::random_link_faults(
                *seed,
                num_links(machine.shape()),
                rate_per_t0 / t0,
                t0,
                horizon,
            )
        }
    }
}

/// The measurements behind one row of the resilience table.
#[derive(Debug, Clone)]
pub struct ResiliencePoint {
    pub bytes: u64,
    pub scenario: Scenario,
    /// Stubborn direct strategy (same deterministic route every attempt).
    pub direct: ResilientOutcome,
    /// Health-aware strategy (re-plans around the fault mask).
    pub multipath: ResilientOutcome,
    /// Fault-free completion time of the health-aware strategy — the
    /// denominator of the slowdown column.
    pub baseline: f64,
}

/// Evaluate one `(bytes, scenario)` point. Pure: identical inputs give
/// identical outcomes on any thread.
pub fn resilience_point(cache: &PlanCache, bytes: u64, scenario: &Scenario) -> ResiliencePoint {
    let machine = resilience_machine(cache);
    let t0 = direct_t0(&machine, bytes);
    let plan = fault_plan_for(&machine, scenario, t0);
    let policy = RetryPolicy::default();
    let mut mover = SparseMover::with_aggregator_table(&machine, cache.aggregator_table(&machine));
    if let Some(m) = cache.metrics() {
        mover = mover.with_metrics(std::sync::Arc::clone(m));
    }
    let metrics = cache.metrics().map(|m| m.as_ref());

    let direct = run_resilient_observed(&machine, &plan, &policy, SRC, bytes, metrics, |prog, ctx| {
        let stubborn = mover.clone().with_multipath(MultipathOptions {
            gate: ctx.gate,
            ..Default::default()
        });
        stubborn
            .plan(
                prog,
                PlanRequest::new(SRC, DST, ctx.bytes).policy(PlanPolicy::DirectOnly),
            )
            .expect("direct-only planning without a health mask is infallible")
            .handle
    });

    let plan_resilient = |plan: &FaultPlan| {
        run_resilient_observed(&machine, plan, &policy, SRC, bytes, metrics, |prog, ctx| {
            let aware = mover.clone().with_multipath(MultipathOptions {
                gate: ctx.gate,
                ..Default::default()
            });
            aware
                .plan(
                    prog,
                    PlanRequest::new(SRC, DST, ctx.bytes).health(&ctx.health),
                )
                .expect("link faults never take an endpoint down")
                .handle
        })
    };
    let multipath = plan_resilient(&plan);
    let baseline = plan_resilient(&FaultPlan::new()).completion_time;

    ResiliencePoint {
        bytes,
        scenario: *scenario,
        direct,
        multipath,
        baseline,
    }
}

fn fmt_ms(t: f64) -> String {
    if t.is_finite() {
        format!("{:.3}", t * 1e3)
    } else {
        "inf".into()
    }
}

fn fmt_ok(delivered: bool) -> &'static str {
    if delivered {
        "ok"
    } else {
        "FAILED"
    }
}

/// The fault-injection sweep: message size x fault scenario, direct vs.
/// fault-aware multipath.
pub struct Resilience {
    pub sizes: Vec<u64>,
    pub seed: u64,
}

impl Resilience {
    pub fn new(sizes: Vec<u64>, seed: u64) -> Resilience {
        Resilience { sizes, seed }
    }
}

impl Default for Resilience {
    fn default() -> Resilience {
        Resilience::new(default_sizes(), DEFAULT_SEED)
    }
}

impl Experiment for Resilience {
    type Point = (u64, Scenario);

    fn name(&self) -> &'static str {
        "resilience"
    }

    fn columns(&self) -> Vec<String> {
        [
            "size",
            "scenario",
            "direct",
            "direct tries",
            "direct ms",
            "multipath",
            "sdm tries",
            "sdm ms",
            "slowdown",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<(u64, Scenario)> {
        self.sizes
            .iter()
            .flat_map(|&b| default_scenarios(self.seed).into_iter().map(move |s| (b, s)))
            .collect()
    }

    fn run_point(&self, cache: &PlanCache, (bytes, scenario): &(u64, Scenario)) -> Row {
        let p = resilience_point(cache, *bytes, scenario);
        let slowdown = if p.multipath.delivered {
            format!("{:.2}x", p.multipath.completion_time / p.baseline)
        } else {
            "-".into()
        };
        Row::new(
            vec![
                fmt_bytes(p.bytes),
                p.scenario.label(),
                fmt_ok(p.direct.delivered).into(),
                p.direct.attempts.to_string(),
                fmt_ms(p.direct.completion_time),
                fmt_ok(p.multipath.delivered).into(),
                p.multipath.attempts.to_string(),
                fmt_ms(p.multipath.completion_time),
                slowdown,
            ],
            vec![
                p.bytes as f64,
                f64::from(u8::from(p.direct.delivered)),
                p.direct.completion_time,
                f64::from(u8::from(p.multipath.delivered)),
                p.multipath.completion_time,
                p.baseline,
            ],
        )
    }

    fn footer(&self, rows: &[Row]) -> Option<String> {
        let saved = rows
            .iter()
            .filter(|r| r.metrics[1] == 0.0 && r.metrics[3] == 1.0)
            .count();
        let failed_both = rows
            .iter()
            .filter(|r| r.metrics[1] == 0.0 && r.metrics[3] == 0.0)
            .count();
        Some(format!(
            "\n{saved} point(s) where direct failed but fault-aware multipath delivered; \
             {failed_both} where both failed"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_rows_deliver_on_first_attempt() {
        let cache = PlanCache::new();
        let p = resilience_point(&cache, 32 << 20, &Scenario::FaultFree);
        assert!(p.direct.delivered && p.multipath.delivered);
        assert_eq!((p.direct.attempts, p.multipath.attempts), (1, 1));
        assert_eq!(p.multipath.completion_time, p.baseline);
    }

    #[test]
    fn direct_cut_fails_direct_but_multipath_survives() {
        let cache = PlanCache::new();
        for bytes in [64u64 << 10, 32 << 20] {
            let p = resilience_point(&cache, bytes, &Scenario::DirectCut);
            assert!(
                !p.direct.delivered,
                "{bytes}: the stubborn direct strategy cannot cross a dead route"
            );
            assert_eq!(p.direct.attempts, RetryPolicy::default().max_attempts);
            assert!(
                p.multipath.delivered,
                "{bytes}: health-aware multipath must route around the cut"
            );
            let slowdown = p.multipath.completion_time / p.baseline;
            assert!(
                slowdown < 20.0,
                "{bytes}: bounded slowdown expected, got {slowdown:.1}x"
            );
        }
    }

    #[test]
    fn below_threshold_cut_forces_a_second_attempt() {
        // 64K goes direct on the healthy first attempt, stalls on the cut,
        // then the health snapshot at the backoff time forces multipath.
        let cache = PlanCache::new();
        let p = resilience_point(&cache, 64 << 10, &Scenario::DirectCut);
        assert!(p.multipath.delivered);
        assert_eq!(
            p.multipath.attempts, 2,
            "re-plan must kick in on the second attempt"
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_outcomes() {
        let cache = PlanCache::new();
        let s = Scenario::Random {
            rate_per_t0: 4.0,
            seed: DEFAULT_SEED,
        };
        let a = resilience_point(&cache, 4 << 20, &s);
        let b = resilience_point(&cache, 4 << 20, &s);
        assert_eq!(a.direct.delivered, b.direct.delivered);
        assert_eq!(a.direct.attempts, b.direct.attempts);
        assert_eq!(
            a.direct.completion_time.to_bits(),
            b.direct.completion_time.to_bits()
        );
        assert_eq!(a.multipath.delivered, b.multipath.delivered);
        assert_eq!(a.multipath.attempts, b.multipath.attempts);
        assert_eq!(
            a.multipath.completion_time.to_bits(),
            b.multipath.completion_time.to_bits()
        );
        // A different seed draws a different fault history.
        let machine = resilience_machine(&cache);
        let t0 = direct_t0(&machine, 4 << 20);
        let other = Scenario::Random {
            rate_per_t0: 4.0,
            seed: DEFAULT_SEED + 17,
        };
        assert_ne!(
            fault_plan_for(&machine, &s, t0).len(),
            0,
            "the random scenario must actually inject faults"
        );
        assert_ne!(
            fault_plan_for(&machine, &s, t0).events(),
            fault_plan_for(&machine, &other, t0).events()
        );
    }
}
