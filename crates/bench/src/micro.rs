//! Runners for the microbenchmarks of §V.A (Figures 5, 6 and 7).
//!
//! Each figure has a cache-aware per-point function (`fig5_point`,
//! `fig6_point`, `fig7_point`) — the unit of parallel work for the
//! [`Experiment`](crate::runner::Experiment) harnesses — plus the
//! original whole-sweep entry point, kept as a sequential wrapper over a
//! private [`PlanCache`].

use crate::runner::PlanCache;
use bgq_comm::{Machine, Program};
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, Dim, Direction, NodeId, Sign, Zone};
use sdm_core::{
    plan_direct, plan_group_direct, plan_group_via, plan_via_proxies, proxy_groups_along,
    MultipathOptions, PlanRequest, ProxyGroup, ProxySearchConfig,
};
use std::collections::HashSet;

/// A fig6 plane: its sources, its destinations, and their proxy groups.
type Plane = (Vec<NodeId>, Vec<NodeId>, std::sync::Arc<Vec<ProxyGroup>>);

/// One point of a direct-vs-multipath sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    pub bytes: u64,
    /// Direct (single default path) throughput, bytes/s.
    pub direct: f64,
    /// Proxy-based multipath throughput, bytes/s.
    pub multipath: f64,
}

/// One Figure-5 point: point-to-point put between the first and last node
/// of the 128-node `2x2x4x4x2` partition, with and without 4 proxies.
/// The machine and the proxy search are served from `cache`.
pub fn fig5_point(cache: &PlanCache, bytes: u64) -> SweepPoint {
    let machine = cache.machine(standard_shape(128).unwrap(), &SimConfig::default());
    let (src, dst) = (NodeId(0), NodeId(127));
    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let proxies = cache
        .proxies(machine.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg)
        .proxies();
    assert!(proxies.len() >= 3, "fig5 partition must support proxies");

    if cache.metrics().is_some() {
        // Observe mode: also run the real decision procedure so this
        // point's direct-vs-multipath verdict lands in the planner
        // counters. The scratch program is discarded — the measured
        // numbers below stay the explicit direct/multipath pair.
        let mover = cache.mover(&machine).with_search(cfg.clone());
        let mut scratch = Program::new(&machine);
        let _ = mover.plan(&mut scratch, PlanRequest::new(src, dst, bytes));
    }

    let mut pd = Program::new(&machine);
    let hd = plan_direct(&mut pd, src, dst, bytes);
    let direct = hd.throughput(&pd.run());

    let mut pm = Program::new(&machine);
    let hm = plan_via_proxies(
        &mut pm,
        src,
        dst,
        bytes,
        &proxies,
        &MultipathOptions::default(),
    );
    let multipath = hm.throughput(&pm.run());
    SweepPoint {
        bytes,
        direct,
        multipath,
    }
}

/// Figure 5 over a whole size sweep (sequential; see [`fig5_point`]).
pub fn fig5_sweep(sizes: &[u64]) -> Vec<SweepPoint> {
    let cache = PlanCache::new();
    sizes.iter().map(|&b| fig5_point(&cache, b)).collect()
}

/// The two corner groups of Figures 6 and 7: the first and last
/// `group_size` nodes of the partition.
pub fn corner_groups(machine: &Machine, group_size: u32) -> (Vec<NodeId>, Vec<NodeId>) {
    let n = machine.shape().num_nodes();
    assert!(2 * group_size <= n);
    let sources = (0..group_size).map(NodeId).collect();
    let dests = (n - group_size..n).map(NodeId).collect();
    (sources, dests)
}

/// Figure 6: coupling two groups of 256 nodes at opposite ends of the
/// 2K-node `4x4x4x16x2` partition, direct vs. proxy groups. Throughputs
/// are per node pair (the paper's y-axis).
///
/// Group placement note: a 256-node group in this shape spans two `B`
/// planes, so the two groups sit on opposite `A` faces of the torus (one
/// corner to the other end along the longest-stride dimension), paired
/// identically. This is the collision-free layout whose direct baseline
/// plateaus at the single-path peak (the paper's ≈1.58 GB/s); the
/// distributed proxy search then runs per `B` plane, where every pair of
/// a plane shares one uniform displacement.
pub fn fig6_point(cache: &PlanCache, bytes: u64) -> SweepPoint {
    let machine = cache.machine(standard_shape(2048).unwrap(), &SimConfig::default());
    let n = machine.shape().num_nodes();
    let sources: Vec<NodeId> = (0..256).map(NodeId).collect();
    // The A-opposed slab: same B/C/D/E footprint, A = 3.
    let dests: Vec<NodeId> = (3 * n / 4..3 * n / 4 + 256).map(NodeId).collect();

    let plane0: (Vec<NodeId>, Vec<NodeId>) =
        (sources[..128].to_vec(), dests[..128].to_vec());
    let plane1: (Vec<NodeId>, Vec<NodeId>) =
        (sources[128..].to_vec(), dests[128..].to_vec());

    let cfg = ProxySearchConfig::default();
    let planes: Vec<Plane> = [plane0, plane1]
            .into_iter()
            .map(|(s, d)| {
                let groups = cache.proxy_groups(machine.shape(), Zone::Z2, &s, &d, &cfg);
                assert!(groups.len() >= 3, "fig6 expects 3 proxy groups per plane");
                (s, d, groups)
            })
            .collect();

    let npairs = sources.len() as f64;
    let mut pd = Program::new(&machine);
    let mut direct_tokens = Vec::new();
    for (s, d, _) in &planes {
        direct_tokens.extend(plan_group_direct(&mut pd, s, d, bytes).tokens);
    }
    let rep = pd.run();
    let direct = bytes as f64 * npairs / rep.last_delivery(&direct_tokens) / npairs;

    let mut pm = Program::new(&machine);
    let mut multi_tokens = Vec::new();
    for (s, d, groups) in &planes {
        multi_tokens.extend(
            plan_group_via(
                &mut pm,
                s,
                d,
                bytes,
                groups,
                false,
                &MultipathOptions::default(),
            )
            .tokens,
        );
    }
    let rep = pm.run();
    let multipath = bytes as f64 * npairs / rep.last_delivery(&multi_tokens) / npairs;
    SweepPoint {
        bytes,
        direct,
        multipath,
    }
}

/// Figure 6 over a whole size sweep (sequential; see [`fig6_point`]).
pub fn fig6_sweep(sizes: &[u64]) -> Vec<SweepPoint> {
    let cache = PlanCache::new();
    sizes.iter().map(|&b| fig6_point(&cache, b)).collect()
}

fn group_sweep(
    machine: &Machine,
    sources: &[NodeId],
    dests: &[NodeId],
    groups: &[ProxyGroup],
    include_direct: bool,
    sizes: &[u64],
) -> Vec<SweepPoint> {
    let npairs = sources.len() as f64;
    sizes
        .iter()
        .map(|&bytes| {
            let mut pd = Program::new(machine);
            let hd = plan_group_direct(&mut pd, sources, dests, bytes);
            let direct = hd.throughput(&pd.run()) / npairs;

            let mut pm = Program::new(machine);
            let hm = plan_group_via(
                &mut pm,
                sources,
                dests,
                bytes,
                groups,
                include_direct,
                &MultipathOptions::default(),
            );
            let multipath = hm.throughput(&pm.run()) / npairs;
            SweepPoint {
                bytes,
                direct,
                multipath,
            }
        })
        .collect()
}

/// One Figure-7 series: a proxy-group count and its per-pair throughputs.
#[derive(Debug, Clone)]
pub struct Fig7Series {
    pub label: String,
    pub groups_used: usize,
    pub include_direct: bool,
    pub throughput: Vec<f64>,
}

/// Figure 7: two groups of 32 nodes in the 512-node `4x4x4x4x2`
/// partition; vary the number of proxy groups (2, 3, 4, and 4+direct as
/// the over-provisioned "5th group is the source itself" case) against
/// the no-proxy baseline.
///
/// The first groups come from the disjointness-checked search; once those
/// are exhausted, forced axis placements (the paper's `A±`, `B±`) pad the
/// list, intentionally allowing the link sharing whose effect the figure
/// demonstrates.
pub fn fig7_sweep(sizes: &[u64]) -> (Vec<f64>, Vec<Fig7Series>) {
    let cache = PlanCache::new();
    let points: Vec<(f64, Vec<f64>)> = sizes.iter().map(|&b| fig7_point(&cache, b)).collect();
    let baseline: Vec<f64> = points.iter().map(|p| p.0).collect();
    let series = fig7_series_labels()
        .into_iter()
        .enumerate()
        .map(|(i, (label, groups_used, include_direct))| Fig7Series {
            label,
            groups_used,
            include_direct,
            throughput: points.iter().map(|p| p.1[i]).collect(),
        })
        .collect();
    (baseline, series)
}

/// The fixed Figure-7 series: `(label, groups used, include direct)`.
pub fn fig7_series_labels() -> Vec<(String, usize, bool)> {
    [(2usize, false), (3, false), (4, false), (4, true)]
        .into_iter()
        .map(|(count, include_direct)| {
            let label = if include_direct {
                "5 groups (4 + direct)".to_string()
            } else {
                format!("{count} groups of proxies")
            };
            (label, count, include_direct)
        })
        .collect()
}

/// The Figure-7 proxy-group pool: the disjointness-checked search padded
/// to 4 groups with forced `A±`/`B±` placements.
fn fig7_pool(cache: &PlanCache, machine: &Machine, sources: &[NodeId], dests: &[NodeId]) -> Vec<ProxyGroup> {
    let mut pool = cache
        .proxy_groups(
            machine.shape(),
            Zone::Z2,
            sources,
            dests,
            &ProxySearchConfig {
                max_proxies: 4,
                ..Default::default()
            },
        )
        .as_ref()
        .clone();
    // Pad to 4 groups with forced axis placements (the paper's A±/B±
    // directions at offset 1) not already used by the search. These extra
    // groups are not fully link-disjoint — that is the point of the
    // figure: each added path beyond the disjoint set shares links with
    // an existing one.
    let forced = [
        (Direction::new(Dim::A, Sign::Minus), 1u16),
        (Direction::new(Dim::B, Sign::Minus), 1),
        (Direction::new(Dim::A, Sign::Plus), 1),
        (Direction::new(Dim::B, Sign::Plus), 1),
    ];
    for placement in forced {
        if pool.len() >= 4 {
            break;
        }
        if pool
            .iter()
            .any(|g| g.direction == placement.0 && g.offset == placement.1)
        {
            continue;
        }
        pool.extend(proxy_groups_along(machine.shape(), sources, &[placement]));
    }
    assert!(pool.len() >= 4);
    pool
}

/// One Figure-7 point: `(no-proxy baseline, per-series throughput)` at
/// one message size, in [`fig7_series_labels`] order.
pub fn fig7_point(cache: &PlanCache, bytes: u64) -> (f64, Vec<f64>) {
    let machine = cache.machine(standard_shape(512).unwrap(), &SimConfig::default());
    let (sources, dests) = corner_groups(&machine, 32);
    let pool = fig7_pool(cache, &machine, &sources, &dests);

    let npairs = sources.len() as f64;
    let mut pd = Program::new(&machine);
    let hd = plan_group_direct(&mut pd, &sources, &dests, bytes);
    let baseline = hd.throughput(&pd.run()) / npairs;

    let series = fig7_series_labels()
        .into_iter()
        .map(|(_, count, include_direct)| {
            let groups = &pool[..count];
            group_sweep(&machine, &sources, &dests, groups, include_direct, &[bytes])[0]
                .multipath
        })
        .collect();
    (baseline, series)
}

/// The crossover point of a sweep: the smallest size where multipath
/// overtakes direct, with the direct throughput there (the paper annotates
/// Fig. 5 with "(256KB, 1.4GB/s)" and Fig. 6 with "(512KB, 1.58GB/s)").
pub fn crossover(points: &[SweepPoint]) -> Option<(u64, f64)> {
    points
        .iter()
        .find(|p| p.multipath >= p.direct)
        .map(|p| (p.bytes, p.direct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        // Coarse sweep to keep the test fast.
        let sizes = [64 << 10, 256 << 10, 1 << 20, 16 << 20, 128 << 20];
        let pts = fig5_sweep(&sizes);

        // Small messages: direct wins.
        assert!(pts[0].direct > pts[0].multipath);
        // Large messages: proxies win by ~2x.
        let last = pts.last().unwrap();
        let speedup = last.multipath / last.direct;
        assert!(
            (1.6..=2.3).contains(&speedup),
            "128MB speedup {speedup:.2} out of range"
        );
        // Direct plateaus near the 1.6 GB/s protocol cap.
        assert!((1.4e9..=1.65e9).contains(&last.direct), "{}", last.direct);
        // Proxy plateau near 3.2 GB/s.
        assert!(
            (2.6e9..=3.4e9).contains(&last.multipath),
            "{}",
            last.multipath
        );
    }

    #[test]
    fn fig5_crossover_near_256kb() {
        let sizes: Vec<u64> = crate::table::paper_size_sweep();
        let pts = fig5_sweep(&sizes);
        let (bytes, thr) = crossover(&pts).expect("multipath must eventually win");
        assert!(
            (64 << 10..=1 << 20).contains(&bytes),
            "crossover {bytes} too far from 256KB"
        );
        assert!(
            (0.9e9..=1.65e9).contains(&thr),
            "crossover throughput {thr} too far from 1.4 GB/s"
        );
    }

    #[test]
    fn fig7_more_groups_help_then_hurt() {
        let sizes = [32u64 << 20];
        let (baseline, series) = fig7_sweep(&sizes);
        let b = baseline[0];
        let t: Vec<f64> = series.iter().map(|s| s.throughput[0]).collect();
        // 3 groups better than 2.
        assert!(t[1] > t[0], "3 groups {:.3e} !> 2 groups {:.3e}", t[1], t[0]);
        // 3+ groups beat the no-proxy baseline.
        assert!(t[1] > b);
        // Over-provisioning (4 + direct) is worse than the best setting.
        let best = t[..3].iter().cloned().fold(0.0, f64::max);
        assert!(
            t[3] < best,
            "5th path should degrade: {:.3e} !< {:.3e}",
            t[3],
            best
        );
    }

    #[test]
    fn crossover_helper() {
        let pts = vec![
            SweepPoint { bytes: 1, direct: 10.0, multipath: 5.0 },
            SweepPoint { bytes: 2, direct: 10.0, multipath: 15.0 },
        ];
        assert_eq!(crossover(&pts), Some((2, 10.0)));
        assert_eq!(crossover(&pts[..1]), None);
    }
}
