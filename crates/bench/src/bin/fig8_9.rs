//! Figures 8 and 9: histograms of the per-rank data sizes of the two
//! sparse patterns for 1,024 processes (bins of 1 MB, sizes 0–8 MB).
//!
//! Pattern 1 (Fig. 8): uniform sizes — a flat histogram.
//! Pattern 2 (Fig. 9): Pareto sizes — most ranks near zero, a small spike
//! at the 8 MB cap.

use bgq_bench::{Cli, Table};
use bgq_workloads::{pareto_sizes, uniform_sizes, Histogram, ParetoParams, DEFAULT_MAX_BYTES};

fn print_hist(cli: &Cli, title: &str, sizes: &[u64]) {
    println!("{title}");
    let h = Histogram::build(sizes, 1 << 20);
    let mut t = Table::new(&["bin (MB)", "ranks", "bar"]);
    for (start, end, count) in h.rows() {
        let bar = "#".repeat((count as usize) / 8);
        t.row(vec![
            format!("{}-{}", start >> 20, end >> 20),
            count.to_string(),
            bar,
        ]);
    }
    cli.emit(&t);
    let total: u64 = sizes.iter().sum();
    println!(
        "total data: {:.2} GB ({:.0}% of dense)\n",
        total as f64 / 1e9,
        100.0 * bgq_workloads::sparsity_fraction(sizes, DEFAULT_MAX_BYTES)
    );
}

fn main() {
    let cli = Cli::parse();
    const RANKS: u32 = 1024;

    let p1 = uniform_sizes(RANKS, DEFAULT_MAX_BYTES, 20140901);
    print_hist(
        &cli,
        "Figure 8: Pattern 1 histogram (uniform 0-8MB, 1,024 processes)",
        &p1,
    );

    let p2 = pareto_sizes(RANKS, &ParetoParams::default(), 20140902);
    print_hist(
        &cli,
        "Figure 9: Pattern 2 histogram (Pareto, 1,024 processes)",
        &p2,
    );
}
