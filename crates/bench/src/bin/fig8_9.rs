//! Figures 8 and 9: histograms of the per-rank data sizes of the two
//! sparse patterns for 1,024 processes (bins of 1 MB, sizes 0–8 MB).
//!
//! Pattern 1 (Fig. 8): uniform sizes — a flat histogram.
//! Pattern 2 (Fig. 9): Pareto sizes — most ranks near zero, a small spike
//! at the 8 MB cap.

use bgq_bench::experiments::PatternHistogram;
use bgq_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let session = args.session();

    println!("Figure 8: Pattern 1 histogram (uniform 0-8MB, 1,024 processes)");
    session.report(&PatternHistogram::fig8(), args.csv);

    println!("Figure 9: Pattern 2 histogram (Pareto, 1,024 processes)");
    session.report(&PatternHistogram::fig9(), args.csv);
}
