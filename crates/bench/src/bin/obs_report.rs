//! Inspect and validate observability artifacts.
//!
//! ```text
//! cargo run --release -p bgq-bench --bin obs_report -- [--check] FILE...
//! ```
//!
//! Files ending in `.csv` are treated as metrics snapshots
//! (`name,value` / histogram rows): the report prints the planner
//! decision and cache counters, checks the rows are name-sorted and
//! duplicate-free, and shouts if `comm.transfers_undelivered` is
//! non-zero — a stalled run must never look like a quiet success.
//! Files ending in `.json` are treated as Chrome traces and validated
//! as RFC 8259 JSON with the expected trace-event envelope.
//!
//! With `--check`, any problem (unparsable JSON, unsorted/duplicate
//! CSV, undelivered transfers) exits non-zero — the mode `just obs`
//! and CI use.

use std::process::ExitCode;

/// One validated artifact: its path and the problems found in it.
struct Checked {
    path: String,
    problems: Vec<String>,
}

fn check_metrics_csv(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    // (kind, name) per row, in file order — must be strictly increasing.
    let mut keys: Vec<(&str, &str)> = Vec::new();
    let mut undelivered: u64 = 0;
    let mut planner = Vec::new();
    let mut cache = Vec::new();
    let mut comm = Vec::new();
    for (lineno, line) in contents.lines().enumerate() {
        if line.is_empty() || (lineno == 0 && line == "kind,name,value") {
            continue;
        }
        let mut fields = line.splitn(3, ',');
        let (Some(kind), Some(name), Some(value)) =
            (fields.next(), fields.next(), fields.next())
        else {
            problems.push(format!("line {}: not kind,name,value: {line:?}", lineno + 1));
            continue;
        };
        keys.push((kind, name));
        if name == "comm.transfers_undelivered" {
            undelivered = value.parse().unwrap_or(u64::MAX);
        }
        if name.starts_with("planner.") {
            planner.push((name, value));
        } else if name.starts_with("cache.") {
            cache.push((name, value));
        } else if name.starts_with("comm.") {
            comm.push((name, value));
        }
    }
    for w in keys.windows(2) {
        if w[0] >= w[1] {
            problems.push(format!(
                "rows not sorted/deduplicated: {:?} then {:?}",
                w[0], w[1]
            ));
            break;
        }
    }

    println!("{path}: {} metric row(s)", keys.len());
    for (title, rows) in [("planner", &planner), ("cache", &cache), ("comm", &comm)] {
        if !rows.is_empty() {
            println!("  {title}:");
            for (name, value) in rows {
                println!("    {name} = {value}");
            }
        }
    }
    if undelivered > 0 {
        println!("  *** WARNING: {undelivered} transfer(s) UNDELIVERED — a run stalled ***");
        problems.push(format!("{undelivered} undelivered transfer(s)"));
    }
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn check_trace_json(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    if let Err(e) = bgq_obs::json::validate(contents) {
        problems.push(format!("invalid JSON: {e}"));
    }
    if !contents.contains("\"traceEvents\"") {
        problems.push("missing \"traceEvents\" envelope".to_string());
    }
    let events = contents.matches("\"ph\":").count();
    println!("{path}: {events} trace event(s)");
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn main() -> ExitCode {
    let mut strict = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => strict = true,
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: obs_report [--check] FILE...  (.csv = metrics, .json = trace)");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let checked = if path.ends_with(".json") {
            check_trace_json(path, &contents)
        } else {
            check_metrics_csv(path, &contents)
        };
        for p in &checked.problems {
            eprintln!("{}: PROBLEM: {p}", checked.path);
        }
        failed |= !checked.problems.is_empty();
    }
    if strict && failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
