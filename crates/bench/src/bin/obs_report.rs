//! Inspect and validate observability artifacts.
//!
//! ```text
//! cargo run --release -p bgq-bench --bin obs_report -- [--check] FILE...
//! cargo run --release -p bgq-bench --bin obs_report -- [--check] --diff NEW BASELINE
//! ```
//!
//! Files ending in `.csv` are treated as metrics snapshots
//! (`name,value` / histogram rows): the report prints the planner
//! decision and cache counters, checks the rows are name-sorted and
//! duplicate-free, and shouts if `comm.transfers_undelivered` is
//! non-zero — a stalled run must never look like a quiet success.
//! Files ending in `.json` are treated as Chrome traces — unless they
//! carry the `"bgq_profile"` schema key, in which case they are parsed
//! as bottleneck-attribution profiles, their accounting invariants
//! checked ([`bgq_obs::profile::RunProfile::validate`]), and their
//! per-run bottleneck summary printed.
//!
//! `--diff NEW BASELINE` compares two profile artifacts (makespan
//! drift, transfer-count changes, bottleneck-link set changes, >1%
//! per-link blame drift) — the regression gate `just profile` runs
//! against the committed `results/BENCH_*.json` baselines.
//!
//! With `--check`, any problem (unparsable JSON, unsorted/duplicate
//! CSV, undelivered transfers, profile diffs) exits non-zero — the
//! mode `just obs` / `just profile` and CI use.

use bgq_obs::ProfileArtifact;
use std::process::ExitCode;

/// One validated artifact: its path and the problems found in it.
struct Checked {
    path: String,
    problems: Vec<String>,
}

fn check_metrics_csv(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    // (kind, name) per row, in file order — must be strictly increasing.
    let mut keys: Vec<(&str, &str)> = Vec::new();
    let mut undelivered: u64 = 0;
    let mut planner = Vec::new();
    let mut cache = Vec::new();
    let mut comm = Vec::new();
    for (lineno, line) in contents.lines().enumerate() {
        if line.is_empty() || (lineno == 0 && line == "kind,name,value") {
            continue;
        }
        let mut fields = line.splitn(3, ',');
        let (Some(kind), Some(name), Some(value)) =
            (fields.next(), fields.next(), fields.next())
        else {
            problems.push(format!("line {}: not kind,name,value: {line:?}", lineno + 1));
            continue;
        };
        keys.push((kind, name));
        if name == "comm.transfers_undelivered" {
            undelivered = value.parse().unwrap_or(u64::MAX);
        }
        if name.starts_with("planner.") {
            planner.push((name, value));
        } else if name.starts_with("cache.") {
            cache.push((name, value));
        } else if name.starts_with("comm.") {
            comm.push((name, value));
        }
    }
    for w in keys.windows(2) {
        if w[0] >= w[1] {
            problems.push(format!(
                "rows not sorted/deduplicated: {:?} then {:?}",
                w[0], w[1]
            ));
            break;
        }
    }

    println!("{path}: {} metric row(s)", keys.len());
    for (title, rows) in [("planner", &planner), ("cache", &cache), ("comm", &comm)] {
        if !rows.is_empty() {
            println!("  {title}:");
            for (name, value) in rows {
                println!("    {name} = {value}");
            }
        }
    }
    if undelivered > 0 {
        println!("  *** WARNING: {undelivered} transfer(s) UNDELIVERED — a run stalled ***");
        problems.push(format!("{undelivered} undelivered transfer(s)"));
    }
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn check_profile_json(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    match ProfileArtifact::from_json(contents) {
        Ok(art) => {
            if let Err(e) = art.validate() {
                problems.push(format!("accounting invariant broken: {e}"));
            }
            println!("{path}: profile with {} run(s)", art.runs.len());
            for run in &art.runs {
                let undelivered = run.transfers.iter().filter(|t| !t.delivered).count();
                println!(
                    "  {}: {} transfer(s), end {:?} s, network-limited {:.6} s",
                    run.name,
                    run.transfers.len(),
                    run.end_time,
                    run.total_network_limited(),
                );
                for (label, secs) in run.top_bottlenecks(3) {
                    println!("    bottleneck {label}: {secs:.6} s");
                }
                if undelivered > 0 {
                    println!("  *** WARNING: {undelivered} transfer(s) UNDELIVERED ***");
                    problems.push(format!("{undelivered} undelivered transfer(s) in {}", run.name));
                }
            }
        }
        Err(e) => problems.push(format!("invalid profile: {e}")),
    }
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn diff_profiles(new_path: &str, base_path: &str) -> Result<Vec<String>, String> {
    let read = |p: &str| -> Result<ProfileArtifact, String> {
        let contents = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        ProfileArtifact::from_json(&contents).map_err(|e| format!("{p}: {e}"))
    };
    Ok(read(new_path)?.diff(&read(base_path)?))
}

fn check_trace_json(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    if let Err(e) = bgq_obs::json::validate(contents) {
        problems.push(format!("invalid JSON: {e}"));
    }
    if !contents.contains("\"traceEvents\"") {
        problems.push("missing \"traceEvents\" envelope".to_string());
    }
    let events = contents.matches("\"ph\":").count();
    println!("{path}: {events} trace event(s)");
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn main() -> ExitCode {
    let mut strict = false;
    let mut diff = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => strict = true,
            "--diff" => diff = true,
            _ => paths.push(arg),
        }
    }

    if diff {
        if paths.len() != 2 {
            eprintln!("usage: obs_report [--check] --diff NEW BASELINE");
            return ExitCode::from(2);
        }
        let lines = match diff_profiles(&paths[0], &paths[1]) {
            Ok(lines) => lines,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if lines.is_empty() {
            println!("{} matches baseline {}", paths[0], paths[1]);
            return ExitCode::SUCCESS;
        }
        println!("{} vs baseline {}:", paths[0], paths[1]);
        for l in &lines {
            println!("  {l}");
        }
        return if strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if paths.is_empty() {
        eprintln!(
            "usage: obs_report [--check] FILE...  (.csv = metrics, .json = trace or profile)"
        );
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        let checked = if contents.contains("\"bgq_profile\"") {
            check_profile_json(path, &contents)
        } else if path.ends_with(".json") {
            check_trace_json(path, &contents)
        } else {
            check_metrics_csv(path, &contents)
        };
        for p in &checked.problems {
            eprintln!("{}: PROBLEM: {p}", checked.path);
        }
        failed |= !checked.problems.is_empty();
    }
    if strict && failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
