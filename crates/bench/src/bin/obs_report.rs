//! Inspect and validate observability artifacts.
//!
//! ```text
//! cargo run --release -p bgq-bench --bin obs_report -- [--check] FILE...
//! cargo run --release -p bgq-bench --bin obs_report -- [--check] --diff NEW BASELINE
//! cargo run --release -p bgq-bench --bin obs_report -- [--check] --cross MANIFEST PROFILE SCENARIO
//! ```
//!
//! Files ending in `.csv` are treated as metrics snapshots
//! (`name,value` / histogram rows): the report prints the planner
//! decision and cache counters, checks the rows are name-sorted and
//! duplicate-free, and shouts if `comm.transfers_undelivered` is
//! non-zero — a stalled run must never look like a quiet success.
//! Files ending in `.json` are treated as Chrome traces — unless they
//! carry the `"bgq_profile"` schema key, in which case they are parsed
//! as bottleneck-attribution profiles, their accounting invariants
//! checked ([`bgq_obs::profile::RunProfile::validate`]), and their
//! per-run bottleneck summary printed — or the `"bgq_manifest"` key,
//! which makes them run-ledger manifests: parsed, structurally
//! validated, round-trip checked, and summarized per scenario.
//!
//! `--diff NEW BASELINE` compares two profile artifacts (makespan
//! drift, transfer-count changes, bottleneck-link set changes, >1%
//! per-link blame drift) — the regression gate `just profile` runs
//! against the committed `results/BENCH_*.json` baselines.
//!
//! `--cross MANIFEST PROFILE SCENARIO` cross-checks a ledger manifest
//! against a profile artifact of the same scenario: every
//! `profile.<run>.end_time` metric in the manifest must agree with the
//! profile's run end time to within 0.1% — a louder disagreement means
//! the two artifacts describe different executions and is reported as
//! a problem, never silently passed.
//!
//! With `--check`, any problem (unsorted/duplicate CSV, undelivered
//! transfers, profile diffs, manifest/profile disagreement) exits
//! non-zero — the mode `just obs` / `just profile` / `just sentinel`
//! and CI use. Artifacts that cannot be understood at all — empty or
//! truncated files, invalid JSON, JSON with none of the recognized
//! schema keys — exit non-zero with an error naming the offending path
//! even without `--check`: an unreadable artifact must never look like
//! a quiet success.

use bgq_obs::{ProfileArtifact, RunManifest};
use std::process::ExitCode;

/// One validated artifact: its path and the problems found in it.
#[derive(Debug)]
struct Checked {
    path: String,
    problems: Vec<String>,
}

/// Split one `kind,name,value` row, honoring RFC-4180 quoting on the
/// name field (labels may legitimately contain commas or quotes; the
/// snapshot serializer quotes them). Returns the *unescaped* name.
fn split_metrics_row(line: &str) -> Option<(&str, String, &str)> {
    let (kind, rest) = line.split_once(',')?;
    if let Some(quoted) = rest.strip_prefix('"') {
        // Scan for the closing quote, un-doubling inner quote pairs.
        let mut name = String::new();
        let mut chars = quoted.char_indices();
        while let Some((i, c)) = chars.next() {
            if c != '"' {
                name.push(c);
            } else if let Some((_, '"')) = chars.next() {
                name.push('"');
            } else {
                // Closing quote: the value follows after a comma.
                let value = quoted.get(i + 1..)?.strip_prefix(',')?;
                return Some((kind, name, value));
            }
        }
        None
    } else {
        let (name, value) = rest.split_once(',')?;
        Some((kind, name.to_string(), value))
    }
}

fn check_metrics_csv(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    // (kind, name) per row, in file order — must be strictly increasing.
    let mut keys: Vec<(String, String)> = Vec::new();
    let mut undelivered: u64 = 0;
    let mut planner = Vec::new();
    let mut cache = Vec::new();
    let mut comm = Vec::new();
    for (lineno, line) in contents.lines().enumerate() {
        if line.is_empty() || (lineno == 0 && line == "kind,name,value") {
            continue;
        }
        let Some((kind, name, value)) = split_metrics_row(line) else {
            problems.push(format!("line {}: not kind,name,value: {line:?}", lineno + 1));
            continue;
        };
        keys.push((kind.to_string(), name.clone()));
        if name == "comm.transfers_undelivered" {
            undelivered = value.parse().unwrap_or(u64::MAX);
        }
        if name.starts_with("planner.") {
            planner.push((name, value.to_string()));
        } else if name.starts_with("cache.") {
            cache.push((name, value.to_string()));
        } else if name.starts_with("comm.") {
            comm.push((name, value.to_string()));
        }
    }
    for w in keys.windows(2) {
        if w[0] >= w[1] {
            problems.push(format!(
                "rows not sorted/deduplicated: {:?} then {:?}",
                w[0], w[1]
            ));
            break;
        }
    }

    println!("{path}: {} metric row(s)", keys.len());
    for (title, rows) in [("planner", &planner), ("cache", &cache), ("comm", &comm)] {
        if !rows.is_empty() {
            println!("  {title}:");
            for (name, value) in rows {
                println!("    {name} = {value}");
            }
        }
    }
    if undelivered > 0 {
        println!("  *** WARNING: {undelivered} transfer(s) UNDELIVERED — a run stalled ***");
        problems.push(format!("{undelivered} undelivered transfer(s)"));
    }
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn check_profile_json(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    match ProfileArtifact::from_json(contents) {
        Ok(art) => {
            if let Err(e) = art.validate() {
                problems.push(format!("accounting invariant broken: {e}"));
            }
            println!("{path}: profile with {} run(s)", art.runs.len());
            for run in &art.runs {
                let undelivered = run.transfers.iter().filter(|t| !t.delivered).count();
                println!(
                    "  {}: {} transfer(s), end {:?} s, network-limited {:.6} s",
                    run.name,
                    run.transfers.len(),
                    run.end_time,
                    run.total_network_limited(),
                );
                for (label, secs) in run.top_bottlenecks(3) {
                    println!("    bottleneck {label}: {secs:.6} s");
                }
                if undelivered > 0 {
                    println!("  *** WARNING: {undelivered} transfer(s) UNDELIVERED ***");
                    problems.push(format!("{undelivered} undelivered transfer(s) in {}", run.name));
                }
            }
        }
        Err(e) => problems.push(format!("invalid profile: {e}")),
    }
    Checked {
        path: path.to_string(),
        problems,
    }
}

fn check_manifest_json(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    match RunManifest::from_json(contents) {
        Ok(m) => {
            if m.to_json() != contents {
                problems.push(
                    "manifest does not re-serialize byte-exactly (hand-edited?)".to_string(),
                );
            }
            println!(
                "{path}: manifest {} with {} scenario(s)",
                m.fingerprint(),
                m.scenarios.len()
            );
            for s in &m.scenarios {
                println!(
                    "  {}: {} config key(s), {} metric(s), {} blame entr(ies)",
                    s.name,
                    s.config.len(),
                    s.metrics.len(),
                    s.blame.len()
                );
                // Warn but don't fail: some scenarios deliberately run
                // a doomed route (resilience cuts the direct path), and
                // the sentinel diff already pins undelivered counts
                // exactly — growth there is a REGRESSED verdict.
                for (name, v) in &s.metrics {
                    if name.contains("undelivered") && *v > 0.0 {
                        println!("  *** WARNING: {}: {name} = {v} ***", s.name);
                    }
                }
            }
        }
        Err(e) => problems.push(format!("invalid manifest: {e}")),
    }
    Checked {
        path: path.to_string(),
        problems,
    }
}

/// Maximum relative disagreement between a manifest's recorded
/// `profile.<run>.end_time` and the profile artifact's own run end time
/// before the pair is reported as inconsistent.
const CROSS_TOLERANCE: f64 = 1e-3;

/// Cross-check a manifest scenario against a profile artifact of the
/// same scenario: the two are written by different code paths, and a
/// total-elapsed disagreement beyond 0.1% means they describe different
/// executions — report it loudly instead of silently passing.
fn cross_check(
    manifest_path: &str,
    profile_path: &str,
    scenario: &str,
) -> Result<Vec<String>, String> {
    let manifest = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("{manifest_path}: {e}"))
        .and_then(|c| RunManifest::from_json(&c).map_err(|e| format!("{manifest_path}: {e}")))?;
    let profile = std::fs::read_to_string(profile_path)
        .map_err(|e| format!("{profile_path}: {e}"))
        .and_then(|c| ProfileArtifact::from_json(&c).map_err(|e| format!("{profile_path}: {e}")))?;
    let s = manifest
        .scenario(scenario)
        .ok_or_else(|| format!("{manifest_path}: no scenario {scenario:?}"))?;

    let mut problems = Vec::new();
    let mut compared = 0;
    for run in &profile.runs {
        let key = format!("profile.{}.end_time", run.name);
        let Some(recorded) = s.metric_value(&key) else {
            problems.push(format!(
                "scenario {scenario}: manifest has no {key} but the profile has run {:?}",
                run.name
            ));
            continue;
        };
        compared += 1;
        let disagreement = if recorded.is_finite() && run.end_time.is_finite() {
            (recorded - run.end_time).abs() / run.end_time.abs().max(f64::MIN_POSITIVE)
        } else if recorded.is_finite() != run.end_time.is_finite() {
            f64::INFINITY
        } else {
            0.0
        };
        if disagreement > CROSS_TOLERANCE {
            problems.push(format!(
                "scenario {scenario}, run {}: manifest says elapsed {recorded:?} but the \
                 profile says {:?} ({:.3}% apart — these artifacts describe different runs)",
                run.name,
                run.end_time,
                disagreement * 100.0
            ));
        }
    }
    if compared == 0 && problems.is_empty() {
        problems.push(format!(
            "scenario {scenario}: nothing to cross-check (no profile.* end_time metrics)"
        ));
    }
    Ok(problems)
}

fn diff_profiles(new_path: &str, base_path: &str) -> Result<Vec<String>, String> {
    let read = |p: &str| -> Result<ProfileArtifact, String> {
        let contents = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        ProfileArtifact::from_json(&contents).map_err(|e| format!("{p}: {e}"))
    };
    Ok(read(new_path)?.diff(&read(base_path)?))
}

fn check_trace_json(path: &str, contents: &str) -> Checked {
    let mut problems = Vec::new();
    if let Err(e) = bgq_obs::json::validate(contents) {
        problems.push(format!("invalid JSON: {e}"));
    }
    if !contents.contains("\"traceEvents\"") {
        problems.push("missing \"traceEvents\" envelope".to_string());
    }
    let events = contents.matches("\"ph\":").count();
    println!("{path}: {events} trace event(s)");
    Checked {
        path: path.to_string(),
        problems,
    }
}

/// Classify one artifact by content and run the matching checker.
///
/// `Err` means the file could not be understood at all — empty,
/// truncated/invalid JSON, or JSON carrying none of the recognized
/// schema keys. The caller treats that as a hard failure regardless of
/// `--check`; the message always names the path.
fn check_artifact(path: &str, contents: &str) -> Result<Checked, String> {
    let body = contents.trim_start();
    if body.is_empty() {
        return Err(format!("{path}: empty artifact (truncated write?)"));
    }
    let looks_json = path.ends_with(".json") || body.starts_with('{') || body.starts_with('[');
    if looks_json {
        if let Err(e) = bgq_obs::json::validate(contents) {
            return Err(format!("{path}: truncated or invalid JSON: {e}"));
        }
        if contents.contains("\"bgq_profile\"") {
            Ok(check_profile_json(path, contents))
        } else if contents.contains("\"bgq_manifest\"") {
            Ok(check_manifest_json(path, contents))
        } else if contents.contains("\"traceEvents\"") {
            Ok(check_trace_json(path, contents))
        } else {
            Err(format!(
                "{path}: unrecognized JSON artifact: expected a Chrome trace \
                 (\"traceEvents\") or a \"bgq_profile\"/\"bgq_manifest\" schema key"
            ))
        }
    } else if path.ends_with(".csv") || body.starts_with("kind,name,value") {
        Ok(check_metrics_csv(path, contents))
    } else {
        Err(format!(
            "{path}: unrecognized artifact: not JSON and not a kind,name,value \
             metrics snapshot"
        ))
    }
}

fn main() -> ExitCode {
    let mut strict = false;
    let mut diff = false;
    let mut cross = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => strict = true,
            "--diff" => diff = true,
            "--cross" => cross = true,
            _ => paths.push(arg),
        }
    }

    if cross {
        if paths.len() != 3 {
            eprintln!("usage: obs_report [--check] --cross MANIFEST PROFILE SCENARIO");
            return ExitCode::from(2);
        }
        let problems = match cross_check(&paths[0], &paths[1], &paths[2]) {
            Ok(problems) => problems,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if problems.is_empty() {
            println!(
                "{} and {} agree on scenario {} (within 0.1%)",
                paths[0], paths[1], paths[2]
            );
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("PROBLEM: {p}");
        }
        return if strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if diff {
        if paths.len() != 2 {
            eprintln!("usage: obs_report [--check] --diff NEW BASELINE");
            return ExitCode::from(2);
        }
        let lines = match diff_profiles(&paths[0], &paths[1]) {
            Ok(lines) => lines,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if lines.is_empty() {
            println!("{} matches baseline {}", paths[0], paths[1]);
            return ExitCode::SUCCESS;
        }
        println!("{} vs baseline {}:", paths[0], paths[1]);
        for l in &lines {
            println!("  {l}");
        }
        return if strict {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    if paths.is_empty() {
        eprintln!(
            "usage: obs_report [--check] FILE...  (.csv = metrics, .json = trace, profile or manifest)"
        );
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut unusable = false;
    for path in &paths {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: {e}");
                unusable = true;
                continue;
            }
        };
        let checked = match check_artifact(path, &contents) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                unusable = true;
                continue;
            }
        };
        for p in &checked.problems {
            eprintln!("{}: PROBLEM: {p}", checked.path);
        }
        failed |= !checked.problems.is_empty();
    }
    if unusable || (strict && failed) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::check_artifact;

    #[test]
    fn empty_and_truncated_artifacts_are_hard_errors_naming_the_path() {
        let e = check_artifact("results/x.json", "").expect_err("empty must not pass");
        assert!(e.contains("results/x.json") && e.contains("empty"), "{e}");
        let e = check_artifact("results/x.json", "  \n\t").expect_err("blank must not pass");
        assert!(e.contains("empty"), "{e}");
        // A write that died mid-stream: valid prefix, no closing brace.
        let e = check_artifact("p.json", "{\"bgq_profile\": 1, \"runs\": [{\"na")
            .expect_err("truncated JSON must not pass");
        assert!(e.contains("p.json") && e.contains("truncated or invalid JSON"), "{e}");
    }

    #[test]
    fn unrecognized_json_names_the_expected_schemas() {
        let e = check_artifact("results/who.json", "{\"something\": []}")
            .expect_err("schema-less JSON must not pass");
        assert!(e.contains("results/who.json"), "{e}");
        assert!(
            e.contains("traceEvents") && e.contains("bgq_profile") && e.contains("bgq_manifest"),
            "the error must say what would have been accepted: {e}"
        );
    }

    #[test]
    fn json_is_sniffed_by_content_not_just_extension() {
        // A JSON body behind a non-.json name still goes down the JSON
        // path (and fails loudly rather than being parsed as CSV).
        assert!(check_artifact("artifact.dat", "{\"something\": 1}").is_err());
        let ok = check_artifact("trace.dat", "{\"traceEvents\": []}").unwrap();
        assert!(ok.problems.is_empty());
    }

    #[test]
    fn recognized_artifacts_still_check_clean() {
        let trace = "{\"traceEvents\": [{\"ph\": \"X\"}]}";
        assert!(check_artifact("t.json", trace).unwrap().problems.is_empty());
        let csv = "kind,name,value\ncounter,comm.transfers_undelivered,0\n";
        assert!(check_artifact("m.csv", csv).unwrap().problems.is_empty());
    }

    #[test]
    fn domain_problems_stay_soft_not_hard() {
        // Malformed *rows* in an otherwise recognizable snapshot are
        // reported as problems (gated by --check), not hard errors.
        let csv = "kind,name,value\nnot-a-row\n";
        let c = check_artifact("m.csv", csv).unwrap();
        assert_eq!(c.problems.len(), 1);
        assert!(c.problems[0].contains("not kind,name,value"));
    }
}
