//! Figure 11: HACC I/O write throughput to the I/O nodes (`/dev/null`),
//! 8,192 → 131,072 cores — customized (dynamic, topology-aware) selection
//! of aggregators vs. default MPI collective I/O.
//!
//! Paper's result: 10% of the generated data (2–85 GB) is written by the
//! ranks in `[0.4N, 0.5N)`; dynamic aggregator selection yields up to 50%
//! higher throughput.

use bgq_bench::experiments::Fig11;
use bgq_bench::{emit_artifacts, fig11_scales, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("Figure 11: HACC I/O write throughput to ION /dev/null");
    let exp = Fig11 {
        scales: fig11_scales(args.max_cores),
    };
    let session = args.session();
    session.report(&exp, args.csv);
    emit_artifacts(&args, &session, "fig11");
}
