//! Figure 11: HACC I/O write throughput to the I/O nodes (`/dev/null`),
//! 8,192 → 131,072 cores — customized (dynamic, topology-aware) selection
//! of aggregators vs. default MPI collective I/O.
//!
//! Paper's result: 10% of the generated data (2–85 GB) is written by the
//! ranks in `[0.4N, 0.5N)`; dynamic aggregator selection yields up to 50%
//! higher throughput.

use bgq_bench::{fig11_point, fig11_scales, fmt_gbs, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let scales = fig11_scales(cli.max_cores);

    println!("Figure 11: HACC I/O write throughput to ION /dev/null");
    let mut t = Table::new(&[
        "cores",
        "data GB",
        "custom aggregators GB/s",
        "default MPI coll. I/O GB/s",
        "improvement",
    ]);
    for &cores in &scales {
        let p = fig11_point(cores);
        t.row(vec![
            cores.to_string(),
            format!("{:.1}", p.total_bytes as f64 / 1e9),
            fmt_gbs(p.ours),
            fmt_gbs(p.baseline),
            format!("{:.2}x", p.ours / p.baseline),
        ]);
        if !cli.csv {
            eprintln!("done: {cores}");
        }
    }
    cli.emit(&t);
    println!("\n[paper: up to ~1.5x improvement from dynamic aggregator selection]");
}
