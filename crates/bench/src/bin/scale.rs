//! Solver scaling sweep: full vs. incremental waterfill re-leveling,
//! plus the sharded executor, on the same sparse pattern,
//! 512 → 8,192 nodes.
//!
//! Usage: `scale [--max-nodes N] [--threads N] [--out PATH] [--report-out PATH]`
//!
//! Writes the machine-readable sweep to `results/BENCH_scale.json`
//! (override with `--out`) and prints a human table. `--threads N`
//! sets the sharded side's worker count (default: the host's available
//! parallelism). `--report-out` additionally writes the wall-clock-free
//! report — byte-identical at any thread count, which is what
//! `just verify`'s sharded-determinism smoke diffs. `--max-nodes 512`
//! is the smoke configuration used by `just bench-smoke`.

use bgq_bench::scale::{scale_json, scale_point_with, scale_report_json, scale_sizes};
use bgq_netsim::SimConfig;

fn main() {
    let mut max_nodes = 8192u32;
    let mut out = String::from("results/BENCH_scale.json");
    let mut report_out: Option<String> = None;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => {
                let v = args.next().expect("--max-nodes needs a value");
                max_nodes = v.parse().unwrap_or_else(|_| panic!("bad --max-nodes {v:?}"));
            }
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = v.parse().unwrap_or_else(|_| panic!("bad --threads {v:?}"));
            }
            "--out" => out = args.next().expect("--out needs a value"),
            "--report-out" => report_out = Some(args.next().expect("--report-out needs a value")),
            other => panic!(
                "unknown flag {other:?} (use --max-nodes N / --threads N / --out PATH / --report-out PATH)"
            ),
        }
    }

    println!("waterfill scaling sweep (full vs. incremental re-leveling, {threads}-thread shards)");
    println!(
        "{:>6} {:>9} {:>7} {:>12} {:>12} {:>9} {:>11} {:>8} {:>8}",
        "nodes", "transfers", "shards", "full ev/s", "incr ev/s", "speedup", "full-levels", "reduced", "par"
    );
    let sim = SimConfig::default();
    let mut points = Vec::new();
    for nodes in scale_sizes(max_nodes) {
        let p = scale_point_with(nodes, &sim, threads);
        println!(
            "{:>6} {:>9} {:>7} {:>12.0} {:>12.0} {:>8.2}x {:>5} -> {:<4} {:>6.1}x {:>7.2}x",
            p.nodes,
            p.transfers,
            p.shards,
            p.full.events_per_sec,
            p.incremental.events_per_sec,
            p.speedup(),
            p.full.full_runs,
            p.incremental.full_runs,
            p.full_run_reduction(),
            p.parallel_speedup()
        );
        points.push(p);
    }

    for p in &points {
        assert!(
            p.incremental.incremental_runs > p.incremental.full_runs,
            "incremental solver showed no benefit at {} nodes ({} incremental vs {} full)",
            p.nodes,
            p.incremental.incremental_runs,
            p.incremental.full_runs
        );
        assert!(
            p.shards > 1,
            "the sweep pattern failed to decompose at {} nodes",
            p.nodes
        );
    }

    let json = scale_json(&points);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");

    if let Some(rp) = report_out {
        let report = scale_report_json(&points);
        if let Some(dir) = std::path::Path::new(&rp).parent() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
        }
        std::fs::write(&rp, &report).unwrap_or_else(|e| panic!("write {rp}: {e}"));
        eprintln!("wrote {rp}");
    }
}
