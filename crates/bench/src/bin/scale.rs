//! Solver scaling sweep: full vs. incremental waterfill re-leveling on
//! the same sparse pattern, 512 → 8,192 nodes.
//!
//! Usage: `scale [--max-nodes N] [--out PATH]`
//!
//! Writes the machine-readable sweep to `results/BENCH_scale.json`
//! (override with `--out`) and prints a human table. `--max-nodes 512`
//! is the smoke configuration used by `just bench-smoke`.

use bgq_bench::scale::{scale_json, scale_point, scale_sizes};

fn main() {
    let mut max_nodes = 8192u32;
    let mut out = String::from("results/BENCH_scale.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => {
                let v = args.next().expect("--max-nodes needs a value");
                max_nodes = v.parse().unwrap_or_else(|_| panic!("bad --max-nodes {v:?}"));
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => panic!("unknown flag {other:?} (use --max-nodes N / --out PATH)"),
        }
    }

    println!("incremental waterfill scaling sweep (full vs. incremental re-leveling)");
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>9} {:>11} {:>8}",
        "nodes", "transfers", "full ev/s", "incr ev/s", "speedup", "full-levels", "reduced"
    );
    let mut points = Vec::new();
    for nodes in scale_sizes(max_nodes) {
        let p = scale_point(nodes);
        println!(
            "{:>6} {:>9} {:>12.0} {:>12.0} {:>8.2}x {:>5} -> {:<4} {:>6.1}x",
            p.nodes,
            p.transfers,
            p.full.events_per_sec,
            p.incremental.events_per_sec,
            p.speedup(),
            p.full.full_runs,
            p.incremental.full_runs,
            p.full_run_reduction()
        );
        points.push(p);
    }

    for p in &points {
        assert!(
            p.incremental.incremental_runs > p.incremental.full_runs,
            "incremental solver showed no benefit at {} nodes ({} incremental vs {} full)",
            p.nodes,
            p.incremental.incremental_runs,
            p.incremental.full_runs
        );
    }

    let json = scale_json(&points);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
}
