//! Path-diversity analysis: how many link-disjoint single-proxy paths
//! each partition admits between representative endpoint pairs, versus
//! the directional heuristic's finding and the theoretical ceiling.
//!
//! Explains the proxy-count limits behind Figures 5–7: the k/2 speedup
//! only materializes up to the pair's topological diversity.

use bgq_bench::experiments::Diversity;
use bgq_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    println!("Link-disjoint single-proxy path diversity (corner-to-corner pairs)");
    args.session().report(&Diversity::default(), args.csv);
}
