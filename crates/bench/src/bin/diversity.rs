//! Path-diversity analysis: how many link-disjoint single-proxy paths
//! each partition admits between representative endpoint pairs, versus
//! the directional heuristic's finding and the theoretical ceiling.
//!
//! Explains the proxy-count limits behind Figures 5–7: the k/2 speedup
//! only materializes up to the pair's topological diversity.

use bgq_bench::{Cli, Table};
use bgq_torus::{standard_shape, NodeId, Zone};
use sdm_core::{diversity_report, find_proxies, CostModel, ProxySearchConfig};
use std::collections::HashSet;

fn main() {
    let cli = Cli::parse();
    let model = CostModel::bgq_defaults();

    println!("Link-disjoint single-proxy path diversity (corner-to-corner pairs)");
    let mut t = Table::new(&[
        "partition",
        "shape",
        "heuristic proxies",
        "exhaustive disjoint",
        "ceiling (2L)",
        "mean detour hops",
        "k/2 potential",
    ]);
    for nodes in [128u32, 256, 512, 1024, 2048] {
        let shape = standard_shape(nodes).unwrap();
        let (src, dst) = (NodeId(0), NodeId(shape.num_nodes() - 1));
        let heuristic = find_proxies(
            &shape,
            Zone::Z2,
            src,
            dst,
            &HashSet::new(),
            &ProxySearchConfig::default(),
        )
        .len();
        let r = diversity_report(&shape, Zone::Z2, src, dst);
        t.row(vec![
            nodes.to_string(),
            shape.to_string(),
            heuristic.to_string(),
            r.disjoint_paths.to_string(),
            r.upper_bound.to_string(),
            format!("{:.1}", r.mean_detour_hops),
            format!(
                "{:.1}x",
                CostModel::asymptotic_speedup(r.disjoint_paths as u32)
            ),
        ]);
    }
    cli.emit(&t);
    println!(
        "\nmodel: k proxies -> k/2 speedup above the threshold (Eq. 5); \
         4-proxy threshold = {} KB",
        model.threshold_bytes(4).unwrap() >> 10
    );
}
