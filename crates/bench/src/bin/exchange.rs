//! Sparse neighborhood exchange sweep: pattern density × size,
//! 512 → 4,096 nodes, all three algorithms per point.
//!
//! Usage: `exchange [--max-nodes N] [--threads N] [--out PATH]`
//!
//! Writes the machine-readable sweep to `results/BENCH_exchange.json`
//! (override with `--out`) and prints a human table. `--max-nodes 512`
//! is the smoke configuration. At full scale the binary asserts the
//! acceptance bar: proxy multipath ≥1.5× direct aggregate throughput on
//! the disjoint-heavy pattern at 4,096 nodes.

use bgq_bench::exchange::{
    exchange_json, exchange_nodes, exchange_patterns, exchange_point, ExchangePattern,
};
use bgq_bench::{ExchangeSweep, Experiment, ExperimentSession};
use sdm_core::ExchangeAlgorithm;

fn main() {
    let mut max_nodes = 4096u32;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("results/BENCH_exchange.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-nodes" => {
                let v = args.next().expect("--max-nodes needs a value");
                max_nodes = v.parse().unwrap_or_else(|_| panic!("bad --max-nodes {v:?}"));
            }
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                threads = v.parse().unwrap_or_else(|_| panic!("bad --threads {v:?}"));
            }
            "--out" => out = args.next().expect("--out needs a value"),
            other => {
                panic!("unknown flag {other:?} (use --max-nodes N / --threads N / --out PATH)")
            }
        }
    }

    // Human table through the experiment harness (threads fan points
    // out; output is bit-identical for any thread count)…
    let sweep = ExchangeSweep::new(max_nodes);
    let session = ExperimentSession::new(threads);
    let run = session.run(&sweep);
    print!("{}", run.table(&sweep.columns()).render());
    if let Some(footer) = sweep.footer(&run.rows) {
        println!("{footer}");
    }

    // …and the artifact from the same cache (the sweep points are
    // memoized per machine, so this re-walk is cheap).
    let mut points = Vec::new();
    for nodes in exchange_nodes(max_nodes) {
        for pattern in exchange_patterns() {
            points.push(exchange_point(session.cache(), nodes, pattern));
        }
    }

    // Acceptance bar: at full scale, batch proxy multipath must beat the
    // all-direct baseline by ≥1.5× on the disjoint-heavy pattern.
    if let Some(big) = points
        .iter()
        .filter(|p| matches!(p.pattern, ExchangePattern::DisjointHeavy { bytes: b } if b >= 32 << 20))
        .max_by_key(|p| p.nodes)
    {
        assert!(
            big.speedup() >= 1.5,
            "proxy multipath speedup {:.2}x < 1.5x on the disjoint-heavy \
             pattern at {} nodes",
            big.speedup(),
            big.nodes
        );
        eprintln!(
            "disjoint-heavy at {} nodes: {:.2}x over direct ({} of {} pairs multipath)",
            big.nodes,
            big.speedup(),
            big.result(ExchangeAlgorithm::ProxyMultipath).pairs_multipath,
            big.pairs
        );
    }

    let json = exchange_json(&points);
    bgq_obs::json::validate(&json).expect("BENCH_exchange.json must be valid JSON");
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
}
