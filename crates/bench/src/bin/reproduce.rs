//! One-command reproduction: runs every figure harness and writes the
//! outputs under `results/`. The weak-scaling figures honour
//! `--max-cores` (default 131,072 — hours of simulation; use
//! `--max-cores 16384` for a coffee-break run).
//!
//! `cargo run --release -p bgq-bench --bin reproduce -- --max-cores 16384`

use bgq_bench::*;
use std::fs;
use std::io::Write as _;

fn write_out(name: &str, contents: &str) {
    fs::create_dir_all("results").expect("create results/");
    let path = format!("results/{name}");
    let mut f = fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    f.write_all(contents.as_bytes()).expect("write results");
    println!("wrote {path}");
}

fn sweep_table(points: &[SweepPoint], multipath_label: &str) -> Table {
    let mut t = Table::new(&["size", "direct GB/s", multipath_label, "speedup"]);
    for p in points {
        t.row(vec![
            fmt_bytes(p.bytes),
            fmt_gbs(p.direct),
            fmt_gbs(p.multipath),
            format!("{:.2}", p.multipath / p.direct),
        ]);
    }
    t
}

fn main() {
    let cli = Cli::parse();
    let sizes = cli.sizes();

    eprintln!("fig5...");
    let points = fig5_sweep(&sizes);
    let mut out = sweep_table(&points, "4 proxies GB/s").render();
    if let Some((b, thr)) = crossover(&points) {
        out.push_str(&format!(
            "\ncrossover: ({}, {} GB/s) [paper: (256K, 1.4)]\n",
            fmt_bytes(b),
            fmt_gbs(thr)
        ));
    }
    write_out("fig5.txt", &out);

    eprintln!("fig6...");
    let points = fig6_sweep(&sizes);
    let mut out = sweep_table(&points, "3 proxy groups GB/s").render();
    if let Some((b, thr)) = crossover(&points) {
        out.push_str(&format!(
            "\ncrossover: ({}, {} GB/s) [paper: (512K, 1.58)]\n",
            fmt_bytes(b),
            fmt_gbs(thr)
        ));
    }
    write_out("fig6.txt", &out);

    eprintln!("fig7...");
    let (baseline, series) = fig7_sweep(&sizes);
    let mut header: Vec<String> = vec!["size".into(), "no proxies".into()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for (i, &bytes) in sizes.iter().enumerate() {
        let mut row = vec![fmt_bytes(bytes), fmt_gbs(baseline[i])];
        row.extend(series.iter().map(|s| fmt_gbs(s.throughput[i])));
        t.row(row);
    }
    write_out("fig7.txt", &t.render());

    eprintln!("fig10 (up to {} cores)...", cli.max_cores);
    let mut t = Table::new(&["cores", "pattern", "data GB", "ours GB/s", "baseline GB/s", "improvement"]);
    for pattern in [Pattern::Uniform, Pattern::Pareto] {
        for &cores in &fig10_scales(cli.max_cores) {
            let p = fig10_point(cores, pattern, 20140900 + cores as u64);
            t.row(vec![
                cores.to_string(),
                pattern.label().to_string(),
                format!("{:.1}", p.total_bytes as f64 / 1e9),
                fmt_gbs(p.ours),
                fmt_gbs(p.baseline),
                format!("{:.2}x", p.ours / p.baseline),
            ]);
            eprintln!("  {} {} done", pattern.label(), cores);
        }
    }
    write_out("fig10.csv", &t.to_csv());

    eprintln!("fig11 (up to {} cores)...", cli.max_cores);
    let mut t = Table::new(&["cores", "data GB", "ours GB/s", "baseline GB/s", "improvement"]);
    for &cores in &fig11_scales(cli.max_cores) {
        let p = fig11_point(cores);
        t.row(vec![
            cores.to_string(),
            format!("{:.1}", p.total_bytes as f64 / 1e9),
            fmt_gbs(p.ours),
            fmt_gbs(p.baseline),
            format!("{:.2}x", p.ours / p.baseline),
        ]);
        eprintln!("  {cores} done");
    }
    write_out("fig11.csv", &t.to_csv());

    println!(
        "\nremaining harnesses (each prints to stdout):\n  \
         cargo run --release -p bgq-bench --bin fig8_9\n  \
         cargo run --release -p bgq-bench --bin thresholds\n  \
         cargo run --release -p bgq-bench --bin utilization\n  \
         cargo run --release -p bgq-bench --bin diversity\n  \
         cargo run --release -p bgq-bench --bin storage"
    );
}
