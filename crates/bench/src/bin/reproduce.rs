//! One-command reproduction: drives every figure [`Experiment`] through a
//! shared [`ExperimentSession`] and writes the outputs under `results/`.
//! The weak-scaling figures honour `--max-cores` (default 131,072 —
//! hours of simulation; use `--max-cores 16384` for a coffee-break run);
//! `--threads N` fans independent points across workers and `--timing`
//! prints per-figure point timings with plan-cache counters.
//!
//! ```text
//! cargo run --release -p bgq-bench --bin reproduce -- --coarse --max-cores 16384 --threads 4
//! ```

use bgq_bench::experiments::{Fig10, Fig11, Fig5, Fig6, Fig7};
use bgq_bench::resilience::{default_sizes, Resilience};
use bgq_bench::runner::{Experiment, ExperimentSession};
use bgq_bench::{fig10_scales, fig11_scales, trace_for, write_artifact, BenchArgs};
use bgq_obs::MetricsSnapshot;
use std::fs;
use std::io::Write as _;

fn write_out(name: &str, contents: &str) {
    fs::create_dir_all("results").expect("create results/");
    let path = format!("results/{name}");
    let mut f = fs::File::create(&path).unwrap_or_else(|e| panic!("create {path}: {e}"));
    f.write_all(contents.as_bytes()).expect("write results");
    println!("wrote {path}");
}

/// Run one experiment on the session and write its table (plus footer for
/// text outputs; CSV files stay machine-readable) to `results/<file>`.
fn run_to_file<E: Experiment>(session: &ExperimentSession, exp: &E, file: &str, csv: bool) {
    eprintln!("{}...", exp.name());
    let run = session.run(exp);
    let table = run.table(&exp.columns());
    let mut out = if csv { table.to_csv() } else { table.render() };
    if !csv {
        if let Some(footer) = exp.footer(&run.rows) {
            out.push_str(&footer);
            out.push('\n');
        }
    }
    if session.timing() {
        eprint!("{}", session.timing_summary(exp.name(), &run));
    }
    write_out(file, &out);
}

/// With `--observe`: write `results/obs/<name>.metrics.csv` (the
/// registry delta this figure contributed since the previous snapshot)
/// and `results/obs/<name>.trace.json` (the figure's representative
/// trace), then advance the snapshot cursor. No-op otherwise.
fn observe_figure(session: &ExperimentSession, prev: &mut Option<MetricsSnapshot>, name: &str) {
    let Some(registry) = session.metrics() else {
        return;
    };
    let snap = registry.snapshot();
    let delta = match prev.as_ref() {
        Some(p) => snap.delta_from(p),
        None => snap.clone(),
    };
    let metrics_path = format!("results/obs/{name}.metrics.csv");
    write_artifact(&metrics_path, &delta.to_csv())
        .unwrap_or_else(|e| panic!("write {metrics_path}: {e}"));
    println!("wrote {metrics_path}");
    if let Some(rec) = trace_for(name, session.cache()) {
        let trace_path = format!("results/obs/{name}.trace.json");
        write_artifact(&trace_path, &rec.to_chrome_json())
            .unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
        println!("wrote {trace_path}");
    }
    // Re-snapshot: trace building itself exercises the planner/cache,
    // and the next figure's delta must not inherit that.
    *prev = Some(registry.snapshot());
}

fn main() {
    let args = BenchArgs::parse();
    let sizes = args.sizes();
    let session = args.session();
    let mut cursor: Option<MetricsSnapshot> = None;

    run_to_file(&session, &Fig5 { sizes: sizes.clone() }, "fig5.txt", false);
    observe_figure(&session, &mut cursor, "fig5");
    run_to_file(&session, &Fig6 { sizes: sizes.clone() }, "fig6.txt", false);
    observe_figure(&session, &mut cursor, "fig6");
    run_to_file(&session, &Fig7 { sizes }, "fig7.txt", false);
    observe_figure(&session, &mut cursor, "fig7");

    run_to_file(
        &session,
        &Resilience::new(default_sizes(), args.seed),
        "resilience.csv",
        true,
    );
    observe_figure(&session, &mut cursor, "resilience");

    eprintln!("weak scaling up to {} cores...", args.max_cores);
    let fig10 = Fig10 {
        scales: fig10_scales(args.max_cores),
    };
    run_to_file(&session, &fig10, "fig10.csv", true);
    observe_figure(&session, &mut cursor, "fig10");
    let fig11 = Fig11 {
        scales: fig11_scales(args.max_cores),
    };
    run_to_file(&session, &fig11, "fig11.csv", true);
    observe_figure(&session, &mut cursor, "fig11");

    println!(
        "\nremaining harnesses (each prints to stdout):\n  \
         cargo run --release -p bgq-bench --bin fig8_9\n  \
         cargo run --release -p bgq-bench --bin thresholds\n  \
         cargo run --release -p bgq-bench --bin utilization\n  \
         cargo run --release -p bgq-bench --bin diversity\n  \
         cargo run --release -p bgq-bench --bin storage"
    );
}
