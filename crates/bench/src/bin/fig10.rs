//! Figure 10: aggregation throughput to the I/O nodes (`/dev/null`) under
//! weak scaling, 2,048 → 131,072 cores, for the two sparse patterns —
//! our topology-aware multipath aggregation vs. default MPI collective
//! I/O.
//!
//! Paper's result: pattern 1 improves ~2x at 2,048 cores growing to ~3x
//! at 131,072; pattern 2 improves ~1.5x growing to ~2x.
//!
//! The full sweep simulates up to 8,192 nodes and takes a while; use
//! `--max-cores 16384` for a quick run.

use bgq_bench::{fig10_point, fig10_scales, fmt_gbs, Cli, Pattern, Table};

fn main() {
    let cli = Cli::parse();
    let scales = fig10_scales(cli.max_cores);

    println!("Figure 10: aggregation throughput to ION /dev/null (weak scaling)");
    let mut t = Table::new(&[
        "cores",
        "pattern",
        "data GB",
        "ours GB/s",
        "MPI coll. I/O GB/s",
        "improvement",
    ]);
    for pattern in [Pattern::Uniform, Pattern::Pareto] {
        for &cores in &scales {
            let p = fig10_point(cores, pattern, 20140900 + cores as u64);
            t.row(vec![
                cores.to_string(),
                pattern.label().to_string(),
                format!("{:.1}", p.total_bytes as f64 / 1e9),
                fmt_gbs(p.ours),
                fmt_gbs(p.baseline),
                format!("{:.2}x", p.ours / p.baseline),
            ]);
            // Stream rows as they complete (large points take minutes).
            if !cli.csv {
                eprintln!("done: {} {}", pattern.label(), cores);
            }
        }
    }
    cli.emit(&t);
    println!(
        "\n[paper: pattern 1 improvement 2x -> 3x with scale; pattern 2 improvement 1.5x -> 2x]"
    );
}
