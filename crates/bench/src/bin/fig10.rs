//! Figure 10: aggregation throughput to the I/O nodes (`/dev/null`) under
//! weak scaling, 2,048 → 131,072 cores, for the two sparse patterns —
//! our topology-aware multipath aggregation vs. default MPI collective
//! I/O.
//!
//! Paper's result: pattern 1 improves ~2x at 2,048 cores growing to ~3x
//! at 131,072; pattern 2 improves ~1.5x growing to ~2x.
//!
//! The full sweep simulates up to 8,192 nodes and takes a while; use
//! `--max-cores 16384` for a quick run, and `--threads N` to fan the
//! points across workers.

use bgq_bench::experiments::Fig10;
use bgq_bench::{emit_artifacts, fig10_scales, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("Figure 10: aggregation throughput to ION /dev/null (weak scaling)");
    let exp = Fig10 {
        scales: fig10_scales(args.max_cores),
    };
    let session = args.session();
    session.report(&exp, args.csv);
    emit_artifacts(&args, &session, "fig10");
}
