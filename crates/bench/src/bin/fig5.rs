//! Figure 5: point-to-point PUT throughput with and without proxies in
//! the 128-node `2x2x4x4x2` partition.
//!
//! Paper's result: direct transfer plateaus at ≈1.6 GB/s; four proxies on
//! `+B, +C, +D, +E` reach ≈3.2 GB/s (2x); the crossover sits at
//! (256 KB, 1.4 GB/s).

use bgq_bench::experiments::Fig5;
use bgq_bench::{emit_artifacts, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("Figure 5: point-to-point PUT throughput w & w/o proxies (2x2x4x4x2, 128 nodes)");
    let session = args.session();
    session.report(&Fig5 { sizes: args.sizes() }, args.csv);
    emit_artifacts(&args, &session, "fig5");
}
