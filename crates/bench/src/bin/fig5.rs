//! Figure 5: point-to-point PUT throughput with and without proxies in
//! the 128-node `2x2x4x4x2` partition.
//!
//! Paper's result: direct transfer plateaus at ≈1.6 GB/s; four proxies on
//! `+B, +C, +D, +E` reach ≈3.2 GB/s (2x); the crossover sits at
//! (256 KB, 1.4 GB/s).

use bgq_bench::{crossover, fig5_sweep, fmt_bytes, fmt_gbs, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.sizes();
    let points = fig5_sweep(&sizes);

    println!("Figure 5: point-to-point PUT throughput w & w/o proxies (2x2x4x4x2, 128 nodes)");
    let mut t = Table::new(&["size", "direct GB/s", "4 proxies GB/s", "speedup"]);
    for p in &points {
        t.row(vec![
            fmt_bytes(p.bytes),
            fmt_gbs(p.direct),
            fmt_gbs(p.multipath),
            format!("{:.2}", p.multipath / p.direct),
        ]);
    }
    cli.emit(&t);

    if let Some((bytes, thr)) = crossover(&points) {
        println!(
            "\ncrossover: ({}, {} GB/s)   [paper: (256K, 1.4 GB/s)]",
            fmt_bytes(bytes),
            fmt_gbs(thr)
        );
    }
    let last = points.last().unwrap();
    println!(
        "plateau: direct {} GB/s [paper ~1.6], proxies {} GB/s [paper ~3.2]",
        fmt_gbs(last.direct),
        fmt_gbs(last.multipath)
    );
}
