//! Resilience experiment: direct vs. fault-aware multipath transfers
//! under time-varying link faults (fault-free / direct-route cut / seeded
//! random failures), on the Fig. 5 pair.
//!
//! The stubborn direct strategy replays the same deterministic route every
//! retry and dies with the route; the health-aware planner snapshots the
//! fault state at each attempt and routes around it. `--seed N` shifts the
//! random scenarios; identical seeds reproduce identical CSV bytes at any
//! `--threads` count.

use bgq_bench::resilience::{default_sizes, Resilience};
use bgq_bench::{emit_artifacts, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!(
        "Resilience: completion and delivery under link faults (2x2x4x4x2, node 0 -> node 127)"
    );
    let session = args.session();
    session.report(&Resilience::new(default_sizes(), args.seed), args.csv);
    emit_artifacts(&args, &session, "resilience");
}
