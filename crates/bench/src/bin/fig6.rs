//! Figure 6: PUT throughput between two groups of 256 nodes each in the
//! 2K-node `4x4x4x16x2` partition, with and without proxy groups.
//!
//! Paper's result: three proxy groups lift the per-pair plateau from
//! ≈1.58 GB/s to ≈2.4 GB/s (1.5x, the k/2 prediction for k = 3); the
//! crossover sits at (512 KB, 1.58 GB/s).

use bgq_bench::experiments::Fig6;
use bgq_bench::{emit_artifacts, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!(
        "Figure 6: PUT throughput w & w/o proxies between 2 groups of 256 nodes (4x4x4x16x2, 2K nodes)"
    );
    let session = args.session();
    session.report(&Fig6 { sizes: args.sizes() }, args.csv);
    emit_artifacts(&args, &session, "fig6");
}
