//! Figure 6: PUT throughput between two groups of 256 nodes each in the
//! 2K-node `4x4x4x16x2` partition, with and without proxy groups.
//!
//! Paper's result: three proxy groups lift the per-pair plateau from
//! ≈1.58 GB/s to ≈2.4 GB/s (1.5x, the k/2 prediction for k = 3); the
//! crossover sits at (512 KB, 1.58 GB/s).

use bgq_bench::{crossover, fig6_sweep, fmt_bytes, fmt_gbs, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.sizes();
    let points = fig6_sweep(&sizes);

    println!(
        "Figure 6: PUT throughput w & w/o proxies between 2 groups of 256 nodes (4x4x4x16x2, 2K nodes)"
    );
    let mut t = Table::new(&["size", "direct GB/s", "3 proxy groups GB/s", "speedup"]);
    for p in &points {
        t.row(vec![
            fmt_bytes(p.bytes),
            fmt_gbs(p.direct),
            fmt_gbs(p.multipath),
            format!("{:.2}", p.multipath / p.direct),
        ]);
    }
    cli.emit(&t);

    if let Some((bytes, thr)) = crossover(&points) {
        println!(
            "\ncrossover: ({}, {} GB/s)   [paper: (512K, 1.58 GB/s)]",
            fmt_bytes(bytes),
            fmt_gbs(thr)
        );
    }
    let last = points.last().unwrap();
    println!(
        "plateau: direct {} GB/s [paper ~1.6], proxy groups {} GB/s [paper ~2.4]",
        fmt_gbs(last.direct),
        fmt_gbs(last.multipath)
    );
}
