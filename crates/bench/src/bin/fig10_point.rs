//! One weak-scaling point of Figure 10 or 11, printed as a single CSV
//! row — lets long sweeps run resumably / incrementally:
//!
//! ```text
//! fig10_point <cores> <uniform|pareto|hacc>
//! ```
//!
//! Uses the same seeds as the `fig10`/`fig11` binaries, so rows compose
//! into the same tables.

use bgq_bench::experiments::fig10_seed;
use bgq_bench::{fig10_point_with, fig11_point_with, BenchArgs, Pattern, PlanCache};

fn main() {
    let args = BenchArgs::parse();
    let (cores, pattern) = match (args.positional.first(), args.positional.get(1)) {
        (Some(c), Some(p)) => (
            c.parse::<u32>().unwrap_or_else(|_| {
                eprintln!("bad core count {c:?}");
                std::process::exit(2);
            }),
            p.clone(),
        ),
        _ => {
            eprintln!("usage: fig10_point <cores> <uniform|pareto|hacc>");
            std::process::exit(2);
        }
    };
    let cache = PlanCache::new();
    let p = match pattern.as_str() {
        "uniform" => fig10_point_with(&cache, cores, Pattern::Uniform, fig10_seed(cores)),
        "pareto" => fig10_point_with(&cache, cores, Pattern::Pareto, fig10_seed(cores)),
        "hacc" => fig11_point_with(&cache, cores),
        other => {
            eprintln!("unknown pattern {other:?}");
            std::process::exit(2);
        }
    };
    println!(
        "{},{},{:.1},{:.3},{:.3},{:.2}x",
        cores,
        pattern,
        p.total_bytes as f64 / 1e9,
        p.ours / 1e9,
        p.baseline / 1e9,
        p.ours / p.baseline
    );
}
