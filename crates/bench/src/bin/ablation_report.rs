//! Ablation report: the simulated effect of each design choice DESIGN.md
//! calls out, plus a sensitivity sweep of the one free parameter our
//! substrate adds (the link contention penalty γ).
//!
//! * proxy count (k = 1..4) on the Fig. 5 pair — the k/2 law in action;
//! * store-and-forward vs pipelined forwarding (§VII future work);
//! * aggregator assignment policy (balanced vs pset-local);
//! * γ sensitivity: the headline results with the penalty off/softer/harder.
//!
//! All four tables run through one session, so they share one plan cache
//! (the proxy searches and the 2,048-core machine are computed once).

use bgq_bench::experiments::{
    AblationForwarding, AblationPolicy, AblationProxyCount, GammaSensitivity,
};
use bgq_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let session = args.session();

    println!("Ablation: proxy count (64 MB pair transfer, 128-node partition)");
    session.report(&AblationProxyCount, args.csv);

    println!("\nAblation: forwarding strategy (64 MB, 4 proxies)");
    session.report(&AblationForwarding, args.csv);

    println!("\nAblation: aggregator assignment policy (pattern 2, 2,048 cores)");
    session.report(&AblationPolicy, args.csv);

    println!("\nSensitivity: contention penalty γ (headline pair speedup, 4 proxies)");
    session.report(&GammaSensitivity, args.csv);
    println!(
        "\n[the headline 2x is γ-independent because the selected proxy paths are\n \
         link-disjoint; γ only prices paths that overlap (Figs. 6/7/10)]"
    );
}
