//! Ablation report: the simulated effect of each design choice DESIGN.md
//! calls out, plus a sensitivity sweep of the one free parameter our
//! substrate adds (the link contention penalty γ).
//!
//! * proxy count (k = 1..4) on the Fig. 5 pair — the k/2 law in action;
//! * store-and-forward vs pipelined forwarding (§VII future work);
//! * aggregator assignment policy (balanced vs pset-local);
//! * default-aggregator placement (clustered rank-order vs uniform);
//! * γ sensitivity: the headline results with the penalty off/softer/harder.

use bgq_bench::{ablation_policy_point, Cli, Pattern, Table};
use bgq_comm::{Machine, Program};
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, NodeId, Zone};
use sdm_core::{
    find_proxies, plan_direct, plan_via_proxies, MultipathOptions, ProxySearchConfig,
};
use std::collections::HashSet;

const PAIR_BYTES: u64 = 64 << 20;

fn pair_times(machine: &Machine, k: usize, opts: &MultipathOptions) -> (f64, f64) {
    let (src, dst) = (NodeId(0), NodeId(127));
    let mut pd = Program::new(machine);
    let t_direct = plan_direct(&mut pd, src, dst, PAIR_BYTES).completed_at(&pd.run());
    let px = find_proxies(
        machine.shape(),
        Zone::Z2,
        src,
        dst,
        &HashSet::new(),
        &ProxySearchConfig {
            min_proxies: 1,
            max_proxies: k,
            ..Default::default()
        },
    )
    .proxies();
    let mut pm = Program::new(machine);
    let t_multi =
        plan_via_proxies(&mut pm, src, dst, PAIR_BYTES, &px, opts).completed_at(&pm.run());
    (t_direct, t_multi)
}

fn main() {
    let cli = Cli::parse();
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());

    println!("Ablation: proxy count (64 MB pair transfer, 128-node partition)");
    let mut t = Table::new(&["k", "speedup over direct", "k/2 prediction"]);
    for k in 1..=4usize {
        let (d, m) = pair_times(&machine, k, &MultipathOptions::default());
        t.row(vec![
            k.to_string(),
            format!("{:.2}x", d / m),
            format!("{:.1}x", k as f64 / 2.0),
        ]);
    }
    cli.emit(&t);

    println!("\nAblation: forwarding strategy (64 MB, 4 proxies)");
    let mut t = Table::new(&["strategy", "time (ms)", "speedup over direct"]);
    for (label, opts) in [
        ("store-and-forward (paper)", MultipathOptions::default()),
        (
            "pipelined 1 MB sub-chunks (paper §VII)",
            MultipathOptions {
                pipeline_chunk: Some(1 << 20),
                ..Default::default()
            },
        ),
    ] {
        let (d, m) = pair_times(&machine, 4, &opts);
        t.row(vec![
            label.to_string(),
            format!("{:.2}", m * 1e3),
            format!("{:.2}x", d / m),
        ]);
    }
    cli.emit(&t);

    println!("\nAblation: aggregator assignment policy (pattern 2, 2,048 cores)");
    let (balanced, local) = ablation_policy_point(2048, Pattern::Pareto, 7);
    let mut t = Table::new(&["policy", "GB/s"]);
    t.row(vec!["balanced over all IONs (paper)".into(), format!("{:.3}", balanced / 1e9)]);
    t.row(vec!["pset-local".into(), format!("{:.3}", local / 1e9)]);
    cli.emit(&t);

    println!("\nSensitivity: contention penalty γ (headline pair speedup, 4 proxies)");
    let mut t = Table::new(&["γ (floor 0.7)", "direct GB/s", "4-proxy GB/s", "speedup"]);
    for gamma in [0.0, 0.05, 0.1, 0.2] {
        let cfg = SimConfig {
            contention_penalty: gamma,
            ..SimConfig::default()
        };
        let m = Machine::new(standard_shape(128).unwrap(), cfg);
        let (d, mu) = pair_times(&m, 4, &MultipathOptions::default());
        t.row(vec![
            format!("{gamma:.2}"),
            format!("{:.3}", PAIR_BYTES as f64 / d / 1e9),
            format!("{:.3}", PAIR_BYTES as f64 / mu / 1e9),
            format!("{:.2}x", d / mu),
        ]);
    }
    cli.emit(&t);
    println!(
        "\n[the headline 2x is γ-independent because the selected proxy paths are\n \
         link-disjoint; γ only prices paths that overlap (Figs. 6/7/10)]"
    );
}
