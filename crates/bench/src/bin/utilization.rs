//! Figure 2 (qualitative → quantitative): resource utilization of sparse
//! data movement with and without proxies/aggregators.
//!
//! The paper's Figure 2 argues that sparse patterns leave most torus
//! links idle under single-path routing, and that proxies/aggregators
//! raise utilization. This harness measures it: fraction of links
//! carrying traffic, mean utilization of active links, and the busiest
//! resource, for the microbenchmark and I/O scenarios.

use bgq_bench::experiments::Utilization;
use bgq_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    println!("Resource utilization of sparse data movement (128-node partition)");
    args.session().report(&Utilization, args.csv);
}
