//! Figure 2 (qualitative → quantitative): resource utilization of sparse
//! data movement with and without proxies/aggregators.
//!
//! The paper's Figure 2 argues that sparse patterns leave most torus
//! links idle under single-path routing, and that proxies/aggregators
//! raise utilization. This harness measures it: fraction of links
//! carrying traffic, mean utilization of active links, and the busiest
//! resource, for the microbenchmark and I/O scenarios.

use bgq_bench::{Cli, Table};
use bgq_comm::{Machine, Program};
use bgq_netsim::{active_fraction, utilization, SimConfig};
use bgq_torus::{standard_shape, NodeId, RankMap, Zone};
use bgq_workloads::{coalesce_to_nodes, pareto_sizes, ParetoParams};
use sdm_core::{
    find_proxies, plan_direct, plan_via_proxies, IoMoveOptions, MultipathOptions,
    ProxySearchConfig, SparseMover,
};
use std::collections::HashSet;

struct Scenario {
    name: &'static str,
    active_links: f64,
    mean_util: f64,
    peak_util: f64,
    gbs: f64,
}

fn measure(machine: &Machine, build: impl FnOnce(&mut Program<'_>) -> (u64, Vec<bgq_netsim::TransferId>)) -> (f64, f64, f64, f64) {
    let mut prog = Program::new(machine);
    let (bytes, tokens) = build(&mut prog);
    let rep = prog.run();
    let u = utilization(&rep, &machine.capacities());
    let t = rep.last_delivery(&tokens);
    (
        active_fraction(&rep),
        u.mean_active_utilization,
        u.peak_utilization,
        bytes as f64 / t,
    )
}

fn main() {
    let cli = Cli::parse();
    let machine = Machine::new(
        standard_shape(128).unwrap(),
        SimConfig::default().with_link_stats(),
    );
    let (src, dst) = (NodeId(0), NodeId(127));
    let bytes = 64u64 << 20;
    let proxies = find_proxies(
        machine.shape(),
        Zone::Z2,
        src,
        dst,
        &HashSet::new(),
        &ProxySearchConfig {
            max_proxies: 4,
            ..Default::default()
        },
    )
    .proxies();

    let mut scenarios = Vec::new();

    let (af, mu, pu, gbs) = measure(&machine, |p| {
        let h = plan_direct(p, src, dst, bytes);
        (h.bytes, h.tokens)
    });
    scenarios.push(Scenario {
        name: "point-to-point, direct (Fig 2a)",
        active_links: af,
        mean_util: mu,
        peak_util: pu,
        gbs,
    });

    let (af, mu, pu, gbs) = measure(&machine, |p| {
        let h = plan_via_proxies(p, src, dst, bytes, &proxies, &MultipathOptions::default());
        (h.bytes, h.tokens)
    });
    scenarios.push(Scenario {
        name: "point-to-point, 4 proxies (Fig 2c)",
        active_links: af,
        mean_util: mu,
        peak_util: pu,
        gbs,
    });

    // Sparse I/O: default collective vs topology-aware aggregation.
    let map = RankMap::default_map(*machine.shape(), 16);
    let data = coalesce_to_nodes(&map, &pareto_sizes(map.num_ranks(), &ParetoParams::default(), 77));

    let (af, mu, pu, gbs) = measure(&machine, |p| {
        let h = bgq_iosys::plan_collective_write(p, &data, &bgq_iosys::CollectiveIoConfig::default());
        (h.bytes, h.tokens)
    });
    scenarios.push(Scenario {
        name: "sparse write, MPI collective I/O (Fig 2b)",
        active_links: af,
        mean_util: mu,
        peak_util: pu,
        gbs,
    });

    let mover = SparseMover::new(&machine);
    let (af, mu, pu, gbs) = measure(&machine, |p| {
        let plan = mover.plan_sparse_write(p, &data, &IoMoveOptions::default());
        (plan.handle.bytes, plan.handle.tokens)
    });
    scenarios.push(Scenario {
        name: "sparse write, dynamic aggregators (Fig 2d)",
        active_links: af,
        mean_util: mu,
        peak_util: pu,
        gbs,
    });

    println!("Resource utilization of sparse data movement (128-node partition)");
    let mut t = Table::new(&[
        "scenario",
        "active links %",
        "mean util %",
        "peak util %",
        "GB/s",
    ]);
    for s in &scenarios {
        t.row(vec![
            s.name.to_string(),
            format!("{:.1}", s.active_links * 100.0),
            format!("{:.1}", s.mean_util * 100.0),
            format!("{:.1}", s.peak_util * 100.0),
            format!("{:.3}", s.gbs / 1e9),
        ]);
    }
    cli.emit(&t);
    println!("\n[paper Fig. 2: default mechanisms leave links/IO nodes idle; proxies and");
    println!(" uniformly distributed aggregators engage more of them]");
}
