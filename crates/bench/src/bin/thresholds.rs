//! §IV.B thresholds: the analytical cost model's predictions —
//! k/2 asymptotic speedup, the "at least 3 proxies" rule, and the
//! message-size threshold per proxy count — next to simulator
//! measurements for the Fig. 5 setting.

use bgq_bench::{fmt_bytes, Cli, Table};
use bgq_comm::{Machine, Program};
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, NodeId, Zone};
use sdm_core::{
    find_proxies, plan_direct, plan_via_proxies, CostModel, MultipathOptions, ProxySearchConfig,
};
use std::collections::HashSet;

fn main() {
    let cli = Cli::parse();
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let model = CostModel::from_sim_config(machine.config(), machine.mean_hops());

    println!("Analytical model (Eqs. 1-5): proxy-count thresholds");
    let mut t = Table::new(&[
        "k proxies",
        "threshold (model)",
        "asymptotic speedup (k/2)",
        "speedup @128MB (model)",
    ]);
    for k in 1..=8u32 {
        let th = model
            .threshold_bytes(k)
            .map(fmt_bytes)
            .unwrap_or_else(|| "never wins".into());
        t.row(vec![
            k.to_string(),
            th,
            format!("{:.1}", CostModel::asymptotic_speedup(k)),
            format!("{:.2}", model.speedup(128 << 20, k)),
        ]);
    }
    cli.emit(&t);
    println!(
        "\nminimum beneficial proxies: {}   [paper: k >= 3]",
        model.min_beneficial_proxies()
    );

    // Model vs simulator on the Fig. 5 configuration with 4 proxies.
    let (src, dst) = (NodeId(0), NodeId(127));
    let proxies = find_proxies(
        machine.shape(),
        Zone::Z2,
        src,
        dst,
        &HashSet::new(),
        &ProxySearchConfig {
            max_proxies: 4,
            ..Default::default()
        },
    )
    .proxies();

    println!("\nModel vs simulator (2 nodes, 4 proxies, 2x2x4x4x2):");
    let mut t = Table::new(&[
        "size",
        "model direct (ms)",
        "sim direct (ms)",
        "model proxies (ms)",
        "sim proxies (ms)",
    ]);
    for bytes in [64 << 10, 256 << 10, 1 << 20, 8 << 20, 64 << 20] {
        let mut pd = Program::new(&machine);
        let hd = plan_direct(&mut pd, src, dst, bytes);
        let sim_direct = hd.completed_at(&pd.run());

        let mut pm = Program::new(&machine);
        let hm = plan_via_proxies(&mut pm, src, dst, bytes, &proxies, &MultipathOptions::default());
        let sim_proxy = hm.completed_at(&pm.run());

        t.row(vec![
            fmt_bytes(bytes),
            format!("{:.3}", model.direct_time(bytes) * 1e3),
            format!("{:.3}", sim_direct * 1e3),
            format!("{:.3}", model.proxy_time(bytes, 4) * 1e3),
            format!("{:.3}", sim_proxy * 1e3),
        ]);
    }
    cli.emit(&t);
}
