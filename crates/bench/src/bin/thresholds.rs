//! §IV.B thresholds: the analytical cost model's predictions —
//! k/2 asymptotic speedup, the "at least 3 proxies" rule, and the
//! message-size threshold per proxy count — next to simulator
//! measurements for the Fig. 5 setting.

use bgq_bench::experiments::{ModelThresholds, ModelVsSim};
use bgq_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let session = args.session();

    println!("Analytical model (Eqs. 1-5): proxy-count thresholds");
    session.report(&ModelThresholds, args.csv);

    println!("\nModel vs simulator (2 nodes, 4 proxies, 2x2x4x4x2):");
    session.report(&ModelVsSim, args.csv);
}
