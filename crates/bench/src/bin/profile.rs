//! Why was this run slow? Bottleneck-attribution report for a figure's
//! representative scenario.
//!
//! ```text
//! cargo run --release -p bgq-bench --bin profile -- [FIGURE] \
//!     [--csv] [--profile-out PATH] [--trace-out PATH]
//! ```
//!
//! `FIGURE` defaults to `fig6`. The report shows, per run (`direct` /
//! `multipath` / `sparse_write`), where the flow-seconds went
//! (network-limited vs. cap-limited vs. queued vs. fault-stalled vs.
//! delivery latency), the ranked per-link blame, and the critical
//! dependency chain through the multipath proxy stages with its slowest
//! segment.
//!
//! `--csv` prints the per-transfer decomposition and per-link blame
//! rollup as CSV instead. `--profile-out` writes the deterministic JSON
//! artifact (`obs_report` validates and `--diff`s it); `--trace-out`
//! writes a Perfetto track of each flow's binding-link changes.

use bgq_bench::runner::PlanCache;
use bgq_bench::{profile_for_with_trace, render_report, write_artifact, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let figure = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("fig6");

    let cache = PlanCache::new();
    let Some((art, rec)) = profile_for_with_trace(figure, &cache) else {
        eprintln!(
            "no representative profile for {figure} (try fig5, fig6, fig7, fig10, resilience, exchange)"
        );
        std::process::exit(2);
    };
    if let Err(e) = art.validate() {
        eprintln!("profile accounting broken: {e}");
        std::process::exit(1);
    }

    if args.csv {
        print!("{}", art.to_csv());
        print!("{}", art.blame_csv());
    } else {
        print!("{}", render_report(&art));
    }

    if let Some(path) = &args.profile_out {
        write_artifact(path, &art.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.trace_out {
        write_artifact(path, &rec.to_chrome_json())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
