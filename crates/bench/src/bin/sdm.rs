//! `sdm` — interactive front-end to the sparse data movement planner.
//!
//! ```text
//! sdm plan  --nodes 512 --src 0 --dst 511 --bytes 32M     # point-to-point
//! sdm write --cores 8192 --pattern pareto [--policy local] # sparse write
//! sdm probe --nodes 512 --src 0 --dst 511                  # path diversity
//! ```
//!
//! Sizes accept `K`/`M`/`G` suffixes. Every command prints what the
//! planner decided and what the simulator measured.

use bgq_bench::PlanCache;
use bgq_comm::Program;
use bgq_netsim::SimConfig;
use bgq_torus::{shape_for_cores, standard_shape, NodeId, RankMap, Zone};
use bgq_workloads::{coalesce_to_nodes, pareto_sizes, uniform_sizes, ParetoParams};
use sdm_core::{diversity_report, plan_direct, AssignPolicy, IoMoveOptions, PlanRequest};
use std::collections::HashMap;

/// Parse a size like `32M`, `512K`, `1G`, `1048576`.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = match s.chars().last() {
        Some('K') | Some('k') => (&s[..s.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&s[..s.len() - 1], 1 << 20),
        Some('G') | Some('g') => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad size {s:?} (use e.g. 32M, 512K, 4096)"))
}

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let k = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("--{k} needs a value"))?;
        out.insert(k.to_string(), v.clone());
        i += 2;
    }
    Ok(out)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
    }
}

fn cmd_plan(cache: &PlanCache, flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes: u32 = get(flags, "nodes", 512)?;
    let shape = standard_shape(nodes).ok_or(format!("no standard {nodes}-node partition"))?;
    let machine = cache.machine(shape, &SimConfig::default());
    let src = NodeId(get(flags, "src", 0u32)?);
    let dst = NodeId(get(flags, "dst", nodes - 1)?);
    let bytes = parse_bytes(flags.get("bytes").map(String::as_str).unwrap_or("32M"))?;

    let mover = cache.mover(&machine);
    let mut prog = Program::new(&machine);
    let outcome = mover
        .plan(&mut prog, PlanRequest::new(src, dst, bytes))
        .expect("maskless planning is infallible");
    let (handle, decision) = (outcome.handle, outcome.decision);
    let rep = prog.run();

    let mut base = Program::new(&machine);
    let hd = plan_direct(&mut base, src, dst, bytes);
    let t_direct = hd.completed_at(&base.run());

    println!("partition {shape} ({nodes} nodes), {src} -> {dst}, {bytes} bytes");
    println!("decision : {decision:?}");
    println!(
        "planned  : {:.3} GB/s ({:.3} ms)",
        handle.throughput(&rep) / 1e9,
        handle.completed_at(&rep) * 1e3
    );
    println!(
        "direct   : {:.3} GB/s ({:.3} ms)  -> speedup {:.2}x",
        bytes as f64 / t_direct / 1e9,
        t_direct * 1e3,
        t_direct / handle.completed_at(&rep)
    );
    Ok(())
}

fn cmd_write(cache: &PlanCache, flags: &HashMap<String, String>) -> Result<(), String> {
    let cores: u32 = get(flags, "cores", 8192)?;
    let shape = shape_for_cores(cores).ok_or(format!("no standard partition for {cores} cores"))?;
    let machine = cache.machine(shape, &SimConfig::default());
    let map = RankMap::default_map(shape, 16);
    let pattern = flags
        .get("pattern")
        .map(String::as_str)
        .unwrap_or("pareto");
    let sizes = match pattern {
        "uniform" => uniform_sizes(map.num_ranks(), 8 << 20, 1),
        "pareto" => pareto_sizes(map.num_ranks(), &ParetoParams::default(), 1),
        "hacc" => bgq_workloads::hacc_workload(cores),
        other => return Err(format!("unknown pattern {other:?} (uniform|pareto|hacc)")),
    };
    let policy = match flags.get("policy").map(String::as_str).unwrap_or("balanced") {
        "balanced" => AssignPolicy::BalancedGreedy,
        "local" => AssignPolicy::PsetLocal,
        other => return Err(format!("unknown policy {other:?} (balanced|local)")),
    };
    let data = coalesce_to_nodes(&map, &sizes);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    let mover = cache.mover(&machine);
    let mut prog = Program::new(&machine);
    let opts = IoMoveOptions {
        policy,
        ..Default::default()
    };
    let plan = mover.plan_sparse_write(&mut prog, &data, &opts);
    let ours = plan.handle.throughput(&prog.run());

    let mut prog = Program::new(&machine);
    let h = bgq_iosys::plan_collective_write(&mut prog, &data, &Default::default());
    let baseline = h.throughput(&prog.run());

    println!(
        "{pattern} write of {:.2} GB on {cores} cores ({} IONs), policy {policy:?}",
        total as f64 / 1e9,
        machine.io_layout().num_ions()
    );
    println!(
        "ours     : {:.3} GB/s ({} aggregators/ION)",
        ours / 1e9,
        plan.num_agg_per_ion
    );
    println!("baseline : {:.3} GB/s", baseline / 1e9);
    println!("improvement: {:.2}x", ours / baseline);
    Ok(())
}

fn cmd_probe(flags: &HashMap<String, String>) -> Result<(), String> {
    let nodes: u32 = get(flags, "nodes", 512)?;
    let shape = standard_shape(nodes).ok_or(format!("no standard {nodes}-node partition"))?;
    let src = NodeId(get(flags, "src", 0u32)?);
    let dst = NodeId(get(flags, "dst", nodes - 1)?);
    let r = diversity_report(&shape, Zone::Z2, src, dst);
    println!("partition {shape}, {src} -> {dst}");
    println!("link-disjoint single-proxy paths : {}", r.disjoint_paths);
    println!("theoretical ceiling (2L)         : {}", r.upper_bound);
    println!("mean detour                      : {:.1} hops", r.mean_detour_hops);
    println!(
        "potential speedup (k/2)          : {:.1}x",
        sdm_core::CostModel::asymptotic_speedup(r.disjoint_paths as u32)
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: sdm <plan|write|probe> [--flag value]...\n  \
                 plan  --nodes N --src I --dst J --bytes 32M\n  \
                 write --cores N --pattern uniform|pareto|hacc [--policy balanced|local]\n  \
                 probe --nodes N --src I --dst J";
    let Some(cmd) = args.first() else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            std::process::exit(2);
        }
    };
    let cache = PlanCache::new();
    let result = match cmd.as_str() {
        "plan" => cmd_plan(&cache, &flags),
        "write" => cmd_write(&cache, &flags),
        "probe" => cmd_probe(&flags),
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n{usage}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("32M").unwrap(), 32 << 20);
        assert_eq!(parse_bytes("512k").unwrap(), 512 << 10);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert_eq!(parse_bytes("4096").unwrap(), 4096);
        assert!(parse_bytes("abc").is_err());
    }

    #[test]
    fn parse_flags_pairs() {
        let args: Vec<String> = ["--nodes", "512", "--bytes", "32M"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("nodes").unwrap(), "512");
        assert_eq!(f.get("bytes").unwrap(), "32M");
        assert!(parse_flags(&["--dangling".to_string()]).is_err());
        assert!(parse_flags(&["nodash".to_string(), "v".to_string()]).is_err());
    }

    #[test]
    fn get_with_defaults() {
        let f = parse_flags(&[]).unwrap();
        assert_eq!(get(&f, "nodes", 512u32).unwrap(), 512);
    }
}
