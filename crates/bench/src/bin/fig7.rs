//! Figure 7: performance variance with the number of proxy groups —
//! two groups of 32 nodes in the 512-node `4x4x4x4x2` partition.
//!
//! Paper's result: going from 2 to 3 to 4 proxy groups raises the large-
//! message speedup from ~1x to 1.5x to 2x; adding a fifth path (the
//! source itself, i.e. the direct route) makes concurrent movements
//! interfere and throughput drops.
//!
//! Reproduction note: under fully deterministic zone-2 routing this
//! corner-to-corner geometry admits at most 3 pairwise link-disjoint
//! single-proxy paths per pair (the search proves it), so our 4-group
//! series shares one link between two of its paths and lands below the
//! ideal 2x — the qualitative ordering (2 < 3 ≤ 4, 5 drops) is preserved.

use bgq_bench::{fig7_sweep, fmt_bytes, fmt_gbs, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let sizes = cli.sizes();
    let (baseline, series) = fig7_sweep(&sizes);

    println!(
        "Figure 7: PUT throughput vs number of proxy groups (2 groups of 32 nodes, 4x4x4x4x2)"
    );
    let mut header: Vec<String> = vec!["size".into(), "no proxies".into()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for (i, &bytes) in sizes.iter().enumerate() {
        let mut row = vec![fmt_bytes(bytes), fmt_gbs(baseline[i])];
        row.extend(series.iter().map(|s| fmt_gbs(s.throughput[i])));
        t.row(row);
    }
    cli.emit(&t);

    let last = sizes.len() - 1;
    println!("\nlarge-message speedups over no-proxy baseline:");
    for s in &series {
        println!(
            "  {:<22} {:.2}x",
            s.label,
            s.throughput[last] / baseline[last]
        );
    }
    println!("  [paper: 2 groups ~1x, 3 groups ~1.5x, 4 groups ~2x, 5 groups degrade]");
}
