//! Figure 7: performance variance with the number of proxy groups —
//! two groups of 32 nodes in the 512-node `4x4x4x4x2` partition.
//!
//! Paper's result: going from 2 to 3 to 4 proxy groups raises the large-
//! message speedup from ~1x to 1.5x to 2x; adding a fifth path (the
//! source itself, i.e. the direct route) makes concurrent movements
//! interfere and throughput drops.
//!
//! Reproduction note: under fully deterministic zone-2 routing this
//! corner-to-corner geometry admits at most 3 pairwise link-disjoint
//! single-proxy paths per pair (the search proves it), so our 4-group
//! series shares one link between two of its paths and lands below the
//! ideal 2x — the qualitative ordering (2 < 3 ≤ 4, 5 drops) is preserved.

use bgq_bench::experiments::Fig7;
use bgq_bench::{emit_artifacts, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!(
        "Figure 7: PUT throughput vs number of proxy groups (2 groups of 32 nodes, 4x4x4x4x2)"
    );
    let session = args.session();
    session.report(&Fig7 { sizes: args.sizes() }, args.csv);
    emit_artifacts(&args, &session, "fig7");
}
