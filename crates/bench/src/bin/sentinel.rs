//! Run-ledger + regression sentinel: execute the ledger's scenario
//! sweep, emit the manifest, track the run history, and compare against
//! the committed baseline with profiler-attributed verdicts.
//!
//! ```text
//! sentinel [--out PATH] [--baseline PATH] [--history PATH]
//!          [--markdown-out PATH] [--degrade-links F] [--threads N]
//!          [--update-baseline] [--force] [--no-history]
//! ```
//!
//! The flow, in order:
//!
//! 1. run every ledger scenario (fig5/fig6/fig7/io/resilience/scale/
//!    exchange) and assemble the [`RunManifest`];
//! 2. self-check: the manifest validates and round-trips byte-exactly;
//! 3. write it to `--out` (default `results/ledger/manifest.json`);
//! 4. append a fingerprint-keyed entry to the history (default
//!    `results/ledger/history.jsonl`) unless the last entry already has
//!    this hash — an unchanged tree appends nothing, so the file stays
//!    deterministic;
//! 5. if the baseline (default `results/ledger/baseline.json`) exists,
//!    diff against it: print the human report (and write the markdown
//!    summary when asked), and **exit 1 on any REGRESSED verdict** with
//!    the blame attribution naming the links that absorbed the lost
//!    time. With `--update-baseline` the manifest is pinned as the new
//!    baseline instead, and regressions don't fail the run.
//!
//! `--degrade-links F` multiplies the torus and I/O link bandwidths by
//! `F` — the regression-injection knob: `--degrade-links 0.5` halves
//! every link capacity, which must flip the exit code nonzero with
//! verdicts naming the newly-binding links. Pinning a degraded run as
//! the baseline would silently bless the regression for every later
//! run, so `--update-baseline` together with `--degrade-links` is a
//! usage error unless `--force` is also given.
//!
//! `--threads N` runs the scale scenario's sharded rerun on `N` worker
//! threads (simulated metrics don't change; only wall-clock does).
//!
//! Exit codes: 0 clean, 1 regression, 2 usage error.

use bgq_bench::{history_line, run_ledger, write_artifact, LedgerOptions, PlanCache};
use bgq_obs::{sentinel, RunManifest};
use std::process::ExitCode;

#[derive(Debug)]
struct Cli {
    out: String,
    baseline: String,
    history: Option<String>,
    markdown_out: Option<String>,
    degrade_links: f64,
    threads: usize,
    update_baseline: bool,
    force: bool,
}

fn parse_cli(args: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        out: "results/ledger/manifest.json".to_string(),
        baseline: "results/ledger/baseline.json".to_string(),
        history: Some("results/ledger/history.jsonl".to_string()),
        markdown_out: None,
        degrade_links: 1.0,
        threads: 0,
        update_baseline: false,
        force: false,
    };
    let mut args = args.into_iter();
    let value = |flag: &str, v: Option<String>| -> Result<String, String> {
        v.ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => cli.out = value("--out", args.next())?,
            "--baseline" => cli.baseline = value("--baseline", args.next())?,
            "--history" => cli.history = Some(value("--history", args.next())?),
            "--no-history" => cli.history = None,
            "--markdown-out" => cli.markdown_out = Some(value("--markdown-out", args.next())?),
            "--degrade-links" => {
                let v = value("--degrade-links", args.next())?;
                cli.degrade_links = v
                    .parse()
                    .map_err(|_| format!("--degrade-links needs a number, got {v:?}"))?;
                if cli.degrade_links.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(format!("--degrade-links must be positive, got {v}"));
                }
            }
            "--threads" => {
                let v = value("--threads", args.next())?;
                cli.threads = v
                    .parse()
                    .map_err(|_| format!("--threads needs a count, got {v:?}"))?;
            }
            "--update-baseline" => cli.update_baseline = true,
            "--force" => cli.force = true,
            other => {
                return Err(format!(
                    "unknown flag {other:?} (supported: --out PATH, --baseline PATH, \
                     --history PATH, --no-history, --markdown-out PATH, \
                     --degrade-links F, --threads N, --update-baseline, --force)"
                ))
            }
        }
    }
    if cli.update_baseline && cli.degrade_links != 1.0 && !cli.force {
        return Err(format!(
            "refusing --update-baseline with --degrade-links {}: pinning a degraded run \
             would bless the regression for every later comparison (pass --force to \
             override)",
            cli.degrade_links
        ));
    }
    Ok(cli)
}

/// Append `line` to the history unless its hash matches the last
/// entry's — reruns of an unchanged tree leave the file untouched.
fn append_history(path: &str, line: &str, hash: &str) -> std::io::Result<bool> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    if let Some(last) = existing.lines().rev().find(|l| !l.trim().is_empty()) {
        if last.contains(hash) {
            return Ok(false);
        }
    }
    write_artifact(path, &format!("{existing}{line}\n"))?;
    Ok(true)
}

fn main() -> ExitCode {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let mut opts = LedgerOptions {
        threads: cli.threads,
        ..LedgerOptions::default()
    };
    if cli.degrade_links != 1.0 {
        opts.sim.link_bandwidth *= cli.degrade_links;
        opts.sim.io_link_bandwidth *= cli.degrade_links;
        eprintln!(
            "degrading links by {:.3}x: link {:.3e} B/s, io link {:.3e} B/s",
            cli.degrade_links, opts.sim.link_bandwidth, opts.sim.io_link_bandwidth
        );
    }

    eprintln!("running ledger scenarios...");
    let cache = PlanCache::new();
    // Wall-clock metrics never serialize, so drop them up front: the
    // diff below must see exactly what the baseline file holds.
    let manifest = run_ledger(&cache, &opts).without_wall();

    // Self-check before anything touches disk: the artifact must
    // round-trip byte-exactly, or the baseline workflow is unsound.
    let js = manifest.to_json();
    match RunManifest::from_json(&js) {
        Ok(back) => assert_eq!(
            back.to_json(),
            js,
            "manifest does not round-trip byte-exactly"
        ),
        Err(e) => panic!("manifest does not parse back: {e}"),
    }

    write_artifact(&cli.out, &js).unwrap_or_else(|e| panic!("write {}: {e}", cli.out));
    let hash = manifest.fingerprint();
    eprintln!("wrote {} (manifest {hash})", cli.out);

    let baseline = match std::fs::read_to_string(&cli.baseline) {
        Ok(contents) => match RunManifest::from_json(&contents) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("{}: invalid baseline: {e}", cli.baseline);
                return ExitCode::FAILURE;
            }
        },
        Err(_) => None,
    };

    let report = baseline
        .as_ref()
        .map(|b| sentinel::diff(&manifest, b));

    if let Some(path) = &cli.history {
        match append_history(path, &history_line(&manifest, report.as_ref()), &hash) {
            Ok(true) => eprintln!("appended history entry to {path}"),
            Ok(false) => eprintln!("history already ends with {hash}; not appending"),
            Err(e) => panic!("write {path}: {e}"),
        }
    }

    if cli.update_baseline {
        write_artifact(&cli.baseline, &js)
            .unwrap_or_else(|e| panic!("write {}: {e}", cli.baseline));
        eprintln!("pinned {} as the new baseline", cli.baseline);
    }

    let Some(report) = report else {
        eprintln!(
            "no baseline at {}; run with --update-baseline to pin one",
            cli.baseline
        );
        return ExitCode::SUCCESS;
    };

    print!("{}", report.render());
    if let Some(path) = &cli.markdown_out {
        write_artifact(path, &report.to_markdown())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if report.has_regressions() && !cli.update_baseline {
        eprintln!("sentinel: PERFORMANCE REGRESSION detected (see attribution above)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::parse_cli;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn update_baseline_on_degraded_links_is_refused() {
        let err = parse_cli(args(&["--degrade-links", "0.5", "--update-baseline"]))
            .expect_err("degraded baseline pin must be refused");
        assert!(err.contains("refusing --update-baseline"), "{err}");
        assert!(err.contains("--force"), "the override must be named: {err}");
        // Flag order must not matter.
        assert!(parse_cli(args(&["--update-baseline", "--degrade-links", "0.5"])).is_err());
    }

    #[test]
    fn force_overrides_the_degraded_baseline_refusal() {
        let cli = parse_cli(args(&[
            "--degrade-links",
            "0.5",
            "--update-baseline",
            "--force",
        ]))
        .expect("--force must override the refusal");
        assert!(cli.update_baseline && cli.force);
        assert_eq!(cli.degrade_links, 0.5);
    }

    #[test]
    fn update_baseline_without_degradation_needs_no_force() {
        let cli = parse_cli(args(&["--update-baseline"])).unwrap();
        assert!(cli.update_baseline && !cli.force);
        // An explicit healthy factor is not a degradation.
        assert!(parse_cli(args(&["--degrade-links", "1.0", "--update-baseline"])).is_ok());
    }

    #[test]
    fn threads_flag_parses_and_rejects_garbage() {
        assert_eq!(parse_cli(args(&["--threads", "8"])).unwrap().threads, 8);
        assert!(parse_cli(args(&["--threads", "many"])).is_err());
        assert!(parse_cli(args(&["--threads"])).is_err());
    }

    #[test]
    fn degrade_links_still_validates() {
        assert!(parse_cli(args(&["--degrade-links", "0"])).is_err());
        assert!(parse_cli(args(&["--degrade-links", "-1"])).is_err());
        assert!(parse_cli(args(&["--degrade-links", "NaN"])).is_err());
    }
}
