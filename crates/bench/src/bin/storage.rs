//! Beyond `/dev/null`: end-to-end sparse writes through the file-server
//! backend (paper Fig. 1's QDR IB switch complex + GPFS), comparing the
//! aggregation approaches when storage, not the torus, may bind.
//!
//! The paper measures aggregation throughput to the IONs (`/dev/null`);
//! this harness shows how the picture changes with a filesystem attached:
//! the topology-aware advantage persists while the file servers have
//! headroom and compresses once they saturate.

use bgq_bench::{Cli, Table};
use bgq_comm::{FsParams, Machine, Program};
use bgq_iosys::{continue_to_storage, plan_collective_write, CollectiveIoConfig, IonChunk};
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, NodeId, RankMap};
use bgq_workloads::{coalesce_to_nodes, pareto_sizes, ParetoParams};
use sdm_core::{IoMoveOptions, SparseMover};

fn main() {
    let cli = Cli::parse();
    let shape = standard_shape(512).unwrap();
    let map = RankMap::default_map(shape, 16);
    let sizes = pareto_sizes(map.num_ranks(), &ParetoParams::default(), 4242);

    println!("Sparse write (pattern 2, 512 nodes): /dev/null vs file servers");
    let mut t = Table::new(&[
        "target",
        "ours GB/s",
        "MPI coll. I/O GB/s",
        "improvement",
    ]);

    // Aggregate fs ingest scaled to the partition (4/384 of Mira's IONs).
    let scaled_fs = FsParams {
        per_ion_bandwidth: 3.2e9,
        aggregate_bandwidth: 240e9 * 4.0 / 384.0,
    };
    let slow_fs = FsParams {
        per_ion_bandwidth: 3.2e9,
        aggregate_bandwidth: 1.0e9,
    };

    for (label, fs) in [
        ("/dev/null (paper)", None),
        ("GPFS share (4 IONs)", Some(scaled_fs)),
        ("saturated fs (1 GB/s)", Some(slow_fs)),
    ] {
        let mut machine = Machine::new(shape, SimConfig::default());
        if let Some(fs) = fs.clone() {
            machine = machine.with_filesystem(fs);
        }
        let data = coalesce_to_nodes(&map, &sizes);
        let layout = machine.io_layout().clone();

        // Ours.
        let mover = SparseMover::new(&machine);
        let mut prog = Program::new(&machine);
        let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
        let ours = if fs.is_some() {
            let chunks: Vec<IonChunk> = plan
                .assignments
                .iter()
                .zip(&plan.handle.tokens)
                .map(|(a, &tok)| IonChunk {
                    ion: layout.ion_of_pset(layout.pset_of(a.to)),
                    bytes: a.bytes,
                    delivered: tok,
                })
                .collect();
            let h = continue_to_storage(&mut prog, &chunks);
            h.throughput(&prog.run())
        } else {
            plan.handle.throughput(&prog.run())
        };

        // Baseline. (The collective plan's ION chunks are not exposed, so
        // for the storage variants we conservatively append one fs write
        // per pset carrying that pset's total, gated on the plan's
        // completion — a best case for the baseline.)
        let mut prog = Program::new(&machine);
        let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
        let baseline = if fs.is_some() {
            let total: u64 = data.iter().map(|&(_, b)| b).sum();
            let per_pset = total / layout.num_psets() as u64;
            let gate = prog.modeled_sync(NodeId(0), 0.0, handle.tokens.clone());
            let chunks: Vec<IonChunk> = (0..layout.num_psets())
                .map(|p| IonChunk {
                    ion: bgq_torus::IonId(p),
                    bytes: per_pset,
                    delivered: gate,
                })
                .collect();
            let h = continue_to_storage(&mut prog, &chunks);
            let rep = prog.run();
            handle.bytes as f64 / h.completed_at(&rep)
        } else {
            handle.throughput(&prog.run())
        };

        t.row(vec![
            label.to_string(),
            format!("{:.3}", ours / 1e9),
            format!("{:.3}", baseline / 1e9),
            format!("{:.2}x", ours / baseline),
        ]);
    }
    cli.emit(&t);
}
