//! Beyond `/dev/null`: end-to-end sparse writes through the file-server
//! backend (paper Fig. 1's QDR IB switch complex + GPFS), comparing the
//! aggregation approaches when storage, not the torus, may bind.
//!
//! The paper measures aggregation throughput to the IONs (`/dev/null`);
//! this harness shows how the picture changes with a filesystem attached:
//! the topology-aware advantage persists while the file servers have
//! headroom and compresses once they saturate.

use bgq_bench::experiments::Storage;
use bgq_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    println!("Sparse write (pattern 2, 512 nodes): /dev/null vs file servers");
    args.session().report(&Storage, args.csv);
}
