//! Parallel experiment execution with shared planning caches.
//!
//! Every figure harness in this crate is a sweep over independent points
//! (message sizes, core counts, scenarios). This module gives them one
//! shared execution layer:
//!
//! * [`PlanCache`] — memoizes the expensive, *deterministic* planning
//!   artifacts (built [`Machine`]s, precomputed [`AggregatorTable`]s,
//!   proxy selections and proxy groups) so repeated sweep points at the
//!   same partition shape reuse them instead of recomputing;
//! * [`Experiment`] — the uniform shape of a figure harness: a name, a
//!   header, a list of points, and a pure `run_point` that turns one
//!   point into one table [`Row`];
//! * [`ExperimentSession`] — fans the points of an experiment across
//!   worker threads (`std::thread::scope`) while collecting results *by
//!   point index*, so the output is bit-identical to a sequential run
//!   regardless of thread count.
//!
//! Everything an experiment computes is a pure function of its point and
//! the (deterministic) cached plans, which is what makes the parallel
//! fan-out safe: the only shared state is the cache, and a cache hit
//! returns an `Arc` to the exact value a fresh computation would produce.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bgq_comm::Machine;
use bgq_netsim::SimConfig;
use bgq_obs::MetricsRegistry;
use bgq_torus::{NodeId, Shape, Zone};
use sdm_core::{
    find_proxies, find_proxy_groups, AggregatorTable, ProxyGroup, ProxySearchConfig,
    ProxySelection, SparseMover,
};

use crate::table::Table;

/// `SimConfig` has `f64` fields, so it cannot be a `HashMap` key directly;
/// the bit patterns can. Distinct NaN payloads would compare unequal, but
/// no configuration in this crate produces NaN parameters.
type ConfigBits = [u64; 11];

fn config_bits(c: &SimConfig) -> ConfigBits {
    [
        c.link_bandwidth.to_bits(),
        c.io_link_bandwidth.to_bits(),
        c.per_flow_cap.to_bits(),
        c.hop_latency.to_bits(),
        c.send_overhead.to_bits(),
        c.recv_overhead.to_bits(),
        c.rma_phase_overhead.to_bits(),
        c.forward_overhead.to_bits(),
        c.contention_penalty.to_bits(),
        c.contention_floor.to_bits(),
        c.collect_link_stats as u64,
    ]
}

fn search_key(cfg: &ProxySearchConfig) -> (usize, usize, u16) {
    (cfg.min_proxies, cfg.max_proxies, cfg.max_offset)
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct MachineKey {
    shape: Shape,
    config: ConfigBits,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ProxyKey {
    shape: Shape,
    zone: Zone,
    src: NodeId,
    dst: NodeId,
    forbidden: Vec<NodeId>,
    cfg: (usize, usize, u16),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    shape: Shape,
    zone: Zone,
    sources: Vec<NodeId>,
    dests: Vec<NodeId>,
    cfg: (usize, usize, u16),
}

/// Cache hit/miss counters, readable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized planning artifacts shared by all points of a session.
///
/// All cached values are deterministic functions of their key, so a hit
/// is indistinguishable from a fresh computation — that invariant is what
/// lets [`ExperimentSession`] share one cache across worker threads while
/// keeping output bit-identical to a sequential run. Values are handed
/// out as `Arc`s; the cache never evicts (sweeps are finite).
#[derive(Default)]
pub struct PlanCache {
    machines: Mutex<HashMap<MachineKey, Arc<Machine>>>,
    tables: Mutex<HashMap<Shape, Option<Arc<AggregatorTable>>>>,
    proxies: Mutex<HashMap<ProxyKey, Arc<ProxySelection>>>,
    groups: Mutex<HashMap<GroupKey, Arc<Vec<ProxyGroup>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Attach a metrics registry: every lookup then also lands in
    /// per-table counters (`cache.machine.hits`, `cache.proxies.misses`,
    /// …), and [`PlanCache::mover`] hands out planners that record their
    /// decisions into the same registry.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> PlanCache {
        self.metrics = Some(metrics);
        self
    }

    /// The attached registry, if observation is on.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Look up `key`, computing with `make` on a miss. The computation
    /// runs outside the lock (points are heavyweight); if two threads
    /// race on the same key, both compute the identical value and the
    /// first insert wins. `kind` names the table in the per-kind metrics.
    ///
    /// Counter determinism: a *miss* is only recorded by the thread whose
    /// insert actually lands; a race loser records the hit its lookup
    /// would have been under any serialized schedule. Misses therefore
    /// equal the number of unique keys and hits equal lookups minus
    /// unique keys — both independent of the thread count, so the
    /// counters are safe to golden-pin.
    fn get_or_insert<K, V, F>(
        &self,
        map: &Mutex<HashMap<K, V>>,
        kind: &'static str,
        key: K,
        make: F,
    ) -> V
    where
        K: std::hash::Hash + Eq,
        V: Clone,
        F: FnOnce() -> V,
    {
        if let Some(v) = map.lock().unwrap().get(&key) {
            self.record(kind, true);
            return v.clone();
        }
        let v = make();
        match map.lock().unwrap().entry(key) {
            Entry::Occupied(e) => {
                self.record(kind, true);
                e.get().clone()
            }
            Entry::Vacant(slot) => {
                self.record(kind, false);
                slot.insert(v).clone()
            }
        }
    }

    fn record(&self, kind: &'static str, hit: bool) {
        let (global, name) = if hit {
            (&self.hits, "hits")
        } else {
            (&self.misses, "misses")
        };
        global.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.counter(&format!("cache.{kind}.{name}")).inc();
        }
    }

    /// A machine for `shape` under `config`, built at most once.
    pub fn machine(&self, shape: Shape, config: &SimConfig) -> Arc<Machine> {
        let key = MachineKey {
            shape,
            config: config_bits(config),
        };
        self.get_or_insert(&self.machines, "machine", key, || {
            Arc::new(Machine::new(shape, config.clone()))
        })
    }

    /// The precomputed aggregator table for `machine`'s shape (Algorithm 2
    /// phase 1). The table depends only on the I/O layout, which is a pure
    /// function of the shape, so it is shared across machines that differ
    /// only in `SimConfig`. `None` when the partition has no I/O layout.
    pub fn aggregator_table(&self, machine: &Machine) -> Option<Arc<AggregatorTable>> {
        let shape = *machine.shape();
        self.get_or_insert(&self.tables, "table", shape, || {
            machine
                .io()
                .map(|io| Arc::new(AggregatorTable::precompute(io)))
        })
    }

    /// A [`SparseMover`] for `machine` that reuses the cached aggregator
    /// table instead of precomputing its own. When the cache carries a
    /// metrics registry, the mover records its decisions into it.
    pub fn mover<'m>(&self, machine: &'m Machine) -> SparseMover<'m> {
        let mover = SparseMover::with_aggregator_table(machine, self.aggregator_table(machine));
        match &self.metrics {
            Some(m) => mover.with_metrics(Arc::clone(m)),
            None => mover,
        }
    }

    /// Memoized [`find_proxies`] (Algorithm 1) for a node pair.
    pub fn proxies(
        &self,
        shape: &Shape,
        zone: Zone,
        src: NodeId,
        dst: NodeId,
        forbidden: &HashSet<NodeId>,
        cfg: &ProxySearchConfig,
    ) -> Arc<ProxySelection> {
        let mut fb: Vec<NodeId> = forbidden.iter().copied().collect();
        fb.sort_unstable_by_key(|n| n.0);
        let key = ProxyKey {
            shape: *shape,
            zone,
            src,
            dst,
            forbidden: fb,
            cfg: search_key(cfg),
        };
        self.get_or_insert(&self.proxies, "proxies", key, || {
            Arc::new(find_proxies(shape, zone, src, dst, forbidden, cfg))
        })
    }

    /// Memoized [`find_proxy_groups`] (Algorithm 1 for coupled groups).
    pub fn proxy_groups(
        &self,
        shape: &Shape,
        zone: Zone,
        sources: &[NodeId],
        dests: &[NodeId],
        cfg: &ProxySearchConfig,
    ) -> Arc<Vec<ProxyGroup>> {
        let key = GroupKey {
            shape: *shape,
            zone,
            sources: sources.to_vec(),
            dests: dests.to_vec(),
            cfg: search_key(cfg),
        };
        self.get_or_insert(&self.groups, "groups", key, || {
            Arc::new(find_proxy_groups(shape, zone, sources, dests, cfg))
        })
    }

    /// Counters accumulated since the cache was created.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// One table row produced by a sweep point: the formatted cells plus the
/// raw metrics behind them, so footers (crossover points, plateaus,
/// speedup summaries) can be computed without re-running the sweep or
/// parsing formatted text back.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub cells: Vec<String>,
    pub metrics: Vec<f64>,
}

impl Row {
    pub fn new(cells: Vec<String>, metrics: Vec<f64>) -> Row {
        Row { cells, metrics }
    }

    /// A row with no numeric sidecar.
    pub fn text(cells: Vec<String>) -> Row {
        Row {
            cells,
            metrics: Vec::new(),
        }
    }
}

/// A figure harness, reduced to its uniform shape: independent points,
/// each mapped to one row of output.
///
/// `run_point` must be a pure function of `(self, cache, point)` — it is
/// called from worker threads in an unspecified order. Results are
/// reassembled by point index, so implementations never need to care
/// about scheduling.
pub trait Experiment: Sync {
    /// The unit of parallel work (a message size, a core count, …).
    type Point: Send + Sync;

    /// Short identifier used in filenames and the `--timing` footer.
    fn name(&self) -> &'static str;

    /// Column headers for the output table.
    fn columns(&self) -> Vec<String>;

    /// The sweep, in output order.
    fn points(&self) -> Vec<Self::Point>;

    /// Evaluate one point. Runs on a worker thread.
    fn run_point(&self, cache: &PlanCache, point: &Self::Point) -> Row;

    /// Optional lines printed after the table (crossovers, plateaus…),
    /// computed from the already-collected rows.
    fn footer(&self, rows: &[Row]) -> Option<String> {
        let _ = rows;
        None
    }
}

/// The collected output of [`ExperimentSession::run`].
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// One row per point, in `points()` order.
    pub rows: Vec<Row>,
    /// Wall-clock time spent inside `run_point`, per point.
    pub point_times: Vec<Duration>,
    /// Wall-clock time for the whole fan-out.
    pub elapsed: Duration,
}

impl ExperimentRun {
    /// Assemble the rows into a [`Table`] under `columns`.
    pub fn table(&self, columns: &[String]) -> Table {
        let cols: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&cols);
        for row in &self.rows {
            t.row(row.cells.clone());
        }
        t
    }
}

/// Runs [`Experiment`]s across a pool of scoped worker threads with a
/// shared [`PlanCache`].
///
/// Points are claimed from an atomic counter and results are written into
/// index-ordered slots, so the assembled output is byte-identical whether
/// the session uses 1 thread or N.
///
/// ```
/// use bgq_bench::runner::{Experiment, ExperimentSession, PlanCache, Row};
///
/// struct Squares;
/// impl Experiment for Squares {
///     type Point = u64;
///     fn name(&self) -> &'static str { "squares" }
///     fn columns(&self) -> Vec<String> { vec!["n".into(), "n^2".into()] }
///     fn points(&self) -> Vec<u64> { (1..=4).collect() }
///     fn run_point(&self, _cache: &PlanCache, n: &u64) -> Row {
///         Row::new(vec![n.to_string(), (n * n).to_string()], vec![(n * n) as f64])
///     }
/// }
///
/// let session = ExperimentSession::new(4);
/// let run = session.run(&Squares);
/// assert_eq!(run.rows.len(), 4);
/// // Output order follows point order, not completion order.
/// assert_eq!(run.rows[3].cells, vec!["4", "16"]);
/// ```
pub struct ExperimentSession {
    threads: usize,
    timing: bool,
    cache: PlanCache,
}

impl ExperimentSession {
    /// A session running up to `threads` points concurrently (clamped to
    /// at least 1). The planning cache starts empty and persists for the
    /// life of the session, so later experiments reuse plans built by
    /// earlier ones.
    pub fn new(threads: usize) -> ExperimentSession {
        ExperimentSession {
            threads: threads.max(1),
            timing: false,
            cache: PlanCache::new(),
        }
    }

    /// Enable or disable the `--timing` footer printed by [`report`].
    ///
    /// [`report`]: ExperimentSession::report
    pub fn with_timing(mut self, timing: bool) -> ExperimentSession {
        self.timing = timing;
        self
    }

    /// Attach a metrics registry to the session's plan cache: cache
    /// lookups and planner decisions across every experiment run by this
    /// session then accumulate in one place. All recorded values are
    /// thread-order independent (counters sum `u64`s), so snapshots are
    /// identical for any `--threads` setting.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> ExperimentSession {
        self.cache = std::mem::take(&mut self.cache).with_metrics(metrics);
        self
    }

    /// The session's registry, if observation is on.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.cache.metrics()
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn timing(&self) -> bool {
        self.timing
    }

    /// The session-wide planning cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Apply `f` to every point, in parallel, returning results in point
    /// order. The generic building block under [`run`]; useful directly
    /// when a harness wants raw values instead of rows.
    ///
    /// [`run`]: ExperimentSession::run
    pub fn map<P, R, F>(&self, points: &[P], f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&PlanCache, &P) -> R + Sync,
    {
        let n = points.len();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            return points.iter().map(|p| f(&self.cache, p)).collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let out = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&self.cache, &points[i]);
                    out.lock().unwrap()[i] = Some(r);
                });
            }
        });
        out.into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every point index was claimed by a worker"))
            .collect()
    }

    /// Run every point of `exp` and collect rows in point order.
    pub fn run<E: Experiment>(&self, exp: &E) -> ExperimentRun {
        let points = exp.points();
        let t0 = Instant::now();
        let timed = self.map(&points, |cache, p| {
            let start = Instant::now();
            let row = exp.run_point(cache, p);
            (row, start.elapsed())
        });
        let elapsed = t0.elapsed();
        let (rows, point_times) = timed.into_iter().unzip();
        ExperimentRun {
            rows,
            point_times,
            elapsed,
        }
    }

    /// Run `exp` and print its table (CSV when `csv` is set), any footer,
    /// and — when timing is enabled — the per-point timing summary with
    /// cache hit/miss counters. Returns the run for further use.
    pub fn report<E: Experiment>(&self, exp: &E, csv: bool) -> ExperimentRun {
        let run = self.run(exp);
        let table = run.table(&exp.columns());
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        if let Some(footer) = exp.footer(&run.rows) {
            println!("{footer}");
        }
        if self.timing {
            print!("{}", self.timing_summary(exp.name(), &run));
        }
        run
    }

    /// The `--timing` footer: slowest points, totals, and planning-cache
    /// hit/miss counters for this session so far.
    pub fn timing_summary(&self, name: &str, run: &ExperimentRun) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "-- timing: {name} --");
        let mut by_time: Vec<(usize, Duration)> = run
            .point_times
            .iter()
            .copied()
            .enumerate()
            .collect();
        by_time.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(i, dt) in by_time.iter().take(5) {
            let label = run.rows[i]
                .cells
                .first()
                .map(|s| s.as_str())
                .unwrap_or("?");
            let _ = writeln!(out, "  point {label:>10}  {:>8.1} ms", dt.as_secs_f64() * 1e3);
        }
        let busy: Duration = run.point_times.iter().sum();
        let _ = writeln!(
            out,
            "  {} points in {:.2} s wall ({:.2} s cpu) on {} thread(s)",
            run.point_times.len(),
            run.elapsed.as_secs_f64(),
            busy.as_secs_f64(),
            self.threads,
        );
        let stats = self.cache.stats();
        let _ = writeln!(
            out,
            "  plan cache: {} hits, {} misses ({:.0}% hit rate)",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0,
        );
        out
    }
}

/// Everything the worker threads share must be `Send + Sync`; assert it
/// at compile time so a future interior-mutability change cannot silently
/// serialize (or break) the fan-out.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Machine>();
    assert_send_sync::<AggregatorTable>();
    assert_send_sync::<ProxySelection>();
    assert_send_sync::<ProxyGroup>();
    assert_send_sync::<PlanCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_torus::standard_shape;

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = PlanCache::new();
        let shape = standard_shape(128).unwrap();
        let cfg = SimConfig::default();
        let m1 = cache.machine(shape, &cfg);
        let m2 = cache.machine(shape, &cfg);
        assert!(Arc::ptr_eq(&m1, &m2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);

        // A different SimConfig is a different machine…
        let other = SimConfig::default().with_link_stats();
        let m3 = cache.machine(shape, &other);
        assert!(!Arc::ptr_eq(&m1, &m3));
        // …but the aggregator table depends only on the shape.
        let t1 = cache.aggregator_table(&m1).unwrap();
        let t3 = cache.aggregator_table(&m3).unwrap();
        assert!(Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn per_kind_cache_counters_mirror_the_totals() {
        let reg = Arc::new(MetricsRegistry::new());
        let cache = PlanCache::new().with_metrics(Arc::clone(&reg));
        let shape = standard_shape(128).unwrap();
        let cfg = SimConfig::default();
        let m = cache.machine(shape, &cfg);
        cache.machine(shape, &cfg);
        cache.aggregator_table(&m);
        cache.proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &ProxySearchConfig::default(),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.machine.misses"), Some(1));
        assert_eq!(snap.counter("cache.machine.hits"), Some(1));
        assert_eq!(snap.counter("cache.table.misses"), Some(1));
        assert_eq!(snap.counter("cache.proxies.misses"), Some(1));
        let stats = cache.stats();
        let per_kind: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("cache."))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_kind, stats.hits + stats.misses);
    }

    #[test]
    fn cached_proxies_match_fresh_search() {
        let cache = PlanCache::new();
        let shape = standard_shape(128).unwrap();
        let cfg = ProxySearchConfig::default();
        let fresh = find_proxies(
            &shape,
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &HashSet::new(),
            &cfg,
        );
        let cached = cache.proxies(&shape, Zone::Z2, NodeId(0), NodeId(127), &HashSet::new(), &cfg);
        assert_eq!(cached.proxies(), fresh.proxies());
        let again = cache.proxies(&shape, Zone::Z2, NodeId(0), NodeId(127), &HashSet::new(), &cfg);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    struct Doubler;
    impl Experiment for Doubler {
        type Point = usize;
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn columns(&self) -> Vec<String> {
            vec!["i".into(), "2i".into()]
        }
        fn points(&self) -> Vec<usize> {
            (0..37).collect()
        }
        fn run_point(&self, _cache: &PlanCache, p: &usize) -> Row {
            Row::new(vec![p.to_string(), (2 * p).to_string()], vec![2.0 * *p as f64])
        }
    }

    #[test]
    fn parallel_run_preserves_point_order() {
        let seq = ExperimentSession::new(1).run(&Doubler);
        let par = ExperimentSession::new(4).run(&Doubler);
        assert_eq!(seq.rows, par.rows);
        assert_eq!(seq.rows[36].cells, vec!["36", "72"]);
        assert_eq!(
            seq.table(&Doubler.columns()).to_csv(),
            par.table(&Doubler.columns()).to_csv()
        );
    }

    #[test]
    fn map_handles_empty_and_oversubscribed() {
        let session = ExperimentSession::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(session.map(&empty, |_, p| *p).is_empty());
        let one = session.map(&[5u32], |_, p| p + 1);
        assert_eq!(one, vec![6]);
    }
}
