//! Scaling sweep for the incremental waterfill solver: the same sparse
//! transfer pattern simulated once with [`SolverMode::Full`] (re-level
//! the whole active set at every rate epoch) and once with the default
//! [`SolverMode::Incremental`] (re-level only the dirty flow/link
//! closure), across partition sizes up to 8,192 nodes.
//!
//! The pattern is the regime the paper's sparse workloads live in: many
//! link-disjoint neighbor exchanges (each completion perturbs only its
//! own contention component) plus a thin tail of long-haul transfers
//! that do share links. Both runs must produce bit-identical reports —
//! the sweep asserts it — so the only thing the solver mode changes is
//! how much work each rate epoch costs.
//!
//! Results go to `results/BENCH_scale.json` via the `scale` binary.

use bgq_comm::{Machine, Program};
use bgq_netsim::{SimConfig, SimObserver, SimOptions, SimReport, SolverMode};
use bgq_torus::{standard_shape, NodeId};
use std::fmt::Write as _;
use std::time::Instant;

/// One solver mode's measurements at one partition size.
#[derive(Debug, Clone)]
pub struct SolverSide {
    /// Wall-clock seconds for the simulation call.
    pub wall_secs: f64,
    /// Events popped from the engine queue.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Re-levels over the entire active set.
    pub full_runs: u64,
    /// Re-levels confined to the dirty closure.
    pub incremental_runs: u64,
    /// Simulated end time (must match the other side bit-for-bit).
    pub makespan: f64,
}

/// Full-vs-incremental comparison at one partition size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub nodes: u32,
    pub transfers: usize,
    pub full: SolverSide,
    pub incremental: SolverSide,
}

impl ScalePoint {
    /// Wall-clock improvement of incremental over full re-leveling.
    pub fn speedup(&self) -> f64 {
        self.full.wall_secs / self.incremental.wall_secs
    }

    /// How many full re-levels the dirty-set machinery avoided:
    /// `full_runs(full mode) / full_runs(incremental mode)`.
    pub fn full_run_reduction(&self) -> f64 {
        self.full.full_runs as f64 / (self.incremental.full_runs.max(1)) as f64
    }
}

/// Build the sweep's sparse pattern on an `nodes`-node partition:
/// one neighbor put per 4 nodes (link-disjoint, staggered sizes so
/// completions spread over many rate epochs) and one long-haul put per
/// 64 nodes (shared links, real contention).
fn build_pattern(prog: &mut Program<'_>, nodes: u32) -> usize {
    let mut transfers = 0;
    for i in (0..nodes).step_by(4) {
        // Unique size per transfer so disjoint completions land in
        // distinct rate epochs instead of batching into a few waves.
        let bytes = (256u64 << 10) + (i as u64) * 4096;
        prog.put(NodeId(i), NodeId((i + 1) % nodes), bytes);
        transfers += 1;
    }
    for i in (0..nodes).step_by(64) {
        prog.put(NodeId(i), NodeId((i + nodes / 2) % nodes), 8 << 20);
        transfers += 1;
    }
    transfers
}

fn timed_run(prog: &Program<'_>, solver: SolverMode) -> (SolverSide, SimReport) {
    let mut obs = SimObserver::new();
    let start = Instant::now();
    let report = prog.simulate(SimOptions::new().solver(solver).observer(&mut obs));
    let wall_secs = start.elapsed().as_secs_f64();
    let side = SolverSide {
        wall_secs,
        events: obs.events_processed,
        events_per_sec: obs.events_processed as f64 / wall_secs.max(1e-9),
        full_runs: obs.waterfill_full_runs,
        incremental_runs: obs.waterfill_incremental_runs,
        makespan: report.end_time,
    };
    (side, report)
}

/// Evaluate one partition size. Panics if the two solver modes disagree
/// on any delivery time — bit-identity is the engine's contract.
pub fn scale_point(nodes: u32) -> ScalePoint {
    scale_point_with(nodes, &SimConfig::default())
}

/// [`scale_point`] under an explicit simulator config — the run-ledger
/// uses this to replay the sweep cell on a degraded machine.
pub fn scale_point_with(nodes: u32, sim: &SimConfig) -> ScalePoint {
    let shape = standard_shape(nodes)
        .unwrap_or_else(|| panic!("no standard {nodes}-node partition"));
    let machine = Machine::new(shape, sim.clone());
    let mut prog = Program::new(&machine);
    let transfers = build_pattern(&mut prog, nodes);

    let (full, report_full) = timed_run(&prog, SolverMode::Full);
    let (incremental, report_inc) = timed_run(&prog, SolverMode::default());

    assert_eq!(
        report_full.delivery_time, report_inc.delivery_time,
        "solver modes diverged at {nodes} nodes"
    );
    ScalePoint {
        nodes,
        transfers,
        full,
        incremental,
    }
}

/// The partition sizes of the sweep, capped at `max_nodes`.
pub fn scale_sizes(max_nodes: u32) -> Vec<u32> {
    [512u32, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect()
}

fn json_side(out: &mut String, label: &str, s: &SolverSide) {
    let _ = write!(
        out,
        "\"{label}\":{{\"wall_secs\":{:.6},\"events\":{},\"events_per_sec\":{:.1},\
         \"full_runs\":{},\"incremental_runs\":{},\"makespan\":{:?}}}",
        s.wall_secs, s.events, s.events_per_sec, s.full_runs, s.incremental_runs, s.makespan
    );
}

/// Serialize a sweep as the `BENCH_scale.json` artifact.
pub fn scale_json(points: &[ScalePoint]) -> String {
    let mut out = String::from("{\"experiment\":\"scale\",\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"nodes\":{},\"transfers\":{},",
            p.nodes, p.transfers
        );
        json_side(&mut out, "full", &p.full);
        out.push(',');
        json_side(&mut out, "incremental", &p.incremental);
        let _ = write!(
            out,
            ",\"wall_speedup\":{:.3},\"full_run_reduction\":{:.1}}}",
            p.speedup(),
            p.full_run_reduction()
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_is_bit_identical_and_mostly_incremental() {
        let p = scale_point(512);
        assert!(p.transfers > 0);
        // Full mode never takes the incremental path…
        assert_eq!(p.full.incremental_runs, 0);
        assert!(p.full.full_runs > 0);
        // …and the incremental mode resolves the vast majority of epochs
        // without a full re-level on this disjoint-heavy pattern.
        assert!(
            p.incremental.incremental_runs >= 3 * p.incremental.full_runs,
            "incremental {} vs full {}",
            p.incremental.incremental_runs,
            p.incremental.full_runs
        );
        assert_eq!(p.full.makespan.to_bits(), p.incremental.makespan.to_bits());
        assert!(p.full.events > 0 && p.full.events == p.incremental.events);
    }

    #[test]
    fn json_artifact_is_valid() {
        let p = scale_point(512);
        let json = scale_json(&[p]);
        bgq_obs::json::validate(&json).expect("BENCH_scale.json must be valid JSON");
        assert!(json.contains("\"full_run_reduction\""));
    }
}
