//! Scaling sweep for the waterfill solver: the same sparse transfer
//! pattern simulated with [`SolverMode::Full`] (re-level a component's
//! whole active set at every rate epoch), with the default
//! [`SolverMode::Incremental`] (re-level only the dirty flow/link
//! closure), and with the incremental solver re-run on the sharded
//! executor (`SimOptions::sharded`), across partition sizes up to
//! 8,192 nodes.
//!
//! The pattern is the regime the paper's sparse workloads live in: many
//! link-disjoint neighbor exchanges plus one dependent fan-out per
//! D×E torus column. The fan-out chains share their source node (so
//! injection serialization ties them into one contention component) but
//! only partially overlap on links, which is exactly the shape where
//! the dirty-closure machinery beats full re-levels *within* a
//! component. Columns never share a link with each other — routes
//! between nodes of one aligned D×E block stay inside the block — so
//! the pattern decomposes into hundreds of independent components and
//! the sharded executor can spread them over a worker pool.
//!
//! All three runs must produce bit-identical reports — the sweep
//! asserts it — so the only thing the solver mode or thread count
//! changes is how much each rate epoch costs in wall-clock terms.
//!
//! Results go to `results/BENCH_scale.json` via the `scale` binary.

use bgq_comm::{Machine, Program};
use bgq_netsim::{SimConfig, SimObserver, SimOptions, SimReport, SolverMode};
use bgq_torus::{standard_shape, Dim, NodeId, Shape};
use std::fmt::Write as _;
use std::time::Instant;

/// One run's measurements at one partition size.
#[derive(Debug, Clone)]
pub struct SolverSide {
    /// Wall-clock seconds for the simulation call.
    pub wall_secs: f64,
    /// Events popped from the engine queues.
    pub events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Re-levels over a component's entire active set.
    pub full_runs: u64,
    /// Re-levels confined to the dirty closure.
    pub incremental_runs: u64,
    /// Simulated end time (must match the other sides bit-for-bit).
    pub makespan: f64,
}

/// Full vs. incremental vs. sharded comparison at one partition size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub nodes: u32,
    pub transfers: usize,
    /// Worker threads the sharded side ran with (0 = in-line).
    pub threads: usize,
    /// Contention components the engine discovered (identical across
    /// all three sides — the partition is input-determined).
    pub shards: u32,
    pub full: SolverSide,
    pub incremental: SolverSide,
    /// The incremental solver re-run under `SimOptions::sharded`.
    pub sharded: SolverSide,
}

impl ScalePoint {
    /// Wall-clock improvement of incremental over full re-leveling.
    pub fn speedup(&self) -> f64 {
        self.full.wall_secs / self.incremental.wall_secs
    }

    /// How many full re-levels the dirty-set machinery avoided:
    /// `full_runs(full mode) / full_runs(incremental mode)`.
    pub fn full_run_reduction(&self) -> f64 {
        self.full.full_runs as f64 / (self.incremental.full_runs.max(1)) as f64
    }

    /// Wall-clock improvement of the worker pool over the in-line
    /// incremental run. Bounded by the machine's core count; on a
    /// single-core host this measures sharding overhead (≈ 1.0).
    pub fn parallel_speedup(&self) -> f64 {
        self.incremental.wall_secs / self.sharded.wall_secs
    }
}

/// Build the sweep's sparse pattern on an `nodes`-node partition.
///
/// Two ingredients, both confined to aligned D×E torus columns so the
/// pattern shards (node ids are row-major `ABCDE`, `E` fastest — a
/// block of `extent(D) * extent(E)` consecutive ids is a column whose
/// internal routes never leave it):
///
/// * one neighbor put per 4 nodes — a single `+E` hop, link-disjoint,
///   staggered sizes so completions land in distinct rate epochs;
/// * one dependent fan-out per column: a hub node (`d=0, e=1`) streams
///   3-deep put chains to 4–5 destinations in its column. The chains
///   share the hub (one component via injection serialization) but
///   only the `+D` pair shares links, so a completion's dirty closure
///   stays well under half the component.
fn build_pattern(prog: &mut Program<'_>, shape: &Shape, nodes: u32) -> usize {
    let mut transfers = 0;
    for i in (0..nodes).step_by(4) {
        // Unique size per transfer so disjoint completions land in
        // distinct rate epochs instead of batching into a few waves.
        let bytes = (256u64 << 10) + (i as u64) * 4096;
        prog.put(NodeId(i), NodeId((i + 1) % nodes), bytes);
        transfers += 1;
    }

    let de = shape.extent(Dim::D) as u32;
    let ee = shape.extent(Dim::E) as u32;
    debug_assert_eq!(ee, 2, "standard shapes end in an E extent of 2");
    let block = de * ee;
    const ROUNDS: u64 = 3;
    for (bi, base) in (0..nodes).step_by(block as usize).enumerate() {
        let node = |d: u32, e: u32| NodeId(base + d * ee + e);
        let hub = node(0, 1);
        // +D one hop; +D two hops (shares the first link with the
        // previous chain — real contention, small dirty closure); -D
        // one hop; the E-flip back to the column base. Larger D
        // extents afford a second -D chain.
        let mut dsts = vec![node(1, 1), node(2, 1), node(de - 1, 1), node(0, 0)];
        if de >= 6 {
            dsts.push(node(de - 2, 1));
        }
        for (ci, dst) in dsts.into_iter().enumerate() {
            let mut dep = Vec::new();
            for round in 0..ROUNDS {
                let bytes = (1u64 << 20) + (bi as u64 * 17 + ci as u64 * 5 + round) * 4096;
                let t = prog.put_after(hub, dst, bytes, dep, 0.0);
                dep = vec![t];
                transfers += 1;
            }
        }
    }
    transfers
}

fn timed_run(
    prog: &Program<'_>,
    solver: SolverMode,
    threads: usize,
) -> (SolverSide, u32, SimReport) {
    let mut obs = SimObserver::new();
    let start = Instant::now();
    let report = prog.simulate(
        SimOptions::new()
            .solver(solver)
            .sharded(threads)
            .observer(&mut obs),
    );
    let wall_secs = start.elapsed().as_secs_f64();
    let side = SolverSide {
        wall_secs,
        events: obs.events_processed,
        events_per_sec: obs.events_processed as f64 / wall_secs.max(1e-9),
        full_runs: obs.waterfill_full_runs,
        incremental_runs: obs.waterfill_incremental_runs,
        makespan: report.end_time,
    };
    (side, obs.shards as u32, report)
}

/// Evaluate one partition size with as many worker threads as the host
/// offers. Panics if any pair of runs disagrees on any delivery time —
/// bit-identity is the engine's contract.
pub fn scale_point(nodes: u32) -> ScalePoint {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    scale_point_with(nodes, &SimConfig::default(), threads)
}

/// [`scale_point`] under an explicit simulator config and thread count —
/// the run-ledger uses this to replay the sweep cell on a degraded
/// machine.
pub fn scale_point_with(nodes: u32, sim: &SimConfig, threads: usize) -> ScalePoint {
    let shape = standard_shape(nodes)
        .unwrap_or_else(|| panic!("no standard {nodes}-node partition"));
    let machine = Machine::new(shape, sim.clone());
    let mut prog = Program::new(&machine);
    let transfers = build_pattern(&mut prog, machine.shape(), nodes);

    let (full, _, report_full) = timed_run(&prog, SolverMode::Full, 0);
    let (incremental, shards, report_inc) = timed_run(&prog, SolverMode::default(), 0);
    let (sharded, shards_par, report_par) = timed_run(&prog, SolverMode::default(), threads);

    assert_eq!(
        report_full.delivery_time, report_inc.delivery_time,
        "solver modes diverged at {nodes} nodes"
    );
    assert_eq!(
        report_inc, report_par,
        "sharded execution diverged from in-line at {nodes} nodes ({threads} threads)"
    );
    assert_eq!(shards, shards_par, "partition must not depend on threads");
    ScalePoint {
        nodes,
        transfers,
        threads,
        shards,
        full,
        incremental,
        sharded,
    }
}

/// The partition sizes of the sweep, capped at `max_nodes`.
pub fn scale_sizes(max_nodes: u32) -> Vec<u32> {
    [512u32, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect()
}

fn json_side(out: &mut String, label: &str, s: &SolverSide) {
    let _ = write!(
        out,
        "\"{label}\":{{\"wall_secs\":{:.6},\"events\":{},\"events_per_sec\":{:.1},\
         \"full_runs\":{},\"incremental_runs\":{},\"makespan\":{:?}}}",
        s.wall_secs, s.events, s.events_per_sec, s.full_runs, s.incremental_runs, s.makespan
    );
}

/// Serialize a sweep as the `BENCH_scale.json` artifact.
pub fn scale_json(points: &[ScalePoint]) -> String {
    let mut out = String::from("{\"experiment\":\"scale\",\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"nodes\":{},\"transfers\":{},\"threads\":{},\"shards\":{},",
            p.nodes, p.transfers, p.threads, p.shards
        );
        json_side(&mut out, "full", &p.full);
        out.push(',');
        json_side(&mut out, "incremental", &p.incremental);
        out.push(',');
        json_side(&mut out, "sharded", &p.sharded);
        let _ = write!(
            out,
            ",\"wall_speedup\":{:.3},\"full_run_reduction\":{:.1},\"parallel_speedup\":{:.3}}}",
            p.speedup(),
            p.full_run_reduction(),
            p.parallel_speedup()
        );
    }
    out.push_str("]}");
    out
}

/// Serialize only the simulated (wall-clock-free) quantities of a
/// sweep: makespans, event and solve counts, shard counts. Two runs of
/// the same sweep must produce byte-identical output at any thread
/// count — `just verify`'s sharded-determinism smoke diffs this.
pub fn scale_report_json(points: &[ScalePoint]) -> String {
    let mut out = String::from("{\"experiment\":\"scale_report\",\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"nodes\":{},\"transfers\":{},\"shards\":{},\"makespan\":{:?},\
             \"events\":{},\"full_mode_full_runs\":{},\"incremental_mode_full_runs\":{},\
             \"incremental_mode_incremental_runs\":{}}}",
            p.nodes,
            p.transfers,
            p.shards,
            p.incremental.makespan,
            p.incremental.events,
            p.full.full_runs,
            p.incremental.full_runs,
            p.incremental.incremental_runs
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_decomposes_shards_and_stays_bit_identical() {
        // scale_point_with itself asserts the three runs agree
        // bit-for-bit; the smoke checks the pattern's shape.
        let p = scale_point_with(512, &SimConfig::default(), 8);
        assert!(p.transfers > 0);
        assert!(
            p.shards > 64,
            "the column pattern must decompose ({} shards)",
            p.shards
        );
        // Full mode never takes the incremental path…
        assert_eq!(p.full.incremental_runs, 0);
        assert!(p.full.full_runs > 0);
        // …and the incremental mode resolves most epochs without a
        // full re-level: fan-out completions dirty only their own
        // chain (plus the one +D link-sharer), well under the
        // half-the-component fallback threshold.
        assert!(
            p.incremental.incremental_runs > p.incremental.full_runs,
            "incremental {} vs full {}",
            p.incremental.incremental_runs,
            p.incremental.full_runs
        );
        assert_eq!(p.full.makespan.to_bits(), p.incremental.makespan.to_bits());
        assert_eq!(p.incremental.makespan.to_bits(), p.sharded.makespan.to_bits());
        assert!(p.full.events > 0 && p.full.events == p.incremental.events);
        assert_eq!(p.incremental.events, p.sharded.events);
        assert_eq!(
            p.incremental.full_runs + p.incremental.incremental_runs,
            p.sharded.full_runs + p.sharded.incremental_runs,
            "thread count must not change solver work"
        );
    }

    #[test]
    fn report_json_is_identical_at_every_thread_count() {
        let cfg = SimConfig::default();
        let seq = scale_report_json(&[scale_point_with(512, &cfg, 1)]);
        let two = scale_report_json(&[scale_point_with(512, &cfg, 2)]);
        let eight = scale_report_json(&[scale_point_with(512, &cfg, 8)]);
        assert_eq!(seq, two);
        assert_eq!(two, eight);
    }

    #[test]
    fn json_artifact_is_valid() {
        let p = scale_point_with(512, &SimConfig::default(), 2);
        let json = scale_json(std::slice::from_ref(&p));
        bgq_obs::json::validate(&json).expect("BENCH_scale.json must be valid JSON");
        assert!(json.contains("\"full_run_reduction\""));
        assert!(json.contains("\"parallel_speedup\""));
        assert!(json.contains("\"sharded\""));
        let report = scale_report_json(&[p]);
        bgq_obs::json::validate(&report).expect("scale report must be valid JSON");
        assert!(!report.contains("wall"), "report must be wall-clock-free");
    }
}
